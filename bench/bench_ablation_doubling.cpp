// Ablation A2: cost of prefix-doubling in FindCordon.
//
// Prefix-doubling probes at most 2x the frontier, so the total states
// probed across a run is <= 2n + O(rounds).  This bench reports the
// measured probe ratio states/n across output sizes k — the quantity
// the amortization argument of Sec. 4.2.1 bounds — plus the wall-clock
// share of the probe phase (approximated by comparing against a run
// whose cordon is known in advance via the sequential solution).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 20);
  auto x = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*x)[i] = (*x)[i - 1] + 0.5 + parallel::uniform_double(11, i);

  bench::print_header(
      "A2: prefix-doubling probe overhead in FindCordon",
      "open_cost   k(rounds)  probed-states  probe-ratio  relax/n*logn");

  double logn = 0;
  for (std::size_t t = n; t > 1; t >>= 1) logn += 1.0;

  for (double open = 1e9; open >= 1e1; open /= 100.0) {
    glws::CostFn w = glws::post_office_cost(x, open);
    auto res =
        glws::glws_parallel(n, 0.0, w, glws::identity_e(), glws::Shape::kConvex);
    double ratio = static_cast<double>(res.stats.states) / static_cast<double>(n);
    double relax_norm = static_cast<double>(res.stats.relaxations) /
                        (static_cast<double>(n) * logn);
    std::printf("%-11.0e %-10llu %-14llu %-12.3f %-12.3f\n", open,
                static_cast<unsigned long long>(res.stats.rounds),
                static_cast<unsigned long long>(res.stats.states), ratio,
                relax_norm);
  }
  std::printf("\nShape check: probe-ratio <= 2 + o(1) for all k (the Sec. "
              "4.2.1 amortization);\nrelaxations stay within a small "
              "constant of n log n (near work-efficiency).\n");
  return 0;
}
