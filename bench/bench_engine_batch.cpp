// Batch throughput of the unified engine (the serving scenario the
// engine exists for): a heterogeneous queue of instances from every
// registered family, multiplexed across the scheduler by the
// BatchExecutor, against solving the same queue one request at a time.
//
// Series:
//   batch-parallel  — BatchExecutor with inter-instance parallelism
//                     (nested over each solver's intra-instance
//                     parallelism),
//   one-at-a-time   — queue order, intra-instance parallelism only,
//   sequential      — queue order, all parallelism forced inline
//                     (the single-thread floor).
//
// CORDON_BENCH_N sets the per-instance size, CORDON_BENCH_BATCH the
// queue length, CORDON_BENCH_REPS repeats every series (one JSON record
// per rep, so gate scripts can compare minima instead of noisy single
// shots); CORDON_BENCH_JSON appends machine-readable records.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/registry.hpp"

int main() {
  using namespace cordon;

  const std::size_t n = bench::env_size("CORDON_BENCH_N", 2000);
  const std::size_t batch = bench::env_size("CORDON_BENCH_BATCH", 64);
  const std::size_t reps = bench::env_size("CORDON_BENCH_REPS", 1);

  const auto& reg = engine::builtin_registry();
  const auto& solvers = reg.solvers();
  std::vector<engine::Instance> queue;
  queue.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const engine::Solver& s = *solvers[i % solvers.size()];
    // Quadratic-work families stay smaller so no one request dominates.
    std::uint64_t size = (s.key() == "obst" || s.key() == "gap" ||
                          s.key() == "dag")
                             ? n / 8
                             : n;
    queue.push_back(s.generate({size, 8, 1000 + i}));
  }

  engine::BatchExecutor exec(reg);
  // Warm-up: fault in the pool and per-family code paths.
  (void)exec.run(queue, {.parallel = false});

  bench::print_header("engine batch throughput (Sec. 2.3 multiplexing)",
                      "series            wall_ms  req/s   speedup");
  bench::JsonEmitter json("bench_engine_batch");

  auto report_line = [&](const char* series, const engine::BatchReport& rep,
                         double baseline_wall) {
    std::printf("%-16s %8.2f %7.1f %8.2fx   max_rounds=%llu mean_lat_ms=%.3f\n",
                series, rep.wall_s * 1e3, rep.throughput_rps(),
                baseline_wall / rep.wall_s,
                static_cast<unsigned long long>(rep.stats.max_rounds),
                rep.stats.mean_latency_s() * 1e3);
    json.record({{"series", series},
                 {"batch", batch},
                 {"n", n},
                 {"wall_s", rep.wall_s},
                 {"throughput_rps", rep.throughput_rps()},
                 {"failed", rep.failed},
                 {"total_rounds", rep.stats.total.rounds},
                 {"total_relaxations", rep.stats.total.relaxations},
                 {"max_rounds", rep.stats.max_rounds},
                 {"max_effective_depth", rep.stats.max_effective_depth},
                 {"mean_latency_s", rep.stats.mean_latency_s()},
                 {"max_latency_s", rep.stats.max_latency_s}});
  };

  std::size_t failures = 0;
  engine::BatchReport seq, one, par;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    {
      parallel::SequentialRegion inline_only;
      seq = exec.run(queue, {.parallel = false});
    }
    one = exec.run(queue, {.parallel = false});
    par = exec.run(queue, {.parallel = true});

    report_line("sequential", seq, seq.wall_s);
    report_line("one-at-a-time", one, seq.wall_s);
    report_line("batch-parallel", par, seq.wall_s);
    failures += par.failed + one.failed + seq.failed;
  }

  if (failures > 0) {
    std::printf("FAILURES present — batch executor is broken\n");
    return 1;
  }
  std::printf("\nbatch-parallel vs one-at-a-time: %.2fx on %zu thread(s)\n",
              one.wall_s / par.wall_s, parallel::num_workers());
  return 0;
}
