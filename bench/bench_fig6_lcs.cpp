// Figure 6: parallel sparse LCS running time vs k (the LCS length), for
// two densities L of match pairs.  Series: "Ours" (parallel) and
// "Ours (1 thread)" — pre-processing (pair generation) is excluded from
// the timings, as in the paper.
//
// Workload: the paper controls L and k on random strings; we control
// them exactly by planting k antidiagonal bands of L/k pairs each —
// pairs within one band form an antichain (no two are chainable), and
// consecutive bands are chainable, so the LCS length is exactly k.
// Defaults are CI-scale; CORDON_BENCH_N rescales to paper scale.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/lcs/lcs.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

namespace {

// L pairs in k antidiagonal bands over an n x n grid: LCS == min(k, ...).
std::vector<lcs::MatchPair> banded_pairs(std::size_t n, std::size_t total,
                                         std::size_t k, std::uint64_t seed) {
  std::vector<lcs::MatchPair> pairs;
  pairs.reserve(total);
  std::size_t per_band = total / k;
  std::size_t step = n / k;
  std::size_t spread = step > 2 ? step / 2 : 1;
  for (std::size_t b = 0; b < k; ++b) {
    std::size_t center = b * step + step / 2;
    // Antidiagonal: i + j == 2 * center, i in [center-spread, center+spread).
    for (std::size_t p = 0; p < per_band; ++p) {
      std::size_t off = parallel::uniform(seed, b * per_band + p, 2 * spread);
      std::size_t i = center - spread + off;
      std::size_t j = 2 * center - i;
      if (i < n && j < n)
        pairs.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
    }
  }
  // Algorithms need (i asc, j desc) order.
  std::sort(pairs.begin(), pairs.end(),
            [](const lcs::MatchPair& a, const lcs::MatchPair& b) {
              return a.i != b.i ? a.i < b.i : a.j > b.j;
            });
  return pairs;
}

}  // namespace

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 20);
  bench::print_header("Figure 6: parallel sparse LCS, time vs k",
                      "L        k        ours(s)   ours-1t(s)  seq-HS(s) "
                      " path      verified  counters");
  bench::JsonEmitter json("bench_fig6_lcs");
  for (std::size_t l_mult : {1, 4}) {
    std::size_t total = n * l_mult;
    for (std::size_t k = 64; k <= n / 16; k *= 8) {
      auto aos = banded_pairs(n, total, k, 42 + k);
      // The solvers consume the SoA form (split once, outside timings —
      // match_pairs_soa produces it directly on the real pipeline).
      lcs::MatchPairsSoA pairs;
      pairs.i.reserve(aos.size());
      pairs.j.reserve(aos.size());
      for (const lcs::MatchPair& p : aos) {
        pairs.i.push_back(p.i);
        pairs.j.push_back(p.j);
      }
      parallel::ensure_started();
      // Production path (adaptive routing included) at the current pool
      // size — the series the scaling gate reads.
      lcs::LcsResult auto_res;
      double auto_s = bench::time_s([&] { auto_res = lcs::lcs_auto(pairs); });
      // The paper's "ours (1 thread)": the raw parallel algorithm inline.
      lcs::LcsResult par_res;
      double one;
      {
        parallel::SequentialRegion seq_region;
        one = bench::time_s([&] { par_res = lcs::lcs_parallel(pairs); });
      }
      lcs::LcsResult seq_res;
      double seq = bench::time_s([&] { seq_res = lcs::lcs_sparse_seq(pairs); });
      bool ok = auto_res.length == seq_res.length;
      std::printf("%-8zu %-8zu %-9.4f %-11.4f %-9.4f  %-9s %-8s",
                  pairs.size(), static_cast<std::size_t>(auto_res.length),
                  auto_s, one, seq, core::solve_path_name(auto_res.path),
                  ok ? "yes" : "MISMATCH");
      bench::print_stats_suffix(auto_res.stats);
      std::printf("\n");
      json.record_scaling(
          {.series = "ours",
           .n = n,
           .seconds = auto_s,
           .one_thread_s = one,
           .sequential_s = seq,
           .path = auto_res.path,
           .verified = ok,
           .stats = auto_res.stats,
           .extra = {{"L", pairs.size()},
                     {"k", static_cast<std::size_t>(auto_res.length)}}});
    }
  }
  std::printf("\nShape check (paper): parallel competitive with sequential "
              "until k becomes extreme;\nwork counters stay O(L log n) "
              "independent of k; rounds == k.\n");
  return 0;
}
