// Figure 7: parallel convex GLWS (post-office problem), time vs k (the
// number of post offices in the optimal solution).  Series: "Ours",
// "Ours (1 thread)", and the sequential Γlws monotonic-queue algorithm.
//
// k is controlled by the office opening cost, exactly as the paper
// controls the output size with the weight function.  Defaults are
// CI-scale; CORDON_BENCH_N rescales.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 20);
  auto x = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*x)[i] = (*x)[i - 1] + 0.5 + parallel::uniform_double(7, i);

  bench::print_header(
      "Figure 7: parallel convex GLWS (post office), time vs k",
      "open_cost   k        ours(s)   ours-1t(s)  seq(s)    path     "
      " verified  counters");
  bench::JsonEmitter json("bench_fig7_glws");

  // Sweep opening cost downward: smaller cost => more offices (larger k).
  for (double open = 1e9; open >= 1e1; open /= 100.0) {
    glws::CostFn w = glws::post_office_cost(x, open);
    glws::EFn e = glws::identity_e();
    parallel::ensure_started();
    // Production path (adaptive routing included) at the current pool
    // size — the series the scaling gate reads.
    glws::GlwsResult auto_res;
    double auto_s = bench::time_s([&] {
      auto_res = glws::glws_auto(n, 0.0, w, e, glws::Shape::kConvex);
    });
    // The paper's "ours (1 thread)": the raw parallel algorithm inline.
    glws::GlwsResult par_res;
    double one;
    {
      parallel::SequentialRegion seq_region;
      one = bench::time_s([&] {
        par_res = glws::glws_parallel(n, 0.0, w, e, glws::Shape::kConvex);
      });
    }
    glws::GlwsResult seq_res;
    double seq = bench::time_s([&] {
      seq_res = glws::glws_sequential(n, 0.0, w, e, glws::Shape::kConvex);
    });
    bool ok = std::abs(auto_res.d[n] - seq_res.d[n]) <=
              1e-6 * (1.0 + std::abs(seq_res.d[n]));
    // k = number of offices = length of the best-decision chain.
    std::size_t k = 0;
    for (std::size_t i = n; i != 0; i = auto_res.best[i]) ++k;
    std::printf("%-11.0e %-8zu %-9.4f %-11.4f %-9.4f %-9s %-8s", open, k,
                auto_s, one, seq, core::solve_path_name(auto_res.path),
                ok ? "yes" : "MISMATCH");
    bench::print_stats_suffix(auto_res.stats);
    std::printf("\n");
    json.record_scaling({.series = "ours",
                         .n = n,
                         .seconds = auto_s,
                         .one_thread_s = one,
                         .sequential_s = seq,
                         .path = auto_res.path,
                         .verified = ok,
                         .stats = auto_res.stats,
                         .extra = {{"k", k}}});
  }
  std::printf(
      "\nShape check (paper): sequential time ~flat in k (O(n log n) work); "
      "parallel time grows\nwith k (span O(k log^2 n)); crossover moves "
      "right as n grows.  rounds == k (Thm 4.1).\n");
  return 0;
}
