// Ablation A3 (Thm 5.2): GAP — naive vs Γgap vs parallel cordon.
// Reports work counters (the naive/optimized gap is the paper's whole
// point: O(n^2 m) vs O(nm log n)) and the staircase round counts.
//
// Emits the standard scaling triple per size (production auto path,
// raw-parallel-inline, sequential) so the thread sweep can compute the
// gap family's speedup curve.  The naive oracle is skipped above
// n=1024 — its cubic relaxation count would dominate sweep wall time.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/gap/gap.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

namespace {

std::vector<std::uint32_t> random_string(std::size_t n, std::uint64_t seed,
                                         std::uint32_t alphabet) {
  std::vector<std::uint32_t> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<std::uint32_t>(parallel::uniform(seed, i, alphabet));
  return s;
}

}  // namespace

int main() {
  const std::size_t base = bench::env_size("CORDON_BENCH_N", 384);
  bench::print_header(
      "A3: GAP edit distance (convex gap costs)",
      "n=m     naive(s)  seq(s)    ours(s)   ours-1t(s)  path      rounds  "
      "relax(naive/seq/ours)");
  bench::JsonEmitter json("bench_gap");
  auto w1 = gap::quadratic_gap_cost(2.0, 0.05);
  auto w2 = gap::quadratic_gap_cost(2.5, 0.04);
  for (std::size_t n : {base / 4, base / 2, base}) {
    auto a = random_string(n, 5, 4);
    auto b = random_string(n, 6, 4);
    gap::GapResult nv, sv, av, pv;
    double tn = -1;
    if (n <= 1024)
      tn = bench::time_s([&] { nv = gap::gap_naive(a, b, w1, w2); });
    double ts = bench::time_s(
        [&] { sv = gap::gap_seq(a, b, w1, w2, glws::Shape::kConvex); });
    parallel::ensure_started();
    // Production path (adaptive routing included) at the current pool
    // size — the series the scaling gate reads.
    double ta = bench::time_s(
        [&] { av = gap::gap_auto(a, b, w1, w2, glws::Shape::kConvex); });
    // The paper's "ours (1 thread)": the raw parallel algorithm inline.
    double tp1;
    {
      parallel::SequentialRegion seq_region;
      tp1 = bench::time_s(
          [&] { pv = gap::gap_parallel(a, b, w1, w2, glws::Shape::kConvex); });
    }
    bool ok = std::abs(sv.distance - av.distance) < 1e-6 &&
              (tn < 0 || std::abs(nv.distance - av.distance) < 1e-6);
    std::printf(
        "%-7zu %-9.4f %-9.4f %-9.4f %-11.4f %-9s %-7llu %llu/%llu/%llu %s\n",
        n, tn, ts, ta, tp1, core::solve_path_name(av.path),
        static_cast<unsigned long long>(av.stats.rounds),
        static_cast<unsigned long long>(nv.stats.relaxations),
        static_cast<unsigned long long>(sv.stats.relaxations),
        static_cast<unsigned long long>(av.stats.relaxations),
        ok ? "" : "MISMATCH");
    json.record_scaling({.series = "ours",
                         .n = n,
                         .seconds = ta,
                         .one_thread_s = tp1,
                         .sequential_s = ts,
                         .path = av.path,
                         .verified = ok,
                         .stats = av.stats,
                         .extra = {{"cells", (n + 1) * (n + 1)}}});
  }
  std::printf("\nShape check: naive relaxations grow ~n^3, optimized ~n^2 "
              "log n; parallel matches\nthe optimized work and finishes in "
              "rounds << n+m when the inputs align densely.\n");
  return 0;
}
