// Incremental re-solve vs cold re-solve: the session layer's reason to
// exist, measured at the solver boundary where the two paths differ.
//
// For each incremental family (lis, lcs, glws) the bench grows one
// lineage by APPENDS single-element deltas and times two ways of
// producing the version-v result:
//
//   <kind>-cold    — solve(prefix_v) from scratch, the price every
//                    append would pay without saved state,
//   <kind>-resume  — resume(state_{v-1}, prefix_v, delta_v), carrying
//                    the family's frontier/envelope forward.  Each
//                    timed call advances the lineage by one element, so
//                    every iteration does real (non-memoized) work.
//   <kind>-session — the same appends end-to-end through
//                    CordonService::append (delta validation, version
//                    cache key, telemetry), to show the service adds
//                    overhead measured in microseconds, not a new
//                    asymptotic term.
//
// Prefix instances and deltas are materialized before the timed
// regions: in production the service grows one Instance in place, so
// per-append instance copies are not part of what resume() costs.
//
// Every resumed objective is checked bit-identical (==) to the cold
// solve of the same prefix; the acceptance bar is resume >= 5x faster
// than cold per append on every family, and the binary exits 1 when
// either check fails so CI can gate on it.
//
// CORDON_BENCH_N        full instance size       (default 120000)
// CORDON_BENCH_APPENDS  single-element appends   (default 64)
// CORDON_BENCH_JSON     append machine-readable records
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/registry.hpp"
#include "src/engine/solver.hpp"
#include "src/service/service.hpp"

int main() {
  using namespace cordon;

  const std::size_t n = bench::env_size("CORDON_BENCH_N", 120000);
  const std::size_t appends = bench::env_size("CORDON_BENCH_APPENDS", 64);
  if (appends == 0 || appends >= n) {
    std::fprintf(stderr, "bench_incremental: need 0 < APPENDS < N\n");
    return 1;
  }
  const std::size_t base_n = n - appends;

  const auto& reg = engine::builtin_registry();
  bench::print_header("incremental re-solve vs cold (single-element appends)",
                      "series            n         per_append  speedup");
  bench::JsonEmitter json("bench_incremental");

  bool gate_failed = false;
  for (const char* kind : {"lis", "lcs", "glws"}) {
    const engine::Solver& solver = reg.at(kind);
    engine::Instance full = solver.generate({n, 8, 97});

    // Materialize the lineage outside the timed regions: prefix_v is
    // the instance after v appends, delta_v grows prefix_{v-1} into it.
    std::vector<engine::Instance> prefix;
    std::vector<engine::Delta> delta;
    prefix.reserve(appends);
    delta.reserve(appends);
    for (std::size_t v = 1; v <= appends; ++v) {
      prefix.push_back(engine::prefix_instance(full, base_n + v));
      delta.push_back(
          engine::slice_delta(full, base_n + v - 1, base_n + v, v - 1));
    }

    // Warm-up (pool + code paths) and the oracle objectives.
    std::vector<double> expected;
    expected.reserve(appends);
    for (const engine::Instance& p : prefix)
      expected.push_back(solver.solve(p).objective);

    // cold: every append pays a from-scratch solve of its prefix.
    double cold_s = bench::time_s([&] {
      for (const engine::Instance& p : prefix) (void)solver.solve(p);
    });
    double cold_per = cold_s / static_cast<double>(appends);

    // resume: one checkpoint, then each append advances it by one
    // element.  Objectives must be bit-identical to the cold solves.
    std::shared_ptr<const engine::SolverState> state;
    (void)solver.solve_checkpoint(engine::prefix_instance(full, base_n),
                                  state);
    bool identical = true, all_resumed = true;
    double resume_s = bench::time_s([&] {
      for (std::size_t v = 0; v < appends; ++v) {
        engine::ResumeResult rr = solver.resume(state, prefix[v], delta[v]);
        state = rr.state;
        all_resumed = all_resumed && rr.resumed;
        identical = identical && rr.result.objective == expected[v];
      }
    });
    double resume_per = resume_s / static_cast<double>(appends);
    double speedup = cold_per / resume_per;

    // session: the same lineage through the service front door.
    double session_per = 0;
    {
      service::CordonService svc({.cache_capacity = 0}, reg);
      std::uint64_t id =
          svc.create_session(engine::prefix_instance(full, base_n));
      std::size_t bad = 0;
      double session_s = bench::time_s([&] {
        for (std::size_t v = 0; v < appends; ++v) {
          engine::SolveResult r = svc.append(id, delta[v]).get();
          if (r.objective != expected[v]) ++bad;
        }
      });
      session_per = session_s / static_cast<double>(appends);
      identical = identical && bad == 0;
      svc.close_session(id);
    }

    std::printf("%-6s-cold     %9zu %9.3f ms        -\n", kind, n,
                cold_per * 1e3);
    std::printf("%-6s-resume   %9zu %9.3f ms   %7.0fx  %s%s\n", kind, n,
                resume_per * 1e3, speedup,
                all_resumed ? "resumed" : "FELL BACK COLD",
                identical ? "" : "  OBJECTIVE MISMATCH");
    std::printf("%-6s-session  %9zu %9.3f ms   %7.0fx\n", kind, n,
                session_per * 1e3, cold_per / session_per);

    auto rec = [&](const char* suffix, double per, double sp) {
      json.record({{"series", std::string(kind) + suffix},
                   {"n", n},
                   {"appends", appends},
                   {"seconds", per},
                   {"speedup", sp}});
    };
    rec("-cold", cold_per, 1.0);
    rec("-resume", resume_per, speedup);
    rec("-session", session_per, cold_per / session_per);

    if (!identical || !all_resumed || speedup < 5.0) gate_failed = true;
  }

  if (gate_failed) {
    std::printf(
        "\nincremental gate FAILED: need resumed, bit-identical, >= 5x\n");
    return 1;
  }
  std::printf("\nall families resumed, bit-identical, >= 5x vs cold\n");
  return 0;
}
