// Ablation A5 (Sec. 5.4): k-GLWS — naive vs SMAWK vs parallel D&C.
// SMAWK is the inherently-sequential O(kn) optimum; the D&C engine pays
// an O(log n) work factor for O(k log^2 n) span.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/glws/costs.hpp"
#include "src/kglws/kglws.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 16);
  std::vector<double> x(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    x[i] = x[i - 1] + 0.25 + parallel::uniform_double(13, i);
  auto cost = glws::squared_distance_cost(x);
  glws::CostFn w = [cost](std::size_t j, std::size_t i) { return cost(j, i); };

  bench::print_header(
      "A5: k-GLWS engines (1D k-means objective)",
      "k     naive(s)   smawk(s)  dc(s)     dc-1t(s)  evals(smawk/dc)");
  bench::JsonEmitter json("bench_kglws");
  for (std::size_t k : {2, 8, 32}) {
    double tn = -1;
    kglws::KglwsResult nv;
    if (n <= (1u << 13)) {
      tn = bench::time_s([&] { nv = kglws::kglws_naive(n, k, w); });
    }
    kglws::KglwsResult sv, dv;
    double ts = bench::time_s([&] { sv = kglws::kglws_smawk(n, k, w); });
    auto [td, td1] =
        bench::time_par_and_seq([&] { dv = kglws::kglws_dc(n, k, w); });
    bool ok = std::abs(sv.total - dv.total) <= 1e-6 * (1.0 + std::abs(sv.total));
    std::printf("%-5zu %-10.4f %-9.4f %-9.4f %-9.4f %llu/%llu %s\n", k, tn, ts,
                td, td1, static_cast<unsigned long long>(sv.stats.relaxations),
                static_cast<unsigned long long>(dv.stats.relaxations),
                ok ? "" : "MISMATCH");
    json.record({{"series", "dc"},
                 {"n", n},
                 {"k", k},
                 {"seconds", td},
                 {"one_thread_s", td1},
                 {"sequential_s", ts},
                 {"verified", ok ? 1 : 0},
                 {"states", dv.stats.states},
                 {"relaxations", dv.stats.relaxations},
                 {"rounds", dv.stats.rounds}});
  }
  std::printf("\nShape check: SMAWK evals ~ O(kn), D&C ~ O(kn log n); both "
              "beat naive O(kn^2)\nby orders of magnitude; D&C "
              "parallelizes, SMAWK cannot.\n");
  return 0;
}
