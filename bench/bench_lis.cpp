// Ablation A1 (Thm 3.1): LIS cordon rounds == k, work stays O(n log k)
// across input shapes with wildly different parallelism.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/lis/lis.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 21);
  bench::print_header("A1: LIS rounds == k across input shapes",
                      "shape        k        ours(s)   ours-1t(s)  seq(s) "
                      "   counters");
  bench::JsonEmitter json("bench_lis");

  auto run = [&](const char* name, std::vector<std::uint64_t> a) {
    lis::LisResult par_res, seq_res;
    auto [par, one] =
        bench::time_par_and_seq([&] { par_res = lis::lis_parallel(a); });
    double seq = bench::time_s([&] { seq_res = lis::lis_sequential(a); });
    std::printf("%-12s %-8u %-9.4f %-11.4f %-9.4f", name, par_res.length, par,
                one, seq);
    bench::print_stats_suffix(par_res.stats);
    std::printf("  %s\n", par_res.length == seq_res.length ? "" : "MISMATCH");
    json.record({{"series", name},
                 {"n", a.size()},
                 {"k", par_res.length},
                 {"seconds", par},
                 {"one_thread_s", one},
                 {"sequential_s", seq},
                 {"verified", par_res.length == seq_res.length ? 1 : 0},
                 {"states", par_res.stats.states},
                 {"relaxations", par_res.stats.relaxations},
                 {"rounds", par_res.stats.rounds}});
  };

  std::vector<std::uint64_t> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = parallel::hash64(3, i);
  run("random", a);
  for (std::size_t i = 0; i < n; ++i) a[i] = n - i;
  run("decreasing", a);
  // Sawtooth with period p: k == n/p segments... actually k == p
  // (one rising run can be extended across teeth only by increasing
  // values); keeps k mid-range.
  for (std::size_t i = 0; i < n; ++i) a[i] = (i % 1024) * n + (i / 1024);
  run("sawtooth", a);
  // Fully increasing input is the zero-parallelism worst case (rounds ==
  // n); run it at reduced size so the bench stays fast.
  a.resize(n / 16);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i;
  run("increasing", a);
  return 0;
}
