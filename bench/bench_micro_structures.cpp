// Microbenchmarks (google-benchmark) for the data-structure substrates:
// tournament-tree extraction, persistent-treap ops, parallel sort/scan.
// These quantify the constants behind the per-round costs of the cordon
// algorithms.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/parallel/primitives.hpp"
#include "src/parallel/random.hpp"
#include "src/parallel/sort.hpp"
#include "src/structures/persistent_treap.hpp"
#include "src/structures/tournament_tree.hpp"

namespace cp = cordon::parallel;
namespace cs = cordon::structures;

static void BM_TournamentFullDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = cp::hash64(1, i);
  for (auto _ : state) {
    cs::TournamentTree tree(keys);
    std::size_t total = 0;
    while (!tree.empty()) total += tree.extract_prefix_minima().size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TournamentFullDrain)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

static void BM_TreapInsertChain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    cs::PersistentIntervalTreap pool;
    auto t = pool.build({{0, n, 0}});
    for (std::size_t k = 1; k < n; ++k) {
      auto [l, r] = pool.split(t, k);
      benchmark::DoNotOptimize(r);
      t = pool.insert(l, {k, n, k});
    }
    benchmark::DoNotOptimize(pool.arena_size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreapInsertChain)->Arg(1 << 10)->Arg(1 << 14);

static void BM_ParallelSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = cp::hash64(3, i);
  for (auto _ : state) {
    auto v = base;
    cp::sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

static void BM_ParallelScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base(n, 1);
  for (auto _ : state) {
    auto v = base;
    benchmark::DoNotOptimize(cp::scan_add(v));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelScan)->Arg(1 << 20);

BENCHMARK_MAIN();
