// Ablation A4 (Thm 5.1 / Lemma 5.1): OAT — Garsia-Wachs vs the
// phase-parallel rounds scheme; height vs weight word size.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/oat/oat.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 16);

  bench::print_header("A4a: OAT rounds and times (random integer weights)",
                      "n        gw(s)     par(s)    rounds   height  equal");
  bench::JsonEmitter json("bench_oat");
  for (std::size_t sz : {n / 4, n / 2, n}) {
    std::vector<double> w(sz);
    for (std::size_t i = 0; i < sz; ++i)
      w[i] = static_cast<double>(1 + parallel::uniform(3, i, 1u << 20));
    oat::OatResult gw, pv;
    double tg = bench::time_s([&] { gw = oat::oat_garsia_wachs(w); });
    double tp = bench::time_s([&] { pv = oat::oat_parallel(w); });
    bool ok = gw.levels == pv.levels;
    std::printf("%-8zu %-9.4f %-9.4f %-8llu %-7u %s\n", sz, tg, tp,
                static_cast<unsigned long long>(pv.stats.rounds), pv.height,
                ok ? "yes" : "MISMATCH");
    json.record({{"series", "par"},
                 {"n", sz},
                 {"seconds", tp},
                 {"sequential_s", tg},
                 {"verified", ok ? 1 : 0},
                 {"states", pv.stats.states},
                 {"relaxations", pv.stats.relaxations},
                 {"rounds", pv.stats.rounds}});
  }

  bench::print_header("A4b: Lemma 5.1 — OAT height vs weight word size W",
                      "W(bits)  height   3*log2(total)+3 (bound)");
  for (unsigned bits : {1u, 4u, 8u, 16u, 24u}) {
    const std::size_t sz = 1u << 14;
    std::vector<double> w(sz);
    double total = 0;
    for (std::size_t i = 0; i < sz; ++i) {
      w[i] = static_cast<double>(1 + parallel::uniform(9, i, 1ull << bits));
      total += w[i];
    }
    auto gw = oat::oat_garsia_wachs(w);
    std::printf("%-8u %-8u %.1f\n", bits, gw.height,
                3.0 * std::log2(total) + 3.0);
  }
  std::printf("\nShape check: height grows with log W, not with n "
              "(Lemma 5.1); parallel rounds\nfar below the n-1 sequential "
              "combines on random inputs.\n");
  return 0;
}
