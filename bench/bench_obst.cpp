// Ablation A6 (Sec. 5.5): OBST — naive O(n^3) vs Knuth O(n^2) vs the
// parallel diagonal wavefront (same work as Knuth, n rounds).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/obst/obst.hpp"
#include "src/parallel/random.hpp"

using namespace cordon;

int main() {
  const std::size_t base = bench::env_size("CORDON_BENCH_N", 768);
  bench::print_header(
      "A6: OBST engines",
      "n       naive(s)  knuth(s)  wave(s)   wave-1t(s)  relax(naive/knuth)");
  bench::JsonEmitter json("bench_obst");
  for (std::size_t n : {base / 4, base / 2, base}) {
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i)
      w[i] = 1.0 + parallel::uniform_double(3, i) * 9.0;
    obst::ObstResult nv, kv, pv;
    double tn = bench::time_s([&] { nv = obst::obst_naive(w); });
    double tk = bench::time_s([&] { kv = obst::obst_knuth(w); });
    auto [tp, tp1] =
        bench::time_par_and_seq([&] { pv = obst::obst_parallel(w); });
    bool ok = std::abs(nv.cost - kv.cost) < 1e-6 &&
              std::abs(nv.cost - pv.cost) < 1e-6;
    std::printf("%-7zu %-9.3f %-9.3f %-9.3f %-11.3f %llu/%llu %s\n", n, tn, tk,
                tp, tp1, static_cast<unsigned long long>(nv.stats.relaxations),
                static_cast<unsigned long long>(kv.stats.relaxations),
                ok ? "" : "MISMATCH");
    json.record({{"series", "wave"},
                 {"n", n},
                 {"seconds", tp},
                 {"one_thread_s", tp1},
                 {"sequential_s", tk},
                 {"verified", ok ? 1 : 0},
                 {"states", pv.stats.states},
                 {"relaxations", pv.stats.relaxations},
                 {"rounds", pv.stats.rounds}});
  }
  std::printf("\nShape check: Knuth's DM ranges collapse ~n^3/6 relaxations "
              "to ~n^2; the wavefront\ndoes identical work with one round "
              "per diagonal (span Theta(n) — Sec. 5.5's noted limit).\n");
  return 0;
}
