// Park/wake microbench for the scheduler: (a) wake latency — the cost
// of dispatching a fork burst onto a fully parked pool versus a hot
// one, and (b) the idle-CPU gate — with the pool started and no work
// submitted, process CPU over a 1-second window must stay under 5% of
// one core.  (b) doubles as a smoke test: the binary exits non-zero on
// violation, so CI enforces the "idle workers park" contract.
//
//   CORDON_BENCH_REPS — wake-latency sample count (default 200)
//   CORDON_BENCH_JSON — append machine-readable records
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "src/parallel/scheduler.hpp"

namespace {

// One fork burst wide enough that every worker gets a reason to wake.
void burst() {
  std::atomic<std::uint64_t> sink{0};
  cordon::parallel::parallel_for(
      0, 4 * cordon::parallel::num_workers(),
      [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); },
      /*granularity=*/1, /*granularity_floor=*/1);
}

double median_us(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2] * 1e6;
}

}  // namespace

int main() {
  using namespace cordon;

  const std::size_t reps = bench::env_size("CORDON_BENCH_REPS", 200);
  parallel::ensure_started();
  burst();  // fault in all worker threads

  bench::print_header("scheduler park/wake (idle CPU + wake latency)",
                      "metric                 value");
  bench::JsonEmitter json("bench_sched_wake");

  // --- wake latency: parked pool vs hot pool --------------------------------
  std::vector<double> cold_s, hot_s;
  cold_s.reserve(reps);
  hot_s.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    // 5ms of quiet exceeds the bounded spin phase: every worker parks.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cold_s.push_back(bench::time_s(burst));
    hot_s.push_back(bench::time_s(burst));  // immediately after: all awake
  }
  double cold_med = median_us(cold_s), hot_med = median_us(hot_s);
  std::printf("wake latency (cold)  %8.1f us   median over %zu bursts\n",
              cold_med, reps);
  std::printf("burst cost (hot)     %8.1f us   same burst, workers awake\n",
              hot_med);
  std::printf("park/unpark overhead %8.1f us\n", cold_med - hot_med);

  // --- idle-CPU gate --------------------------------------------------------
  double best_frac = bench::measure_idle_cpu_fraction();
  std::printf("idle CPU             %8.2f %% of one core over 1s (gate: <%g%%)\n",
              best_frac * 100.0, bench::kIdleCpuGateFraction * 100.0);

  json.record({{"metric", "wake_latency"},
               {"cold_median_s", cold_med * 1e-6},
               {"hot_median_s", hot_med * 1e-6},
               {"reps", reps}});
  json.record({{"metric", "idle_cpu"},
               {"idle_cpu_fraction", best_frac},
               {"gate", bench::kIdleCpuGateFraction}});

  if (best_frac >= bench::kIdleCpuGateFraction) {
    std::printf("IDLE-CPU GATE FAILED — workers are spinning, not parking\n");
    return 1;
  }
  return 0;
}
