// Service-layer throughput: asynchronous admission + sharded result
// cache against the direct BatchExecutor path.
//
// Series (all over the same workload of DISTINCT instances cycling the
// registered families, submitted REPS times per round):
//   direct-batch  — BatchExecutor handed the whole queue up front (the
//                   PR-1 synchronous baseline; no cache, no batching
//                   window),
//   service-cold  — fresh CordonService, every instance seen for the
//                   first time: pays admission, batching window, and the
//                   full solve,
//   service-hot   — same service, repeated workload: the sharded LRU
//                   answers in submit() without touching a solver,
//   service-hot-mt— hot cache under CLIENTS concurrent submitter
//                   threads (sharding is what keeps this scaling).
//
// The acceptance bar for the service PR is hot >= 5x cold throughput on
// a repeated-instance workload; the binary exits 1 if that fails so CI
// can gate on it.
//
// CORDON_BENCH_N        per-instance size          (default 2000)
// CORDON_BENCH_BATCH    distinct instances         (default 18)
// CORDON_BENCH_REPS     hot-path repeats per inst  (default 25)
// CORDON_BENCH_CLIENTS  hot-path client threads    (default 4)
// CORDON_BENCH_JSON     append machine-readable records
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/registry.hpp"
#include "src/service/service.hpp"

int main() {
  using namespace cordon;

  const std::size_t n = bench::env_size("CORDON_BENCH_N", 2000);
  const std::size_t distinct = bench::env_size("CORDON_BENCH_BATCH", 18);
  const std::size_t reps = bench::env_size("CORDON_BENCH_REPS", 25);
  const std::size_t clients = bench::env_size("CORDON_BENCH_CLIENTS", 4);

  const auto& reg = engine::builtin_registry();
  const auto& solvers = reg.solvers();
  std::vector<engine::Instance> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    const engine::Solver& s = *solvers[i % solvers.size()];
    // Quadratic-work families stay smaller so no one request dominates.
    std::uint64_t size =
        (s.key() == "obst" || s.key() == "gap" || s.key() == "dag") ? n / 8 : n;
    pool.push_back(s.generate({size, 8, 4000 + i}));
  }

  engine::BatchExecutor exec(reg);
  (void)exec.run(pool, {.parallel = false});  // warm-up: pool + code paths

  bench::print_header("service layer throughput (async + sharded cache)",
                      "series            requests  wall_ms    req/s");
  bench::JsonEmitter json("bench_service");

  double hot_rps = 0, cold_rps = 0;
  auto report_line = [&](const char* series, std::size_t requests,
                         double wall_s, double hit_rate) {
    double rps = requests / wall_s;
    std::printf("%-16s %9zu %8.2f %9.0f   hit_rate=%.3f\n", series, requests,
                wall_s * 1e3, rps, hit_rate);
    json.record({{"series", series},
                 {"requests", requests},
                 {"distinct", distinct},
                 {"n", n},
                 {"wall_s", wall_s},
                 {"throughput_rps", rps},
                 {"hit_rate", hit_rate}});
    return rps;
  };

  // direct-batch: the synchronous baseline.
  double direct_s = bench::time_s([&] {
    engine::BatchReport rep = exec.run(pool, {.parallel = true});
    if (rep.failed != 0) std::abort();
  });
  report_line("direct-batch", pool.size(), direct_s, 0.0);

  service::CordonService svc(
      {.max_batch = 64, .batch_window = std::chrono::microseconds(200)});

  // Per-series hit rate: diff cache counters around the timed region
  // (svc.stats().cache is cumulative over the service lifetime).
  core::CacheStats cache_before;
  auto begin_series = [&] { cache_before = svc.stats().cache; };
  auto series_hit_rate = [&] {
    core::CacheStats after = svc.stats().cache;
    std::uint64_t hits = after.hits - cache_before.hits;
    std::uint64_t lookups = hits + (after.misses - cache_before.misses);
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  };

  auto submit_all = [&](std::size_t repeats) {
    std::vector<std::future<engine::SolveResult>> futs;
    futs.reserve(pool.size() * repeats);
    for (std::size_t r = 0; r < repeats; ++r)
      for (const engine::Instance& inst : pool) futs.push_back(svc.submit(inst));
    for (auto& f : futs) (void)f.get();
  };

  // service-cold: first sight of every instance (cache misses + solves).
  begin_series();
  double cold_s = bench::time_s([&] { submit_all(1); });
  cold_rps = report_line("service-cold", pool.size(), cold_s,
                         series_hit_rate());

  // service-hot: identical workload repeated; served from the cache.
  begin_series();
  double hot_s = bench::time_s([&] { submit_all(reps); });
  hot_rps = report_line("service-hot", pool.size() * reps, hot_s,
                        series_hit_rate());

  // service-hot-mt: hot cache under concurrent clients.
  std::size_t per_client = pool.size() * reps;
  begin_series();
  double mt_s = bench::time_s([&] {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
      threads.emplace_back([&] { submit_all(reps); });
    for (auto& t : threads) t.join();
  });
  report_line("service-hot-mt", per_client * clients, mt_s,
              series_hit_rate());

  service::ServiceStats stats = svc.stats();
  std::printf(
      "\nservice: %llu submitted, %llu solver runs, %llu coalesced, "
      "%llu batches (largest %zu), mean queue wait=%.3f ms\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.solver.requests),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.batches), stats.largest_batch,
      stats.queue.mean_wait_s() * 1e3);
  std::printf("hot vs cold: %.1fx (bar: >= 5x), hot vs direct-batch: %.1fx\n",
              hot_rps / cold_rps, hot_rps / (pool.size() / direct_s));
  json.record({{"series", "summary"},
               {"hot_vs_cold", hot_rps / cold_rps},
               {"coalesced", stats.coalesced},
               {"solver_requests", stats.solver.requests},
               {"batches", stats.batches}});

  if (stats.failed != 0) {
    std::printf("FAILURES present — service layer is broken\n");
    return 1;
  }
  if (hot_rps < 5 * cold_rps) {
    std::printf("hot-cache throughput below the 5x bar\n");
    return 1;
  }
  return 0;
}
