// Ablation A7 (Thm 5.3): Tree-GLWS across tree shapes — rounds track the
// best-decision chain depth, not the tree size.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "src/parallel/random.hpp"
#include "src/structures/tree_utils.hpp"
#include "src/treeglws/tree_glws.hpp"

using namespace cordon;
using structures::RootedTree;

namespace {

std::vector<std::uint32_t> random_parents(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> parent(n, structures::kNoNode);
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::uint32_t>(parallel::uniform(seed, v, v));
  return parent;
}

std::vector<std::uint32_t> path_parents(std::size_t n) {
  std::vector<std::uint32_t> parent(n, structures::kNoNode);
  for (std::uint32_t v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

std::vector<std::uint32_t> binary_parents(std::size_t n) {
  std::vector<std::uint32_t> parent(n, structures::kNoNode);
  for (std::uint32_t v = 1; v < n; ++v) parent[v] = (v - 1) / 2;
  return parent;
}

}  // namespace

int main() {
  const std::size_t n = bench::env_size("CORDON_BENCH_N", 1u << 17);
  auto x = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*x)[i] = (*x)[i - 1] + 0.5 + parallel::uniform_double(17, i);
  glws::CostFn w = [x](std::size_t du, std::size_t dv) {
    double s = (*x)[dv] - (*x)[du];
    return 500.0 + 0.05 * s * s;
  };
  glws::EFn e = glws::identity_e();

  bench::print_header("A7: Tree-GLWS across shapes",
                      "shape     n        seq(s)    par(s)    par-1t(s)  "
                      "rounds  counters");
  bench::JsonEmitter json("bench_tree_glws");
  auto run = [&](const char* name, std::vector<std::uint32_t> parents) {
    RootedTree t(std::move(parents));
    treeglws::TreeGlwsResult sv, pv;
    double ts = bench::time_s(
        [&] { sv = treeglws::tree_glws_sequential(t, 0.0, w, e); });
    auto [tp, tp1] = bench::time_par_and_seq(
        [&] { pv = treeglws::tree_glws_parallel(t, 0.0, w, e); });
    bool ok = true;
    for (std::size_t v = 0; v < t.size(); ++v)
      if (std::abs(sv.d[v] - pv.d[v]) > 1e-6) ok = false;
    std::printf("%-9s %-8zu %-9.4f %-9.4f %-10.4f %-7llu", name, t.size(), ts,
                tp, tp1, static_cast<unsigned long long>(pv.stats.rounds));
    bench::print_stats_suffix(pv.stats);
    std::printf("  %s\n", ok ? "" : "MISMATCH");
    json.record({{"series", name},
                 {"n", t.size()},
                 {"seconds", tp},
                 {"one_thread_s", tp1},
                 {"sequential_s", ts},
                 {"verified", ok ? 1 : 0},
                 {"states", pv.stats.states},
                 {"relaxations", pv.stats.relaxations},
                 {"rounds", pv.stats.rounds}});
  };
  run("random", random_parents(n, 3));
  run("binary", binary_parents(n));
  run("path", path_parents(n / 8));
  return 0;
}
