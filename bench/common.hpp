// Shared benchmark harness.
//
// Each figure/ablation bench is a standalone binary that prints the
// series the paper's figure shows (plus machine-independent counters).
// Sizes default to laptop/CI scale and are overridden with environment
// variables so the same binaries reproduce paper-scale runs on a real
// multicore machine:
//   CORDON_BENCH_N      — problem size (default per bench)
//   CORDON_NUM_THREADS  — worker threads (scheduler-wide)
// The "ours (1 thread)" series uses parallel::SequentialRegion, exactly
// one binary per figure as the paper's harness does.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <initializer_list>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/core/telemetry.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* s = std::getenv(name)) {
    long long v = std::atoll(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// The scheduler's idle-CPU contract, gated in CI by bench_sched_wake
/// and test_scheduler_stress: with the pool started and no submitted
/// work, process CPU must stay under this fraction of one core.
inline constexpr double kIdleCpuGateFraction = 0.05;

/// CPU seconds consumed by this process (all threads).
inline double process_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Best (lowest) idle-CPU fraction of one core observed over up to
/// `attempts` one-second windows, each preceded by a settle period that
/// outlives every spin phase so all workers park.  Returns early once a
/// window passes the gate; retrying tolerates background hiccups on
/// loaded CI machines, while a genuine spin loop fails every attempt by
/// an order of magnitude.
inline double measure_idle_cpu_fraction(int attempts = 3) {
  double best = 1e9;
  for (int attempt = 0; attempt < attempts && best >= kIdleCpuGateFraction;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    double cpu0 = process_cpu_s();
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::seconds(1));
    double cpu = process_cpu_s() - cpu0;
    double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, cpu / wall);
  }
  return best;
}

/// Wall-clock seconds of fn().
template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Runs fn twice: parallel (current pool) and forced single-thread.
/// Returns {parallel_seconds, one_thread_seconds}.
template <typename Fn>
std::pair<double, double> time_par_and_seq(Fn&& fn) {
  cordon::parallel::ensure_started();
  double par = time_s(fn);
  double one;
  {
    cordon::parallel::SequentialRegion seq;
    one = time_s(fn);
  }
  return {par, one};
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n", title);
  std::printf("# threads=%zu (set CORDON_NUM_THREADS to change)\n",
              cordon::parallel::num_workers());
  std::printf("%s\n", columns);
}

/// One field of a machine-readable benchmark record.  Values are
/// pre-rendered as JSON so the emitter stays a dumb line writer.
struct JsonField {
  std::string key;
  std::string value;

  JsonField(std::string k, double v) : key(std::move(k)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    value = buf;
  }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  JsonField(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)) {}
  JsonField(std::string k, const char* v) : key(std::move(k)) {
    value = quote(v);
  }
  JsonField(std::string k, const std::string& v) : key(std::move(k)) {
    value = quote(v);
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259: control characters must be escaped.
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }
};

/// Appends JSON-lines benchmark records to the file named by the
/// CORDON_BENCH_JSON environment variable (no-op when unset), so any
/// bench binary can produce a machine-readable trajectory next to its
/// human-readable stdout.  Every record carries the bench name and the
/// worker-thread count.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : bench_(std::move(bench_name)) {
    if (const char* path = std::getenv("CORDON_BENCH_JSON"))
      out_.open(path, std::ios::app);
    if (out_.is_open()) telemetry_base_ = telemetry::snapshot();
  }

  /// Every enabled emitter closes its trajectory with one
  /// `"series":"telemetry"` record: the scheduler/solver counter deltas
  /// accumulated over the bench's lifetime (steals, parks, wakes,
  /// rounds, relaxations...).  This is the data the thread-grid scaling
  /// sweep needs to explain its curves — per-bench, with zero per-bench
  /// wiring.
  ~JsonEmitter() {
    if (!out_.is_open()) return;
    telemetry::Snapshot d =
        telemetry::snapshot().delta_since(telemetry_base_);
    using C = telemetry::Counter;
    record({{"series", "telemetry"},
            {"steal_attempts", d.counter(C::kSchedStealAttempts)},
            {"steals", d.counter(C::kSchedSteals)},
            {"parks", d.counter(C::kSchedParks)},
            {"wakes", d.counter(C::kSchedWakes)},
            {"jobs", d.counter(C::kSchedJobsRun)},
            {"push_overflows", d.counter(C::kSchedPushOverflows)},
            {"adoptions", d.counter(C::kSchedAdoptions)},
            {"solver_rounds", d.counter(C::kSolverRounds)},
            {"solver_states", d.counter(C::kSolverStates)},
            {"solver_relaxations", d.counter(C::kSolverRelaxations)}});
  }

  [[nodiscard]] bool enabled() const { return out_.is_open(); }

  void record(const std::vector<JsonField>& fields) {
    if (!out_.is_open()) return;
    out_ << "{\"bench\":" << JsonField::quote(bench_)
         << ",\"threads\":" << cordon::parallel::num_workers();
    for (const JsonField& f : fields)
      out_ << ',' << JsonField::quote(f.key) << ':' << f.value;
    out_ << "}\n";
    out_.flush();
  }

  void record(std::initializer_list<JsonField> fields) {
    record(std::vector<JsonField>(fields));
  }

  /// Convenience: a record of one timed series point plus its counters.
  void record_point(const std::string& series, std::size_t n, double seconds,
                    const core::DpStats& s) {
    record({{"series", series},
            {"n", n},
            {"seconds", seconds},
            {"states", s.states},
            {"relaxations", s.relaxations},
            {"rounds", s.rounds}});
  }

  /// One point of a family's thread-scaling curve — the record shape
  /// scripts/check_scaling.py consumes.  Field contract:
  ///   seconds      — the production (`*_auto`) path at the current pool
  ///                  size: what a user gets (routing included);
  ///   one_thread_s — the raw parallel algorithm forced inline
  ///                  (SequentialRegion), the paper's "ours (1 thread)";
  ///   sequential_s — the family's sequential algorithm;
  ///   path         — core::solve_path_name of the routing `seconds`
  ///                  took.
  /// `threads` is stamped on every record by record().
  struct ScalingPoint {
    std::string series = "ours";
    std::size_t n = 0;
    double seconds = 0;
    double one_thread_s = 0;
    double sequential_s = 0;
    core::SolvePath path = core::SolvePath::kParallel;
    bool verified = true;
    core::DpStats stats;
    std::vector<JsonField> extra;  // family-specific fields (k, L, ...)
  };

  void record_scaling(const ScalingPoint& p) {
    if (!out_.is_open()) return;
    std::vector<JsonField> fields{{"series", p.series},
                                  {"n", p.n},
                                  {"seconds", p.seconds},
                                  {"one_thread_s", p.one_thread_s},
                                  {"sequential_s", p.sequential_s},
                                  {"path", core::solve_path_name(p.path)},
                                  {"verified", p.verified ? 1 : 0},
                                  {"states", p.stats.states},
                                  {"relaxations", p.stats.relaxations},
                                  {"rounds", p.stats.rounds}};
    fields.insert(fields.end(), p.extra.begin(), p.extra.end());
    record(fields);
  }

 private:
  std::string bench_;
  std::ofstream out_;
  telemetry::Snapshot telemetry_base_;
};

inline void print_stats_suffix(const core::DpStats& s) {
  std::printf("  states=%llu relax=%llu rounds=%llu",
              static_cast<unsigned long long>(s.states),
              static_cast<unsigned long long>(s.relaxations),
              static_cast<unsigned long long>(s.rounds));
}

}  // namespace cordon::bench
