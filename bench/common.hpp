// Shared benchmark harness.
//
// Each figure/ablation bench is a standalone binary that prints the
// series the paper's figure shows (plus machine-independent counters).
// Sizes default to laptop/CI scale and are overridden with environment
// variables so the same binaries reproduce paper-scale runs on a real
// multicore machine:
//   CORDON_BENCH_N      — problem size (default per bench)
//   CORDON_NUM_THREADS  — worker threads (scheduler-wide)
// The "ours (1 thread)" series uses parallel::SequentialRegion, exactly
// one binary per figure as the paper's harness does.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/dp_stats.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* s = std::getenv(name)) {
    long long v = std::atoll(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// Wall-clock seconds of fn().
template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Runs fn twice: parallel (current pool) and forced single-thread.
/// Returns {parallel_seconds, one_thread_seconds}.
template <typename Fn>
std::pair<double, double> time_par_and_seq(Fn&& fn) {
  cordon::parallel::ensure_started();
  double par = time_s(fn);
  double one;
  {
    cordon::parallel::SequentialRegion seq;
    one = time_s(fn);
  }
  return {par, one};
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n", title);
  std::printf("# threads=%zu (set CORDON_NUM_THREADS to change)\n",
              cordon::parallel::num_workers());
  std::printf("%s\n", columns);
}

inline void print_stats_suffix(const core::DpStats& s) {
  std::printf("  states=%llu relax=%llu rounds=%llu",
              static_cast<unsigned long long>(s.states),
              static_cast<unsigned long long>(s.relaxations),
              static_cast<unsigned long long>(s.rounds));
}

}  // namespace cordon::bench
