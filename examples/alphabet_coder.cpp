// alphabet_coder: order-preserving prefix code from an Optimal
// Alphabetic Tree (Sec. 5.1).
//
// Unlike Huffman, an alphabetic code keeps codewords in symbol order, so
// encoded strings compare the same as their plaintexts — the classic
// application of OAT.  We build the code over byte frequencies of a
// sample text and compare the average code length against the entropy
// bound and a depth estimate.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/oat/oat.hpp"

namespace {

const char* kSample =
    "the cordon algorithm identifies the unready tentative states and puts "
    "sentinels on them then it uses all sentinels to outline a cordon to "
    "mark the boundary of the frontier every step can be processed in "
    "parallel and the number of rounds equals the effective depth of the "
    "dependency structure which for decision monotone recurrences is the "
    "length of the best decision chain";

void codeword(const cordon::oat::AlphabeticTree& t, std::int32_t id,
              std::string prefix, std::vector<std::string>& out) {
  if (id >= 0) {
    out[static_cast<std::size_t>(id)] = prefix.empty() ? "0" : prefix;
    return;
  }
  std::size_t k = static_cast<std::size_t>(~id);
  codeword(t, t.left[k], prefix + "0", out);
  codeword(t, t.right[k], prefix + "1", out);
}

}  // namespace

int main() {
  using namespace cordon::oat;
  std::string text = kSample;

  // Frequencies of the symbols that occur (kept in byte order so the
  // code is alphabetic over the used alphabet).
  std::vector<std::size_t> count(256, 0);
  for (unsigned char c : text) ++count[c];
  std::vector<double> freq;
  std::vector<unsigned char> symbol;
  for (std::size_t c = 0; c < 256; ++c)
    if (count[c] > 0) {
      freq.push_back(static_cast<double>(count[c]));
      symbol.push_back(static_cast<unsigned char>(c));
    }

  auto oat = oat_garsia_wachs(freq);
  auto par = oat_parallel(freq);
  AlphabeticTree tree = tree_from_levels(oat.levels);
  std::vector<std::string> codes(freq.size());
  if (freq.size() == 1) {
    codes[0] = "0";
  } else {
    codeword(tree, ~static_cast<std::int32_t>(tree.num_internal() - 1), "",
             codes);
  }

  double total = static_cast<double>(text.size());
  double bits = 0, entropy = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    double p = freq[s] / total;
    bits += freq[s] * static_cast<double>(codes[s].size());
    entropy -= p * std::log2(p);
  }
  std::printf("alphabet=%zu symbols, text=%zu bytes\n", freq.size(),
              text.size());
  std::printf("avg code length %.3f bits/symbol (entropy %.3f, 8.0 raw)\n",
              bits / total, entropy);
  std::printf("tree height %u; parallel rounds %llu (levels match: %s)\n\n",
              oat.height, static_cast<unsigned long long>(par.stats.rounds),
              oat.levels == par.levels ? "yes" : "NO");
  std::printf("code table (first 12 symbols):\n");
  for (std::size_t s = 0; s < freq.size() && s < 12; ++s)
    std::printf("  '%c' (freq %4.0f): %s\n",
                symbol[s] == ' ' ? '_' : symbol[s], freq[s],
                codes[s].c_str());
  // Alphabetic order check: codewords compare like symbols.
  bool ordered = true;
  for (std::size_t s = 1; s < codes.size(); ++s)
    if (codes[s - 1] >= codes[s]) ordered = false;
  std::printf("\ncodewords strictly increasing (order-preserving): %s\n",
              ordered ? "yes" : "NO");
  return 0;
}
