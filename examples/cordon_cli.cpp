// cordon_cli — the engine's front door.
//
//   cordon_cli list
//       Registered problem families.
//   cordon_cli gen <problem> [--n N] [--k K] [--seed S] [--out FILE]
//       Deterministic random instance, serialized to FILE (default stdout).
//   cordon_cli solve [--reference] [--check] FILE...
//       Solve each instance file ("-" = stdin) with the optimized
//       algorithm; --reference uses the naive oracle instead; --check
//       runs both and compares objectives.
//   cordon_cli batch [--sequential] [--reference] [--mix N [--n SIZE]
//                    [--seed S]] FILE...
//       Run a queue through the BatchExecutor (files plus, with --mix, N
//       generated instances cycling over every registered family) and
//       print per-request latency and aggregate throughput.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/engine/batch_executor.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"

namespace {

using namespace cordon;

int usage() {
  std::fprintf(stderr,
               "usage: cordon_cli list\n"
               "       cordon_cli gen <problem> [--n N] [--k K] [--seed S] "
               "[--out FILE]\n"
               "       cordon_cli solve [--reference] [--check] FILE...\n"
               "       cordon_cli batch [--sequential] [--reference] "
               "[--mix N] [--n SIZE] [--seed S] [FILE...]\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  bool reference = false, check = false, sequential = false;
  std::uint64_t n = 1000, k = 8, seed = 1, mix = 0;
  std::string out;
};

bool parse_args(int argc, char** argv, int first, Args& a) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_u64 = [&](std::uint64_t& dst) {
      if (i + 1 >= argc) return false;
      dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--reference")
      a.reference = true;
    else if (arg == "--check")
      a.check = true;
    else if (arg == "--sequential")
      a.sequential = true;
    else if (arg == "--n") {
      if (!next_u64(a.n)) return false;
    } else if (arg == "--k") {
      if (!next_u64(a.k)) return false;
    } else if (arg == "--seed") {
      if (!next_u64(a.seed)) return false;
    } else if (arg == "--mix") {
      if (!next_u64(a.mix)) return false;
    } else if (arg == "--out") {
      if (i + 1 >= argc) return false;
      a.out = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    } else {
      a.positional.push_back(arg);
    }
  }
  return true;
}

engine::Instance load(const std::string& path) {
  if (path == "-") return engine::parse_instance(std::cin);
  return engine::load_instance(path);
}

void print_result(const std::string& label, const engine::SolveResult& r,
                  double seconds) {
  std::printf("%-24s objective=%-16.6f rounds=%-8llu %s  (%.3f ms)\n",
              label.c_str(), r.objective,
              static_cast<unsigned long long>(r.stats.rounds),
              r.detail.c_str(), seconds * 1e3);
}

int cmd_list() {
  const auto& reg = engine::builtin_registry();
  std::printf("%zu registered problem families:\n", reg.size());
  for (const auto& solver : reg.solvers())
    std::printf("  %-10s %s\n", std::string(solver->key()).c_str(),
                std::string(solver->description()).c_str());
  return 0;
}

int cmd_gen(const Args& a) {
  if (a.positional.size() != 1) return usage();
  const engine::Solver& solver =
      engine::builtin_registry().at(a.positional[0]);
  engine::Instance inst = solver.generate({a.n, a.k, a.seed});
  if (a.out.empty())
    engine::serialize_instance(inst, std::cout);
  else
    engine::save_instance(inst, a.out);
  return 0;
}

int cmd_solve(const Args& a) {
  if (a.positional.empty()) return usage();
  const auto& reg = engine::builtin_registry();
  int rc = 0;
  for (const std::string& path : a.positional) {
    engine::Instance inst = load(path);
    const engine::Solver& solver = reg.at(inst.kind);
    auto t0 = std::chrono::steady_clock::now();
    engine::SolveResult r =
        a.reference ? solver.solve_reference(inst) : solver.solve(inst);
    auto t1 = std::chrono::steady_clock::now();
    print_result(path, r, std::chrono::duration<double>(t1 - t0).count());
    if (a.check) {
      // --check always compares optimized vs oracle, even under
      // --reference (where r already holds the oracle result).
      engine::SolveResult opt = a.reference ? solver.solve(inst) : r;
      engine::SolveResult ref = a.reference ? r : solver.solve_reference(inst);
      double diff = std::abs(opt.objective - ref.objective);
      double tol = 1e-6 * std::max(1.0, std::abs(ref.objective));
      if (diff <= tol) {
        std::printf("%-24s   check OK (oracle objective=%.6f)\n",
                    path.c_str(), ref.objective);
      } else {
        std::printf("%-24s   check FAILED: optimized=%.6f oracle=%.6f\n",
                    path.c_str(), opt.objective, ref.objective);
        rc = 1;
      }
    }
  }
  return rc;
}

int cmd_batch(const Args& a) {
  const auto& reg = engine::builtin_registry();
  std::vector<engine::Instance> queue;
  for (const std::string& path : a.positional) queue.push_back(load(path));
  if (a.mix > 0) {
    const auto& solvers = reg.solvers();
    for (std::uint64_t i = 0; i < a.mix; ++i) {
      const engine::Solver& s = *solvers[i % solvers.size()];
      queue.push_back(s.generate({a.n, a.k, a.seed + i}));
    }
  }
  if (queue.empty()) return usage();

  engine::BatchExecutor exec(reg);
  engine::BatchReport rep =
      exec.run(queue, {.parallel = !a.sequential,
                       .use_reference = a.reference});

  for (std::size_t i = 0; i < rep.items.size(); ++i) {
    const engine::BatchItem& item = rep.items[i];
    if (item.ok)
      print_result("[" + std::to_string(i) + "] " + item.kind, item.result,
                   item.latency_s);
    else
      std::printf("[%zu] %-12s FAILED: %s\n", i, item.kind.c_str(),
                  item.error.c_str());
  }
  std::printf(
      "\nbatch: %zu request(s), %zu failed, wall=%.3f ms, "
      "throughput=%.1f req/s (threads=%zu, %s)\n",
      rep.items.size(), rep.failed, rep.wall_s * 1e3, rep.throughput_rps(),
      parallel::num_workers(), a.sequential ? "sequential" : "parallel");
  std::printf(
      "       mean latency=%.3f ms, max latency=%.3f ms, max rounds=%llu, "
      "max effective depth=%llu\n",
      rep.stats.mean_latency_s() * 1e3, rep.stats.max_latency_s * 1e3,
      static_cast<unsigned long long>(rep.stats.max_rounds),
      static_cast<unsigned long long>(rep.stats.max_effective_depth));
  std::printf("       total states=%llu relaxations=%llu rounds=%llu\n",
              static_cast<unsigned long long>(rep.stats.total.states),
              static_cast<unsigned long long>(rep.stats.total.relaxations),
              static_cast<unsigned long long>(rep.stats.total.rounds));
  return rep.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Args a;
  if (!parse_args(argc, argv, 2, a)) return usage();
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "gen") return cmd_gen(a);
    if (cmd == "solve") return cmd_solve(a);
    if (cmd == "batch") return cmd_batch(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cordon_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
