// cordon_cli — the engine's front door.
//
//   cordon_cli list
//       Registered problem families.
//   cordon_cli gen <problem> [--n N] [--k K] [--seed S] [--out FILE]
//       Deterministic random instance, serialized to FILE (default stdout).
//   cordon_cli solve [--reference] [--check] [--trace] FILE...
//       Solve each instance file ("-" = stdin) with the optimized
//       algorithm; --reference uses the naive oracle instead; --check
//       runs both and compares objectives; --trace records a
//       chrome://tracing / Perfetto span trace of the run (written to
//       $CORDON_TRACE if set, else trace.json).
//   cordon_cli batch [--sequential] [--reference] [--mix N [--n SIZE]
//                    [--seed S]] FILE...
//       Run a queue through the BatchExecutor (files plus, with --mix, N
//       generated instances cycling over every registered family) and
//       print per-request latency and aggregate throughput.
//   cordon_cli stress [--clients C] [--requests R] [--distinct D]
//                     [--n SIZE] [--seed S] [--window-us W] [--batch B]
//                     [--cache CAP] [--reference] [--deadline-us D]
//                     [--max-queue Q] [--shed-oldest]
//       Drive a CordonService with C client threads, each submitting R
//       asynchronous requests drawn from a pool of D distinct generated
//       instances; every completed result is checked against a
//       precomputed expected objective and per-category outcome counts
//       (ok / shed / expired / cancelled) are printed.  --deadline-us
//       attaches a per-request deadline, --max-queue bounds the
//       dispatcher queue (--shed-oldest picks the evict-head overload
//       policy instead of reject-new); requests failed by those
//       features count toward their category, and the exit status is
//       nonzero only for wrong objectives or failures outside the
//       SolveError taxonomy.  --metrics appends the service's
//       Prometheus exposition (CordonService::metrics_text) to stdout.
//       --sessions S switches to session mode: C client threads
//       interleave append-only deltas onto S shared solve sessions
//       (families cycling every delta-capable kind), each version's
//       objective checked against a cold solve of the same prefix.
//   cordon_cli session <problem> [--n N] [--appends A] [--chunk C]
//                      [--seed S] [--metrics]
//       Grow one generated instance through a solve session: base =
//       prefix, then A appends of C elements each.  Every version is
//       cross-checked against a cold solve of the grown prefix and the
//       resume-vs-cold path taken is printed per append.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cancel.hpp"
#include "src/core/trace.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"

namespace {

using namespace cordon;

int usage() {
  std::fprintf(stderr,
               "usage: cordon_cli list\n"
               "       cordon_cli gen <problem> [--n N] [--k K] [--seed S] "
               "[--out FILE]\n"
               "       cordon_cli solve [--reference] [--check] [--trace] FILE...\n"
               "       cordon_cli batch [--sequential] [--reference] "
               "[--mix N] [--n SIZE] [--seed S] [FILE...]\n"
               "       cordon_cli stress [--clients C] [--requests R] "
               "[--distinct D] [--n SIZE]\n"
               "                  [--seed S] [--window-us W] [--batch B] "
               "[--cache CAP] [--reference] [--metrics]\n"
               "                  [--sessions S] [--appends A] [--chunk C]\n"
               "                  [--deadline-us D] [--max-queue Q] "
               "[--shed-oldest]\n"
               "       cordon_cli session <problem> [--n N] [--appends A] "
               "[--chunk C] [--seed S] [--metrics]\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  bool reference = false, check = false, sequential = false;
  bool trace = false, metrics = false;
  std::uint64_t n = 1000, k = 8, seed = 1, mix = 0;
  std::uint64_t clients = 4, requests = 256, distinct = 8;
  std::uint64_t window_us = 500, batch = 64, cache = 4096;
  std::uint64_t sessions = 0, appends = 8, chunk = 0;
  std::uint64_t deadline_us = 0, max_queue = 0;  // 0 = none/unbounded
  bool shed_oldest = false;
  std::string out;
};

bool parse_args(int argc, char** argv, int first, Args& a) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_u64 = [&](std::uint64_t& dst) {
      if (i + 1 >= argc) return false;
      dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--reference")
      a.reference = true;
    else if (arg == "--check")
      a.check = true;
    else if (arg == "--sequential")
      a.sequential = true;
    else if (arg == "--trace")
      a.trace = true;
    else if (arg == "--metrics")
      a.metrics = true;
    else if (arg == "--n") {
      if (!next_u64(a.n)) return false;
    } else if (arg == "--k") {
      if (!next_u64(a.k)) return false;
    } else if (arg == "--seed") {
      if (!next_u64(a.seed)) return false;
    } else if (arg == "--mix") {
      if (!next_u64(a.mix)) return false;
    } else if (arg == "--clients") {
      if (!next_u64(a.clients)) return false;
    } else if (arg == "--requests") {
      if (!next_u64(a.requests)) return false;
    } else if (arg == "--distinct") {
      if (!next_u64(a.distinct)) return false;
    } else if (arg == "--window-us") {
      if (!next_u64(a.window_us)) return false;
    } else if (arg == "--batch") {
      if (!next_u64(a.batch)) return false;
    } else if (arg == "--cache") {
      if (!next_u64(a.cache)) return false;
    } else if (arg == "--sessions") {
      if (!next_u64(a.sessions)) return false;
    } else if (arg == "--appends") {
      if (!next_u64(a.appends)) return false;
    } else if (arg == "--chunk") {
      if (!next_u64(a.chunk)) return false;
    } else if (arg == "--deadline-us") {
      if (!next_u64(a.deadline_us)) return false;
    } else if (arg == "--max-queue") {
      if (!next_u64(a.max_queue)) return false;
    } else if (arg == "--shed-oldest") {
      a.shed_oldest = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) return false;
      a.out = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    } else {
      a.positional.push_back(arg);
    }
  }
  return true;
}

engine::Instance load(const std::string& path) {
  if (path == "-") return engine::parse_instance(std::cin);
  return engine::load_instance(path);
}

void print_result(const std::string& label, const engine::SolveResult& r,
                  double seconds) {
  std::printf("%-24s objective=%-16.6f rounds=%-8llu %s  (%.3f ms)\n",
              label.c_str(), r.objective,
              static_cast<unsigned long long>(r.stats.rounds),
              r.detail.c_str(), seconds * 1e3);
}

int cmd_list() {
  const auto& reg = engine::builtin_registry();
  std::printf("%zu registered problem families:\n", reg.size());
  for (const auto& solver : reg.solvers())
    std::printf("  %-10s %s\n", std::string(solver->key()).c_str(),
                std::string(solver->description()).c_str());
  return 0;
}

int cmd_gen(const Args& a) {
  if (a.positional.size() != 1) return usage();
  const engine::Solver& solver =
      engine::builtin_registry().at(a.positional[0]);
  engine::Instance inst = solver.generate({a.n, a.k, a.seed});
  if (a.out.empty())
    engine::serialize_instance(inst, std::cout);
  else
    engine::save_instance(inst, a.out);
  return 0;
}

int cmd_solve(const Args& a) {
  if (a.positional.empty()) return usage();
  const auto& reg = engine::builtin_registry();
  if (a.trace) telemetry::set_trace_enabled(true);
  int rc = 0;
  for (const std::string& path : a.positional) {
    engine::Instance inst = load(path);
    const engine::Solver& solver = reg.at(inst.kind);
    auto t0 = std::chrono::steady_clock::now();
    engine::SolveResult r =
        a.reference ? solver.solve_reference(inst) : solver.solve(inst);
    auto t1 = std::chrono::steady_clock::now();
    print_result(path, r, std::chrono::duration<double>(t1 - t0).count());
    if (a.check) {
      // --check always compares optimized vs oracle, even under
      // --reference (where r already holds the oracle result).
      engine::SolveResult opt = a.reference ? solver.solve(inst) : r;
      engine::SolveResult ref = a.reference ? r : solver.solve_reference(inst);
      double diff = std::abs(opt.objective - ref.objective);
      double tol = 1e-6 * std::max(1.0, std::abs(ref.objective));
      if (diff <= tol) {
        std::printf("%-24s   check OK (oracle objective=%.6f)\n",
                    path.c_str(), ref.objective);
      } else {
        std::printf("%-24s   check FAILED: optimized=%.6f oracle=%.6f\n",
                    path.c_str(), opt.objective, ref.objective);
        rc = 1;
      }
    }
  }
  if (a.trace) {
    // $CORDON_TRACE would also be flushed at exit by the env hook;
    // writing here too lets --trace work without the variable and
    // prints where the trace went.
    const char* env = std::getenv("CORDON_TRACE");
    std::string trace_path =
        env != nullptr && *env != '\0' ? env : "trace.json";
    if (telemetry::trace_write_file(trace_path))
      std::printf("trace written to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "cordon_cli: cannot write trace to %s\n",
                   trace_path.c_str());
  }
  return rc;
}

int cmd_batch(const Args& a) {
  const auto& reg = engine::builtin_registry();
  std::vector<engine::Instance> queue;
  for (const std::string& path : a.positional) queue.push_back(load(path));
  if (a.mix > 0) {
    const auto& solvers = reg.solvers();
    for (std::uint64_t i = 0; i < a.mix; ++i) {
      const engine::Solver& s = *solvers[i % solvers.size()];
      queue.push_back(s.generate({a.n, a.k, a.seed + i}));
    }
  }
  if (queue.empty()) return usage();

  engine::BatchExecutor exec(reg);
  engine::BatchReport rep =
      exec.run(queue, {.parallel = !a.sequential,
                       .use_reference = a.reference});

  for (std::size_t i = 0; i < rep.items.size(); ++i) {
    const engine::BatchItem& item = rep.items[i];
    if (item.ok)
      print_result("[" + std::to_string(i) + "] " + item.kind, item.result,
                   item.latency_s);
    else
      std::printf("[%zu] %-12s FAILED: %s\n", i, item.kind.c_str(),
                  item.error.c_str());
  }
  std::printf(
      "\nbatch: %zu request(s), %zu failed, wall=%.3f ms, "
      "throughput=%.1f req/s (threads=%zu, %s)\n",
      rep.items.size(), rep.failed, rep.wall_s * 1e3, rep.throughput_rps(),
      parallel::num_workers(), a.sequential ? "sequential" : "parallel");
  std::printf(
      "       mean latency=%.3f ms, max latency=%.3f ms, max rounds=%llu, "
      "max effective depth=%llu\n",
      rep.stats.mean_latency_s() * 1e3, rep.stats.max_latency_s * 1e3,
      static_cast<unsigned long long>(rep.stats.max_rounds),
      static_cast<unsigned long long>(rep.stats.max_effective_depth));
  std::printf("       total states=%llu relaxations=%llu rounds=%llu\n",
              static_cast<unsigned long long>(rep.stats.total.states),
              static_cast<unsigned long long>(rep.stats.total.relaxations),
              static_cast<unsigned long long>(rep.stats.total.rounds));
  return rep.failed == 0 ? 0 : 1;
}

// Prefix lengths a growing lineage steps through: cuts[0] is the base
// instance, cuts[v] the instance after v appends of `chunk` elements.
// Returns empty when n is too small to split that way.
std::vector<std::uint64_t> session_cuts(std::uint64_t n, std::uint64_t appends,
                                        std::uint64_t chunk) {
  if (appends == 0) return {};
  if (chunk == 0) chunk = std::max<std::uint64_t>(1, n / (2 * appends));
  if (appends * chunk >= n) chunk = std::max<std::uint64_t>(1, (n - 1) / appends);
  if (appends * chunk >= n) return {};
  std::vector<std::uint64_t> cuts;
  cuts.reserve(appends + 1);
  cuts.push_back(n - appends * chunk);
  for (std::uint64_t v = 1; v <= appends; ++v)
    cuts.push_back(cuts.front() + v * chunk);
  return cuts;
}

int cmd_session(const Args& a) {
  if (a.positional.size() != 1) return usage();
  const auto& reg = engine::builtin_registry();
  const engine::Solver& solver = reg.at(a.positional[0]);
  engine::Instance full = solver.generate({a.n, a.k, a.seed});
  std::vector<std::uint64_t> cuts = session_cuts(a.n, a.appends, a.chunk);
  if (cuts.empty()) {
    std::fprintf(stderr, "cordon_cli: --n %llu too small for %llu append(s)\n",
                 static_cast<unsigned long long>(a.n),
                 static_cast<unsigned long long>(a.appends));
    return 2;
  }

  service::CordonService svc({.cache_capacity = a.cache}, reg);
  std::uint64_t id = svc.create_session(engine::prefix_instance(full, cuts[0]));
  std::printf("session %llu: %s base m=%llu, %llu append(s) of %llu\n",
              static_cast<unsigned long long>(id), a.positional[0].c_str(),
              static_cast<unsigned long long>(cuts[0]),
              static_cast<unsigned long long>(a.appends),
              static_cast<unsigned long long>(cuts[1] - cuts[0]));

  int rc = 0;
  for (std::uint64_t v = 1; v < cuts.size(); ++v) {
    engine::Delta delta =
        engine::slice_delta(full, cuts[v - 1], cuts[v], v - 1);
    auto t0 = std::chrono::steady_clock::now();
    engine::SolveResult r = svc.append(id, std::move(delta)).get();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    // Oracle cross-check: a cold solve of the same grown prefix.
    engine::SolveResult cold =
        solver.solve(engine::prefix_instance(full, cuts[v]));
    double tol = 1e-6 * std::max(1.0, std::abs(cold.objective));
    bool ok = std::abs(r.objective - cold.objective) <= tol;
    if (!ok) rc = 1;
    std::printf(
        "  v%-3llu m=%-10llu objective=%-16.6f path=%-17s %s  (%.3f ms)\n",
        static_cast<unsigned long long>(v),
        static_cast<unsigned long long>(cuts[v]), r.objective,
        core::solve_path_name(r.path),
        ok ? "check OK" : "check FAILED vs cold", secs * 1e3);
  }
  if (auto info = svc.session_info(id)) {
    std::printf(
        "session %llu: version=%llu, incremental=%s, resumes=%llu, "
        "cold_solves=%llu\n",
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(info->version),
        info->incremental ? "yes" : "no",
        static_cast<unsigned long long>(info->resumes),
        static_cast<unsigned long long>(info->cold_solves));
  }
  if (a.metrics)
    std::printf("\n--- metrics ---\n%s", svc.metrics_text().c_str());
  svc.close_session(id);
  return rc;
}

// stress --sessions: C client threads interleave appends on S shared
// sessions (families cycling every delta-capable kind).  Per-session
// ordering is the CLI's job — a mutex issues versions in order — while
// cross-session appends run concurrently; every version's objective is
// checked against a precomputed cold solve of the same prefix.
int cmd_stress_sessions(const Args& a) {
  if (a.clients == 0 || a.appends == 0) return usage();
  const auto& reg = engine::builtin_registry();
  std::vector<const engine::Solver*> fams;
  for (const auto& s : reg.solvers())
    if (s->key() != "dag") fams.push_back(s.get());  // dag: no slicing

  struct Sess {
    std::uint64_t id = 0;
    const engine::Solver* solver = nullptr;
    engine::Instance full;
    std::vector<std::uint64_t> cuts;
    std::vector<double> expected;  // expected[v]: cold objective at version v
    std::mutex mu;                 // versions issued strictly in order
    std::uint64_t next = 1;
  };

  std::vector<std::unique_ptr<Sess>> sessions;
  for (std::uint64_t i = 0; i < a.sessions; ++i) {
    auto s = std::make_unique<Sess>();
    s->solver = fams[i % fams.size()];
    s->full = s->solver->generate({a.n, a.k, a.seed + i});
    s->cuts = session_cuts(a.n, a.appends, a.chunk);
    if (s->cuts.empty()) {
      std::fprintf(stderr,
                   "cordon_cli: --n %llu too small for %llu append(s)\n",
                   static_cast<unsigned long long>(a.n),
                   static_cast<unsigned long long>(a.appends));
      return 2;
    }
    s->expected.reserve(s->cuts.size());
    for (std::uint64_t cut : s->cuts)
      s->expected.push_back(
          s->solver->solve(engine::prefix_instance(s->full, cut)).objective);
    sessions.push_back(std::move(s));
  }

  service::CordonService svc(
      {.max_batch = a.batch,
       .batch_window = std::chrono::microseconds(a.window_us),
       .cache_capacity = a.cache},
      reg);
  for (auto& s : sessions)
    s->id = svc.create_session(engine::prefix_instance(s->full, s->cuts[0]));

  std::vector<std::uint64_t> mismatches(a.clients, 0), errors(a.clients, 0);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(a.clients);
  for (std::uint64_t c = 0; c < a.clients; ++c) {
    threads.emplace_back([&, c] {
      for (bool any = true; any;) {
        any = false;
        for (auto& sp : sessions) {
          Sess& s = *sp;
          std::unique_lock lk(s.mu);
          if (s.next >= s.cuts.size()) continue;
          const std::uint64_t v = s.next++;
          engine::Delta delta =
              engine::slice_delta(s.full, s.cuts[v - 1], s.cuts[v], v - 1);
          auto fut = svc.append(s.id, std::move(delta));
          lk.unlock();  // future is already settled; checking needs no lock
          any = true;
          try {
            double got = fut.get().objective;
            double tol = 1e-6 * std::max(1.0, std::abs(s.expected[v]));
            if (std::abs(got - s.expected[v]) > tol) ++mismatches[c];
          } catch (const std::exception&) {
            ++errors[c];
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t bad = 0, err = 0;
  for (std::uint64_t c = 0; c < a.clients; ++c) {
    bad += mismatches[c];
    err += errors[c];
  }
  service::ServiceStats stats = svc.stats();
  std::printf(
      "stress --sessions: %llu append(s) over %llu session(s) from %llu "
      "client thread(s)\n",
      static_cast<unsigned long long>(a.sessions * a.appends),
      static_cast<unsigned long long>(a.sessions),
      static_cast<unsigned long long>(a.clients));
  std::printf(
      "        wall=%.3f ms (workers=%zu); resumes=%llu cold=%llu "
      "pinned_bases=%llu\n",
      wall * 1e3, parallel::num_workers(),
      static_cast<unsigned long long>(stats.session_resumes),
      static_cast<unsigned long long>(stats.session_cold_solves),
      static_cast<unsigned long long>(a.sessions));
  if (a.metrics)
    std::printf("\n--- metrics ---\n%s", svc.metrics_text().c_str());
  for (auto& s : sessions) svc.close_session(s->id);
  if (bad != 0 || err != 0) {
    std::printf("        FAILED: %llu wrong objective(s), %llu exception(s)\n",
                static_cast<unsigned long long>(bad),
                static_cast<unsigned long long>(err));
    return 1;
  }
  std::printf("        all session objectives verified OK\n");
  return 0;
}

int cmd_stress(const Args& a) {
  if (a.sessions > 0) return cmd_stress_sessions(a);
  if (!a.positional.empty() || a.clients == 0 || a.requests == 0 ||
      a.distinct == 0)
    return usage();
  const auto& reg = engine::builtin_registry();
  const auto& solvers = reg.solvers();

  // Distinct workload pool cycling the registered families, with the
  // expected objective of each precomputed for result checking.
  std::vector<engine::Instance> pool;
  std::vector<double> expected;
  for (std::uint64_t i = 0; i < a.distinct; ++i) {
    const engine::Solver& s = *solvers[i % solvers.size()];
    engine::Instance inst = s.generate({a.n, a.k, a.seed + i});
    expected.push_back(s.solve(inst).objective);
    pool.push_back(std::move(inst));
  }

  service::CordonService svc(
      {.max_batch = a.batch,
       .batch_window = std::chrono::microseconds(a.window_us),
       .cache_capacity = a.cache,
       .use_reference = a.reference,
       .max_queue = a.max_queue,
       .overload_policy = a.shed_oldest
                              ? service::OverloadPolicy::kShedOldest
                              : service::OverloadPolicy::kRejectNew},
      reg);

  // Per-client outcome counts: [0]=ok [1]=shed [2]=expired [3]=cancelled,
  // plus objective mismatches and untyped (non-SolveError) exceptions —
  // only the last two are process failures.  Shed/expired requests are
  // the overload/deadline features doing their job, not errors.
  struct Outcomes {
    std::uint64_t ok = 0, shed = 0, expired = 0, cancelled = 0;
    std::uint64_t mismatched = 0, untyped = 0;
  };
  std::vector<Outcomes> per_client(a.clients);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(a.clients);
  for (std::uint64_t c = 0; c < a.clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::pair<std::size_t, std::future<engine::SolveResult>>>
          futs;
      futs.reserve(a.requests);
      service::SubmitOptions sopt;
      if (a.deadline_us > 0)
        sopt.timeout = std::chrono::microseconds(a.deadline_us);
      for (std::uint64_t r = 0; r < a.requests; ++r) {
        std::size_t idx = (c * a.requests + r) % pool.size();
        futs.emplace_back(idx, svc.submit(pool[idx], sopt));
      }
      Outcomes& out = per_client[c];
      for (auto& [idx, fut] : futs) {
        try {
          double got = fut.get().objective;
          double tol = 1e-6 * std::max(1.0, std::abs(expected[idx]));
          if (std::abs(got - expected[idx]) > tol)
            ++out.mismatched;
          else
            ++out.ok;
        } catch (const core::SolveError& e) {
          switch (e.code()) {
            case core::SolveErrorCode::kShed: ++out.shed; break;
            case core::SolveErrorCode::kDeadlineExceeded: ++out.expired; break;
            case core::SolveErrorCode::kCancelled: ++out.cancelled; break;
            default: ++out.untyped; break;  // kInternal etc.: real failure
          }
        } catch (const std::exception&) {
          ++out.untyped;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();

  Outcomes sum;
  for (const Outcomes& o : per_client) {
    sum.ok += o.ok;
    sum.shed += o.shed;
    sum.expired += o.expired;
    sum.cancelled += o.cancelled;
    sum.mismatched += o.mismatched;
    sum.untyped += o.untyped;
  }
  std::uint64_t total = a.clients * a.requests;
  service::ServiceStats stats = svc.stats();

  std::printf(
      "stress: %llu request(s) from %llu client thread(s) over %llu distinct "
      "instance(s)\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(a.clients),
      static_cast<unsigned long long>(a.distinct));
  std::printf(
      "        wall=%.3f ms, throughput=%.1f req/s (workers=%zu, "
      "window=%lluus, batch<=%llu)\n",
      wall * 1e3, total / wall, parallel::num_workers(),
      static_cast<unsigned long long>(a.window_us),
      static_cast<unsigned long long>(a.batch));
  std::printf(
      "        cache: hit_rate=%.3f (%llu hits, %llu misses, %llu evictions, "
      "%zu resident)\n",
      stats.cache.hit_rate(), static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions), svc.cache_size());
  std::printf(
      "        dispatcher: %llu batch(es), largest=%zu, coalesced=%llu, "
      "solver runs=%llu\n",
      static_cast<unsigned long long>(stats.batches), stats.largest_batch,
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.solver.requests));
  std::printf(
      "        queue wait: mean=%.3f ms, max=%.3f ms; solve latency: "
      "mean=%.3f ms, max=%.3f ms\n",
      stats.queue.mean_wait_s() * 1e3, stats.queue.max_wait_s * 1e3,
      stats.solver.mean_latency_s() * 1e3, stats.solver.max_latency_s * 1e3);
  std::printf(
      "        outcomes: ok=%llu shed=%llu expired=%llu cancelled=%llu\n",
      static_cast<unsigned long long>(sum.ok),
      static_cast<unsigned long long>(sum.shed),
      static_cast<unsigned long long>(sum.expired),
      static_cast<unsigned long long>(sum.cancelled));
  if (a.metrics)
    std::printf("\n--- metrics ---\n%s", svc.metrics_text().c_str());
  // Shed/expired/cancelled requests resolved exactly as configured; the
  // run only fails on wrong answers or failures outside the taxonomy.
  if (sum.mismatched != 0 || sum.untyped != 0) {
    std::printf(
        "        FAILED: %llu wrong objective(s), %llu untyped/internal "
        "failure(s)\n",
        static_cast<unsigned long long>(sum.mismatched),
        static_cast<unsigned long long>(sum.untyped));
    return 1;
  }
  std::printf("        all %llu completed objective(s) verified OK\n",
              static_cast<unsigned long long>(sum.ok));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Args a;
  if (!parse_args(argc, argv, 2, a)) return usage();
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "gen") return cmd_gen(a);
    if (cmd == "solve") return cmd_solve(a);
    if (cmd == "batch") return cmd_batch(a);
    if (cmd == "stress") return cmd_stress(a);
    if (cmd == "session") return cmd_session(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cordon_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
