// diff_tool: line-based file diff built on the sparse parallel LCS.
//
// Classic diff pipeline: hash each line to a symbol, find the LCS of the
// two line-hash sequences (the unchanged lines), report the rest as
// edits.  Sparse LCS is exactly the right engine: real files share most
// lines, so L (matching line pairs) is near-linear while the dense DP
// grid would be quadratic.
//
// Usage: diff_tool [fileA fileB]       (without args: built-in demo)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lcs/lcs.hpp"

namespace {

std::vector<std::string> read_lines(const char* path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> demo_a() {
  return {"#include <stdio.h>", "", "int main() {",
          "  printf(\"hello\\n\");", "  return 0;", "}"};
}

std::vector<std::string> demo_b() {
  return {"#include <stdio.h>", "#include <stdlib.h>", "",
          "int main() {", "  printf(\"hello, world\\n\");", "  return 0;",
          "}"};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cordon::lcs;
  std::vector<std::string> a_lines, b_lines;
  if (argc == 3) {
    a_lines = read_lines(argv[1]);
    b_lines = read_lines(argv[2]);
  } else {
    a_lines = demo_a();
    b_lines = demo_b();
    std::printf("(no files given: diffing built-in demo snippets)\n\n");
  }

  // Intern lines to symbols.
  std::unordered_map<std::string, std::uint32_t> intern;
  auto symbolize = [&](const std::vector<std::string>& lines) {
    std::vector<std::uint32_t> out;
    out.reserve(lines.size());
    for (const auto& l : lines) {
      auto [it, fresh] = intern.emplace(
          l, static_cast<std::uint32_t>(intern.size()));
      (void)fresh;
      out.push_back(it->second);
    }
    return out;
  };
  auto a = symbolize(a_lines);
  auto b = symbolize(b_lines);

  // Sparse LCS, then recover one optimal match chain (the common lines).
  auto pairs = match_pairs(a, b);
  auto res = lcs_parallel(pairs);
  auto chain = recover_chain(pairs, res);

  // Emit a unified-style diff from the common chain.
  std::size_t ai = 0, bj = 0, removed = 0, added = 0;
  auto flush_gap = [&](std::size_t until_a, std::size_t until_b) {
    for (; ai < until_a; ++ai, ++removed)
      std::printf("- %s\n", a_lines[ai].c_str());
    for (; bj < until_b; ++bj, ++added)
      std::printf("+ %s\n", b_lines[bj].c_str());
  };
  for (auto [ci, cj] : chain) {
    flush_gap(ci, cj);
    std::printf("  %s\n", a_lines[ai].c_str());
    ++ai;
    ++bj;
  }
  flush_gap(a_lines.size(), b_lines.size());
  std::printf("\n%zu common, %zu removed, %zu added  (L=%zu pairs, "
              "rounds=%llu)\n",
              chain.size(), removed, added, pairs.size(),
              static_cast<unsigned long long>(res.stats.rounds));
  return 0;
}
