// kmeans1d: optimal 1D k-means clustering via k-GLWS (Sec. 5.4).
//
// Unlike Lloyd's algorithm, the DP solution is *exactly* optimal: with
// points sorted, clusters are contiguous ranges and the within-cluster
// sum of squares is a convex Monge cost — the Ckmeans.1d.dp [91]
// formulation.  One cordon round per cluster.
//
// Usage: kmeans1d [k] [n]             (default k=4, n=4000)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/glws/costs.hpp"
#include "src/kglws/kglws.hpp"
#include "src/parallel/random.hpp"

int main(int argc, char** argv) {
  using namespace cordon;
  std::size_t k = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4;
  std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4000;

  // Synthetic data: k true Gaussian-ish blobs, shuffled then sorted.
  std::vector<double> x(n + 1, 0.0);  // 1-indexed
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t blob = parallel::uniform(1, i, k);
    double center = static_cast<double>(blob) * 50.0;
    double jitter = 0.0;
    for (int t = 0; t < 6; ++t)  // sum of uniforms ~ bell-shaped
      jitter += parallel::uniform_double(2 + t, i) - 0.5;
    x[i] = center + jitter * 8.0;
  }
  std::sort(x.begin() + 1, x.end());

  auto cost = glws::squared_distance_cost(x);
  glws::CostFn w = [cost](std::size_t j, std::size_t i) { return cost(j, i); };

  auto cuts = kglws::kglws_backtrack(n, k, w);
  auto res = kglws::kglws_dc(n, k, w);
  std::printf("n=%zu k=%zu  total within-cluster SS=%.2f  rounds=%llu\n\n", n,
              k, res.total, static_cast<unsigned long long>(res.stats.rounds));
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    std::size_t lo = cuts[c] + 1, hi = cuts[c + 1];
    double sum = 0;
    for (std::size_t i = lo; i <= hi; ++i) sum += x[i];
    std::printf("cluster %zu: %6zu points in [%8.2f, %8.2f]  mean %8.2f\n",
                c + 1, hi - lo + 1, x[lo], x[hi],
                sum / static_cast<double>(hi - lo + 1));
  }
  return 0;
}
