// line_breaking: Knuth–Plass paragraph layout as convex GLWS [66].
//
// D[i] = min_j D[j] + badness(words j+1..i on one line); the badness is
// convex in the line length, so decision monotonicity applies and the
// parallel GLWS lays out a paragraph in rounds equal to the number of
// lines — the motivating 1D/1D example of Sec. 4.
//
// Usage: line_breaking [width]        (default width 52)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"

namespace {

const char* kText =
    "The idea of dynamic programming since proposed by Richard Bellman in "
    "the fifties has been extensively used in algorithm design and is one "
    "of the most important algorithmic techniques covered in classic "
    "textbooks and basic algorithm classes and widely used in research "
    "and industry with the goal of this library being nearly work "
    "efficient parallel algorithms from classic highly optimized and "
    "practical sequential algorithms";

}  // namespace

int main(int argc, char** argv) {
  using namespace cordon::glws;
  double width = argc > 1 ? std::atof(argv[1]) : 52.0;

  std::vector<std::string> words;
  {
    std::istringstream iss(kText);
    std::string w;
    while (iss >> w) words.push_back(w);
  }
  const std::size_t n = words.size();

  // word_prefix[i] = total length of words 1..i, one space after each.
  auto wp = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*wp)[i] = (*wp)[i - 1] + static_cast<double>(words[i - 1].size()) + 1.0;

  CostFn w = line_break_cost(wp, width);
  auto res = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);

  // Backtrack the line breaks.
  std::vector<std::size_t> breaks;  // line ends
  for (std::size_t i = n; i != 0; i = res.best[i]) breaks.push_back(i);
  std::printf("width=%.0f  badness=%.2f  lines=%zu  cordon rounds=%llu\n\n",
              width, res.d[n], breaks.size(),
              static_cast<unsigned long long>(res.stats.rounds));
  std::size_t start = 0;
  for (auto it = breaks.rbegin(); it != breaks.rend(); ++it) {
    std::string line;
    for (std::size_t k = start; k < *it; ++k) {
      if (!line.empty()) line += ' ';
      line += words[k];
    }
    std::printf("|%s\n", line.c_str());
    start = *it;
  }
  return 0;
}
