// Quickstart: the three one-liners of the library.
//
//   1. parallel LIS over a value sequence,
//   2. parallel convex GLWS (the post-office problem),
//   3. sparse parallel LCS over two strings.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/lcs/lcs.hpp"
#include "src/lis/lis.hpp"

int main() {
  using namespace cordon;

  // --- 1. LIS ---------------------------------------------------------
  std::vector<std::uint64_t> seq{7, 3, 6, 8, 1, 4, 2, 5};  // Fig. 2(a)
  auto lis = lis::lis_parallel(seq);
  std::printf("LIS of {7,3,6,8,1,4,2,5} = %u (rounds = %llu)\n", lis.length,
              static_cast<unsigned long long>(lis.stats.rounds));

  // --- 2. Convex GLWS: where to build post offices ---------------------
  // Villages at positions x[1..12]; one office costs 40 to open plus the
  // squared span of the villages it serves.
  auto x = std::make_shared<std::vector<double>>(
      std::vector<double>{0, 1, 2, 3, 10, 11, 12, 13, 25, 26, 40, 41, 42});
  glws::CostFn w = glws::post_office_cost(x, 40.0);
  auto plan = glws::glws_parallel(12, 0.0, w, glws::identity_e(),
                                  glws::Shape::kConvex);
  std::printf("post offices: total cost %.1f, assignments:", plan.d[12]);
  // Backtrack the optimal segmentation.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 12; i != 0; i = plan.best[i]) cuts.push_back(i);
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it)
    std::printf(" ..%zu", *it);
  std::printf("  (%llu offices, %llu cordon rounds)\n",
              static_cast<unsigned long long>(cuts.size()),
              static_cast<unsigned long long>(plan.stats.rounds));

  // --- 3. Sparse LCS ----------------------------------------------------
  std::vector<std::uint32_t> a{'b', 'a', 'n', 'a', 'n', 'a'};
  std::vector<std::uint32_t> b{'a', 'n', 'a', 'n', 'a', 's'};
  auto pairs = lcs::match_pairs(a, b);
  auto lcs = lcs::lcs_parallel(pairs);
  std::printf("LCS(banana, ananas) = %u over %zu match pairs\n", lcs.length,
              pairs.size());
  return 0;
}
