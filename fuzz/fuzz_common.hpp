// Shared assertions for the wire-format fuzz harnesses.
//
// FUZZ_ASSERT is active in every build configuration (unlike
// CORDON_DCHECK): a fuzz target exists to turn contract violations into
// crashes, so its own checks must never compile away.  abort() is what
// libFuzzer and the standalone driver both report as a finding.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "src/engine/instance.hpp"

#define FUZZ_ASSERT(cond, why)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s\n  %s at %s:%d\n",   \
                   #cond, why, __FILE__, __LINE__);                     \
      std::fflush(stderr);                                              \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

namespace cordon::fuzz {

/// Every size a successfully parsed payload declares or materializes
/// must respect kMaxDeclaredSize — this is the cap contract the parser
/// promises the solvers downstream ("hostile input fails the future,
/// never the process").
struct CapCheckVisitor {
  using u64 = std::uint64_t;
  static constexpr u64 kCap = engine::kMaxDeclaredSize;

  void operator()(const engine::LisInstance& p) const {
    FUZZ_ASSERT(p.values.size() <= kCap, "lis values over cap");
  }
  void operator()(const engine::LcsInstance& p) const {
    FUZZ_ASSERT(p.a.size() <= kCap && p.b.size() <= kCap, "lcs over cap");
  }
  void operator()(const engine::GlwsInstance& p) const {
    FUZZ_ASSERT(p.n <= kCap, "glws n over cap");
  }
  void operator()(const engine::KglwsInstance& p) const {
    FUZZ_ASSERT(p.n <= kCap && p.k <= kCap, "kglws n/k over cap");
  }
  void operator()(const engine::GapInstance& p) const {
    FUZZ_ASSERT(p.a.size() <= kCap && p.b.size() <= kCap, "gap over cap");
  }
  void operator()(const engine::OatInstance& p) const {
    FUZZ_ASSERT(p.weights.size() <= kCap, "oat weights over cap");
  }
  void operator()(const engine::ObstInstance& p) const {
    FUZZ_ASSERT(p.weights.size() <= kCap, "obst weights over cap");
  }
  void operator()(const engine::TreeGlwsInstance& p) const {
    FUZZ_ASSERT(p.parent.size() <= kCap, "treeglws parent over cap");
  }
  void operator()(const engine::DagInstance& p) const {
    FUZZ_ASSERT(p.n <= kCap, "dag states over cap");
    FUZZ_ASSERT(p.boundary.size() <= kCap, "dag boundary over cap");
    FUZZ_ASSERT(p.edges.size() <= kCap, "dag edges over cap");
  }
};

}  // namespace cordon::fuzz
