// Fuzz target: delta parse + apply_delta_inplace (docs/SESSIONS.md).
//
// Input framing: <instance text> NUL <delta text> — the text grammars
// never contain NUL, so the first zero byte splits unambiguously (no
// separator, and the whole input is treated as a delta against a small
// fixed base, so pure delta-grammar fuzzing still gets coverage).
//
// Contract under hostile bytes:
//   * parse_delta either succeeds or throws std::runtime_error /
//     std::invalid_argument, and a successful parse respects
//     kMaxDeltaOps;
//   * apply_delta_inplace is all-or-nothing: on rejection
//     (std::invalid_argument) the base instance is byte-identical to
//     what it was before the call;
//   * a successful apply respects the kMaxDeclaredSize result caps and
//     is deterministic (applying the same delta to an equal base gives
//     byte-identical results).
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fuzz/fuzz_common.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/instance.hpp"

using namespace cordon;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string base_text, delta_text;
  const char* bytes = reinterpret_cast<const char*>(data);
  if (const void* nul = std::memchr(bytes, '\0', size)) {
    std::size_t split = static_cast<std::size_t>(
        static_cast<const char*>(nul) - bytes);
    base_text.assign(bytes, split);
    delta_text.assign(bytes + split + 1, size - split - 1);
  } else {
    base_text = "cordon-instance v1 lis\nvalues 3 1 2\nend\n";
    delta_text.assign(bytes, size);
  }

  engine::Instance base;
  try {
    base = engine::from_string(base_text);
  } catch (const std::runtime_error&) {
    return 0;
  } catch (const std::invalid_argument&) {
    return 0;
  }

  engine::Delta delta;
  try {
    delta = engine::delta_from_string(delta_text);
  } catch (const std::runtime_error&) {
    return 0;
  } catch (const std::invalid_argument&) {
    return 0;
  }
  FUZZ_ASSERT(engine::delta_op_count(delta) <= engine::kMaxDeltaOps,
              "parsed delta exceeds the op cap");

  // Delta serialization fixpoint, mirroring the instance harness.
  const std::string dcanon = engine::to_string(delta);
  try {
    FUZZ_ASSERT(engine::to_string(engine::delta_from_string(dcanon)) == dcanon,
                "delta serialization is not a fixpoint");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "canonical delta failed to re-parse: %s\n", e.what());
    std::abort();
  }

  const std::string before = engine::to_string(base);
  engine::Instance grown = base;
  bool applied = true;
  try {
    engine::apply_delta_inplace(grown, delta);
  } catch (const std::invalid_argument&) {
    applied = false;  // the ONLY rejection type the contract allows
  }

  if (!applied) {
    FUZZ_ASSERT(engine::to_string(grown) == before,
                "rejected delta mutated the base (all-or-nothing broken)");
    return 0;
  }

  std::visit(fuzz::CapCheckVisitor{}, grown.payload);

  // Determinism: a second apply onto an equal base must agree.
  engine::Instance grown2 = base;
  engine::apply_delta_inplace(grown2, delta);  // must not throw this time
  FUZZ_ASSERT(engine::to_string(grown2) == engine::to_string(grown),
              "apply_delta_inplace is not deterministic");
  return 0;
}
