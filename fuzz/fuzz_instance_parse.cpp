// Fuzz target: the instance text parser (docs/INSTANCE_FORMAT.md).
//
// Contract under hostile bytes:
//   * parse either succeeds or throws std::runtime_error /
//     std::invalid_argument — any other escape (crash, other exception
//     type, sanitizer finding) is a bug;
//   * a successful parse respects every declared-size cap;
//   * serialization is a canonical fixpoint: to_string(parse(text))
//     parses back to byte-identical canonical text;
//   * the streaming hash equals the hash of the materialized text.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fuzz/fuzz_common.hpp"
#include "src/engine/instance.hpp"

using namespace cordon;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  engine::Instance inst;
  try {
    inst = engine::from_string(text);
  } catch (const std::runtime_error&) {
    return 0;  // malformed input, rejected cleanly
  } catch (const std::invalid_argument&) {
    return 0;  // cap violation, rejected cleanly
  }

  std::visit(fuzz::CapCheckVisitor{}, inst.payload);

  // Canonical round-trip: the serializer's output must re-parse, and
  // must be a fixpoint (two instances are equal iff their canonical
  // texts are byte-identical — the service cache keys on this).
  const std::string canon = engine::to_string(inst);
  engine::Instance reparsed;
  try {
    reparsed = engine::from_string(canon);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "canonical text failed to re-parse: %s\n", e.what());
    std::abort();
  }
  FUZZ_ASSERT(reparsed.kind == inst.kind, "round-trip changed the kind");
  FUZZ_ASSERT(engine::to_string(reparsed) == canon,
              "canonical serialization is not a fixpoint");

  // The streaming hash must agree with hashing the materialized bytes.
  FUZZ_ASSERT(engine::instance_hash(inst) == engine::fnv1a64(canon),
              "streaming hash diverges from text hash");
  return 0;
}
