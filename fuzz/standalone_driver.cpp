// Standalone driver for toolchains without libFuzzer (gcc): provides
// the main() that -fsanitize=fuzzer would otherwise link in.
//
//   fuzz_target [-runs=N] [-seed=S] [-max_len=L] <files-or-dirs>...
//
// Every file argument (directories recurse) is executed once through
// LLVMFuzzerTestOneInput — that is the ctest corpus-regression mode,
// flag-compatible with libFuzzer's `-runs=0 <corpusdir>`.  With
// -runs=N > 0 the driver additionally runs N inputs produced by a
// naive deterministic mutator (byte flips, splices, truncations over
// the loaded corpus), which is what the CI fuzz smoke uses when only
// gcc is available; real coverage-guided fuzzing still wants clang.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::string> gather_inputs(int argc, char** argv,
                                       std::uint64_t& runs,
                                       std::uint64_t& seed,
                                       std::size_t& max_len) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-max_len=", 9) == 0) {
      max_len = std::strtoull(arg + 9, nullptr, 10);
    } else if (arg[0] == '-') {
      // Unknown libFuzzer flag: ignore, so CI recipes stay portable.
    } else if (fs::is_directory(arg)) {
      for (const auto& e : fs::recursive_directory_iterator(arg))
        if (e.is_regular_file()) paths.push_back(e.path().string());
    } else {
      paths.push_back(arg);
    }
  }
  return paths;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

/// One mutation step: corpus pick + a couple of byte-level edits.  Not
/// coverage-guided — just enough hostile variety for a smoke run.
std::string mutate(const std::vector<std::string>& corpus,
                   std::mt19937_64& rng, std::size_t max_len) {
  std::string s = corpus.empty()
                      ? std::string()
                      : corpus[rng() % corpus.size()];
  const int edits = 1 + static_cast<int>(rng() % 4);
  for (int e = 0; e < edits; ++e) {
    switch (rng() % 5) {
      case 0:  // flip a byte
        if (!s.empty()) s[rng() % s.size()] ^= static_cast<char>(rng());
        break;
      case 1:  // insert a byte
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                 s.empty() ? 0 : rng() % (s.size() + 1)),
                 static_cast<char>(rng()));
        break;
      case 2:  // delete a byte
        if (!s.empty()) s.erase(rng() % s.size(), 1);
        break;
      case 3:  // truncate
        if (!s.empty()) s.resize(rng() % s.size());
        break;
      case 4: {  // splice a random corpus tail on
        if (corpus.empty()) break;
        const std::string& other = corpus[rng() % corpus.size()];
        if (other.empty()) break;
        s += other.substr(rng() % other.size());
        break;
      }
    }
  }
  if (s.size() > max_len) s.resize(max_len);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 0, seed = 1;
  std::size_t max_len = 1 << 14;
  const std::vector<std::string> paths =
      gather_inputs(argc, argv, runs, seed, max_len);

  std::vector<std::string> corpus;
  corpus.reserve(paths.size());
  for (const std::string& p : paths) corpus.push_back(read_file(p));

  for (std::size_t i = 0; i < corpus.size(); ++i) run_one(corpus[i]);
  std::printf("standalone fuzz driver: replayed %zu corpus input(s)\n",
              corpus.size());

  if (runs > 0) {
    std::mt19937_64 rng(seed);
    for (std::uint64_t i = 0; i < runs; ++i)
      run_one(mutate(corpus, rng, max_len));
    std::printf("standalone fuzz driver: %llu mutated run(s), seed %llu\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
