#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown files.

Scans every *.md outside build/hidden directories for inline links
[text](target) and checks that relative targets (optionally with a
#fragment) resolve to an existing file or directory. External schemes
(http:, https:, mailto:) and pure in-page anchors (#...) are skipped;
fragments on existing .md targets are not resolved against headings —
this is a link-rot gate, not a full Markdown validator.

Usage: python3 scripts/check_links.py [root]   (default: repo root)
"""
import os
import re
import sys

# Inline Markdown links, ignoring images' leading '!' (their targets are
# checked the same way) and <autolinks> (always absolute URLs).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {"build", ".git", ".cache", "node_modules"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                base = root if rel.startswith("/") else os.path.dirname(path)
                resolved = os.path.normpath(os.path.join(base, rel.lstrip("/")))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{os.path.relpath(path, root)}:{lineno}: "
                        f"broken link '{target}' -> {resolved}"
                    )
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    all_errors = []
    checked = 0
    for path in sorted(md_files(root)):
        all_errors.extend(check_file(path, root))
        checked += 1
    for err in all_errors:
        print(err)
    print(f"check_links: {checked} file(s), {len(all_errors)} broken link(s)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
