#!/usr/bin/env python3
"""Telemetry overhead gate: compiled-in-but-idle tracing must be free.

Compares two CORDON_BENCH_JSON trajectories of bench_engine_batch — one
from a -DCORDON_TELEMETRY=OFF build (baseline) and one from the default
build with tracing compiled in but disabled — and fails if any series'
best (minimum) wall time regressed by more than the tolerance.

Minima over CORDON_BENCH_REPS repetitions are compared, not single
shots, and a small absolute slack is added on top of the relative
tolerance: CI machines are noisy, and for millisecond-scale runs a
pure percentage gate flakes on scheduler jitter alone.  A real
always-on-counter regression shows up as a consistent shift that
survives the min().

Usage:
  check_overhead.py baseline.json candidate.json [--rel-tol 0.02]
                    [--abs-slack-s 0.010]
"""

import argparse
import json
import sys
from collections import defaultdict


def best_by_series(path: str) -> dict:
    best = defaultdict(lambda: float("inf"))
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("bench") != "bench_engine_batch":
                continue
            series, wall = rec.get("series"), rec.get("wall_s")
            if series is None or not isinstance(wall, (int, float)):
                continue
            best[series] = min(best[series], wall)
    return dict(best)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="trajectory from the telemetry-OFF build")
    ap.add_argument("candidate", help="trajectory from the default build")
    ap.add_argument("--rel-tol", type=float, default=0.02)
    ap.add_argument("--abs-slack-s", type=float, default=0.010)
    args = ap.parse_args()

    base = best_by_series(args.baseline)
    cand = best_by_series(args.candidate)
    if not base:
        print(f"check_overhead: FAIL: no records in {args.baseline}",
              file=sys.stderr)
        sys.exit(1)

    failed = False
    for series, base_wall in sorted(base.items()):
        cand_wall = cand.get(series)
        if cand_wall is None:
            print(f"check_overhead: FAIL: series '{series}' missing from "
                  f"{args.candidate}", file=sys.stderr)
            failed = True
            continue
        limit = base_wall * (1.0 + args.rel_tol) + args.abs_slack_s
        ratio = cand_wall / base_wall if base_wall > 0 else float("inf")
        verdict = "ok" if cand_wall <= limit else "REGRESSED"
        print(f"check_overhead: {series:16s} baseline={base_wall * 1e3:9.3f}ms"
              f" candidate={cand_wall * 1e3:9.3f}ms ({ratio:6.3f}x) {verdict}")
        if cand_wall > limit:
            failed = True

    if failed:
        print("check_overhead: FAIL: idle telemetry exceeds the overhead "
              "budget", file=sys.stderr)
        sys.exit(1)
    print("check_overhead: OK")


if __name__ == "__main__":
    main()
