#!/usr/bin/env python3
"""Multi-core scaling gate: the production solve path must never lose
to the sequential algorithm, and must beat it once the hardware can.

Consumes one thread-sweep trajectory produced by scripts/run_benches.sh
(JSON-lines; every record carries the real worker count the scheduler
used in its "threads" field) and enforces, for the gated families
(glws, lcs, gap):

  1. Correctness: every record must say verified=1 — a fast wrong
     answer gates nothing.
  2. 1-thread parity: at threads=1 the production path (`seconds`,
     which is the `*_auto` routing) must match `sequential_s` within
     tolerance.  The adaptive cutoff makes this free by routing
     single-worker solves to the sequential algorithm.
  3. Parallel-beats-sequential: at every gated thread count t with
     --min-threads <= t <= the runner's core count, the production
     path must be no slower than `sequential_s` (within the same
     tolerance).  Families whose parallel machinery needs more workers
     than t route sequentially via their min-worker floor, so "no
     slower" is exactly what adaptive routing promises; families that
     do go parallel (glws at >= 4 workers) must genuinely win.

When the runner has fewer cores than --min-threads, gate 3 is SKIPPED
with a loud warning (oversubscribed "4 threads" on 1 core measures the
scheduler, not the algorithm) — gates 1 and 2 still run.  Minima over
repeated records are compared, and the tolerance mirrors
check_overhead.py: relative tolerance plus a small absolute slack so
millisecond-scale runs don't flake on scheduler jitter.

Usage:
  check_scaling.py trajectory.json [--min-threads 4] [--rel-tol 0.05]
                   [--abs-slack-s 0.010]
"""

import argparse
import json
import sys
from collections import defaultdict

# bench name -> family label; only these benches are gated.  The engine
# batch sweep is summarized for the log but carries no gate (its
# series mix direct/arena/service paths with no sequential_s contract).
FAMILIES = {
    "bench_fig7_glws": "glws",
    "bench_fig6_lcs": "lcs",
    "bench_gap": "gap",
}
EXTRA_KEYS = ("k", "L", "cells")


def load(path):
    """Returns (meta, points, engine) from a trajectory file.

    points[family][(n, extra)][threads] = {"seconds": min, "one": min,
    "seq": min, "paths": set, "unverified": count}
    """
    meta = {}
    points = defaultdict(lambda: defaultdict(dict))
    engine = defaultdict(lambda: float("inf"))  # (series, threads) -> best wall
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            bench = rec.get("bench")
            if bench == "meta":
                meta = rec
                continue
            threads = rec.get("threads")
            if bench == "bench_engine_batch":
                wall = rec.get("wall_s")
                if isinstance(wall, (int, float)) and threads is not None:
                    key = (rec.get("series"), threads)
                    engine[key] = min(engine[key], wall)
                continue
            family = FAMILIES.get(bench)
            if family is None or rec.get("series") != "ours":
                continue
            n, sec, seq = rec.get("n"), rec.get("seconds"), rec.get("sequential_s")
            if not all(isinstance(v, (int, float)) for v in (n, sec, seq)):
                continue
            extra = tuple((k, rec[k]) for k in EXTRA_KEYS if k in rec)
            cell = points[family][(n, extra)].setdefault(
                threads,
                {"seconds": float("inf"), "one": float("inf"),
                 "seq": float("inf"), "paths": set(), "unverified": 0})
            cell["seconds"] = min(cell["seconds"], sec)
            cell["seq"] = min(cell["seq"], seq)
            one = rec.get("one_thread_s")
            if isinstance(one, (int, float)):
                cell["one"] = min(cell["one"], one)
            cell["paths"].add(rec.get("path", "?"))
            if rec.get("verified") == 0:
                cell["unverified"] += 1
    return meta, points, engine


def fmt_extra(extra):
    return " ".join(f"{k}={v}" for k, v in extra) if extra else ""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory", help="JSON-lines sweep from run_benches.sh")
    ap.add_argument("--min-threads", type=int, default=4,
                    help="thread floor for the parallel-beats-sequential gate")
    ap.add_argument("--rel-tol", type=float, default=0.05)
    ap.add_argument("--abs-slack-s", type=float, default=0.010)
    args = ap.parse_args()

    meta, points, engine = load(args.trajectory)
    cores = meta.get("cores")
    if not isinstance(cores, int) or cores < 1:
        print("check_scaling: WARNING: no 'cores' in meta record; assuming 1 "
              "(regenerate with scripts/run_benches.sh)", file=sys.stderr)
        cores = 1

    missing = [f for f in sorted(set(FAMILIES.values())) if f not in points]
    if missing:
        print(f"check_scaling: FAIL: no records for families: "
              f"{', '.join(missing)} in {args.trajectory}", file=sys.stderr)
        sys.exit(1)

    failed = False

    def limit(seq_s):
        return seq_s * (1.0 + args.rel_tol) + args.abs_slack_s

    for family in sorted(points):
        print(f"check_scaling: --- {family} ---")
        groups = points[family]
        largest_n = max(n for (n, _extra) in groups)
        for (n, extra), by_threads in sorted(groups.items()):
            curve = []
            for t in sorted(by_threads):
                cell = by_threads[t]
                if cell["unverified"]:
                    print(f"check_scaling: FAIL: {family} n={n} "
                          f"{fmt_extra(extra)} threads={t}: "
                          f"{cell['unverified']} unverified record(s)",
                          file=sys.stderr)
                    failed = True
                speedup = (cell["seq"] / cell["seconds"]
                           if cell["seconds"] > 0 else float("inf"))
                curve.append(f"t={t}:{speedup:5.2f}x[{'/'.join(sorted(cell['paths']))}]")
            print(f"check_scaling: {family:5s} n={n:<8} {fmt_extra(extra):12s} "
                  f"seq={min(c['seq'] for c in by_threads.values()) * 1e3:9.3f}ms  "
                  + "  ".join(curve))

        # Gate 2: 1-thread parity, every instance size.
        for (n, extra), by_threads in sorted(groups.items()):
            cell = by_threads.get(1)
            if cell is None:
                print(f"check_scaling: FAIL: {family} n={n} {fmt_extra(extra)}: "
                      f"no threads=1 records in sweep", file=sys.stderr)
                failed = True
                continue
            if cell["seconds"] > limit(cell["seq"]):
                print(f"check_scaling: FAIL: {family} n={n} {fmt_extra(extra)}: "
                      f"1-thread production path {cell['seconds'] * 1e3:.3f}ms "
                      f"vs sequential {cell['seq'] * 1e3:.3f}ms exceeds "
                      f"parity tolerance", file=sys.stderr)
                failed = True

        # Gate 3: parallel beats (or, via routing, matches) sequential at
        # every gated thread count, on the largest instances.
        gate_ts = sorted(t for (n, _e), bt in groups.items() if n == largest_n
                         for t in bt
                         if t is not None and args.min_threads <= t <= cores)
        if cores < args.min_threads:
            print(f"check_scaling: WARNING: runner has {cores} core(s) < "
                  f"--min-threads {args.min_threads}; parallel-beats-"
                  f"sequential gate SKIPPED for {family} (oversubscribed "
                  f"timings prove nothing)")
            continue
        if not gate_ts:
            print(f"check_scaling: FAIL: {family}: no records at "
                  f"{args.min_threads} <= threads <= {cores} for n={largest_n}",
                  file=sys.stderr)
            failed = True
            continue
        for t in sorted(set(gate_ts)):
            worst = None
            for (n, extra), by_threads in groups.items():
                if n != largest_n or t not in by_threads:
                    continue
                cell = by_threads[t]
                over = cell["seconds"] - limit(cell["seq"])
                if worst is None or over > worst[0]:
                    worst = (over, extra, cell)
            if worst is None:
                continue
            over, extra, cell = worst
            if over > 0:
                print(f"check_scaling: FAIL: {family} n={largest_n} "
                      f"{fmt_extra(extra)} threads={t}: production path "
                      f"{cell['seconds'] * 1e3:.3f}ms loses to sequential "
                      f"{cell['seq'] * 1e3:.3f}ms "
                      f"(paths: {'/'.join(sorted(cell['paths']))})",
                      file=sys.stderr)
                failed = True

    if engine:
        print("check_scaling: --- engine batch (informational) ---")
        by_series = defaultdict(dict)
        for (series, t), wall in engine.items():
            by_series[series][t] = wall
        for series in sorted(by_series):
            walls = by_series[series]
            base = walls.get(1)
            curve = "  ".join(
                f"t={t}:{walls[t] * 1e3:8.3f}ms"
                + (f" ({base / walls[t]:4.2f}x)" if base else "")
                for t in sorted(walls))
            print(f"check_scaling: {series:16s} {curve}")

    if failed:
        print("check_scaling: FAIL: the multi-core claim does not hold on "
              "this trajectory", file=sys.stderr)
        sys.exit(1)
    print("check_scaling: OK")


if __name__ == "__main__":
    main()
