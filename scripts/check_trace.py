#!/usr/bin/env python3
"""Validate a Chrome Trace Event Format file emitted by cordon's tracer.

Checks (schema + invariants the tracer guarantees):
  * the file is valid JSON with a `traceEvents` list,
  * every event carries name/ph/ts/pid/tid with sane types,
  * phases are limited to the set the tracer (or hand tooling) emits:
    X (complete), i/I (instant), M (metadata), B/E (duration pairs),
  * timestamps are >= 0 and non-decreasing in array order (the tracer
    sorts on dump; viewers tolerate disorder but our writer promises it),
  * X events have a non-negative `dur` and spans sharing a tid nest
    properly (an overlapping-but-not-nested pair means the per-worker
    rings got corrupted),
  * B/E events are stack-matched per (pid, tid).

Usage:
  check_trace.py trace.json [--expect NAME]...

`--expect NAME` (repeatable) asserts at least one non-metadata event
whose name contains NAME — CI uses `--expect round` to prove a solve
trace really carries per-round solver spans.

Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"X", "i", "I", "M", "B", "E"}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="NAME",
        help="require >= 1 non-metadata event whose name contains NAME",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("top-level object has no traceEvents list")
    if not events:
        fail("traceEvents is empty")

    prev_ts = None
    open_b = {}  # (pid, tid) -> stack of B names
    open_x = {}  # tid -> stack of (start, end, name) for nesting check
    counted = 0
    for idx, e in enumerate(events):
        where = f"event #{idx}"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                fail(f"{where} lacks required field '{field}'")
        name, ph = e["name"], e["ph"]
        if not isinstance(name, str) or not name:
            fail(f"{where} has a non-string or empty name")
        if ph not in ALLOWED_PHASES:
            fail(f"{where} ('{name}') has unexpected phase '{ph}'")
        if ph == "M":
            continue  # metadata rows carry no ts / timeline semantics
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where} ('{name}') has invalid ts {ts!r}")
        if prev_ts is not None and ts < prev_ts:
            fail(
                f"{where} ('{name}') breaks monotonicity: "
                f"ts {ts} after {prev_ts}"
            )
        prev_ts = ts
        counted += 1

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ('{name}') X event has invalid dur {dur!r}")
            # Proper nesting per tid: pop finished spans, then this span
            # must end before every still-open enclosing span does.
            stack = open_x.setdefault(e["tid"], [])
            while stack and stack[-1][1] <= ts:
                stack.pop()
            end = ts + dur
            # Tolerance: ts/dur are rounded to 1e-3 us on emission, so
            # a child may appear to outlive its parent by one rounding
            # step at each end.
            if stack and end > stack[-1][1] + 2e-3:
                fail(
                    f"{where} ('{name}' [{ts}, {end}]) overlaps but does "
                    f"not nest inside '{stack[-1][2]}' "
                    f"[{stack[-1][0]}, {stack[-1][1]}] on tid {e['tid']}"
                )
            stack.append((ts, end, name))
        elif ph == "B":
            open_b.setdefault((e["pid"], e["tid"]), []).append(name)
        elif ph == "E":
            stack = open_b.get((e["pid"], e["tid"]), [])
            if not stack:
                fail(f"{where} ('{name}') E without a matching B")
            stack.pop()

    for (pid, tid), stack in open_b.items():
        if stack:
            fail(
                f"unmatched B event(s) {stack} left open on "
                f"pid {pid} tid {tid}"
            )

    for want in args.expect:
        if not any(
            want in e.get("name", "")
            for e in events
            if isinstance(e, dict) and e.get("ph") != "M"
        ):
            fail(f"no non-metadata event name contains '{want}'")

    print(
        f"check_trace: OK: {counted} timeline event(s), "
        f"{len(events) - counted} metadata row(s)"
    )


if __name__ == "__main__":
    main()
