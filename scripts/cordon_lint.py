#!/usr/bin/env python3
"""Repo lint for invariants no compiler flag checks (docs/STATIC_ANALYSIS.md).

Rules
  R1 arena-discipline   no raw `new` or owning-vector growth inside a
                        solver round loop (a loop whose body calls
                        stats.add_round() or opens a telemetry::RoundSpan).
                        Suppress a deliberate allocation with
                        `// lint: allow-alloc (reason)`.
  R2 kernel-oracle      every vectorized kernel in src/core/kernels.hpp
                        has a same-name kernels::scalar reference, or an
                        explicit `// lint: oracle=<name>` pointing at the
                        scalar oracle it is tested against — and is
                        exercised by tests/test_kernels.cpp.
  R3 atomic-order       every std::atomic access in src/parallel/ spells
                        its memory_order explicitly and carries an
                        adjacent `// order:` comment justifying it.
  R4 telemetry-coverage every Counter/Gauge/Histogram symbol declared in
                        src/core/telemetry.hpp is used somewhere outside
                        that header, and every exported metric name is
                        documented in docs/OBSERVABILITY.md.
  R5 error-taxonomy     no bare `catch (...)` in production code (src/,
                        examples/, tools/) that swallows the exception:
                        the body must rethrow (`throw;`), inspect it
                        (std::current_exception), or convert it to a
                        core::SolveError — anything else erases failures
                        the docs/ROBUSTNESS.md taxonomy promises callers.
                        Suppress a deliberate swallow with
                        `// lint: allow-catch (reason)`.

Exit status: 0 clean, 1 violations (printed as path:line: R<n>: message),
2 usage/internal error.  `--fixtures` self-tests the rules against
tests/lint_fixtures/ — every fixture must trip exactly the rule named in
its `// lint-fixture: R<n>` header.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOLVER_DIRS = ["src/lis", "src/lcs", "src/glws", "src/kglws", "src/gap",
               "src/oat", "src/obst", "src/treeglws"]
PARALLEL_DIR = "src/parallel"
KERNELS_HPP = "src/core/kernels.hpp"
TELEMETRY_HPP = "src/core/telemetry.hpp"
KERNEL_TESTS = "tests/test_kernels.cpp"
OBSERVABILITY_MD = "docs/OBSERVABILITY.md"


class Violation:
    def __init__(self, path: str, line: int, rule: str, msg: str):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.msg}"


def strip_comments(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets and
    newlines so line numbers and brace matching stay valid."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append(text[i] if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_paren(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index just past the matching close bracket, or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def loop_body_span(stripped: str, kw_pos: int) -> tuple[int, int] | None:
    """Body span [start, end) of the loop statement starting at kw_pos."""
    paren = stripped.find("(", kw_pos)
    if paren == -1:
        return None
    after = match_paren(stripped, paren, "(", ")")
    j = after
    while j < len(stripped) and stripped[j] in " \t\n":
        j += 1
    if j >= len(stripped):
        return None
    if stripped[j] == "{":
        return (j, match_paren(stripped, j, "{", "}"))
    semi = stripped.find(";", j)
    return (j, len(stripped) if semi == -1 else semi + 1)


ROUND_MARK = re.compile(r"\badd_round\s*\(|\bRoundSpan\b")
GROWTH = re.compile(r"\bnew\b\s*[\w(\[]|\.(push_back|emplace_back|resize|"
                    r"reserve)\s*\(")
ALLOW_ALLOC = "lint: allow-alloc"


def check_r1(path: str, text: str) -> list[Violation]:
    """Round loops must not allocate (arena discipline)."""
    stripped = strip_comments(text)
    lines = text.splitlines()
    spans = []
    for m in re.finditer(r"\b(for|while)\s*\(", stripped):
        span = loop_body_span(stripped, m.start())
        if span and ROUND_MARK.search(stripped, span[0], span[1]):
            spans.append(span)
    out = []
    seen = set()
    for start, end in spans:
        for g in GROWTH.finditer(stripped, start, end):
            ln = line_of(stripped, g.start())
            if ln in seen:
                continue
            seen.add(ln)
            if ALLOW_ALLOC in lines[ln - 1]:
                continue
            what = g.group(0).strip().rstrip("(").strip()
            out.append(Violation(path, ln, "R1",
                                 f"'{what}' allocates inside a solver round "
                                 "loop; use the round arena or annotate "
                                 "'// lint: allow-alloc (reason)'"))
    return out


FUNC_DECL = re.compile(r"^\s*inline\s+[\w:<>,&*\s]+?\b(\w+)\s*\(",
                       re.MULTILINE)
ORACLE_NOTE = re.compile(r"lint:\s*oracle=(\w+)")


def check_r2(path: str, text: str, test_text: str) -> list[Violation]:
    """Every vectorized kernel has a scalar oracle and a reference test."""
    stripped = strip_comments(text)
    m = re.search(r"namespace\s+scalar\s*\{", stripped)
    if not m:
        return [Violation(path, 1, "R2", "no kernels::scalar namespace found")]
    s_start = m.end() - 1
    s_end = match_paren(stripped, s_start, "{", "}")

    scalar_names, kernel_decls = set(), []
    for fm in FUNC_DECL.finditer(stripped):
        name = fm.group(1)
        # Anchor on the name, not the match start: ^\s* can swallow the
        # blank/comment lines above the declaration in stripped text.
        if s_start <= fm.start() < s_end:
            scalar_names.add(name)
        elif fm.start() > s_end:
            kernel_decls.append((name, line_of(stripped, fm.start(1))))

    lines = text.splitlines()
    out = []
    for name, ln in kernel_decls:
        context = "\n".join(lines[max(0, ln - 4):ln])
        note = ORACLE_NOTE.search(context)
        oracle = note.group(1) if note else name
        if oracle not in scalar_names:
            out.append(Violation(path, ln, "R2",
                                 f"kernel '{name}' has no kernels::scalar "
                                 "oracle (add scalar::" + oracle + " or a "
                                 "'// lint: oracle=<name>' note)"))
        if not re.search(rf"\b{re.escape(name)}\s*[(<]", test_text):
            out.append(Violation(path, ln, "R2",
                                 f"kernel '{name}' is never exercised by "
                                 f"{KERNEL_TESTS}"))
    return out


ATOMIC_OP = re.compile(r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_or|"
                       r"fetch_and|compare_exchange_weak|"
                       r"compare_exchange_strong)\s*\(")


def check_r3(path: str, text: str) -> list[Violation]:
    """Atomic accesses spell their order and justify it."""
    stripped = strip_comments(text)
    lines = text.splitlines()
    out = []
    for m in ATOMIC_OP.finditer(stripped):
        op = m.group(1)
        open_paren = stripped.find("(", m.end() - 1)
        close = match_paren(stripped, open_paren, "(", ")")
        args = stripped[open_paren:close]
        first = line_of(stripped, m.start())
        last = line_of(stripped, close - 1)
        if "memory_order" not in args:
            out.append(Violation(path, first, "R3",
                                 f".{op}() relies on the default "
                                 "std::memory_order_seq_cst; spell the "
                                 "order explicitly"))
            continue
        window = "\n".join(lines[max(0, first - 5):last])
        if "// order:" not in window:
            out.append(Violation(path, first, "R3",
                                 f".{op}() has no adjacent '// order:' "
                                 "comment justifying its memory order"))
    return out


ENUM_BLOCK = re.compile(r"enum\s+class\s+(Counter|Gauge|Histogram)[^{]*\{")
METRIC_NAME = re.compile(r"\{\s*\"(cordon_\w+)\"")


def check_r4(path: str, text: str, usage_text: str,
             docs_text: str) -> list[Violation]:
    """Telemetry symbols are incremented somewhere and surfaced in docs."""
    stripped = strip_comments(text)
    out = []
    for bm in ENUM_BLOCK.finditer(stripped):
        body_end = match_paren(stripped, bm.end() - 1, "{", "}")
        body = stripped[bm.end():body_end - 1]
        base = line_of(stripped, bm.end())
        for i, raw in enumerate(body.split("\n")):
            sym = raw.strip().rstrip(",").strip()
            if not sym or sym == "kCount":
                continue
            if not re.fullmatch(r"k\w+", sym):
                continue
            if not re.search(rf"\b{re.escape(sym)}\b", usage_text):
                out.append(Violation(path, base + i, "R4",
                                     f"{bm.group(1)}::{sym} is declared but "
                                     "never updated outside telemetry.hpp"))
    for nm in METRIC_NAME.finditer(text):
        if nm.group(1) not in docs_text:
            out.append(Violation(path, line_of(text, nm.start()), "R4",
                                 f"metric '{nm.group(1)}' is exported but "
                                 f"not documented in {OBSERVABILITY_MD}"))
    return out


CATCH_ALL = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
CATCH_CONVERTS = re.compile(r"\bthrow\s*;|\bSolveError\b|"
                            r"std::current_exception")
ALLOW_CATCH = "lint: allow-catch"


def check_r5(path: str, text: str) -> list[Violation]:
    """Bare catch(...) must rethrow or convert to the SolveError taxonomy."""
    stripped = strip_comments(text)
    lines = text.splitlines()
    out = []
    for m in CATCH_ALL.finditer(stripped):
        brace = stripped.find("{", m.end())
        if brace == -1:
            continue
        end = match_paren(stripped, brace, "{", "}")
        if CATCH_CONVERTS.search(stripped, brace, end):
            continue
        first = line_of(stripped, m.start())
        last = line_of(stripped, end - 1)
        window = "\n".join(lines[max(0, first - 3):min(len(lines), last + 1)])
        if ALLOW_CATCH in window:
            continue
        out.append(Violation(path, first, "R5",
                             "bare 'catch (...)' swallows the exception; "
                             "rethrow ('throw;'), convert it to a "
                             "core::SolveError, or annotate "
                             "'// lint: allow-catch (reason)'"))
    return out


def source_files(root: pathlib.Path, rel_dirs: list[str]) -> list[pathlib.Path]:
    files = []
    for d in rel_dirs:
        p = root / d
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hpp")) + sorted(p.rglob("*.cpp")))
    return files


def lint_tree(root: pathlib.Path) -> list[Violation]:
    out = []
    for f in source_files(root, SOLVER_DIRS):
        out.extend(check_r1(str(f.relative_to(root)), f.read_text()))
    kernels = root / KERNELS_HPP
    tests = root / KERNEL_TESTS
    if kernels.is_file():
        out.extend(check_r2(KERNELS_HPP, kernels.read_text(),
                            tests.read_text() if tests.is_file() else ""))
    for f in source_files(root, [PARALLEL_DIR]):
        out.extend(check_r3(str(f.relative_to(root)), f.read_text()))
    telemetry = root / TELEMETRY_HPP
    if telemetry.is_file():
        usage = []
        for f in source_files(root, ["src", "tools"]):
            if f != telemetry:
                usage.append(f.read_text())
        docs = root / OBSERVABILITY_MD
        out.extend(check_r4(TELEMETRY_HPP, telemetry.read_text(),
                            "\n".join(usage),
                            docs.read_text() if docs.is_file() else ""))
    for f in source_files(root, ["src", "examples", "tools"]):
        out.extend(check_r5(str(f.relative_to(root)), f.read_text()))
    return out


FIXTURE_HEADER = re.compile(r"lint-fixture:\s*(R\d)")


def run_fixture(rule: str, path: str, text: str) -> list[Violation]:
    if rule == "R1":
        return check_r1(path, text)
    if rule == "R2":
        # Self-contained: the fixture supplies its own scalar namespace
        # and doubles as its own (empty-enough) test file.
        return check_r2(path, text, text)
    if rule == "R3":
        return check_r3(path, text)
    if rule == "R4":
        # Empty usage/docs context: the fixture's symbols must count as
        # unused and undocumented.
        return check_r4(path, text, "", "")
    if rule == "R5":
        return check_r5(path, text)
    raise ValueError(f"unknown rule {rule}")


def lint_fixtures(root: pathlib.Path) -> int:
    fixture_dir = root / "tests" / "lint_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + \
        sorted(fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"cordon_lint: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failed = 0
    for f in fixtures:
        text = f.read_text()
        m = FIXTURE_HEADER.search(text)
        if not m:
            print(f"{f}: missing '// lint-fixture: R<n>' header")
            failed += 1
            continue
        rule = m.group(1)
        hits = [v for v in run_fixture(rule, f.name, text) if v.rule == rule]
        if hits:
            print(f"fixture {f.name}: OK ({rule} fired {len(hits)}x)")
        else:
            print(f"fixture {f.name}: FAIL — expected {rule} to fire and it "
                  "did not")
            failed += 1
    return 1 if failed else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--fixtures", action="store_true",
                    help="self-test the rules against tests/lint_fixtures/")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "CMakeLists.txt").is_file():
        print(f"cordon_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    if args.fixtures:
        return lint_fixtures(root)
    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"cordon_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("cordon_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
