#!/usr/bin/env bash
# Regenerates the checked-in fuzzer seed corpus under tests/corpus/.
#
#   scripts/make_corpus.sh [build-dir]      (default: build)
#
# Two kinds of seed:
#   * generated — one canonical instance plus delta/pair seeds per
#     registered family, emitted by tools/corpus_gen.cpp so the corpus
#     tracks the wire format automatically;
#   * hostile — hand-written inputs pinning parser rejection paths
#     (bad magic, over-cap declarations, truncation, version and kind
#     mismatches, repricing deltas), written here so a regeneration
#     never loses them.
#
# The corpus is deliberately tiny: seeds exist to reach parser states,
# and the crash-regression ctest entries replay every file on every
# toolchain (see fuzz_replay_* in CMakeLists.txt).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
GEN="$BUILD/cordon_corpus_gen"
OUT="tests/corpus"

if [[ ! -x "$GEN" ]]; then
  echo "make_corpus.sh: $GEN not built (cmake --build $BUILD --target cordon_corpus_gen)" >&2
  exit 1
fi

rm -rf "$OUT"
"$GEN" "$OUT"

# --- hostile instance seeds --------------------------------------------------

# Wrong magic / wrong version / unknown kind: header rejection paths.
printf 'cordon-delta v1 lis\nvalues 1 7\nend\n' \
  > "$OUT/instance/hostile_wrong_magic.inst"
printf 'cordon-instance v9 lis\nvalues 1 7\nend\n' \
  > "$OUT/instance/hostile_bad_version.inst"
printf 'cordon-instance v1 nosuch\nvalues 1 7\nend\n' \
  > "$OUT/instance/hostile_unknown_kind.inst"

# Declared size far over kMaxDeclaredSize: the cap must reject before
# any allocation happens.
printf 'cordon-instance v1 lis\nvalues 99999999999999 1\nend\n' \
  > "$OUT/instance/hostile_overcap.inst"

# Truncations: mid-header, mid-body, missing end.
printf 'cordon-instance' > "$OUT/instance/hostile_trunc_header.inst"
printf 'cordon-instance v1 glws\nn 5' > "$OUT/instance/hostile_trunc_body.inst"
printf 'cordon-instance v1 lis\nvalues 3 1 2 3\n' \
  > "$OUT/instance/hostile_no_end.inst"

# Count/payload mismatch and non-numeric noise.
printf 'cordon-instance v1 lis\nvalues 5 1 2\nend\n' \
  > "$OUT/instance/hostile_short_payload.inst"
printf 'cordon-instance v1 lis\nvalues 2 1 banana\nend\n' \
  > "$OUT/instance/hostile_nonnumeric.inst"

# --- hostile delta seeds -----------------------------------------------------

# Over-cap op count: kMaxDeltaOps must fire on the declaration.
printf 'cordon-delta v1 lis 0\nvalues 99999999 1\nend\n' \
  > "$OUT/delta/hostile_overcap_ops.delta"

# Repricing appends the validator must reject (d0 / cost / k changes).
printf 'cordon-delta v1 glws 0\nn 4\nd0 2.5\ncost affine 1 1\nend\n' \
  > "$OUT/delta/hostile_reprice_d0.delta"
printf 'cordon-delta v1 kglws 0\nn 4\nk 3\ncost affine 1 1\nend\n' \
  > "$OUT/delta/hostile_reprice_k.delta"

# Kind mismatch: lis base, oat delta — apply must reject all-or-nothing.
printf 'cordon-instance v1 lis\nvalues 3 1 2\nend\n\0cordon-delta v1 oat 0\nweights 2 1 4\nend\n' \
  > "$OUT/delta/hostile_kind_mismatch.bin"

# Max base-version stamp: parses fine, only the session layer cares.
printf 'cordon-delta v1 lis 18446744073709551615\nvalues 1 7\nend\n' \
  > "$OUT/delta/hostile_version_max.delta"

# Empty and header-only inputs.
printf '' > "$OUT/delta/hostile_empty.delta"
printf 'cordon-delta v1 lis 0\n' > "$OUT/delta/hostile_header_only.delta"

echo "make_corpus.sh: corpus under $OUT:"
find "$OUT" -type f | wc -l
