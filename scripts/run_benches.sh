#!/usr/bin/env bash
# Runs the Release bench suite across a grid of worker counts and
# consolidates every bench's machine-readable records
# (CORDON_BENCH_JSON JSON-lines) into one trajectory file, so
# successive PRs can prove speedups — and scaling — against the
# committed baseline (BENCH_PR7.json at the repo root is the current
# one).  scripts/check_scaling.py consumes the output.
#
# Usage:
#   scripts/run_benches.sh [build-dir] [output.json]
#
# Environment:
#   CORDON_BENCH_THREADS  space-separated worker-count grid
#                         (default: "1 2 4 8", plus nproc when > 8)
#   CORDON_BENCH_N        problem size for the swept benches (default:
#                         per bench; set e.g. 20000 for a CI smoke)
#   CORDON_BENCH_GAP_N    problem size for bench_gap only (default 384 —
#                         gap is quadratic, one size does NOT fit all)
#   CORDON_BENCH_BATCH    engine-batch queue length
#   CORDON_BENCH_REPS     engine-batch repetitions
#   BENCHES               override of the thread-swept bench list
#   BENCHES_ONCE          override of the run-once bench list
#
# The build dir must have been configured with -DCORDON_BUILD_BENCH=ON
# (Release recommended: cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
#  -DCORDON_BUILD_BENCH=ON).
set -euo pipefail

BUILD_DIR="${1:-build-bench}"
OUT="${2:-BENCH_PR7.json}"

CORES="$(nproc)"
if [[ -n "${CORDON_BENCH_THREADS:-}" ]]; then
  GRID="$CORDON_BENCH_THREADS"
else
  GRID="1 2 4 8"
  if (( CORES > 8 )); then GRID="$GRID $CORES"; fi
fi

# Thread-swept set: the gated scaling families plus the engine batch
# path.  Run-once set: benches whose numbers don't vary with the pool
# size in an interesting way (the service bench manages its own pool;
# the incremental bench's resume path is per-append sequential work).
BENCHES="${BENCHES:-bench_fig7_glws bench_fig6_lcs bench_gap bench_engine_batch}"
BENCHES_ONCE="${BENCHES_ONCE:-bench_service bench_incremental}"
GAP_N="${CORDON_BENCH_GAP_N:-384}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release -DCORDON_BUILD_BENCH=ON" >&2
  echo "  cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Metadata header so trajectories from different machines are never
# compared silently.  `cores` is the physical core count of the runner:
# check_scaling.py only enforces the parallel-beats-sequential gate at
# thread counts the hardware can actually provide, and skips (loudly)
# when cores < the gate's thread floor.  Every bench record carries its
# own real `threads` value, stamped by the JsonEmitter from the live
# scheduler — the sweep never has to trust this header for that.
{
  printf '{"bench":"meta","host":"%s","cores":%s,"thread_grid":"%s","n":"%s","gap_n":"%s","date":"%s","git":"%s"}\n' \
    "$(uname -m)" \
    "$CORES" \
    "$GRID" \
    "${CORDON_BENCH_N:-default}" \
    "$GAP_N" \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
} > "$tmp"

for t in $GRID; do
  for bench in $BENCHES; do
    bin="$BUILD_DIR/$bench"
    if [[ ! -x "$bin" ]]; then
      echo "warning: $bin missing (configure with -DCORDON_BUILD_BENCH=ON); skipping" >&2
      continue
    fi
    echo "== $bench (threads=$t) =="
    if [[ "$bench" == "bench_gap" ]]; then
      CORDON_BENCH_N="$GAP_N" CORDON_NUM_THREADS="$t" \
        CORDON_BENCH_JSON="$tmp" "$bin"
    else
      CORDON_NUM_THREADS="$t" CORDON_BENCH_JSON="$tmp" "$bin"
    fi
  done
done

for bench in $BENCHES_ONCE; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "warning: $bin missing (configure with -DCORDON_BUILD_BENCH=ON); skipping" >&2
    continue
  fi
  echo "== $bench =="
  CORDON_BENCH_JSON="$tmp" "$bin"
done

mv "$tmp" "$OUT"
trap - EXIT
echo
echo "wrote $(wc -l < "$OUT") records to $OUT (thread grid: $GRID, cores: $CORES)"
