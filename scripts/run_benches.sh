#!/usr/bin/env bash
# Runs the Release bench suite and consolidates every bench's
# machine-readable records (CORDON_BENCH_JSON JSON-lines) into one
# trajectory file, so successive PRs can prove speedups against the
# committed baseline (BENCH_PR5.json at the repo root is the first one).
#
# Usage:
#   scripts/run_benches.sh [build-dir] [output.json]
#
# Environment:
#   CORDON_BENCH_N       problem size for every bench (default: per bench;
#                        set small, e.g. 20000, for a CI smoke)
#   CORDON_BENCH_BATCH   engine-batch queue length
#   CORDON_NUM_THREADS   worker threads
#   BENCHES              space-separated override of the bench list
#
# The build dir must have been configured with -DCORDON_BUILD_BENCH=ON
# (Release recommended: cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
#  -DCORDON_BUILD_BENCH=ON).
set -euo pipefail

BUILD_DIR="${1:-build-bench}"
OUT="${2:-BENCH_PR5.json}"

# The perf-relevant set: the engine/service hot paths plus every family
# bench that emits JSON records.
BENCHES="${BENCHES:-bench_engine_batch bench_fig7_glws bench_fig6_lcs bench_service}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release -DCORDON_BUILD_BENCH=ON" >&2
  echo "  cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Metadata header so trajectories from different machines are never
# compared silently.  `threads` is the actual worker count the scheduler
# will use (CORDON_NUM_THREADS, else the machine's core count) — the
# same number every record's "threads" field carries — and
# `cordon_num_threads` preserves the raw env setting ("unset" when the
# default applied), so multi-thread trajectories are trustworthy and
# reproducible.
{
  printf '{"bench":"meta","host":"%s","threads":%s,"cordon_num_threads":"%s","n":"%s","date":"%s","git":"%s"}\n' \
    "$(uname -m)" \
    "${CORDON_NUM_THREADS:-$(nproc)}" \
    "${CORDON_NUM_THREADS:-unset}" \
    "${CORDON_BENCH_N:-default}" \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
} > "$tmp"

for bench in $BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "warning: $bin missing (configure with -DCORDON_BUILD_BENCH=ON); skipping" >&2
    continue
  fi
  echo "== $bench =="
  CORDON_BENCH_JSON="$tmp" "$bin"
done

mv "$tmp" "$OUT"
trap - EXIT
echo
echo "wrote $(wc -l < "$OUT") records to $OUT"
