#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources.
#
#   scripts/run_tidy.sh [build-dir] [-- <extra clang-tidy args>]
#
# Needs a build dir configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the default configure does this) and a clang-tidy on PATH.  Exits 0
# when clang-tidy is unavailable so the CI step degrades to a no-op on
# toolchains without it; actual findings exit non-zero.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi
if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "run_tidy.sh: $BUILD/compile_commands.json missing — configure with" >&2
  echo "  cmake -B $BUILD -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

shift $(( $# > 0 ? 1 : 0 ))
[[ "${1:-}" == "--" ]] && shift

# First-party translation units only: third-party and generated code are
# not ours to lint, and headers are pulled in via HeaderFilterRegex.
mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp' 'fuzz/*.cpp' 'tools/*.cpp')

echo "run_tidy.sh: ${#SOURCES[@]} translation units, $("$TIDY" --version | head -1)"
"$TIDY" -p "$BUILD" --quiet "$@" "${SOURCES[@]}"
rc=$?
if [[ $rc -eq 0 ]]; then
  echo "run_tidy.sh: clean"
fi
exit $rc
