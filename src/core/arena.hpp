// Per-worker bump-pointer arenas: the zero-allocation substrate of every
// solve hot path.
//
// The problem this solves: each cordon round of every family solver needs
// O(frontier) scratch (sentinel flags, probe windows, tentative frontiers)
// and the steady state of a serving process runs millions of rounds —
// re-allocating that scratch from the global allocator each round turns
// the paper's span bounds into malloc-bound wall clock.  An `Arena` is a
// chunked bump allocator: allocation is a pointer bump, "free" is
// rewinding the bump mark, and the chunk memory is retained forever, so
// after the first few rounds of warm-up a round allocates nothing.
//
// Ownership model.  `worker_arena()` hands every thread its own arena:
//   * threads holding a live scheduler worker identity — pool workers AND
//     `ExternalWorkerScope` adopters — share a fixed registry indexed by
//     `parallel::worker_id()` (one slot per deque slot, cache-line
//     padded), so the arena warm-up survives across jobs, batches, and
//     pool restarts;
//   * outsider threads fall back to a `thread_local` arena that dies with
//     the thread.
// A worker slot is owned by exactly one live thread at a time (the
// scheduler's join / slot-CAS is the handoff synchronization), so arenas
// are deliberately NOT thread-safe: all operations are plain stores.
// Memory handed out by make_span may be read and written by other
// threads (parallel_for bodies fill spans owned by the forking thread);
// only allocate/rewind must stay on the owning thread.
//
// Nesting discipline.  `ArenaScope` is a LIFO epoch: it records the bump
// mark and rewinds to it on destruction.  Scopes compose across the
// scheduler's helping (a worker that steals a job inside wait_for runs it
// to completion before resuming, so the inner job's scope closes before
// the outer one's next allocation), which is what lets nested solvers —
// BatchExecutor -> family solver -> per-round scratch — share one arena
// without coordination.  Never hold a span across the end of the scope
// that allocated it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "src/core/audit.hpp"
#include "src/core/fault.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::core {

class Arena {
 public:
  /// First chunk size; later chunks double (up to kMaxChunkBytes) so a
  /// solver with a big working set settles into one chunk quickly.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 26;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A bump position; only meaningful with the arena that produced it.
  struct Mark {
    std::uint32_t chunk = 0;
    std::size_t offset = 0;
  };

  [[nodiscard]] Mark mark() const noexcept { return {cur_, off_}; }

  /// True when the bump position is at or past `m` — i.e. every
  /// allocation made under `m` is still below the current position.  A
  /// false answer at ArenaScope exit means some inner scope rewound
  /// past its parent's mark (broken LIFO nesting).
  [[nodiscard]] bool at_or_after(Mark m) const noexcept {
    return cur_ > m.chunk || (cur_ == m.chunk && off_ >= m.offset);
  }

  /// Pops every allocation made since `m` (LIFO).  Never releases chunk
  /// memory — that is the point: the next epoch re-bumps over warm pages.
  void rewind(Mark m) noexcept {
    cur_ = m.chunk;
    off_ = m.offset;
  }

  void reset() noexcept { rewind({0, 0}); }

  /// Raw allocation: `bytes` with at least `align` alignment.  O(1); the
  /// slow path (new chunk) runs only while the arena grows toward its
  /// high-water mark.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    CORDON_DCHECK(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
    // Chaos: simulate allocation failure.  Fires only from throw-safe
    // frames (never inside a parallel body); the enclosing ArenaScope's
    // rewind keeps the epoch discipline intact during unwind.
    CORDON_FAULT_POINT(fault::Site::kArenaAlloc, throw std::bad_alloc{});
    if (bytes == 0) bytes = 1;
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      std::uintptr_t base = reinterpret_cast<std::uintptr_t>(c.data.get());
      std::uintptr_t p = (base + off_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
      if (p + bytes <= base + c.size) {
        off_ = static_cast<std::size_t>(p + bytes - base);
        return reinterpret_cast<void*>(p);
      }
      // Chunk exhausted (or too small for this request): move on.  The
      // skipped tail is reclaimed by the next rewind below this mark.
      ++cur_;
      off_ = 0;
    }
    std::size_t want = chunks_.empty() ? kDefaultChunkBytes
                                       : std::min(chunks_.back().size * 2,
                                                  kMaxChunkBytes);
    if (want < bytes + align) want = bytes + align;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
    cur_ = static_cast<std::uint32_t>(chunks_.size() - 1);
    off_ = 0;
    return allocate(bytes, align);
  }

  /// Uninitialized scratch span of `n` trivially-destructible Ts.  The
  /// caller fills it (or uses the filling overload); nothing is ever
  /// destroyed, which is why non-trivial types are rejected at compile
  /// time.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena spans hold trivial scratch only");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Scratch span with every element set to `fill`.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t n, T fill) {
    std::span<T> s = make_span<T>(n);
    for (T& v : s) v = fill;
    return s;
  }

  /// Bytes currently reserved across all chunks (the retained high-water
  /// footprint — it never shrinks, by design).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Bytes live between the start and the current bump position.
  [[nodiscard]] std::size_t bytes_in_use() const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 0; i < cur_ && i < chunks_.size(); ++i)
      total += chunks_[i].size;
    return total + off_;
  }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::uint32_t cur_ = 0;   // chunk the bump pointer lives in
  std::size_t off_ = 0;     // bump offset within chunks_[cur_]
};

/// LIFO epoch guard: rewinds the arena to the mark taken at construction.
/// One scope per solve, one nested scope per round, is the house pattern:
/// round N+1 re-bumps over round N's memory instead of freeing it.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a) noexcept : arena_(a), mark_(a.mark()) {}
  ~ArenaScope() {
    // LIFO epoch balance: by destruction time every scope opened after
    // this one must have closed (and rewound), so the bump position
    // cannot sit below this scope's mark.
    CORDON_DCHECK(arena_.at_or_after(mark_),
                  "arena epoch closed out of LIFO order");
    arena_.rewind(mark_);
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  [[nodiscard]] Arena& arena() noexcept { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

namespace detail {

// Cache-line padded so two workers bumping adjacent slots never share a
// line.  128 covers the spatial prefetcher pairing on x86.
struct alignas(128) ArenaSlot {
  Arena arena;
};

}  // namespace detail

/// The calling thread's scratch arena (see the ownership model above).
/// Never throws once the registry exists; the registry itself is sized
/// once — num_workers() + kMaxExternalWorkers slots — and intentionally
/// leaked so pool threads alive at process exit cannot race its
/// destructor.  Pool restarts reuse the same slots (no growth, no leak).
inline Arena& worker_arena() {
  if (parallel::is_worker_thread()) {
    static std::vector<detail::ArenaSlot>& slots =
        *new std::vector<detail::ArenaSlot>(parallel::worker_slots());
    return slots[parallel::worker_id()].arena;
  }
  // Outsider (never forked, or stale after a pool restart): a private
  // arena that lives and dies with the thread.
  thread_local Arena local;
  return local;
}

/// Allocator adapter so standard containers can do their transient work
/// (batch assembly, group indices) inside an arena epoch: `allocate` is a
/// bump, `deallocate` is a no-op (the owning ArenaScope rewind reclaims
/// everything at once).  Containers using it must not outlive the scope.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& a) noexcept : arena_(&a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena_) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena_;
  }

  Arena* arena_;
};

/// Vector whose backing store lives in an arena epoch.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace cordon::core
