// cordon::core::audit — the compiled-in invariant layer.
//
// CORDON_DCHECK guards the load-bearing invariants of the hand-rolled
// concurrent and geometric structures (deque top/bottom ordering,
// eventcount epoch monotonicity, arena epoch LIFO balance, envelope
// convexity, threshold-frontier sortedness, session version linearity,
// cache pin refcounts).  The checks are active exactly where they pay
// for themselves — Debug builds and every sanitizer build, where a
// violation aborts loudly at the first broken invariant instead of
// surfacing as a downstream wrong answer — and compile to a true no-op
// in Release, the same contract as -DCORDON_TELEMETRY=OFF: the
// condition expression is still type-checked (unevaluated sizeof), so
// an invariant cannot rot behind the build flag, but no code is
// generated, which is what the native-bench overhead gate measures.
//
// Enablement, first match wins:
//   * -DCORDON_AUDIT=OFF (CORDON_AUDIT_DISABLED)  -> off everywhere
//   * -DCORDON_AUDIT=ON  (CORDON_AUDIT_FORCE)     -> on, any build type
//   * Debug builds (no NDEBUG)                    -> on
//   * ASan/TSan/UBSan compiled in                 -> on
//   * otherwise (Release/RelWithDebInfo)          -> off
//
// CORDON_AUDIT_SCOPE(...) registers statements to run at scope exit in
// audit builds (re-verifying an invariant after a mutation spree, e.g.
// lineage version linearity at the end of a session append); it expands
// to nothing when audits are off.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#if defined(CORDON_AUDIT_DISABLED)
#define CORDON_AUDIT_ENABLED 0
#elif defined(CORDON_AUDIT_FORCE)
#define CORDON_AUDIT_ENABLED 1
#elif !defined(NDEBUG)
#define CORDON_AUDIT_ENABLED 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CORDON_AUDIT_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define CORDON_AUDIT_ENABLED 1
#else
#define CORDON_AUDIT_ENABLED 0
#endif
#else
#define CORDON_AUDIT_ENABLED 0
#endif

namespace cordon::core::audit {

inline constexpr bool kEnabled = CORDON_AUDIT_ENABLED != 0;

#if CORDON_AUDIT_ENABLED

/// Checks evaluated since process start (all threads).  Lets tests
/// assert the layer is actually live in audit builds — a refactor that
/// silently compiles the checks out would read back zero.
inline std::atomic<std::uint64_t>& check_counter() noexcept {
  static std::atomic<std::uint64_t> n{0};
  return n;
}

inline std::uint64_t checks_run() noexcept {
  return check_counter().load(std::memory_order_relaxed);
}

inline void note_check() noexcept {
  check_counter().fetch_add(1, std::memory_order_relaxed);
}

/// Prints the broken invariant and aborts.  abort() (not throw): an
/// invariant failure means process state is already corrupt, and abort
/// is what sanitizer runners and libFuzzer turn into a reported crash
/// with a stack.
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const char* msg) {
  std::fprintf(stderr, "CORDON_DCHECK failed: %s\n  at %s:%d%s%s\n", expr,
               file, line, msg[0] != '\0' ? "\n  " : "", msg);
  std::fflush(stderr);
  std::abort();
}

/// Runs the registered statements at scope exit (CORDON_AUDIT_SCOPE).
template <typename F>
class ScopeCheck {
 public:
  explicit ScopeCheck(F f) noexcept : f_(std::move(f)) {}
  ~ScopeCheck() { f_(); }
  ScopeCheck(const ScopeCheck&) = delete;
  ScopeCheck& operator=(const ScopeCheck&) = delete;

 private:
  F f_;
};

#else  // !CORDON_AUDIT_ENABLED

inline std::uint64_t checks_run() noexcept { return 0; }

#endif

}  // namespace cordon::core::audit

#if CORDON_AUDIT_ENABLED

// Optional second argument: a string literal naming the invariant, e.g.
//   CORDON_DCHECK(t <= b, "deque top ran past bottom");
#define CORDON_DCHECK(cond, ...)                                        \
  do {                                                                  \
    ::cordon::core::audit::note_check();                                \
    if (!(cond)) [[unlikely]]                                           \
      ::cordon::core::audit::fail(#cond, __FILE__, __LINE__,            \
                                  "" __VA_ARGS__);                      \
  } while (0)

#define CORDON_AUDIT_DETAIL_CONCAT2(a, b) a##b
#define CORDON_AUDIT_DETAIL_CONCAT(a, b) CORDON_AUDIT_DETAIL_CONCAT2(a, b)

// Statements run at scope exit, e.g.
//   CORDON_AUDIT_SCOPE(CORDON_DCHECK(s.version == before + 1));
#define CORDON_AUDIT_SCOPE(...)                                         \
  ::cordon::core::audit::ScopeCheck CORDON_AUDIT_DETAIL_CONCAT(         \
      cordon_audit_scope_, __LINE__)([&]() { __VA_ARGS__; })

#else  // !CORDON_AUDIT_ENABLED

// Unevaluated sizeof keeps the condition type-checked at zero cost; the
// conditional operator forces a contextual bool conversion, so exactly
// the expressions the live macro accepts compile here too.
#define CORDON_DCHECK(cond, ...) \
  static_cast<void>(sizeof((cond) ? 1 : 0))

#define CORDON_AUDIT_SCOPE(...) \
  do {                          \
  } while (0)

#endif
