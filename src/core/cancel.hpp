// cordon::core — the typed failure surface: SolveError, deadlines, and
// cooperative cancellation.
//
// Every way a solve can fail is one of six SolveErrorCode values, and a
// failed future out of CordonService (or a failed BatchItem out of
// BatchExecutor) always carries a SolveError — never a bare
// std::runtime_error whose meaning the caller must parse out of what().
// SolveError still derives from std::runtime_error so pre-taxonomy
// callers keep working.
//
// Cancellation is cooperative: a CancelToken holds an explicit cancel
// flag plus an optional steady-clock deadline, and solvers poll it at
// round boundaries via poll_cancel() (hooked into telemetry::RoundSpan,
// which every family solver and ExplicitCordon constructs once per
// round).  The hot loop pays one thread-local pointer load per round
// when no token is installed, and one extra relaxed load when one is —
// the deadline clock is only read when a deadline was actually set.
//
// Throw-safety.  The scheduler's Job::run has no exception rail: an
// exception that unwinds past a stolen job's frame (or past a par_do
// that still has its right branch published on a deque) terminates the
// process or strands the joiner.  ThrowGate is a thread-local stack of
// "may I throw here?" frames: the scheduler marks job execution and
// in-flight forks unsafe, and BatchExecutor::solve_one — whose try/
// catch is the containment boundary every solve runs under — marks its
// scope safe again.  poll_cancel() and the fault layer's throwing
// injections both refuse to throw unless the innermost frame says it is
// safe, so a RoundSpan accidentally constructed inside a parallel body
// degrades to a no-op instead of a crash.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cordon::core {

/// The complete failure taxonomy for a solve request.
enum class SolveErrorCode : std::uint8_t {
  kInvalidArgument = 0,  // hostile/oversized instance, bad delta, bad kind
  kDeadlineExceeded = 1, // per-request deadline passed (before or mid-solve)
  kCancelled = 2,        // caller cancelled the token
  kShed = 3,             // admission control rejected under overload
  kShutdown = 4,         // service stopping; request not attempted
  kInternal = 5,         // solver invariant failure, resource exhaustion
};

constexpr const char* solve_error_name(SolveErrorCode c) noexcept {
  switch (c) {
    case SolveErrorCode::kInvalidArgument: return "invalid_argument";
    case SolveErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case SolveErrorCode::kCancelled: return "cancelled";
    case SolveErrorCode::kShed: return "shed";
    case SolveErrorCode::kShutdown: return "shutdown";
    case SolveErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// The one exception type a cordon solve is allowed to fail with.
/// `retry_after()` is a backpressure hint (zero = none): for kShed it
/// estimates when the queue will have drained enough to admit again.
class SolveError : public std::runtime_error {
 public:
  SolveError(SolveErrorCode code, const std::string& what,
             std::chrono::nanoseconds retry_after = std::chrono::nanoseconds{0})
      : std::runtime_error(std::string(solve_error_name(code)) + ": " + what),
        code_(code),
        retry_after_(retry_after) {}

  [[nodiscard]] SolveErrorCode code() const noexcept { return code_; }
  [[nodiscard]] std::chrono::nanoseconds retry_after() const noexcept {
    return retry_after_;
  }

 private:
  SolveErrorCode code_;
  std::chrono::nanoseconds retry_after_;
};

/// Cancellation + deadline state shared between a submitter and the
/// solve running on its behalf.  All operations are lock-free; cancel()
/// may race the solve arbitrarily (that is the point).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute steady-clock deadline; a zero time_point clears it.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(
        static_cast<std::uint64_t>(tp.time_since_epoch().count()),
        std::memory_order_relaxed);
  }

  void set_timeout(std::chrono::nanoseconds d) noexcept {
    set_deadline(std::chrono::steady_clock::now() + d);
  }

  /// Steady-clock deadline in ns since epoch; 0 = no deadline set.
  [[nodiscard]] std::uint64_t deadline_ns() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns() != 0;
  }

  [[nodiscard]] bool expired() const noexcept {
    std::uint64_t d = deadline_ns();
    if (d == 0) return false;
    return static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count()) >=
           d;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
};

namespace detail {

inline CancelToken*& tl_cancel_token() noexcept {
  thread_local CancelToken* token = nullptr;
  return token;
}

inline bool& tl_throw_safe() noexcept {
  // A thread starts throw-safe: a top-level caller of solve() owns its
  // own stack and may catch whatever propagates.
  thread_local bool safe = true;
  return safe;
}

}  // namespace detail

/// True when an exception thrown here propagates to a frame that can
/// contain it (see the header comment).  Consulted by poll_cancel() and
/// by every throwing fault injection.
[[nodiscard]] inline bool throw_safe() noexcept {
  return detail::tl_throw_safe();
}

/// Thread-local throw-safety frame (save/set/restore).  The scheduler
/// opens ThrowGate(false) around job execution and in-flight forks;
/// BatchExecutor::solve_one opens ThrowGate(true) inside its try block.
class ThrowGate {
 public:
  explicit ThrowGate(bool safe) noexcept : prev_(detail::tl_throw_safe()) {
    detail::tl_throw_safe() = safe;
  }
  ~ThrowGate() { detail::tl_throw_safe() = prev_; }
  ThrowGate(const ThrowGate&) = delete;
  ThrowGate& operator=(const ThrowGate&) = delete;

 private:
  bool prev_;
};

/// The token the current thread's solve is answering to (nullptr when
/// none).  Installed by CancelScope; stolen sub-jobs on other threads
/// see their own thread's value, so a poll never aborts a bystander.
[[nodiscard]] inline CancelToken* current_cancel_token() noexcept {
  return detail::tl_cancel_token();
}

/// Installs `t` as the calling thread's active token for the scope's
/// lifetime (save/restore, so nested solves — a worker helping another
/// batch item mid-join — compose correctly).
class CancelScope {
 public:
  explicit CancelScope(CancelToken* t) noexcept
      : prev_(detail::tl_cancel_token()) {
    detail::tl_cancel_token() = t;
  }
  ~CancelScope() { detail::tl_cancel_token() = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* prev_;
};

/// The per-round cancellation check.  No token installed: one
/// thread-local load.  Token installed: one relaxed load (plus a clock
/// read only when a deadline was set).  Throws SolveError from a
/// throw-safe frame; degrades to a no-op inside parallel regions (the
/// next safe round boundary picks the cancellation up).
inline void poll_cancel() {
  CancelToken* t = detail::tl_cancel_token();
  if (t == nullptr) return;
  if (!t->cancelled() && !t->expired()) return;
  if (!throw_safe()) return;
  if (t->cancelled())
    throw SolveError(SolveErrorCode::kCancelled, "solve cancelled mid-round");
  throw SolveError(SolveErrorCode::kDeadlineExceeded,
                   "deadline exceeded mid-round");
}

/// Amortized poll for the sequential fallback paths.  The `*_sequential`
/// algorithms have no round boundaries — on machines below a family's
/// min-worker floor they are the production path for arbitrarily large
/// instances, so without this they would be uncancellable.  tick() is an
/// increment and a predictable branch; one poll (a thread-local load,
/// usually nothing more) every `kStride` states bounds cancellation
/// latency to a few thousand relaxations' worth of work.
class PollTicker {
 public:
  void tick() {
    if (++n_ % kStride == 0) poll_cancel();
  }

 private:
  static constexpr std::uint32_t kStride = 4096;
  std::uint32_t n_ = 0;
};

}  // namespace cordon::core
