// The Cordon Algorithm framework (Sec. 2.3).
//
// Two layers:
//
// 1. `run_phase_parallel` — the thin generic driver.  Each specialized
//    algorithm (GLWS, LCS, GAP, ...) implements one phase-parallel
//    `round()` efficiently with its own data structures; the driver just
//    loops rounds and counts them.  This is deliberately minimal: the
//    paper's framework prescribes *what* a round computes (the frontier
//    delimited by sentinels), while efficiency comes from per-problem
//    structures.
//
// 2. `ExplicitCordon` — a literal, unoptimized execution of Steps 1-5 of
//    Sec. 2.3 over an explicit DpDag.  O(rounds * E) work; used as the
//    reference semantics in tests (Thm 2.1 correctness) and to measure
//    frontier structure on small instances.  Never used in benchmarks.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/arena.hpp"
#include "src/core/dp_dag.hpp"
#include "src/core/trace.hpp"
#include "src/core/dp_stats.hpp"
#include "src/core/kernels.hpp"

namespace cordon::core {

/// A phase-parallel problem exposes `done()` and one `round()` of work.
template <typename P>
concept PhaseParallelProblem = requires(P p) {
  { p.done() } -> std::convertible_to<bool>;
  p.round();
};

/// Runs rounds until completion; returns the number of rounds (the span
/// driver of every theorem in the paper).
template <PhaseParallelProblem P>
std::uint64_t run_phase_parallel(P& problem) {
  std::uint64_t rounds = 0;
  while (!problem.done()) {
    poll_cancel();  // round boundary: cancellation/deadline check
    telemetry::TraceSpan round_span("phase.round", "solver");
    telemetry::count(telemetry::Counter::kSolverRounds);
    problem.round();
    ++rounds;
  }
  return rounds;
}

/// Literal Steps 1-5 of the Cordon Algorithm over an explicit DAG.
///
/// Step 2 puts a sentinel on every tentative state that a *tentative*
/// state can successfully relax; a state is ready iff no sentinel sits on
/// any ancestor (inclusive).  Step 3 relaxes descendants of ready states;
/// Step 4 finalizes.  The per-round computation is the obvious O(E) pass
/// — this class pins down semantics — but the *execution* of that pass
/// has two bodies:
///   * run_affine(): when every edge is f(x) = x + w (all_affine(), the
///     serializable DAG family), edges live in CSR struct-of-arrays form
///     and the sentinel/relax inner loops are the masked gather kernels
///     of core/kernels.hpp over contiguous weight arrays, with all
///     per-round scratch carved from the worker arena;
///   * run_generic(): the original std::function-per-edge loop, kept as
///     the reference semantics for arbitrary transitions — and as the
///     scalar oracle the kernel path is tested against.
class ExplicitCordon {
 public:
  explicit ExplicitCordon(const DpDag& dag) : dag_(dag) {}

  struct Result {
    std::vector<double> values;
    std::vector<std::uint32_t> round_of;  // round in which each state finalized
    std::uint64_t rounds = 0;
  };

  [[nodiscard]] Result run() const {
    return dag_.all_affine() ? run_affine() : run_generic();
  }

  /// Kernelized execution over CSR SoA edges; requires all_affine().
  [[nodiscard]] Result run_affine() const {
    const std::size_t n = dag_.num_states();
    const std::size_t num_edges = dag_.num_edges();
    const bool minimize = dag_.objective() == Objective::kMin;
    const double worst = minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
    auto better = [&](double a, double b) { return minimize ? a < b : a > b; };

    Arena& arena = worker_arena();
    ArenaScope scratch(arena);

    // CSR by destination: in-edges of state i are the contiguous slice
    // [in_start[i], in_start[i+1]) of the src/weight SoA arrays.
    std::span<std::uint32_t> in_start =
        arena.make_span<std::uint32_t>(n + 1, std::uint32_t{0});
    std::span<std::uint32_t> in_src = arena.make_span<std::uint32_t>(num_edges);
    std::span<double> in_w = arena.make_span<double>(num_edges);
    for (const auto& e : dag_.edges()) ++in_start[e.dst + 1];
    for (std::size_t i = 0; i < n; ++i) in_start[i + 1] += in_start[i];
    {
      std::span<std::uint32_t> cursor = arena.make_span<std::uint32_t>(n);
      for (std::size_t i = 0; i < n; ++i) cursor[i] = in_start[i];
      for (const auto& e : dag_.edges()) {
        std::uint32_t at = cursor[e.dst]++;
        in_src[at] = e.src;
        in_w[at] = e.weight;
      }
    }

    // Step 1: tentative values are exactly the boundary conditions.
    std::vector<double> d(n, worst);
    for (auto& [state, value] : dag_.boundaries()) d[state] = value;

    std::span<std::uint8_t> finalized =
        arena.make_span<std::uint8_t>(n, std::uint8_t{0});
    std::span<std::uint8_t> tentative =
        arena.make_span<std::uint8_t>(n, std::uint8_t{1});
    std::span<std::uint8_t> blocked = arena.make_span<std::uint8_t>(n);
    Result res;
    res.round_of.assign(n, 0);

    auto in_count = [&](std::size_t i) {
      return static_cast<std::size_t>(in_start[i + 1] - in_start[i]);
    };
    auto tentative_best = [&](std::size_t i) {
      // Best relaxation of i from TENTATIVE sources only (Step 2).
      return minimize
                 ? kernels::min_gather_add(d.data(), in_src.data() + in_start[i],
                                           in_w.data() + in_start[i],
                                           tentative.data(), in_count(i))
                 : kernels::max_gather_add(d.data(), in_src.data() + in_start[i],
                                           in_w.data() + in_start[i],
                                           tentative.data(), in_count(i));
    };
    auto finalized_best = [&](std::size_t i) {
      // Best relaxation of i from FINALIZED sources only (Step 3).
      return minimize
                 ? kernels::min_gather_add(d.data(), in_src.data() + in_start[i],
                                           in_w.data() + in_start[i],
                                           finalized.data(), in_count(i))
                 : kernels::max_gather_add(d.data(), in_src.data() + in_start[i],
                                           in_w.data() + in_start[i],
                                           finalized.data(), in_count(i));
    };

    std::vector<std::uint32_t> frontier;  // reused every round
    std::size_t remaining = n;
    while (remaining > 0) {
      poll_cancel();  // round boundary: cancellation/deadline check
      ++res.rounds;
      telemetry::TraceSpan round_span("dag.round", "solver");
      telemetry::count(telemetry::Counter::kSolverRounds);
      // Step 2: sentinel iff some tentative source successfully relaxes
      // i; blocked = descendants (inclusive) of sentinel states — one
      // pass in state order suffices because src < dst on every edge.
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i] != 0) {
          blocked[i] = 0;
          continue;
        }
        bool sentinel = better(tentative_best(i), d[i]);
        blocked[i] =
            sentinel ||
            kernels::mask_gather_any(blocked.data(),
                                     in_src.data() + in_start[i], in_count(i));
      }
      // Steps 3+4: ready states finalize and relax their descendants.
      frontier.clear();
      for (std::uint32_t i = 0; i < n; ++i)
        if (finalized[i] == 0 && blocked[i] == 0) frontier.push_back(i);
      for (std::uint32_t i : frontier) {
        finalized[i] = 1;
        tentative[i] = 0;
        res.round_of[i] = static_cast<std::uint32_t>(res.rounds);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i] != 0) continue;
        double cand = finalized_best(i);
        if (better(cand, d[i])) d[i] = cand;
      }
      remaining -= frontier.size();
      if (frontier.empty()) throw_stuck(res.rounds, remaining, finalized);
    }
    res.values = std::move(d);
    return res;
  }

  /// Reference execution: one type-erased call per edge, scalar loops.
  [[nodiscard]] Result run_generic() const {
    const std::size_t n = dag_.num_states();
    const bool minimize = dag_.objective() == Objective::kMin;
    const double worst = minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
    auto better = [&](double a, double b) {
      return minimize ? a < b : a > b;
    };

    // Step 1: tentative values are exactly the boundary conditions —
    // including boundaries on states that also have incoming edges
    // (evaluate() treats those as relaxation candidates too, so the
    // cordon must start from the same values).
    std::vector<double> d(n, worst);
    for (auto& [state, value] : dag_.boundaries()) d[state] = value;

    std::vector<bool> finalized(n, false);
    Result res;
    res.round_of.assign(n, 0);

    // Bucket in-edges by destination so per-round passes visit states in
    // topological order (src < dst always holds).
    std::vector<std::vector<const DpDag::Edge*>> in(n);
    for (const auto& e : dag_.edges()) in[e.dst].push_back(&e);

    std::size_t remaining = n;
    while (remaining > 0) {
      poll_cancel();  // round boundary: cancellation/deadline check
      ++res.rounds;
      telemetry::TraceSpan round_span("dag.round", "solver");
      telemetry::count(telemetry::Counter::kSolverRounds);
      // Step 2: sentinels.  j tentative relaxing i tentative successfully.
      std::vector<bool> sentinel(n, false);
      // Blocked = descendants (inclusive) of sentinel states; a single
      // pass in state order suffices because src < dst for every edge.
      std::vector<bool> blocked(n, false);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src] && better(e->f(d[e->src]), d[i]))
            sentinel[i] = true;
          if (blocked[e->src]) blocked[i] = true;
        }
        if (sentinel[i]) blocked[i] = true;
      }
      // Steps 3+4: ready states finalize and relax their descendants.
      std::vector<std::uint32_t> frontier;
      for (std::uint32_t i = 0; i < n; ++i)
        if (!finalized[i] && !blocked[i]) frontier.push_back(i);
      for (std::uint32_t i : frontier) {
        finalized[i] = true;
        res.round_of[i] = static_cast<std::uint32_t>(res.rounds);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src]) continue;
          double cand = e->f(d[e->src]);
          if (better(cand, d[i])) d[i] = cand;
        }
      }
      remaining -= frontier.size();
      if (frontier.empty()) throw_stuck(res.rounds, remaining, finalized);
    }
    res.values = std::move(d);
    return res;
  }

 private:
  // Every well-formed DAG (src < dst on all edges) has a ready state
  // each round: the smallest unfinalized index can carry neither a
  // sentinel nor inherited blocking.  An empty frontier therefore means
  // the DAG violates an internal invariant; returning the partial values
  // would silently corrupt results.
  template <typename FinalizedMask>
  [[noreturn]] void throw_stuck(std::uint64_t rounds, std::size_t remaining,
                                const FinalizedMask& finalized) const {
    std::string msg = "ExplicitCordon: no ready state in round " +
                      std::to_string(rounds) + "; " +
                      std::to_string(remaining) + " state(s) stuck:";
    int listed = 0;
    for (std::uint32_t i = 0; i < dag_.num_states() && listed < 8; ++i) {
      if (!finalized[i]) {
        msg += ' ' + std::to_string(i);
        ++listed;
      }
    }
    if (remaining > 8) msg += " ...";
    throw std::runtime_error(msg);
  }

  const DpDag& dag_;
};

}  // namespace cordon::core
