// The Cordon Algorithm framework (Sec. 2.3).
//
// Two layers:
//
// 1. `run_phase_parallel` — the thin generic driver.  Each specialized
//    algorithm (GLWS, LCS, GAP, ...) implements one phase-parallel
//    `round()` efficiently with its own data structures; the driver just
//    loops rounds and counts them.  This is deliberately minimal: the
//    paper's framework prescribes *what* a round computes (the frontier
//    delimited by sentinels), while efficiency comes from per-problem
//    structures.
//
// 2. `ExplicitCordon` — a literal, unoptimized execution of Steps 1-5 of
//    Sec. 2.3 over an explicit DpDag.  O(rounds * E) work; used as the
//    reference semantics in tests (Thm 2.1 correctness) and to measure
//    frontier structure on small instances.  Never used in benchmarks.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/dp_dag.hpp"
#include "src/core/dp_stats.hpp"

namespace cordon::core {

/// A phase-parallel problem exposes `done()` and one `round()` of work.
template <typename P>
concept PhaseParallelProblem = requires(P p) {
  { p.done() } -> std::convertible_to<bool>;
  p.round();
};

/// Runs rounds until completion; returns the number of rounds (the span
/// driver of every theorem in the paper).
template <PhaseParallelProblem P>
std::uint64_t run_phase_parallel(P& problem) {
  std::uint64_t rounds = 0;
  while (!problem.done()) {
    problem.round();
    ++rounds;
  }
  return rounds;
}

/// Literal Steps 1-5 of the Cordon Algorithm over an explicit DAG.
///
/// Step 2 puts a sentinel on every tentative state that a *tentative*
/// state can successfully relax; a state is ready iff no sentinel sits on
/// any ancestor (inclusive).  Step 3 relaxes descendants of ready states;
/// Step 4 finalizes.  Everything here is the obvious O(E)-per-round
/// computation — this class exists to pin down semantics, not to be fast.
class ExplicitCordon {
 public:
  explicit ExplicitCordon(const DpDag& dag) : dag_(dag) {}

  struct Result {
    std::vector<double> values;
    std::vector<std::uint32_t> round_of;  // round in which each state finalized
    std::uint64_t rounds = 0;
  };

  [[nodiscard]] Result run() const {
    const std::size_t n = dag_.num_states();
    const bool minimize = dag_.objective() == Objective::kMin;
    const double worst = minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
    auto better = [&](double a, double b) {
      return minimize ? a < b : a > b;
    };

    // Step 1: tentative values from the boundary; we reproduce the
    // boundary by evaluating states with no incoming edges via the naive
    // oracle (boundary conditions are part of the DAG).
    std::vector<double> d(n, worst);
    {
      // Initial tentative values: run the boundary conditions only.
      // DpDag stores boundaries internally; evaluate() applies them before
      // any edge, so a zero-edge copy of the values is recovered by
      // evaluating and masking non-boundary states.  To avoid widening the
      // DpDag interface we recompute: a state with in-degree 0 keeps its
      // evaluated value as the boundary value.
      std::vector<double> all = dag_.evaluate();
      std::vector<std::uint32_t> indeg(n, 0);
      for (const auto& e : dag_.edges()) ++indeg[e.dst];
      for (std::size_t i = 0; i < n; ++i)
        if (indeg[i] == 0) d[i] = all[i];
    }

    std::vector<bool> finalized(n, false);
    Result res;
    res.round_of.assign(n, 0);

    // Bucket in-edges by destination so per-round passes visit states in
    // topological order (src < dst always holds).
    std::vector<std::vector<const DpDag::Edge*>> in(n);
    for (const auto& e : dag_.edges()) in[e.dst].push_back(&e);

    std::size_t remaining = n;
    while (remaining > 0) {
      ++res.rounds;
      // Step 2: sentinels.  j tentative relaxing i tentative successfully.
      std::vector<bool> sentinel(n, false);
      // Blocked = descendants (inclusive) of sentinel states; a single
      // pass in state order suffices because src < dst for every edge.
      std::vector<bool> blocked(n, false);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src] && better(e->f(d[e->src]), d[i]))
            sentinel[i] = true;
          if (blocked[e->src]) blocked[i] = true;
        }
        if (sentinel[i]) blocked[i] = true;
      }
      // Steps 3+4: ready states finalize and relax their descendants.
      std::vector<std::uint32_t> frontier;
      for (std::uint32_t i = 0; i < n; ++i)
        if (!finalized[i] && !blocked[i]) frontier.push_back(i);
      for (std::uint32_t i : frontier) {
        finalized[i] = true;
        res.round_of[i] = static_cast<std::uint32_t>(res.rounds);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src]) continue;
          double cand = e->f(d[e->src]);
          if (better(cand, d[i])) d[i] = cand;
        }
      }
      remaining -= frontier.size();
      if (frontier.empty()) break;  // defensive: malformed DAG
    }
    res.values = std::move(d);
    return res;
  }

 private:
  const DpDag& dag_;
};

}  // namespace cordon::core
