// The Cordon Algorithm framework (Sec. 2.3).
//
// Two layers:
//
// 1. `run_phase_parallel` — the thin generic driver.  Each specialized
//    algorithm (GLWS, LCS, GAP, ...) implements one phase-parallel
//    `round()` efficiently with its own data structures; the driver just
//    loops rounds and counts them.  This is deliberately minimal: the
//    paper's framework prescribes *what* a round computes (the frontier
//    delimited by sentinels), while efficiency comes from per-problem
//    structures.
//
// 2. `ExplicitCordon` — a literal, unoptimized execution of Steps 1-5 of
//    Sec. 2.3 over an explicit DpDag.  O(rounds * E) work; used as the
//    reference semantics in tests (Thm 2.1 correctness) and to measure
//    frontier structure on small instances.  Never used in benchmarks.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/dp_dag.hpp"
#include "src/core/dp_stats.hpp"

namespace cordon::core {

/// A phase-parallel problem exposes `done()` and one `round()` of work.
template <typename P>
concept PhaseParallelProblem = requires(P p) {
  { p.done() } -> std::convertible_to<bool>;
  p.round();
};

/// Runs rounds until completion; returns the number of rounds (the span
/// driver of every theorem in the paper).
template <PhaseParallelProblem P>
std::uint64_t run_phase_parallel(P& problem) {
  std::uint64_t rounds = 0;
  while (!problem.done()) {
    problem.round();
    ++rounds;
  }
  return rounds;
}

/// Literal Steps 1-5 of the Cordon Algorithm over an explicit DAG.
///
/// Step 2 puts a sentinel on every tentative state that a *tentative*
/// state can successfully relax; a state is ready iff no sentinel sits on
/// any ancestor (inclusive).  Step 3 relaxes descendants of ready states;
/// Step 4 finalizes.  Everything here is the obvious O(E)-per-round
/// computation — this class exists to pin down semantics, not to be fast.
class ExplicitCordon {
 public:
  explicit ExplicitCordon(const DpDag& dag) : dag_(dag) {}

  struct Result {
    std::vector<double> values;
    std::vector<std::uint32_t> round_of;  // round in which each state finalized
    std::uint64_t rounds = 0;
  };

  [[nodiscard]] Result run() const {
    const std::size_t n = dag_.num_states();
    const bool minimize = dag_.objective() == Objective::kMin;
    const double worst = minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
    auto better = [&](double a, double b) {
      return minimize ? a < b : a > b;
    };

    // Step 1: tentative values are exactly the boundary conditions —
    // including boundaries on states that also have incoming edges
    // (evaluate() treats those as relaxation candidates too, so the
    // cordon must start from the same values).
    std::vector<double> d(n, worst);
    for (auto& [state, value] : dag_.boundaries()) d[state] = value;

    std::vector<bool> finalized(n, false);
    Result res;
    res.round_of.assign(n, 0);

    // Bucket in-edges by destination so per-round passes visit states in
    // topological order (src < dst always holds).
    std::vector<std::vector<const DpDag::Edge*>> in(n);
    for (const auto& e : dag_.edges()) in[e.dst].push_back(&e);

    std::size_t remaining = n;
    while (remaining > 0) {
      ++res.rounds;
      // Step 2: sentinels.  j tentative relaxing i tentative successfully.
      std::vector<bool> sentinel(n, false);
      // Blocked = descendants (inclusive) of sentinel states; a single
      // pass in state order suffices because src < dst for every edge.
      std::vector<bool> blocked(n, false);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src] && better(e->f(d[e->src]), d[i]))
            sentinel[i] = true;
          if (blocked[e->src]) blocked[i] = true;
        }
        if (sentinel[i]) blocked[i] = true;
      }
      // Steps 3+4: ready states finalize and relax their descendants.
      std::vector<std::uint32_t> frontier;
      for (std::uint32_t i = 0; i < n; ++i)
        if (!finalized[i] && !blocked[i]) frontier.push_back(i);
      for (std::uint32_t i : frontier) {
        finalized[i] = true;
        res.round_of[i] = static_cast<std::uint32_t>(res.rounds);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (finalized[i]) continue;
        for (const DpDag::Edge* e : in[i]) {
          if (!finalized[e->src]) continue;
          double cand = e->f(d[e->src]);
          if (better(cand, d[i])) d[i] = cand;
        }
      }
      remaining -= frontier.size();
      if (frontier.empty()) {
        // Every well-formed DAG (src < dst on all edges) has a ready
        // state each round: the smallest unfinalized index can carry
        // neither a sentinel nor inherited blocking.  An empty frontier
        // therefore means the DAG violates an internal invariant;
        // returning the partial `d` would silently corrupt results.
        std::string msg = "ExplicitCordon: no ready state in round " +
                          std::to_string(res.rounds) + "; " +
                          std::to_string(remaining) +
                          " state(s) stuck:";
        int listed = 0;
        for (std::uint32_t i = 0; i < n && listed < 8; ++i) {
          if (!finalized[i]) {
            msg += ' ' + std::to_string(i);
            ++listed;
          }
        }
        if (remaining > 8) msg += " ...";
        throw std::runtime_error(msg);
      }
    }
    res.values = std::move(d);
    return res;
  }

 private:
  const DpDag& dag_;
};

}  // namespace cordon::core
