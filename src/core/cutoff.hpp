// Adaptive sequential-cutoff policy shared by the family solvers.
//
// The parallel algorithms pay a real constant factor over their
// sequential counterparts (envelope rebuilds, atomic frontiers, fork
// overhead) that only parallel hardware can buy back.  Each family
// therefore exposes a `*_auto` entry point that routes a solve to the
// plain sequential algorithm when there is nothing to buy it back with:
// when the effective parallelism is below the family's minimum
// beneficial worker count (single-worker pool, SequentialRegion, or
// just too few workers to amortize the family's constant factor) or
// when the instance is below a per-family work threshold.  This is what makes the 1-thread bench series match
// `sequential_s` for free and keeps small instances out of the
// scheduler entirely.
//
// A second, finer knob handles the high-round/low-work regime the
// thread sweep exposed (e.g. glws with k ~ n/4: thousands of rounds of
// ~150 relaxations each, which is pure scheduling overhead at any pool
// size): round fusion runs an individual round inline — under
// SequentialRegion, no forks — whenever the previous round's measured
// relaxation count falls below `fuse_relax_threshold()`.  The solver
// stays on the parallel path (`SolvePath::kParallel`); fused rounds are
// only visible in the kSolverFusedRounds telemetry counter.
//
// Every threshold is overridable per family through the environment
// (read on each call so tests can flip it at runtime):
//   CORDON_GLWS_CUTOFF / CORDON_LCS_CUTOFF / CORDON_GAP_CUTOFF /
//   CORDON_TREEGLWS_CUTOFF  — instance-size cutoffs, 0 disables the
//                             size test (parallelism test still applies)
//   CORDON_<FAMILY>_MIN_WORKERS — workers below which the family routes
//                             sequentially regardless of size
//   CORDON_FUSE_RELAX       — per-round relaxation floor for fusion,
//                             0 disables fusion
#pragma once

#include <cstddef>
#include <cstdlib>

#include "src/core/dp_stats.hpp"
#include "src/core/telemetry.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::core {

/// Per-family default size cutoffs (in the family's own work unit; see
/// each `*_auto` doc).  Chosen so that, at the measured ~2-3x 1-thread
/// overhead of the parallel paths, an instance below the cutoff cannot
/// win even on a fully parallel machine once fork/round overhead is
/// paid.  Tuning guidance lives in docs/SCALING.md.
inline constexpr std::size_t kGlwsSeqCutoff = 2048;      // n states
inline constexpr std::size_t kLcsSeqCutoff = 4096;       // matched pairs
inline constexpr std::size_t kGapSeqCutoff = 16384;      // dp cells
inline constexpr std::size_t kTreeGlwsSeqCutoff = 2048;  // tree nodes

/// Minimum worker count at which each family's parallel path can beat
/// its sequential algorithm, derived from the measured 1-thread
/// overhead factor of the parallel machinery (BENCH_PR5/PR7 baselines):
/// glws pays ~2.3x (envelope rebuilds) so 4 workers suffice; lcs
/// (~5.7x, tournament tree vs a threshold walk) and gap (~6x, staircase
/// probing + row/column envelope merges) need 8.  Below the family's
/// floor the `*_auto` entry points route sequentially — that IS the
/// right production answer on that machine, not a concession.
/// Overrides: CORDON_<FAMILY>_MIN_WORKERS.
inline constexpr std::size_t kGlwsMinWorkers = 4;
inline constexpr std::size_t kLcsMinWorkers = 8;
inline constexpr std::size_t kGapMinWorkers = 8;
inline constexpr std::size_t kTreeGlwsMinWorkers = 8;

/// Reads an environment override for a cutoff; absent/invalid values
/// fall back to `fallback`.  "0" is a valid override meaning "size test
/// disabled".  getenv on every call keeps the knob live for tests.
inline std::size_t cutoff_from_env(const char* env,
                                   std::size_t fallback) noexcept {
  if (const char* v = std::getenv(env)) {
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (end != v && parsed >= 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// The routing decision: sequential when fewer than `min_workers`
/// workers are effectively available (a pool the parallel path cannot
/// win on), or when the instance's work measure is under the (possibly
/// env-overridden) threshold.  Bumps kSolverSeqCutoffs when it routes
/// sequentially so telemetry shows the path.
inline bool use_sequential(std::size_t work, std::size_t threshold,
                           std::size_t min_workers = 2) noexcept {
  bool seq = parallel::effective_parallelism() < min_workers ||
             (threshold > 0 && work < threshold);
  if (seq) telemetry::count(telemetry::Counter::kSolverSeqCutoffs);
  return seq;
}

/// Default relaxations-per-round floor below which round fusion kicks
/// in.  A round this light is dominated by fork + frontier-rebuild
/// overhead at any worker count; running it inline costs at most
/// threshold relaxations of sequential work per round.
inline constexpr std::size_t kDefaultFuseRelax = 4096;

/// The live fusion threshold (CORDON_FUSE_RELAX override; 0 disables).
inline std::size_t fuse_relax_threshold() noexcept {
  return cutoff_from_env("CORDON_FUSE_RELAX", kDefaultFuseRelax);
}

/// Decides whether the NEXT round should run inline, given the measured
/// relaxation count of the previous round (pass ~SIZE_MAX before the
/// first round so it never fuses blind).  Bumps kSolverFusedRounds.
inline bool fuse_round(std::size_t prev_round_relaxations,
                       std::size_t threshold) noexcept {
  if (threshold == 0 || prev_round_relaxations >= threshold) return false;
  telemetry::count(telemetry::Counter::kSolverFusedRounds);
  return true;
}

}  // namespace cordon::core
