// Explicit DP DAG: the reference model of Sec. 1-2.
//
// States are integers 0..n-1 in topological order; an edge j -> i (j < i)
// carries a transition function value f_ij(D[j]).  This module provides
//   * a naive topological evaluator (the textbook DP) — the correctness
//     oracle every optimized/parallel algorithm is tested against, and
//   * effective-depth computation d^(G) (Sec. 2.2): the longest chain of
//     *effective* edges over any path, which lower-bounds the rounds of
//     any faithful parallelization and is what the span theorems are
//     parameterized by.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

namespace cordon::core {

enum class Objective { kMin, kMax };

/// An explicit DP DAG over states 0..n-1 (indices are a topological order).
/// Edge (src -> dst, f) means D[dst] can be relaxed with f(D[src]).
class DpDag {
 public:
  using Transition = std::function<double(double)>;

  struct Edge {
    std::uint32_t src;
    std::uint32_t dst;
    Transition f;
    bool effective = true;  // does the optimized sequential algorithm process it?
    bool affine = false;    // true iff f(x) == x + weight (weight below)
    double weight = 0;      // meaningful only when affine
  };

  DpDag(std::size_t n, Objective obj) : n_(n), objective_(obj) {}

  void add_edge(std::uint32_t src, std::uint32_t dst, Transition f,
                bool effective = true) {
    check_edge(src, dst);
    edges_.push_back({src, dst, std::move(f), effective, false, 0.0});
  }

  /// Affine transition f(x) = x + weight, recorded as data rather than
  /// code.  When EVERY edge is affine (all_affine()), ExplicitCordon runs
  /// its vectorized SoA path — gathered min-plus kernels over contiguous
  /// weight arrays — instead of calling one std::function per edge.
  void add_affine_edge(std::uint32_t src, std::uint32_t dst, double weight,
                       bool effective = true) {
    check_edge(src, dst);
    edges_.push_back({src, dst,
                      [weight](double x) { return x + weight; }, effective,
                      true, weight});
    ++affine_edges_;
  }

  /// True when every edge was added through add_affine_edge.
  [[nodiscard]] bool all_affine() const noexcept {
    return affine_edges_ == edges_.size();
  }

  void set_boundary(std::uint32_t state, double value) {
    boundary_.emplace_back(state, value);
  }

  [[nodiscard]] std::size_t num_states() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] Objective objective() const noexcept { return objective_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, double>>&
  boundaries() const noexcept {
    return boundary_;
  }

  /// Naive topological evaluation of the recurrence: processes every edge.
  /// The oracle for all optimized algorithms.
  [[nodiscard]] std::vector<double> evaluate() const {
    const double worst = objective_ == Objective::kMin
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
    std::vector<double> d(n_, worst);
    for (auto& [s, v] : boundary_) d[s] = v;
    // Edges sorted by dst would be ideal; a bucket pass keeps this O(V+E).
    std::vector<std::vector<const Edge*>> in(n_);
    for (const Edge& e : edges_) in[e.dst].push_back(&e);
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (const Edge* e : in[i]) {
        double cand = e->f(d[e->src]);
        if (objective_ == Objective::kMin ? cand < d[i] : cand > d[i])
          d[i] = cand;
      }
    }
    return d;
  }

  /// Effective depth d^(G): max number of effective edges on any path
  /// (Sec. 2.2).  Computed by DP over the topological order.
  [[nodiscard]] std::uint64_t effective_depth() const {
    std::vector<std::uint64_t> depth(n_, 0);
    std::vector<std::vector<const Edge*>> in(n_);
    for (const Edge& e : edges_) in[e.dst].push_back(&e);
    std::uint64_t best = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (const Edge* e : in[i]) {
        std::uint64_t cand = depth[e->src] + (e->effective ? 1 : 0);
        if (cand > depth[i]) depth[i] = cand;
      }
      if (depth[i] > best) best = depth[i];
    }
    return best;
  }

 private:
  void check_edge(std::uint32_t src, std::uint32_t dst) const {
    if (src >= dst) throw std::invalid_argument("DpDag: src must be < dst");
    if (dst >= n_) throw std::invalid_argument("DpDag: state out of range");
  }

  std::size_t n_;
  Objective objective_;
  std::vector<Edge> edges_;
  std::size_t affine_edges_ = 0;
  std::vector<std::pair<std::uint32_t, double>> boundary_;
};

}  // namespace cordon::core
