// Machine-independent work/span counters.
//
// Every algorithm in the library reports what it actually did: how many
// states it touched, how many transitions (relaxations) it evaluated, and
// how many phase-parallel rounds it ran.  These are the quantities the
// paper's theorems bound (work ~ relaxations x log n, span ~ rounds x
// polylog), so tests and benchmarks can check work-efficiency claims
// directly instead of inferring them from wall-clock on a particular
// machine.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace cordon::core {

/// One named stat value, the unit shared by every serialization of the
/// stats structs below: the stream operators, the service's
/// `metrics_text()` Prometheus exposition, and the bench JSON records
/// all iterate the same `to_json_fields()` arrays, so adding a field to
/// a struct propagates everywhere at once.  `monotonic` distinguishes
/// counters (exposed as `*_total`) from level/ratio gauges;
/// `integral` picks the stream formatting (counters print as integers,
/// ratios as doubles).
struct StatField {
  const char* name;
  double value;
  bool monotonic = true;
  bool integral = true;
};

namespace detail {

template <std::size_t N>
std::ostream& write_fields(std::ostream& os,
                           const std::array<StatField, N>& fields) {
  os << '{';
  for (std::size_t i = 0; i < N; ++i) {
    if (i != 0) os << ", ";
    os << fields[i].name << '=';
    if (fields[i].integral)
      os << static_cast<std::uint64_t>(fields[i].value);
    else
      os << fields[i].value;
  }
  return os << '}';
}

}  // namespace detail

/// Which algorithm actually produced a result.  The `*_auto` family
/// entry points record the routing decision of the adaptive sequential
/// cutoff (src/core/cutoff.hpp) here, and the engine surfaces it in
/// SolveResult so tests and benches can assert which path ran instead
/// of guessing from timings.
enum class SolvePath : std::uint8_t {
  kParallel = 0,          // phase-parallel cordon algorithm
  kSequentialCutoff = 1,  // sequential algorithm via the adaptive cutoff
  kResumed = 2,           // incremental re-solve from a session checkpoint
};

/// Stable label for JSON records and test messages.
inline const char* solve_path_name(SolvePath p) noexcept {
  switch (p) {
    case SolvePath::kSequentialCutoff:
      return "sequential_cutoff";
    case SolvePath::kResumed:
      return "resumed";
    default:
      return "parallel";
  }
}

/// Counters accumulated by one algorithm run.  `relaxations` counts cost
/// function / DP-value evaluations (the unit of "work" in the paper's
/// bounds); `states` counts state visits including wasted prefix-doubling
/// probes; `rounds` counts phase-parallel rounds (the span driver).
struct DpStats {
  std::uint64_t states = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t rounds = 0;

  DpStats& operator+=(const DpStats& o) {
    states += o.states;
    relaxations += o.relaxations;
    rounds += o.rounds;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const DpStats& s) {
  return os << "{states=" << s.states << ", relaxations=" << s.relaxations
            << ", rounds=" << s.rounds << "}";
}

/// Aggregate over a batch of independent solver requests (the engine's
/// BatchExecutor feeds one `add` per request).  Sums are work-like
/// quantities; maxima are span-like: `max_rounds` is the deepest request
/// (the batch's critical path in phase-parallel rounds) and
/// `max_effective_depth` the largest known effective depth d^(G) among
/// requests that report one (0 when none do).
struct BatchStats {
  std::uint64_t requests = 0;
  DpStats total;
  std::uint64_t max_rounds = 0;
  std::uint64_t max_effective_depth = 0;
  double total_latency_s = 0;
  double max_latency_s = 0;

  void add(const DpStats& s, double latency_s,
           std::uint64_t effective_depth = 0) {
    ++requests;
    total += s;
    if (s.rounds > max_rounds) max_rounds = s.rounds;
    if (effective_depth > max_effective_depth)
      max_effective_depth = effective_depth;
    total_latency_s += latency_s;
    if (latency_s > max_latency_s) max_latency_s = latency_s;
  }

  /// Merge another aggregate (the service folds one BatchExecutor report
  /// per dispatched batch into a lifetime total).
  BatchStats& operator+=(const BatchStats& o) {
    requests += o.requests;
    total += o.total;
    if (o.max_rounds > max_rounds) max_rounds = o.max_rounds;
    if (o.max_effective_depth > max_effective_depth)
      max_effective_depth = o.max_effective_depth;
    total_latency_s += o.total_latency_s;
    if (o.max_latency_s > max_latency_s) max_latency_s = o.max_latency_s;
    return *this;
  }

  [[nodiscard]] double mean_latency_s() const {
    return requests == 0 ? 0.0 : total_latency_s / static_cast<double>(requests);
  }
};

inline std::ostream& operator<<(std::ostream& os, const BatchStats& s) {
  return os << "{requests=" << s.requests << ", total=" << s.total
            << ", max_rounds=" << s.max_rounds
            << ", max_effective_depth=" << s.max_effective_depth
            << ", mean_latency_s=" << s.mean_latency_s()
            << ", max_latency_s=" << s.max_latency_s << "}";
}

/// Result-cache counters (the service layer's sharded LRU reports these;
/// shards each keep their own copy and `operator+=` folds them).  A hit
/// means a request was answered without running any solver.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    return *this;
  }

  [[nodiscard]] double hit_rate() const {
    std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  /// The canonical field list consumed by operator<< and metrics_text().
  [[nodiscard]] std::array<StatField, 5> to_json_fields() const {
    return {{{"hits", static_cast<double>(hits)},
             {"misses", static_cast<double>(misses)},
             {"insertions", static_cast<double>(insertions)},
             {"evictions", static_cast<double>(evictions)},
             {"hit_rate", hit_rate(), /*monotonic=*/false,
              /*integral=*/false}}};
  }
};

inline std::ostream& operator<<(std::ostream& os, const CacheStats& s) {
  return detail::write_fields(os, s.to_json_fields());
}

/// Admission-queue latency counters: how long requests sat between
/// `submit` and the dispatcher picking them up (the batching-window cost,
/// separate from solver latency which BatchStats tracks).
struct QueueStats {
  std::uint64_t enqueued = 0;
  double total_wait_s = 0;
  double max_wait_s = 0;

  void add(double wait_s) {
    ++enqueued;
    total_wait_s += wait_s;
    if (wait_s > max_wait_s) max_wait_s = wait_s;
  }

  QueueStats& operator+=(const QueueStats& o) {
    enqueued += o.enqueued;
    total_wait_s += o.total_wait_s;
    if (o.max_wait_s > max_wait_s) max_wait_s = o.max_wait_s;
    return *this;
  }

  [[nodiscard]] double mean_wait_s() const {
    return enqueued == 0 ? 0.0
                         : total_wait_s / static_cast<double>(enqueued);
  }

  /// The canonical field list consumed by operator<< and metrics_text().
  [[nodiscard]] std::array<StatField, 3> to_json_fields() const {
    return {{{"enqueued", static_cast<double>(enqueued)},
             {"mean_wait_s", mean_wait_s(), /*monotonic=*/false,
              /*integral=*/false},
             {"max_wait_s", max_wait_s, /*monotonic=*/false,
              /*integral=*/false}}};
  }
};

inline std::ostream& operator<<(std::ostream& os, const QueueStats& s) {
  return detail::write_fields(os, s.to_json_fields());
}

/// Thread-safe accumulator used inside parallel loops; convert to DpStats
/// at the end of a run.
struct AtomicDpStats {
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> relaxations{0};
  std::atomic<std::uint64_t> rounds{0};

  void add_states(std::uint64_t n) noexcept {
    states.fetch_add(n, std::memory_order_relaxed);
  }
  void add_relaxations(std::uint64_t n) noexcept {
    relaxations.fetch_add(n, std::memory_order_relaxed);
  }
  void add_round() noexcept { rounds.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] DpStats snapshot() const noexcept {
    return {states.load(std::memory_order_relaxed),
            relaxations.load(std::memory_order_relaxed),
            rounds.load(std::memory_order_relaxed)};
  }
};

}  // namespace cordon::core
