// Machine-independent work/span counters.
//
// Every algorithm in the library reports what it actually did: how many
// states it touched, how many transitions (relaxations) it evaluated, and
// how many phase-parallel rounds it ran.  These are the quantities the
// paper's theorems bound (work ~ relaxations x log n, span ~ rounds x
// polylog), so tests and benchmarks can check work-efficiency claims
// directly instead of inferring them from wall-clock on a particular
// machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace cordon::core {

/// Counters accumulated by one algorithm run.  `relaxations` counts cost
/// function / DP-value evaluations (the unit of "work" in the paper's
/// bounds); `states` counts state visits including wasted prefix-doubling
/// probes; `rounds` counts phase-parallel rounds (the span driver).
struct DpStats {
  std::uint64_t states = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t rounds = 0;

  DpStats& operator+=(const DpStats& o) {
    states += o.states;
    relaxations += o.relaxations;
    rounds += o.rounds;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const DpStats& s) {
  return os << "{states=" << s.states << ", relaxations=" << s.relaxations
            << ", rounds=" << s.rounds << "}";
}

/// Aggregate over a batch of independent solver requests (the engine's
/// BatchExecutor feeds one `add` per request).  Sums are work-like
/// quantities; maxima are span-like: `max_rounds` is the deepest request
/// (the batch's critical path in phase-parallel rounds) and
/// `max_effective_depth` the largest known effective depth d^(G) among
/// requests that report one (0 when none do).
struct BatchStats {
  std::uint64_t requests = 0;
  DpStats total;
  std::uint64_t max_rounds = 0;
  std::uint64_t max_effective_depth = 0;
  double total_latency_s = 0;
  double max_latency_s = 0;

  void add(const DpStats& s, double latency_s,
           std::uint64_t effective_depth = 0) {
    ++requests;
    total += s;
    if (s.rounds > max_rounds) max_rounds = s.rounds;
    if (effective_depth > max_effective_depth)
      max_effective_depth = effective_depth;
    total_latency_s += latency_s;
    if (latency_s > max_latency_s) max_latency_s = latency_s;
  }

  [[nodiscard]] double mean_latency_s() const {
    return requests == 0 ? 0.0 : total_latency_s / static_cast<double>(requests);
  }
};

inline std::ostream& operator<<(std::ostream& os, const BatchStats& s) {
  return os << "{requests=" << s.requests << ", total=" << s.total
            << ", max_rounds=" << s.max_rounds
            << ", max_effective_depth=" << s.max_effective_depth
            << ", mean_latency_s=" << s.mean_latency_s()
            << ", max_latency_s=" << s.max_latency_s << "}";
}

/// Thread-safe accumulator used inside parallel loops; convert to DpStats
/// at the end of a run.
struct AtomicDpStats {
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> relaxations{0};
  std::atomic<std::uint64_t> rounds{0};

  void add_states(std::uint64_t n) noexcept {
    states.fetch_add(n, std::memory_order_relaxed);
  }
  void add_relaxations(std::uint64_t n) noexcept {
    relaxations.fetch_add(n, std::memory_order_relaxed);
  }
  void add_round() noexcept { rounds.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] DpStats snapshot() const noexcept {
    return {states.load(std::memory_order_relaxed),
            relaxations.load(std::memory_order_relaxed),
            rounds.load(std::memory_order_relaxed)};
  }
};

}  // namespace cordon::core
