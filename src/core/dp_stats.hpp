// Machine-independent work/span counters.
//
// Every algorithm in the library reports what it actually did: how many
// states it touched, how many transitions (relaxations) it evaluated, and
// how many phase-parallel rounds it ran.  These are the quantities the
// paper's theorems bound (work ~ relaxations x log n, span ~ rounds x
// polylog), so tests and benchmarks can check work-efficiency claims
// directly instead of inferring them from wall-clock on a particular
// machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace cordon::core {

/// Counters accumulated by one algorithm run.  `relaxations` counts cost
/// function / DP-value evaluations (the unit of "work" in the paper's
/// bounds); `states` counts state visits including wasted prefix-doubling
/// probes; `rounds` counts phase-parallel rounds (the span driver).
struct DpStats {
  std::uint64_t states = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t rounds = 0;

  DpStats& operator+=(const DpStats& o) {
    states += o.states;
    relaxations += o.relaxations;
    rounds += o.rounds;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const DpStats& s) {
  return os << "{states=" << s.states << ", relaxations=" << s.relaxations
            << ", rounds=" << s.rounds << "}";
}

/// Aggregate over a batch of independent solver requests (the engine's
/// BatchExecutor feeds one `add` per request).  Sums are work-like
/// quantities; maxima are span-like: `max_rounds` is the deepest request
/// (the batch's critical path in phase-parallel rounds) and
/// `max_effective_depth` the largest known effective depth d^(G) among
/// requests that report one (0 when none do).
struct BatchStats {
  std::uint64_t requests = 0;
  DpStats total;
  std::uint64_t max_rounds = 0;
  std::uint64_t max_effective_depth = 0;
  double total_latency_s = 0;
  double max_latency_s = 0;

  void add(const DpStats& s, double latency_s,
           std::uint64_t effective_depth = 0) {
    ++requests;
    total += s;
    if (s.rounds > max_rounds) max_rounds = s.rounds;
    if (effective_depth > max_effective_depth)
      max_effective_depth = effective_depth;
    total_latency_s += latency_s;
    if (latency_s > max_latency_s) max_latency_s = latency_s;
  }

  /// Merge another aggregate (the service folds one BatchExecutor report
  /// per dispatched batch into a lifetime total).
  BatchStats& operator+=(const BatchStats& o) {
    requests += o.requests;
    total += o.total;
    if (o.max_rounds > max_rounds) max_rounds = o.max_rounds;
    if (o.max_effective_depth > max_effective_depth)
      max_effective_depth = o.max_effective_depth;
    total_latency_s += o.total_latency_s;
    if (o.max_latency_s > max_latency_s) max_latency_s = o.max_latency_s;
    return *this;
  }

  [[nodiscard]] double mean_latency_s() const {
    return requests == 0 ? 0.0 : total_latency_s / static_cast<double>(requests);
  }
};

inline std::ostream& operator<<(std::ostream& os, const BatchStats& s) {
  return os << "{requests=" << s.requests << ", total=" << s.total
            << ", max_rounds=" << s.max_rounds
            << ", max_effective_depth=" << s.max_effective_depth
            << ", mean_latency_s=" << s.mean_latency_s()
            << ", max_latency_s=" << s.max_latency_s << "}";
}

/// Result-cache counters (the service layer's sharded LRU reports these;
/// shards each keep their own copy and `operator+=` folds them).  A hit
/// means a request was answered without running any solver.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    return *this;
  }

  [[nodiscard]] double hit_rate() const {
    std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

inline std::ostream& operator<<(std::ostream& os, const CacheStats& s) {
  return os << "{hits=" << s.hits << ", misses=" << s.misses
            << ", insertions=" << s.insertions << ", evictions=" << s.evictions
            << ", hit_rate=" << s.hit_rate() << "}";
}

/// Admission-queue latency counters: how long requests sat between
/// `submit` and the dispatcher picking them up (the batching-window cost,
/// separate from solver latency which BatchStats tracks).
struct QueueStats {
  std::uint64_t enqueued = 0;
  double total_wait_s = 0;
  double max_wait_s = 0;

  void add(double wait_s) {
    ++enqueued;
    total_wait_s += wait_s;
    if (wait_s > max_wait_s) max_wait_s = wait_s;
  }

  QueueStats& operator+=(const QueueStats& o) {
    enqueued += o.enqueued;
    total_wait_s += o.total_wait_s;
    if (o.max_wait_s > max_wait_s) max_wait_s = o.max_wait_s;
    return *this;
  }

  [[nodiscard]] double mean_wait_s() const {
    return enqueued == 0 ? 0.0
                         : total_wait_s / static_cast<double>(enqueued);
  }
};

inline std::ostream& operator<<(std::ostream& os, const QueueStats& s) {
  return os << "{enqueued=" << s.enqueued
            << ", mean_wait_s=" << s.mean_wait_s()
            << ", max_wait_s=" << s.max_wait_s << "}";
}

/// Thread-safe accumulator used inside parallel loops; convert to DpStats
/// at the end of a run.
struct AtomicDpStats {
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> relaxations{0};
  std::atomic<std::uint64_t> rounds{0};

  void add_states(std::uint64_t n) noexcept {
    states.fetch_add(n, std::memory_order_relaxed);
  }
  void add_relaxations(std::uint64_t n) noexcept {
    relaxations.fetch_add(n, std::memory_order_relaxed);
  }
  void add_round() noexcept { rounds.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] DpStats snapshot() const noexcept {
    return {states.load(std::memory_order_relaxed),
            relaxations.load(std::memory_order_relaxed),
            rounds.load(std::memory_order_relaxed)};
  }
};

}  // namespace cordon::core
