// cordon::core::fault — seeded fault injection for chaos testing.
//
// A FaultPlan names a seed and a per-site injection rate (parts per
// million); arming it makes the five injection points scattered through
// the engine start failing on a deterministic schedule:
//
//   kArenaAlloc  — Arena::allocate throws std::bad_alloc (only from a
//                  throw-safe frame, see core/cancel.hpp — an allocation
//                  inside a parallel body is never failed)
//   kDeltaApply  — apply_delta_inplace rejects the delta (base instance
//                  left untouched, the all-or-nothing contract holds)
//   kCacheEvict  — ShardedLruCache::put evicts one extra (unpinned)
//                  entry first, simulating memory pressure
//   kJournalIo   — the session journal's write path reports an I/O
//                  failure (the append fails typed, the session is
//                  poisoned, durability falls back to the last record)
//   kWorkerWake  — the scheduler sleeps a few hundred µs before a
//                  notify, widening every park/wake race window.  A wake
//                  is delayed, never dropped: the lost-wakeup liveness
//                  argument stays intact.
//
// Determinism: each thread draws from its own mt19937_64 seeded from
// plan.seed ^ (thread ordinal), reseeded whenever a new plan is armed,
// so a plan replays the same per-thread decision stream (modulo OS
// scheduling, which no in-process harness controls).
//
// Arming: programmatic (fault::arm(plan) / fault::disarm()) for tests,
// or the CORDON_FAULT environment variable for whole-binary chaos runs:
//   CORDON_FAULT="seed=42,arena_alloc=500,journal_io=2000" ./cordon_cli …
// Site keys: arena_alloc, delta_apply, cache_evict, journal_io,
// worker_wake; values are rates in parts per million.
//
// Build gating: compiled out exactly like audit.hpp — live in Debug and
// sanitizer builds, forced with -DCORDON_FAULT=ON, absent from Release
// (the injection-point macros expand to nothing, which is what the
// bench overhead gate measures).  The query API stays callable in all
// builds so tests can GTEST_SKIP when the layer is compiled out.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>

#include "src/core/cancel.hpp"

#if defined(CORDON_FAULT_DISABLED)
#define CORDON_FAULT_ENABLED 0
#elif defined(CORDON_FAULT_FORCE)
#define CORDON_FAULT_ENABLED 1
#elif !defined(NDEBUG)
#define CORDON_FAULT_ENABLED 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CORDON_FAULT_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define CORDON_FAULT_ENABLED 1
#else
#define CORDON_FAULT_ENABLED 0
#endif
#else
#define CORDON_FAULT_ENABLED 0
#endif

namespace cordon::core::fault {

inline constexpr bool kEnabled = CORDON_FAULT_ENABLED != 0;

enum class Site : std::uint8_t {
  kArenaAlloc = 0,
  kDeltaApply = 1,
  kCacheEvict = 2,
  kJournalIo = 3,
  kWorkerWake = 4,
};
inline constexpr std::size_t kNumSites = 5;

constexpr const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::kArenaAlloc: return "arena_alloc";
    case Site::kDeltaApply: return "delta_apply";
    case Site::kCacheEvict: return "cache_evict";
    case Site::kJournalIo: return "journal_io";
    case Site::kWorkerWake: return "worker_wake";
  }
  return "unknown";
}

/// One chaos schedule: a seed plus per-site rates in parts per million
/// (0 = site disabled).  Immutable once armed.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::array<std::uint32_t, kNumSites> rate_ppm{};

  FaultPlan& with(Site s, std::uint32_t ppm) noexcept {
    rate_ppm[static_cast<std::size_t>(s)] = ppm;
    return *this;
  }
};

#if CORDON_FAULT_ENABLED

namespace detail {

/// The armed plan, published by pointer swap so readers never observe a
/// half-written plan.  Plans are intentionally leaked: a worker mid-draw
/// when disarm() lands must not read a destroyed plan.
inline std::atomic<const FaultPlan*>& active_plan() noexcept {
  static std::atomic<const FaultPlan*> p{nullptr};
  return p;
}

inline std::array<std::atomic<std::uint64_t>, kNumSites>&
injected_counters() noexcept {
  static std::array<std::atomic<std::uint64_t>, kNumSites> n{};
  return n;
}

inline std::uint64_t thread_ordinal() noexcept {
  static std::atomic<std::uint64_t> next{0};
  thread_local std::uint64_t ord =
      next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

/// Per-thread engine, reseeded whenever the armed plan changes (plan
/// identity is the pointer value — arm() always allocates fresh).
struct ThreadRng {
  const FaultPlan* plan = nullptr;
  std::mt19937_64 rng;
};

inline bool draw(const FaultPlan* plan, Site site) noexcept {
  std::uint32_t rate = plan->rate_ppm[static_cast<std::size_t>(site)];
  if (rate == 0) return false;
  thread_local ThreadRng t;
  if (t.plan != plan) {
    t.plan = plan;
    t.rng.seed(plan->seed ^ (0x9e3779b97f4a7c15ull * (thread_ordinal() + 1)));
  }
  return t.rng() % 1'000'000u < rate;
}

inline void parse_env_plan(FaultPlan& plan, const char* spec) noexcept {
  // "key=value,key=value"; unknown keys ignored, malformed values 0.
  const char* p = spec;
  while (*p != '\0') {
    const char* eq = std::strchr(p, '=');
    if (eq == nullptr) break;
    std::string key(p, static_cast<std::size_t>(eq - p));
    char* end = nullptr;
    unsigned long long val = std::strtoull(eq + 1, &end, 10);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(val);
    } else {
      for (std::size_t s = 0; s < kNumSites; ++s) {
        if (key == site_name(static_cast<Site>(s)))
          plan.rate_ppm[s] = static_cast<std::uint32_t>(val);
      }
    }
    p = (end != nullptr && *end == ',') ? end + 1 : (end != nullptr ? end : p);
    if (p == eq + 1) break;  // no progress: bail on garbage
    while (*p == ',') ++p;
  }
}

inline void arm_from_env() noexcept {
  static bool once = [] {
    const char* spec = std::getenv("CORDON_FAULT");
    if (spec == nullptr || *spec == '\0') return true;
    auto* plan = new FaultPlan;
    parse_env_plan(*plan, spec);
    active_plan().store(plan, std::memory_order_release);
    return true;
  }();
  (void)once;
}

}  // namespace detail

/// Arms `plan` for the whole process (replacing any armed plan) and
/// zeroes the injected counters.  Thread-safe against concurrent
/// should_inject callers; tests normally arm at a quiescent point.
inline void arm(const FaultPlan& plan) noexcept {
  for (auto& c : detail::injected_counters())
    c.store(0, std::memory_order_relaxed);
  detail::active_plan().store(new FaultPlan(plan), std::memory_order_release);
}

inline void disarm() noexcept {
  detail::active_plan().store(nullptr, std::memory_order_release);
}

[[nodiscard]] inline bool armed() noexcept {
  detail::arm_from_env();
  return detail::active_plan().load(std::memory_order_acquire) != nullptr;
}

/// Injections fired at `site` since the last arm().
[[nodiscard]] inline std::uint64_t injected(Site site) noexcept {
  return detail::injected_counters()[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t injected_total() noexcept {
  std::uint64_t total = 0;
  for (const auto& c : detail::injected_counters())
    total += c.load(std::memory_order_relaxed);
  return total;
}

/// One seeded draw at `site`.  Disarmed fast path: one relaxed load.
[[nodiscard]] inline bool should_inject(Site site) noexcept {
  detail::arm_from_env();
  const FaultPlan* plan =
      detail::active_plan().load(std::memory_order_acquire);
  if (plan == nullptr) [[likely]] return false;
  if (!detail::draw(plan, site)) return false;
  detail::injected_counters()[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

/// A draw that is only allowed to succeed where throwing is safe (see
/// core::throw_safe) — used by sites that fail by exception.
[[nodiscard]] inline bool should_throw(Site site) noexcept {
  if (!throw_safe()) return false;
  return should_inject(site);
}

/// Timing perturbation for the scheduler's wake paths: sleeps 50–250 µs
/// when the draw fires.  Never suppresses the wake itself.
inline void maybe_delay(Site site) noexcept {
  if (!should_inject(site)) return;
  thread_local std::uint64_t salt = 0;
  std::this_thread::sleep_for(
      std::chrono::microseconds(50 + (salt++ * 67) % 200));
}

#else  // !CORDON_FAULT_ENABLED

inline void arm(const FaultPlan&) noexcept {}
inline void disarm() noexcept {}
[[nodiscard]] inline bool armed() noexcept { return false; }
[[nodiscard]] inline std::uint64_t injected(Site) noexcept { return 0; }
[[nodiscard]] inline std::uint64_t injected_total() noexcept { return 0; }
[[nodiscard]] inline bool should_inject(Site) noexcept { return false; }
[[nodiscard]] inline bool should_throw(Site) noexcept { return false; }
inline void maybe_delay(Site) noexcept {}

#endif

}  // namespace cordon::core::fault

// Injection-point macros: zero tokens in Release so hot paths carry no
// disarmed-check cost there (the ≤2% bench gate); a single relaxed load
// per site when compiled in but disarmed.
#if CORDON_FAULT_ENABLED
#define CORDON_FAULT_POINT(site, stmt)                         \
  do {                                                         \
    if (::cordon::core::fault::should_throw(site)) [[unlikely]] \
      stmt;                                                    \
  } while (0)
#define CORDON_FAULT_CHECK(site) ::cordon::core::fault::should_inject(site)
#define CORDON_FAULT_DELAY(site) ::cordon::core::fault::maybe_delay(site)
#else
#define CORDON_FAULT_POINT(site, stmt) \
  do {                                 \
  } while (0)
#define CORDON_FAULT_CHECK(site) false
#define CORDON_FAULT_DELAY(site) \
  do {                           \
  } while (0)
#endif
