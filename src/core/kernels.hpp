// Tight relaxation kernels for the solve hot paths.
//
// Every cordon-round inner loop bottoms out in one of a handful of
// shapes: "min over a[i] + b[i]" (argmin of contiguous candidate arrays),
// the same with a stride or a gather (OBST columns, DAG in-edges), and
// bulk widen/scatter moves between SoA frontier arrays.  This header
// implements those shapes once, the way auto-vectorizers like them —
// contiguous loads, no early exits, branchless selects — and every SoA
// solver plus ExplicitCordon's inner relaxation calls them.
//
// Vectorization is a *hint*, never a semantic: `CORDON_SIMD_LOOP` expands
// to the strongest innocuous per-compiler loop pragma (clang loop /
// GCC ivdep; nothing when CORDON_DISABLE_SIMD_HINTS is defined) and the
// loops are written so the hint can only change speed.  The `scalar` namespace keeps the obvious
// branchy reference implementations; oracle tests assert the two agree
// bit-for-bit (inputs are NaN-free, and both sides reduce with the same
// exact `<` comparisons, so equality is exact, not approximate).
//
// Tie-breaking contract: argmin kernels return the LEFTMOST index
// attaining the minimum (matching every sequential `<`-guarded loop they
// replace); `argmin_add_last` returns the rightmost, which the concave
// envelope construction needs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/parallel/scheduler.hpp"

// Deliberately NOT `#pragma omp simd`: several hinted loops carry a
// scalar reduction (best = v < best ? v : best), which omp simd would
// require an explicit reduction clause for — without one the program is
// non-conforming and may miscompile under -fopenmp.  The clang/GCC
// hints below are safe for such loops: they assert no *memory*
// dependence between iterations (true here), and a register reduction
// is the compiler's to recognize or reject.
#if defined(CORDON_DISABLE_SIMD_HINTS)
#define CORDON_SIMD_LOOP
#elif defined(__clang__)
#define CORDON_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define CORDON_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define CORDON_SIMD_LOOP
#endif

namespace cordon::core::kernels {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct ArgMin {
  double value = kInf;
  std::size_t index = 0;
};

// --- scalar references ------------------------------------------------------
//
// The semantics the vectorized kernels must reproduce exactly.  Used by
// the kernel oracle tests and available to solvers as a fallback.

namespace scalar {

/// Leftmost argmin of a[i] + b[i] over [0, n).
inline ArgMin argmin_add(const double* a, const double* b, std::size_t n) {
  ArgMin best;
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i];
    if (v < best.value) {
      best.value = v;
      best.index = i;
    }
  }
  return best;
}

/// Rightmost argmin of a[i] + b[i] over [0, n) among finite sums (an
/// all-infinite input reports index 0, value kInf).
inline ArgMin argmin_add_last(const double* a, const double* b,
                              std::size_t n) {
  ArgMin best;
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i];
    if (v <= best.value && v < kInf) {
      best.value = v;
      best.index = i;
    }
  }
  return best;
}

/// Leftmost argmin of a[i] + b[i * stride] (OBST: row slice + column
/// slice of a row-major table).
inline ArgMin argmin_add_strided(const double* a, const double* b,
                                 std::size_t stride, std::size_t n) {
  ArgMin best;
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i * stride];
    if (v < best.value) {
      best.value = v;
      best.index = i;
    }
  }
  return best;
}

/// min over masked gathered relaxations: values[src[e]] + w[e] for edges
/// e in [0, n) whose source passes `mask` (mask[src[e]] != 0).  The DAG
/// relaxation pass: mask = finalized.
inline double min_gather_add(const double* values, const std::uint32_t* src,
                             const double* w, const std::uint8_t* mask,
                             std::size_t n) {
  double best = kInf;
  for (std::size_t e = 0; e < n; ++e) {
    if (mask != nullptr && mask[src[e]] == 0) continue;
    double v = values[src[e]] + w[e];
    if (v < best) best = v;
  }
  return best;
}

/// max variant of min_gather_add (DAGs with Objective::kMax).
inline double max_gather_add(const double* values, const std::uint32_t* src,
                             const double* w, const std::uint8_t* mask,
                             std::size_t n) {
  double best = -kInf;
  for (std::size_t e = 0; e < n; ++e) {
    if (mask != nullptr && mask[src[e]] == 0) continue;
    double v = values[src[e]] + w[e];
    if (v > best) best = v;
  }
  return best;
}

/// True iff mask[idx[e]] != 0 for any e in [0, n) (blocked-ancestor
/// propagation over gathered in-edge sources).
inline bool mask_gather_any(const std::uint8_t* mask, const std::uint32_t* idx,
                            std::size_t n) {
  for (std::size_t e = 0; e < n; ++e)
    if (mask[idx[e]] != 0) return true;
  return false;
}

/// dst[idx[k]] = value for k in [0, n) (frontier finalization scatter).
inline void scatter_fill(std::uint32_t* dst, const std::size_t* idx,
                         std::size_t n, std::uint32_t value) {
  for (std::size_t k = 0; k < n; ++k) dst[idx[k]] = value;
}

}  // namespace scalar

// --- vectorized kernels -----------------------------------------------------

/// Leftmost argmin of a[i] + b[i].  Two passes: a pure min-reduction
/// (vectorizes to minpd chains), then a first-match scan for the index —
/// recomputing a[i] + b[i] is deterministic, so the match is exact.
inline ArgMin argmin_add(const double* a, const double* b, std::size_t n) {
  if (n == 0) return {};
  double best = kInf;
  CORDON_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i];
    best = v < best ? v : best;
  }
  if (best == kInf) return scalar::argmin_add(a, b, n);  // all-inf row
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] + b[i] == best) {
      idx = i;
      break;
    }
  }
  return {best, idx};
}

/// Rightmost argmin of a[i] + b[i] among finite sums (ties prefer the
/// larger index; all-infinite input reports index 0, value kInf).
inline ArgMin argmin_add_last(const double* a, const double* b,
                              std::size_t n) {
  if (n == 0) return {};
  double best = kInf;
  CORDON_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i];
    best = v < best ? v : best;
  }
  if (best == kInf) return scalar::argmin_add_last(a, b, n);
  std::size_t idx = 0;
  for (std::size_t i = n; i > 0; --i) {
    if (a[i - 1] + b[i - 1] == best) {
      idx = i - 1;
      break;
    }
  }
  return {best, idx};
}

/// Leftmost argmin of a[i] + b[i * stride].  Single pass with branchless
/// selects: the strided side is a gather, which no vectorizer turns into
/// wide loads — so unlike the contiguous kernels above there is nothing
/// to gain from a min-then-find double pass, and the second pass would
/// be pure overhead.
inline ArgMin argmin_add_strided(const double* a, const double* b,
                                 std::size_t stride, std::size_t n) {
  ArgMin best{kInf, 0};
  for (std::size_t i = 0; i < n; ++i) {
    double v = a[i] + b[i * stride];
    bool take = v < best.value;
    best.value = take ? v : best.value;
    best.index = take ? i : best.index;
  }
  return best;
}

/// min over values[src[e]] + w[e] with a branchless source mask: masked-
/// out edges contribute +inf through a select instead of a branch.
inline double min_gather_add(const double* values, const std::uint32_t* src,
                             const double* w, const std::uint8_t* mask,
                             std::size_t n) {
  double best = kInf;
  if (mask == nullptr) {
    CORDON_SIMD_LOOP
    for (std::size_t e = 0; e < n; ++e) {
      double v = values[src[e]] + w[e];
      best = v < best ? v : best;
    }
  } else {
    CORDON_SIMD_LOOP
    for (std::size_t e = 0; e < n; ++e) {
      double v = mask[src[e]] != 0 ? values[src[e]] + w[e] : kInf;
      best = v < best ? v : best;
    }
  }
  return best;
}

/// max variant of min_gather_add.
inline double max_gather_add(const double* values, const std::uint32_t* src,
                             const double* w, const std::uint8_t* mask,
                             std::size_t n) {
  double best = -kInf;
  if (mask == nullptr) {
    CORDON_SIMD_LOOP
    for (std::size_t e = 0; e < n; ++e) {
      double v = values[src[e]] + w[e];
      best = v > best ? v : best;
    }
  } else {
    CORDON_SIMD_LOOP
    for (std::size_t e = 0; e < n; ++e) {
      double v = mask[src[e]] != 0 ? values[src[e]] + w[e] : -kInf;
      best = v > best ? v : best;
    }
  }
  return best;
}

/// dst[idx[k]] = value.
inline void scatter_fill(std::uint32_t* dst, const std::size_t* idx,
                         std::size_t n, std::uint32_t value) {
  CORDON_SIMD_LOOP
  for (std::size_t k = 0; k < n; ++k) dst[idx[k]] = value;
}

/// True iff mask[idx[e]] != 0 for any e in [0, n).  Branchless OR
/// accumulation (no early exit: in-edge lists are short and the straight
/// line beats a mispredicted break).
inline bool mask_gather_any(const std::uint8_t* mask, const std::uint32_t* idx,
                            std::size_t n) {
  std::uint8_t any = 0;
  CORDON_SIMD_LOOP
  for (std::size_t e = 0; e < n; ++e) any |= mask[idx[e]];
  return any != 0;
}

/// Parallel scatter_fill: blocks of `idx` are forked across the pool and
/// each block runs the contiguous kernel (the frontier-finalization
/// pattern of the LIS/LCS cordon rounds).  `idx` entries must be unique.
// lint: oracle=scatter_fill (pure block decomposition over that kernel)
inline void parallel_scatter_fill(std::uint32_t* dst, const std::size_t* idx,
                                  std::size_t n, std::uint32_t value) {
  constexpr std::size_t kBlock = 4096;
  std::size_t blocks = (n + kBlock - 1) / kBlock;
  parallel::parallel_for(
      0, blocks,
      [&](std::size_t b) {
        std::size_t lo = b * kBlock;
        scatter_fill(dst, idx + lo, std::min(n, lo + kBlock) - lo, value);
      },
      /*granularity=*/1, /*granularity_floor=*/1);
}

/// Leftmost argmin of f(i) for i in [lo, hi) — the templated escape hatch
/// for transition evaluators that are not (yet) raw arrays (type-erased
/// cost functions).  Single pass, branchless select; inlines to the array
/// kernels' codegen when f is a concrete capture.
// lint: oracle=argmin_add (same leftmost-< contract, f(i) for a[i]+b[i])
template <typename F>
inline ArgMin argmin_transform(std::size_t lo, std::size_t hi, const F& f) {
  ArgMin best{kInf, lo};
  for (std::size_t i = lo; i < hi; ++i) {
    double v = f(i);
    bool take = v < best.value;
    best.value = take ? v : best.value;
    best.index = take ? i : best.index;
  }
  return best;
}

/// argmin_transform with ties resolved toward the LARGER index (what the
/// concave envelope construction needs to stay consistent with DM).
// lint: oracle=argmin_add_last (same rightmost-tie contract via <=)
template <typename F>
inline ArgMin argmin_transform_last(std::size_t lo, std::size_t hi,
                                    const F& f) {
  ArgMin best{kInf, lo};
  for (std::size_t i = lo; i < hi; ++i) {
    double v = f(i);
    bool take = v <= best.value;
    best.value = take ? v : best.value;
    best.index = take ? i : best.index;
  }
  return best;
}

}  // namespace cordon::core::kernels
