// Validators for the structural preconditions of decision monotonicity
// (Sec. 4.1): the convex/concave Monge condition on a cost function and
// convex/concave total monotonicity of a matrix.
//
// Exhaustive checks are O(n^4) / O(n^2 m^2) and are used in tests for
// small n; sampled checks draw random quadruples and are used as cheap
// guards inside examples when a user supplies a custom cost function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/parallel/random.hpp"

namespace cordon::core {

/// w(j, i) defined for 0 <= j < i <= n.
using CostFn = std::function<double(std::size_t, std::size_t)>;

/// Convex Monge (quadrangle inequality, Eq. 5):
/// w(a,c) + w(b,d) <= w(b,c) + w(a,d) for a < b < c < d.
inline bool is_convex_monge_exhaustive(const CostFn& w, std::size_t n,
                                       double eps = 1e-9) {
  for (std::size_t a = 0; a + 3 <= n; ++a)
    for (std::size_t b = a + 1; b + 2 <= n; ++b)
      for (std::size_t c = b + 1; c + 1 <= n; ++c)
        for (std::size_t d = c + 1; d <= n; ++d)
          if (w(a, c) + w(b, d) > w(b, c) + w(a, d) + eps) return false;
  return true;
}

/// Concave Monge (inverse quadrangle inequality, Eq. 6).
inline bool is_concave_monge_exhaustive(const CostFn& w, std::size_t n,
                                        double eps = 1e-9) {
  for (std::size_t a = 0; a + 3 <= n; ++a)
    for (std::size_t b = a + 1; b + 2 <= n; ++b)
      for (std::size_t c = b + 1; c + 1 <= n; ++c)
        for (std::size_t d = c + 1; d <= n; ++d)
          if (w(a, c) + w(b, d) + eps < w(b, c) + w(a, d)) return false;
  return true;
}

/// Sampled convex-Monge check: draws `samples` random quadruples
/// a < b < c < d from [0, n].  Returns false on any violation.
inline bool is_convex_monge_sampled(const CostFn& w, std::size_t n,
                                    std::size_t samples,
                                    std::uint64_t seed = 42,
                                    double eps = 1e-9) {
  if (n < 3) return true;
  for (std::size_t s = 0; s < samples; ++s) {
    std::size_t x[4];
    for (int k = 0; k < 4; ++k)
      x[k] = parallel::uniform(seed, 4 * s + static_cast<std::size_t>(k),
                               n + 1);
    std::sort(x, x + 4);
    if (x[0] == x[1] || x[1] == x[2] || x[2] == x[3]) continue;
    if (w(x[0], x[2]) + w(x[1], x[3]) > w(x[1], x[2]) + w(x[0], x[3]) + eps)
      return false;
  }
  return true;
}

/// Convex total monotonicity of a matrix accessor A(row, col):
/// A(a,c) >= A(a,d) implies A(b,c) >= A(b,d) for a < b, c < d.
template <typename Matrix>
bool is_convex_totally_monotone(const Matrix& a, std::size_t rows,
                                std::size_t cols, double eps = 1e-9) {
  for (std::size_t r1 = 0; r1 < rows; ++r1)
    for (std::size_t r2 = r1 + 1; r2 < rows; ++r2)
      for (std::size_t c1 = 0; c1 < cols; ++c1)
        for (std::size_t c2 = c1 + 1; c2 < cols; ++c2)
          if (a(r1, c1) >= a(r1, c2) - eps && a(r2, c1) < a(r2, c2) - eps)
            return false;
  return true;
}

}  // namespace cordon::core
