// cordon::telemetry — the process-wide metrics registry.
//
// Always-on, low-overhead observability for the quantities the paper's
// theorems are about (rounds, relaxations, states) plus the scheduler
// and service behavior around them (steals, parks, wakes, batch
// windows, cache traffic).  Three metric kinds:
//
//   * Counter   — monotonic u64, `count(Counter::kSchedSteals)`.
//   * Gauge     — signed level tracked by +/- deltas,
//                 `gauge_add(Gauge::kServiceQueueDepth, +1)`; the
//                 snapshot value is the sum of all per-slot deltas, so
//                 increment/decrement pairs may land on different
//                 threads and still read back correctly.
//   * Histogram — log2-bucketed u64 samples (latencies in ns),
//                 `observe(Histogram::kServiceSubmitNs, ns)`; bucket i
//                 holds values with bit_width == i, i.e. [2^(i-1), 2^i).
//
// Storage model (the whole point): one cache-line-padded slot per
// scheduler worker slot — pool workers AND ExternalWorkerScope
// adopters, the same identity scheme as core::Arena's worker_arena() —
// plus one shared overflow slot for outsider threads.  A worker's
// update is a relaxed fetch_add on a line no other thread writes, so
// instrumenting a hot loop costs nanoseconds and never contends;
// `snapshot()` folds the slots into one coherent-enough view (relaxed
// reads: counters may be a few increments stale, never torn).
//
// The registry is created lazily and intentionally leaked (same
// reasoning as worker_arena(): pool threads alive at process exit must
// not race a destructor).  Compiling with CORDON_TELEMETRY_DISABLED
// (-DCORDON_TELEMETRY=OFF in CMake) turns every operation into a no-op
// so the overhead gate can measure the instrumented build against a
// true zero-telemetry baseline.
//
// The span tracer on top of these slots lives in src/core/trace.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cordon::telemetry {

#if defined(CORDON_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

enum class Counter : std::uint16_t {
  kSchedStealAttempts,  // victim deques probed (incl. empty probes)
  kSchedSteals,         // successful steals
  kSchedParks,          // workers committed to sleep on the eventcount
  kSchedWakes,          // wake notifications issued by work publishers
  kSchedJobsRun,        // jobs executed off a deque (stolen or helped)
  kSchedPushOverflows,  // full-deque pushes degraded to inline execution
  kSchedAdoptions,      // ExternalWorkerScope slots claimed
  kSolverRounds,        // phase-parallel rounds across all solvers
  kSolverStates,        // DpStats.states finalized across all solvers
  kSolverRelaxations,   // DpStats.relaxations across all solvers
  kSolverSeqCutoffs,    // solves routed to the sequential algorithm
  kSolverFusedRounds,   // low-work rounds run inline (round fusion)
  kEngineBatchRuns,     // BatchExecutor::run invocations
  kEngineSolves,        // requests admitted to a batch run
  kEngineSolveErrors,   // requests whose solver threw / kind unknown
  kEngineSolvesCancelled,  // solves aborted by cancellation or deadline
  kServiceSubmits,      // CordonService::submit calls admitted
  kServiceBatches,      // dispatcher batches executed
  kServiceCoalesced,    // duplicate requests merged inside a batch
  kServiceShed,         // requests rejected by admission control
  kServiceExpired,      // requests failed on a blown/unmeetable deadline
  kServiceCancelled,    // requests failed via their cancel token
  kSessionAppends,      // session append() calls accepted
  kSessionResumes,      // appends served from saved solver state
  kSessionColdSolves,   // appends that fell back to a cold solve
  kSessionJournalWrites, // durable journal records written
  kSessionJournalErrors, // journal write/open failures (session poisoned)
  kSessionsRecovered,   // sessions rebuilt by CordonService::recover
  kCount
};

enum class Gauge : std::uint16_t {
  kSchedDequeJobs,      // jobs currently published across all deques
  kSchedParkedWorkers,  // workers currently asleep in the OS
  kServiceQueueDepth,   // requests admitted but not yet dispatched
  kServiceOpenSessions, // solve sessions created and not yet closed
  kCount
};

enum class Histogram : std::uint16_t {
  kServiceSubmitNs,     // submit() wall time (serialize + hash + probe)
  kServiceQueueWaitNs,  // admission -> dispatch wait per request
  kServiceBatchSolveNs, // executor run per dispatched batch
  kServiceRejectWaitNs, // admission -> shed/expired/cancelled wait
  kSolverRoundNs,       // one solver round (recorded only while tracing)
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::kCount);

/// log2 buckets: index 0 is the value 0, index i >= 1 covers
/// [2^(i-1), 2^i).  40 buckets cover ns-resolution latencies up to
/// ~9 minutes; larger samples clamp into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 40;

/// Prometheus name + help line for one metric; the arrays below are
/// indexed by the enum values and the writer walks them in order.
struct MetricInfo {
  const char* name;
  const char* help;
};

inline constexpr std::array<MetricInfo, kNumCounters> kCounterInfo{{
    {"cordon_sched_steal_attempts_total",
     "Victim deques probed by idle or joining workers"},
    {"cordon_sched_steals_total", "Jobs successfully stolen"},
    {"cordon_sched_parks_total",
     "Times a worker committed to sleep on the eventcount"},
    {"cordon_sched_wakes_total",
     "Wake notifications issued after publishing work"},
    {"cordon_sched_jobs_total",
     "Jobs executed off a deque (stolen or helped; inline par_do fast "
     "path excluded)"},
    {"cordon_sched_push_overflows_total",
     "Full-deque pushes that degraded to inline execution"},
    {"cordon_sched_adoptions_total",
     "External worker slots claimed (ExternalWorkerScope)"},
    {"cordon_solver_rounds_total",
     "Phase-parallel rounds across all family solvers"},
    {"cordon_solver_states_total", "DP states finalized across all solvers"},
    {"cordon_solver_relaxations_total",
     "Cost-function evaluations across all solvers (the paper's work "
     "unit)"},
    {"cordon_solver_seq_cutoffs_total",
     "Solves routed to the sequential algorithm by the adaptive cutoff"},
    {"cordon_solver_fused_rounds_total",
     "Low-work rounds executed inline by round fusion"},
    {"cordon_engine_batch_runs_total", "BatchExecutor::run invocations"},
    {"cordon_engine_solves_total", "Requests admitted to a batch run"},
    {"cordon_engine_solve_errors_total",
     "Requests whose solver threw or whose kind was unknown"},
    {"cordon_engine_solves_cancelled_total",
     "Solves aborted mid-run by cancellation or a deadline"},
    {"cordon_service_submits_total", "CordonService::submit calls admitted"},
    {"cordon_service_batches_total", "Dispatcher batches executed"},
    {"cordon_service_coalesced_total",
     "Duplicate requests merged inside a batch"},
    {"cordon_service_shed_total",
     "Requests rejected by admission control (queue full or early shed)"},
    {"cordon_service_expired_total",
     "Requests failed on a deadline blown or unmeetable at dispatch"},
    {"cordon_service_cancelled_total",
     "Requests failed through their cancel token"},
    {"cordon_session_appends_total", "Session append() calls accepted"},
    {"cordon_session_resumes_total",
     "Appends served incrementally from saved solver state"},
    {"cordon_session_cold_solves_total",
     "Appends that fell back to a cold solve of the grown instance"},
    {"cordon_session_journal_writes_total",
     "Durable session-journal records written"},
    {"cordon_session_journal_errors_total",
     "Session-journal write or open failures (session poisoned)"},
    {"cordon_sessions_recovered_total",
     "Sessions rebuilt from journals by CordonService::recover"},
}};

inline constexpr std::array<MetricInfo, kNumGauges> kGaugeInfo{{
    {"cordon_sched_deque_jobs",
     "Jobs currently published across all worker deques"},
    {"cordon_sched_parked_workers", "Workers currently asleep in the OS"},
    {"cordon_service_queue_depth",
     "Requests admitted but not yet dispatched"},
    {"cordon_service_open_sessions",
     "Solve sessions created and not yet closed"},
}};

/// Histogram samples are recorded in nanoseconds; the writer exposes
/// them in seconds (hence the 1e-9 scale on every bucket bound).
inline constexpr std::array<MetricInfo, kNumHistograms> kHistogramInfo{{
    {"cordon_service_submit_latency_seconds",
     "submit() wall time: canonicalize, hash, cache probe, enqueue"},
    {"cordon_service_queue_wait_seconds",
     "Admission-to-dispatch wait per request (the batching-window cost)"},
    {"cordon_service_batch_solve_seconds",
     "BatchExecutor wall time per dispatched service batch"},
    {"cordon_service_reject_wait_seconds",
     "Admission-to-rejection wait for shed/expired/cancelled requests"},
    {"cordon_solver_round_seconds",
     "One phase-parallel solver round (recorded only while tracing is "
     "enabled)"},
}};

namespace detail {

// One writer at a time per worker slot (the scheduler's identity
// contract); the final shared slot absorbs outsider threads, which is
// why everything is atomic even though workers never contend.
struct alignas(128) MetricSlot {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::atomic<std::int64_t>, kNumGauges> gauges{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kNumHistograms>
      histogram_buckets{};
  std::array<std::atomic<std::uint64_t>, kNumHistograms> histogram_sums{};
};

/// Index of the calling thread's slot: worker id for live workers, the
/// extra shared slot for outsiders.
inline std::size_t slot_index() noexcept {
  return parallel::is_worker_thread() ? parallel::worker_id()
                                      : parallel::worker_slots();
}

/// The slot registry: worker_slots() + 1 entries, created on first use,
/// leaked on purpose (threads alive at exit must not race a dtor).
inline std::vector<MetricSlot>& registry() {
  static std::vector<MetricSlot>& slots =
      *new std::vector<MetricSlot>(parallel::worker_slots() + 1);
  return slots;
}

inline MetricSlot& slot() { return registry()[slot_index()]; }

}  // namespace detail

inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if constexpr (!kEnabled) return;
  detail::slot().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

inline void gauge_add(Gauge g, std::int64_t delta) noexcept {
  if constexpr (!kEnabled) return;
  detail::slot().gauges[static_cast<std::size_t>(g)].fetch_add(
      delta, std::memory_order_relaxed);
}

inline void observe(Histogram h, std::uint64_t value) noexcept {
  if constexpr (!kEnabled) return;
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
  detail::MetricSlot& s = detail::slot();
  s.histogram_buckets[static_cast<std::size_t>(h)][bucket].fetch_add(
      1, std::memory_order_relaxed);
  s.histogram_sums[static_cast<std::size_t>(h)].fetch_add(
      value, std::memory_order_relaxed);
}

/// A merged view of every slot, cheap to copy and subtract.  Counters
/// and histograms are monotonic so `delta_since` is exact; gauges are
/// levels and carry over unchanged.
struct Snapshot {
  struct HistogramView {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t sum = 0;

    [[nodiscard]] std::uint64_t count() const noexcept {
      std::uint64_t total = 0;
      for (std::uint64_t b : buckets) total += b;
      return total;
    }
  };

  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::int64_t, kNumGauges> gauges{};
  std::array<HistogramView, kNumHistograms> histograms{};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const HistogramView& histogram(Histogram h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }

  /// Monotonic metrics as the increase since `base`; gauges stay at
  /// this snapshot's (current) level.
  [[nodiscard]] Snapshot delta_since(const Snapshot& base) const noexcept {
    Snapshot d = *this;
    for (std::size_t i = 0; i < kNumCounters; ++i)
      d.counters[i] -= base.counters[i];
    for (std::size_t i = 0; i < kNumHistograms; ++i) {
      d.histograms[i].sum -= base.histograms[i].sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        d.histograms[i].buckets[b] -= base.histograms[i].buckets[b];
    }
    return d;
  }
};

/// Folds every slot (relaxed reads: a concurrent writer's increment may
/// be missed this snapshot and caught by the next — never torn).
inline Snapshot snapshot() {
  Snapshot out;
  if constexpr (!kEnabled) return out;
  for (const detail::MetricSlot& s : detail::registry()) {
    for (std::size_t i = 0; i < kNumCounters; ++i)
      out.counters[i] += s.counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumGauges; ++i)
      out.gauges[i] += s.gauges[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumHistograms; ++i) {
      out.histograms[i].sum +=
          s.histogram_sums[i].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        out.histograms[i].buckets[b] +=
            s.histogram_buckets[i][b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

/// Prometheus text exposition of one snapshot: every counter as
/// `*_total`, gauges as levels, histograms with cumulative `le` buckets
/// in seconds.  Empty trailing buckets are elided (the `+Inf` bucket is
/// always present).
inline void write_prometheus(std::ostream& os, const Snapshot& snap) {
  char buf[160];
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const MetricInfo& m = kCounterInfo[i];
    os << "# HELP " << m.name << ' ' << m.help << "\n# TYPE " << m.name
       << " counter\n"
       << m.name << ' ' << snap.counters[i] << '\n';
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const MetricInfo& m = kGaugeInfo[i];
    os << "# HELP " << m.name << ' ' << m.help << "\n# TYPE " << m.name
       << " gauge\n"
       << m.name << ' ' << snap.gauges[i] << '\n';
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const MetricInfo& m = kHistogramInfo[i];
    const Snapshot::HistogramView& h = snap.histograms[i];
    os << "# HELP " << m.name << ' ' << m.help << "\n# TYPE " << m.name
       << " histogram\n";
    std::size_t last = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      if (h.buckets[b] != 0) last = b;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      cumulative += h.buckets[b];
      // Upper bound of bucket b is 2^b ns (bucket 0 holds the value 0,
      // bound 1 ns), exposed in seconds.
      double le = static_cast<double>(b == 0 ? 1 : (std::uint64_t{1} << b)) *
                  1e-9;
      std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%.10g\"} %llu\n", m.name,
                    le, static_cast<unsigned long long>(cumulative));
      os << buf;
    }
    std::snprintf(buf, sizeof buf, "%s_bucket{le=\"+Inf\"} %llu\n", m.name,
                  static_cast<unsigned long long>(h.count()));
    os << buf;
    std::snprintf(buf, sizeof buf, "%s_sum %.10g\n%s_count %llu\n", m.name,
                  static_cast<double>(h.sum) * 1e-9, m.name,
                  static_cast<unsigned long long>(h.count()));
    os << buf;
  }
}

}  // namespace cordon::telemetry
