// cordon::telemetry — span tracing (chrome://tracing / Perfetto JSON).
//
// A per-worker-slot ring buffer of fixed-size events, written with
// relaxed atomics and dumped as a Chrome Trace Event Format JSON array
// that chrome://tracing and https://ui.perfetto.dev load directly.
// Spans are recorded as "X" (complete) events — one record carrying
// begin timestamp + duration, written at scope exit — so begin/end
// pairs are matched by construction and a wrapped ring can never strand
// half a span.  Point events ("wake", "adopt") are "i" instants.
//
// Recording costs two clock reads and one ring store per span and only
// happens while tracing is enabled, so instrumentation can sit in paths
// as hot as the scheduler's park/wake edges.  When the ring wraps, the
// oldest events are overwritten: a trace is the *most recent* window of
// activity per worker, sized by CORDON_TRACE_EVENTS (default 8192
// events/worker, rounded up to a power of two).
//
// Enabling:
//   * `CORDON_TRACE=trace.json ./cordon_cli solve ...` — tracing turns
//     on at first use and the trace is flushed to the file at process
//     exit (std::atexit).  Works for any binary, no CLI support needed.
//   * programmatic: `set_trace_enabled(true)` ... `trace_write_file(p)`.
//
// Thread-safety: every event field is a relaxed atomic, so a dump that
// races a writer reads torn-but-valid values (a garbled name pointer is
// impossible — names are static strings stored whole).  For coherent
// traces, dump at quiescence (after joins / service shutdown), which is
// what the atexit hook and the CLI both do.  Event name/category
// strings MUST have static storage duration; only the pointer is
// stored.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cancel.hpp"
#include "src/core/telemetry.hpp"

namespace cordon::telemetry {

namespace detail {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One ring entry.  `name == nullptr` marks a never-written slot.  All
// fields relaxed-atomic so a concurrent dump is race-free (see header
// comment for the torn-read contract).
struct TraceEvent {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<char> phase{'X'};
  std::atomic<const char*> arg_name0{nullptr};
  std::atomic<std::uint64_t> arg_val0{0};
  std::atomic<const char*> arg_name1{nullptr};
  std::atomic<std::uint64_t> arg_val1{0};
};

struct alignas(128) TraceRing {
  std::vector<TraceEvent> events;  // size set once at registry creation
  std::atomic<std::uint64_t> next{0};

  void record(const char* name, const char* cat, char phase,
              std::uint64_t ts_ns, std::uint64_t dur_ns,
              const char* an0, std::uint64_t av0, const char* an1,
              std::uint64_t av1) noexcept {
    std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
    TraceEvent& e = events[i & (events.size() - 1)];
    e.cat.store(cat, std::memory_order_relaxed);
    e.ts_ns.store(ts_ns, std::memory_order_relaxed);
    e.dur_ns.store(dur_ns, std::memory_order_relaxed);
    e.phase.store(phase, std::memory_order_relaxed);
    e.arg_name0.store(an0, std::memory_order_relaxed);
    e.arg_val0.store(av0, std::memory_order_relaxed);
    e.arg_name1.store(an1, std::memory_order_relaxed);
    e.arg_val1.store(av1, std::memory_order_relaxed);
    e.name.store(name, std::memory_order_relaxed);
  }
};

inline std::size_t ring_capacity() {
  static std::size_t cap = [] {
    std::size_t n = 8192;
    if (const char* s = std::getenv("CORDON_TRACE_EVENTS")) {
      long v = std::atol(s);
      if (v > 0) n = static_cast<std::size_t>(v);
    }
    return std::bit_ceil(n < 2 ? std::size_t{2} : n);
  }();
  return cap;
}

// Ring registry mirrors the metric-slot registry: one ring per worker
// slot plus a shared outsider ring, created lazily and leaked.
inline std::vector<TraceRing>& trace_rings() {
  static std::vector<TraceRing>& rings = *[] {
    auto* r = new std::vector<TraceRing>(parallel::worker_slots() + 1);
    for (TraceRing& ring : *r)
      ring.events = std::vector<TraceEvent>(ring_capacity());
    return r;
  }();
  return rings;
}

inline std::atomic<bool>& trace_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

void init_from_env();  // defined below, needs trace_write_file

}  // namespace detail

/// True while span/instant recording is armed.  First call consults the
/// CORDON_TRACE environment variable (which also registers an atexit
/// flush to the named file).
inline bool trace_enabled() noexcept {
  if constexpr (!kEnabled) return false;
  static bool env_checked = (detail::init_from_env(), true);
  (void)env_checked;
  return detail::trace_flag().load(std::memory_order_relaxed);
}

inline void set_trace_enabled(bool on) noexcept {
  if constexpr (!kEnabled) return;
  detail::trace_flag().store(on, std::memory_order_relaxed);
}

/// Drops all recorded events (test helper; not safe concurrently with
/// recording threads).
inline void trace_reset() {
  if constexpr (!kEnabled) return;
  for (detail::TraceRing& ring : detail::trace_rings()) {
    for (detail::TraceEvent& e : ring.events)
      e.name.store(nullptr, std::memory_order_relaxed);
    ring.next.store(0, std::memory_order_relaxed);
  }
}

/// Records a zero-duration instant event on the calling thread's track.
inline void trace_instant(const char* name, const char* cat) noexcept {
  if constexpr (!kEnabled) return;
  if (!trace_enabled()) return;
  detail::trace_rings()[detail::slot_index()].record(
      name, cat, 'i', detail::now_ns(), 0, nullptr, 0, nullptr, 0);
}

/// RAII span: records one "X" complete event covering the scope's
/// lifetime on the calling thread's track.  Costs nothing when tracing
/// is disabled at construction.  Up to two integer args attach to the
/// span (shown in the Perfetto detail pane); key strings must be
/// static.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) noexcept {
    if constexpr (!kEnabled) return;
    if (!trace_enabled()) return;
    name_ = name;
    cat_ = cat;
    start_ns_ = detail::now_ns();
  }

  TraceSpan& arg(const char* key, std::uint64_t value) noexcept {
    if (name_ == nullptr) return *this;
    if (arg_name0_ == nullptr) {
      arg_name0_ = key;
      arg_val0_ = value;
    } else {
      arg_name1_ = key;
      arg_val1_ = value;
    }
    return *this;
  }

  ~TraceSpan() {
    if constexpr (!kEnabled) return;
    if (name_ == nullptr) return;
    std::uint64_t end = detail::now_ns();
    detail::trace_rings()[detail::slot_index()].record(
        name_, cat_, 'X', start_ns_, end - start_ns_, arg_name0_, arg_val0_,
        arg_name1_, arg_val1_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is live (tracing was on at construction).
  [[nodiscard]] bool armed() const noexcept { return name_ != nullptr; }

  /// Begin timestamp (ns); 0 when not armed.
  [[nodiscard]] std::uint64_t start_ns() const noexcept { return start_ns_; }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  const char* arg_name0_ = nullptr;
  std::uint64_t arg_val0_ = 0;
  const char* arg_name1_ = nullptr;
  std::uint64_t arg_val1_ = 0;
};

namespace detail {

struct DumpEvent {
  const char* name;
  const char* cat;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  char phase;
  std::size_t tid;
  const char* arg_name0;
  std::uint64_t arg_val0;
  const char* arg_name1;
  std::uint64_t arg_val1;
};

inline void append_json_event(std::string& out, const DumpEvent& e) {
  char buf[256];
  // ts/dur are microseconds in the Trace Event Format; keep ns
  // precision with fractional µs.
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,"
                "\"tid\":%zu,\"ts\":%.3f",
                e.name, e.cat == nullptr ? "cordon" : e.cat, e.phase, e.tid,
                static_cast<double>(e.ts_ns) / 1000.0);
  out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
  }
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  if (e.arg_name0 != nullptr) {
    std::snprintf(buf, sizeof buf, ",\"args\":{\"%s\":%llu", e.arg_name0,
                  static_cast<unsigned long long>(e.arg_val0));
    out += buf;
    if (e.arg_name1 != nullptr) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%llu", e.arg_name1,
                    static_cast<unsigned long long>(e.arg_val1));
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

}  // namespace detail

/// Serializes every recorded event as a Trace Event Format JSON object:
/// `{"traceEvents":[...]}`.  Events are sorted by timestamp (ties:
/// longer spans first, so enclosing spans precede their children as the
/// format expects).  Call at quiescence for a coherent trace.
inline void trace_write(std::ostream& os) {
  std::vector<detail::DumpEvent> all;
  if constexpr (kEnabled) {
    std::vector<detail::TraceRing>& rings = detail::trace_rings();
    for (std::size_t tid = 0; tid < rings.size(); ++tid) {
      for (const detail::TraceEvent& e : rings[tid].events) {
        const char* name = e.name.load(std::memory_order_relaxed);
        if (name == nullptr) continue;
        all.push_back({name, e.cat.load(std::memory_order_relaxed),
                       e.ts_ns.load(std::memory_order_relaxed),
                       e.dur_ns.load(std::memory_order_relaxed),
                       e.phase.load(std::memory_order_relaxed), tid,
                       e.arg_name0.load(std::memory_order_relaxed),
                       e.arg_val0.load(std::memory_order_relaxed),
                       e.arg_name1.load(std::memory_order_relaxed),
                       e.arg_val1.load(std::memory_order_relaxed)});
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const detail::DumpEvent& a, const detail::DumpEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });

  std::string out;
  out.reserve(96 * all.size() + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows so Perfetto labels tracks meaningfully.
  std::size_t workers = parallel::num_workers();
  std::size_t slots = parallel::worker_slots();
  for (std::size_t tid = 0; tid <= slots; ++tid) {
    char buf[160];
    char label[48];
    if (tid < workers)
      std::snprintf(label, sizeof label, "worker %zu", tid);
    else if (tid < slots)
      std::snprintf(label, sizeof label, "external %zu", tid - workers);
    else
      std::snprintf(label, sizeof label, "outsider");
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid, label);
    out += buf;
    first = false;
  }
  for (const detail::DumpEvent& e : all) {
    if (!first) out += ',';
    first = false;
    detail::append_json_event(out, e);
  }
  out += "]}";
  os << out << '\n';
}

/// trace_write to a file; returns false if the file cannot be opened.
inline bool trace_write_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  trace_write(f);
  return f.good();
}

namespace detail {

inline void init_from_env() {
  static const char* path = std::getenv("CORDON_TRACE");
  if (path == nullptr || *path == '\0') return;
  trace_flag().store(true, std::memory_order_relaxed);
  static bool registered = [] {
    std::atexit([] {
      const char* p = std::getenv("CORDON_TRACE");
      if (p != nullptr && *p != '\0') trace_write_file(p);
    });
    return true;
  }();
  (void)registered;
}

}  // namespace detail

/// RAII span for one solver phase round.  Always bumps the global
/// round/state/relaxation counters (a handful of relaxed adds — cheap
/// enough for always-on); records a trace span with the round's
/// DpStats delta and a round-latency histogram sample only while
/// tracing is enabled, so the two extra clock reads stay off the
/// hot path of ~µs rounds.  Works with both core::DpStats and
/// core::AtomicDpStats via `.snapshot()`-free duck typing: the Stats
/// type must expose states/relaxations either as members (DpStats) or
/// via snapshot() (AtomicDpStats) — see the two constructors.
template <typename StatsT>
class RoundSpan {
 public:
  RoundSpan(const char* name, const StatsT& stats)
      : stats_(stats), span_(name, "solver") {
    // The per-round cancellation/deadline check rides the one hook every
    // solver already constructs each round; it must run even with
    // -DCORDON_TELEMETRY=OFF, so it sits before the kEnabled gate.  May
    // throw core::SolveError (hence this constructor is not noexcept);
    // round boundaries sit inside BatchExecutor's containment try or on
    // a top-level caller's stack, both throw-safe.
    core::poll_cancel();
    if constexpr (!kEnabled) return;
    auto base = read(stats);
    base_states_ = base.first;
    base_relax_ = base.second;
  }

  ~RoundSpan() {
    if constexpr (!kEnabled) return;
    count(Counter::kSolverRounds);
    auto now = read(stats_);
    std::uint64_t dstates = now.first - base_states_;
    std::uint64_t drelax = now.second - base_relax_;
    count(Counter::kSolverStates, dstates);
    count(Counter::kSolverRelaxations, drelax);
    if (span_.armed()) {
      span_.arg("states", dstates).arg("relaxations", drelax);
      observe(Histogram::kSolverRoundNs, detail::now_ns() - span_.start_ns());
      // dtor order: span_ destructs after this body, recording the event.
    }
  }

  RoundSpan(const RoundSpan&) = delete;
  RoundSpan& operator=(const RoundSpan&) = delete;

 private:
  template <typename S>
  static auto read(const S& s) noexcept
      -> std::pair<std::uint64_t, std::uint64_t> {
    if constexpr (requires { s.snapshot(); }) {
      auto snap = s.snapshot();
      return {static_cast<std::uint64_t>(snap.states),
              static_cast<std::uint64_t>(snap.relaxations)};
    } else {
      return {static_cast<std::uint64_t>(s.states),
              static_cast<std::uint64_t>(s.relaxations)};
    }
  }

  const StatsT& stats_;
  std::uint64_t base_states_ = 0;
  std::uint64_t base_relax_ = 0;
  TraceSpan span_;
};

}  // namespace cordon::telemetry
