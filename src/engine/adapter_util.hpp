// Deterministic input generation shared by the solver adapters'
// `generate` implementations.  Everything is a pure function of
// (seed, index) via the splitmix64 streams in src/parallel/random.hpp,
// so generated instances are reproducible across machines and runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/engine/instance.hpp"
#include "src/parallel/random.hpp"

namespace cordon::engine::detail {

inline std::vector<std::uint64_t> gen_values(std::uint64_t n,
                                             std::uint64_t seed,
                                             std::uint64_t bound) {
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i)
    v[i] = parallel::uniform(seed, i, bound);
  return v;
}

inline std::vector<std::uint32_t> gen_symbols(std::uint64_t n,
                                              std::uint64_t seed,
                                              std::uint64_t alphabet) {
  std::vector<std::uint32_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint32_t>(parallel::uniform(seed, i, alphabet));
  return v;
}

inline std::vector<double> gen_weights(std::uint64_t n, std::uint64_t seed,
                                       double lo, double hi) {
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i)
    v[i] = lo + parallel::uniform_double(seed, i) * (hi - lo);
  return v;
}

/// Random parent array of a rooted tree: parent[v] uniform in [0, v).
inline std::vector<std::uint32_t> gen_parents(std::uint64_t n,
                                              std::uint64_t seed) {
  std::vector<std::uint32_t> parent(n, 0xffffffffu);
  for (std::uint64_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::uint32_t>(parallel::uniform(seed, v, v));
  return parent;
}

/// Random serializable cost spec.  `convex_only` restricts to the
/// families the convex-only solvers (kGLWS, Tree-GLWS, GAP's evaluation)
/// accept.
inline CostSpec gen_cost(std::uint64_t seed, bool convex_only) {
  CostSpec c;
  std::uint64_t pick = parallel::uniform(seed, 0, convex_only ? 2 : 3);
  c.family = pick == 0   ? CostSpec::Family::kAffine
             : pick == 1 ? CostSpec::Family::kQuadratic
                         : CostSpec::Family::kLogarithmic;
  c.open = 1.0 + parallel::uniform_double(seed, 1) * 24.0;
  c.scale = 0.05 + parallel::uniform_double(seed, 2) * 2.0;
  return c;
}

}  // namespace cordon::engine::detail
