#include "src/engine/batch_executor.hpp"

#include <chrono>
#include <exception>

#include "src/parallel/scheduler.hpp"

namespace cordon::engine {

namespace {

BatchItem solve_one(const ProblemRegistry& reg, const Instance& inst,
                    bool use_reference) {
  BatchItem item;
  item.kind = inst.kind;
  auto t0 = std::chrono::steady_clock::now();
  try {
    const Solver& solver = reg.at(inst.kind);
    item.result = use_reference ? solver.solve_reference(inst)
                                : solver.solve(inst);
    item.ok = true;
  } catch (const std::exception& e) {
    item.error = e.what();
  }
  auto t1 = std::chrono::steady_clock::now();
  item.latency_s = std::chrono::duration<double>(t1 - t0).count();
  return item;
}

}  // namespace

BatchReport BatchExecutor::run(const std::vector<Instance>& queue,
                               const BatchOptions& opt) const {
  // Callers are often not pool workers (the service dispatcher, client
  // threads): adopt an external worker slot so the fan-out below forks
  // onto the shared pool instead of degrading to inline execution.
  // No-op when the calling thread already is a worker.
  parallel::ExternalWorkerScope adopt;

  BatchReport report;
  report.items.resize(queue.size());

  auto t0 = std::chrono::steady_clock::now();
  if (opt.parallel) {
    // Instances are expensive bodies: granularity 1, no floor, so even a
    // two-element queue forks.  Intra-instance parallelism nests below
    // this loop on the same scheduler.
    parallel::parallel_for(
        0, queue.size(),
        [&](std::size_t i) {
          report.items[i] = solve_one(*registry_, queue[i], opt.use_reference);
        },
        /*granularity=*/1, /*granularity_floor=*/1);
  } else {
    for (std::size_t i = 0; i < queue.size(); ++i)
      report.items[i] = solve_one(*registry_, queue[i], opt.use_reference);
  }
  auto t1 = std::chrono::steady_clock::now();
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();

  for (const BatchItem& item : report.items) {
    if (!item.ok) {
      ++report.failed;
      continue;
    }
    report.stats.add(item.result.stats, item.latency_s,
                     item.result.effective_depth);
  }
  return report;
}

}  // namespace cordon::engine
