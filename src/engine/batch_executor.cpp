#include "src/engine/batch_executor.hpp"

#include <chrono>
#include <exception>

#include "src/core/arena.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::engine {

namespace {

// Trace event names must have static storage (the ring stores the
// pointer, and the dump may happen after the Instance is gone): map the
// dynamic kind string onto the known family literals.
const char* solve_span_name(const std::string& kind) {
  static constexpr const char* kKnown[] = {"dag",  "gap", "glws",
                                           "kglws", "lcs", "lis",
                                           "oat",  "obst", "treeglws"};
  for (const char* k : kKnown)
    if (kind == k) return k;
  return "solve";
}

BatchItem solve_one(const ProblemRegistry& reg, const Instance& inst,
                    bool use_reference, core::CancelToken* token) {
  BatchItem item;
  item.kind = inst.kind;
  telemetry::TraceSpan span(solve_span_name(inst.kind), "engine");
  auto t0 = std::chrono::steady_clock::now();
  // This try block is the containment boundary every solve runs under:
  // whatever a solver, parser, or fault injection throws is folded into
  // the SolveError taxonomy here and never escapes as an exception.
  try {
    // Within the try, throwing is safe again even when this body runs
    // as a stolen job (the catch below contains the unwind), and the
    // request's token governs the round-boundary polls.
    core::ThrowGate throw_ok(true);
    core::CancelScope cancel(token);
    core::poll_cancel();  // deadline already blown / cancelled pre-solve
    const Solver& solver = reg.at(inst.kind);
    item.result = use_reference ? solver.solve_reference(inst)
                                : solver.solve(inst);
    item.ok = true;
  } catch (const core::SolveError& e) {
    item.code = e.code();
    item.error = e.what();
  } catch (const std::invalid_argument& e) {
    item.code = core::SolveErrorCode::kInvalidArgument;
    item.error = e.what();
  } catch (const std::out_of_range& e) {
    // ProblemRegistry::at on an unknown kind.
    item.code = core::SolveErrorCode::kInvalidArgument;
    item.error = e.what();
  } catch (const std::bad_alloc&) {
    item.code = core::SolveErrorCode::kInternal;
    item.error = "allocation failed";
  } catch (const std::exception& e) {
    // ExplicitCordon's stuck-state throw and any other solver
    // invariant failure.
    item.code = core::SolveErrorCode::kInternal;
    item.error = e.what();
  }
  if (!item.ok && (item.code == core::SolveErrorCode::kCancelled ||
                   item.code == core::SolveErrorCode::kDeadlineExceeded))
    telemetry::count(telemetry::Counter::kEngineSolvesCancelled);
  auto t1 = std::chrono::steady_clock::now();
  item.latency_s = std::chrono::duration<double>(t1 - t0).count();
  return item;
}

}  // namespace

BatchReport BatchExecutor::run(std::span<const Instance> queue,
                               const BatchOptions& opt) const {
  // Callers are often not pool workers (the service dispatcher, client
  // threads): adopt an external worker slot so the fan-out below forks
  // onto the shared pool instead of degrading to inline execution.
  // No-op when the calling thread already is a worker.
  parallel::ExternalWorkerScope adopt;

  telemetry::count(telemetry::Counter::kEngineBatchRuns);
  telemetry::count(telemetry::Counter::kEngineSolves, queue.size());
  telemetry::TraceSpan batch_span("batch", "engine");
  batch_span.arg("requests", queue.size());

  BatchReport report;
  report.items.resize(queue.size());

  // Per-worker stat accumulators (cache-line padded, arena-backed): each
  // body merges its request's counters into its own worker's slot as it
  // finishes, and the slots fold into the report with one operator+= per
  // worker — no per-item pass over the batch afterwards, no shared
  // counter in the loop.  Slot ownership is the scheduler's worker-id
  // contract: at most one thread per id at any moment, and the
  // parallel_for join orders every slot write before the merge below.
  struct alignas(64) StatSlot {
    core::BatchStats stats;
    std::size_t failed = 0;
  };
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<StatSlot> slots = arena.make_span<StatSlot>(parallel::worker_slots());
  for (StatSlot& s : slots) s = StatSlot{};

  auto solve_into = [&](std::size_t i) {
    BatchItem& item = report.items[i];
    core::CancelToken* token =
        i < opt.tokens.size() ? opt.tokens[i] : nullptr;
    item = solve_one(*registry_, queue[i], opt.use_reference, token);
    StatSlot& s = slots[parallel::worker_id()];
    if (item.ok)
      s.stats.add(item.result.stats, item.latency_s,
                  item.result.effective_depth);
    else
      ++s.failed;
  };

  auto t0 = std::chrono::steady_clock::now();
  if (opt.parallel) {
    // Instances are expensive bodies: granularity 1, no floor, so even a
    // two-element queue forks.  Intra-instance parallelism nests below
    // this loop on the same scheduler.
    parallel::parallel_for(0, queue.size(), solve_into,
                           /*granularity=*/1, /*granularity_floor=*/1);
  } else {
    for (std::size_t i = 0; i < queue.size(); ++i) solve_into(i);
  }
  auto t1 = std::chrono::steady_clock::now();
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();

  for (const StatSlot& s : slots) {
    report.stats += s.stats;
    report.failed += s.failed;
  }
  if (report.failed != 0)
    telemetry::count(telemetry::Counter::kEngineSolveErrors, report.failed);
  return report;
}

}  // namespace cordon::engine
