// BatchExecutor: admits a queue of heterogeneous instances and
// multiplexes them across the work-stealing scheduler.
//
// Inter-instance parallelism is a `parallel_for` with granularity 1 over
// the queue (instances are expensive bodies, so the default granularity
// floor must not apply); each instance's solver then uses the same
// scheduler for its intra-instance parallelism — nested fork-join is
// exactly what the helping scheduler is built for.  Per-request latency,
// work/span counters, and known effective depths are aggregated into
// core::BatchStats.
//
// Threading: `run` is synchronous and safe to call from any thread —
// non-pool callers adopt an external worker slot for the duration, so
// they get full parallelism — and a single BatchExecutor may be shared
// by concurrent callers because it holds no mutable state.  For an
// asynchronous, cached front-end on top of this executor see
// service::CordonService.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/core/cancel.hpp"
#include "src/core/dp_stats.hpp"
#include "src/engine/registry.hpp"

namespace cordon::engine {

struct BatchOptions {
  /// Run requests concurrently (false = one-at-a-time in queue order,
  /// the baseline the batch throughput bench compares against).
  bool parallel = true;
  /// Solve with the naive reference oracle instead of the optimized
  /// algorithm (cross-validation workloads).
  bool use_reference = false;
  /// Optional per-request cancellation tokens, aligned with the queue
  /// (empty span or null entries = not cancellable).  A token's deadline
  /// / cancel flag is polled at solver round boundaries; the pointed-to
  /// tokens must outlive run().
  std::span<core::CancelToken* const> tokens{};
};

struct BatchItem {
  std::string kind;
  bool ok = false;
  std::string error;  // set when !ok (unknown kind, solver threw, ...)
  /// Failure class, meaningful only when !ok.  Every exception a solver
  /// or parser can raise is folded into this taxonomy here, so callers
  /// (the service, the CLI) never see an untyped error.
  core::SolveErrorCode code = core::SolveErrorCode::kInternal;
  SolveResult result;
  double latency_s = 0;

  /// The item's failure as a throwable SolveError (requires !ok).
  [[nodiscard]] core::SolveError to_error() const {
    return core::SolveError(code, error);
  }
};

struct BatchReport {
  std::vector<BatchItem> items;  // aligned with the submitted queue
  core::BatchStats stats;        // aggregated over successful items only
  double wall_s = 0;
  std::size_t failed = 0;

  [[nodiscard]] double throughput_rps() const {
    return wall_s > 0 ? static_cast<double>(items.size()) / wall_s : 0.0;
  }
};

class BatchExecutor {
 public:
  /// The registry must outlive the executor.
  explicit BatchExecutor(const ProblemRegistry& reg = builtin_registry())
      : registry_(&reg) {}

  /// Accepts any contiguous Instance sequence (std::vector converts
  /// implicitly; the service hands in an arena-backed vector).
  [[nodiscard]] BatchReport run(std::span<const Instance> queue,
                                const BatchOptions& opt = {}) const;

 private:
  const ProblemRegistry* registry_;
};

}  // namespace cordon::engine
