// Engine adapter: explicit DP DAGs solved by the ExplicitCordon
// reference (Sec. 2.3) — the ninth registered family, and the one whose
// effective depth d^(G) is computed exactly rather than inferred from
// rounds.
#include <memory>
#include <stdexcept>

#include "src/core/cordon.hpp"
#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"

namespace cordon::engine {
namespace {

class DagSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "dag"; }
  [[nodiscard]] std::string_view description() const override {
    return "explicit DP DAG with affine transitions, solved by the "
           "ExplicitCordon reference (Sec. 2.3)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    core::DpDag dag = p.build();
    auto r = core::ExplicitCordon(dag).run();
    SolveResult out;
    out.objective = r.values.empty() ? 0.0 : r.values.back();
    out.stats.states = p.n;
    // The literal Steps 1-5 evaluate every live in-edge each round.
    out.stats.relaxations = r.rounds * dag.num_edges();
    out.stats.rounds = r.rounds;
    out.effective_depth = dag.effective_depth();
    out.detail = "dag n=" + std::to_string(p.n) +
                 " E=" + std::to_string(dag.num_edges()) +
                 " D[n-1]=" + std::to_string(out.objective) +
                 " depth=" + std::to_string(out.effective_depth);
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    core::DpDag dag = p.build();
    auto values = dag.evaluate();
    SolveResult out;
    out.objective = values.empty() ? 0.0 : values.back();
    out.stats.states = p.n;
    out.stats.relaxations = dag.num_edges();
    out.effective_depth = dag.effective_depth();
    out.detail = "dag n=" + std::to_string(p.n) +
                 " D[n-1]=" + std::to_string(out.objective) +
                 " (topological oracle)";
    return out;
  }

  /// A layered random min-DAG: state 0 is the boundary, every later
  /// state draws 1-3 in-edges from uniformly random earlier states, so
  /// all states are reachable and the cordon finalizes everything.
  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    DagInstance p;
    p.n = std::max<std::uint64_t>(opt.n, 2);
    p.objective = core::Objective::kMin;
    p.boundary.emplace_back(0, 0.0);
    p.edges.reserve(2 * p.n);  // in-degree is uniform on [1, 3]
    for (std::uint32_t v = 1; v < p.n; ++v) {
      auto in_degree =
          1 + parallel::uniform(opt.seed ^ 0xd6e8feb8u, v, 3);
      for (std::uint64_t c = 0; c < in_degree; ++c) {
        DagInstance::Edge e;
        e.dst = v;
        e.src = static_cast<std::uint32_t>(
            parallel::uniform(opt.seed, v * 4 + c, v));
        e.weight = parallel::uniform_double(opt.seed ^ 0x2545f491u, v * 4 + c) *
                   10.0;
        p.edges.push_back(e);
      }
    }
    return {"dag", p};
  }

 private:
  static const DagInstance& validate(const Instance& inst) {
    const auto& p = inst.as<DagInstance>();
    for (const DagInstance::Edge& e : p.edges)
      if (e.src >= e.dst || e.dst >= p.n)
        throw std::invalid_argument(
            "dag instance: edges must satisfy src < dst < states");
    for (auto& [state, value] : p.boundary)
      if (state >= p.n)
        throw std::invalid_argument("dag instance: boundary state out of "
                                    "range");
    return p;
  }
};

}  // namespace

void register_dag(ProblemRegistry& reg) {
  reg.add(std::make_unique<DagSolver>());
}

}  // namespace cordon::engine
