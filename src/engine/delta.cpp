#include "src/engine/delta.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "src/core/fault.hpp"

namespace cordon::engine {

namespace {

constexpr const char* kDeltaMagic = "cordon-delta";
constexpr const char* kDeltaVersion = "v1";

[[noreturn]] void reject(const std::string& why) {
  throw std::invalid_argument("delta rejected: " + why);
}

/// Resulting-size cap: the sum of two under-cap halves can exceed the
/// declared-size cap, so every append re-checks the total.
void check_result_size(std::uint64_t base, std::uint64_t added,
                       const char* what) {
  // base and added are both <= kMaxDeclaredSize < 2^63: no overflow.
  check_declared_size(base + added, what);
}

template <typename T>
void append_vec(std::vector<T>& dst, const std::vector<T>& suffix,
                const char* what) {
  check_result_size(dst.size(), suffix.size(), what);
  dst.insert(dst.end(), suffix.begin(), suffix.end());
}

void require_default_cost(const CostSpec& c, const char* kind) {
  if (!(c == CostSpec{}))
    reject(std::string(kind) +
           " delta may not carry a cost spec (appends add states, they "
           "cannot reprice existing ones)");
}

struct OpCountVisitor {
  std::uint64_t operator()(const LisInstance& p) const {
    return p.values.size();
  }
  std::uint64_t operator()(const LcsInstance& p) const {
    return p.a.size() + p.b.size();
  }
  std::uint64_t operator()(const GlwsInstance& p) const { return p.n; }
  std::uint64_t operator()(const KglwsInstance& p) const { return p.n; }
  std::uint64_t operator()(const GapInstance& p) const {
    return p.a.size() + p.b.size();
  }
  std::uint64_t operator()(const OatInstance& p) const {
    return p.weights.size();
  }
  std::uint64_t operator()(const ObstInstance& p) const {
    return p.weights.size();
  }
  std::uint64_t operator()(const TreeGlwsInstance& p) const {
    return p.parent.size();
  }
  std::uint64_t operator()(const DagInstance& p) const {
    return p.n + p.boundary.size() + p.edges.size();
  }
};

}  // namespace

std::uint64_t delta_op_count(const Delta& delta) {
  return std::visit(OpCountVisitor{}, delta.append);
}

void validate_delta(const Delta& delta) {
  std::uint64_t ops = delta_op_count(delta);
  if (ops > kMaxDeltaOps)
    reject("appends " + std::to_string(ops) + " ops, cap is " +
           std::to_string(kMaxDeltaOps) +
           " (bulk loads belong on the one-shot submit path)");
  if (const auto* g = std::get_if<GlwsInstance>(&delta.append)) {
    if (g->d0 != 0.0) reject("glws delta may not change d0");
    require_default_cost(g->cost, "glws");
  } else if (const auto* gp = std::get_if<GapInstance>(&delta.append)) {
    require_default_cost(gp->w1, "gap");
    require_default_cost(gp->w2, "gap");
  } else if (const auto* k = std::get_if<KglwsInstance>(&delta.append)) {
    if (k->k != 1) reject("kglws delta may not change k");
    require_default_cost(k->cost, "kglws");
  } else if (const auto* t = std::get_if<TreeGlwsInstance>(&delta.append)) {
    if (t->d0 != 0.0) reject("treeglws delta may not change d0");
    require_default_cost(t->cost, "treeglws");
  }
}

namespace {

struct ApplyVisitor {
  Payload& base;

  void operator()(const LisInstance& d) const {
    append_vec(std::get<LisInstance>(base).values, d.values, "lis values");
  }
  void operator()(const LcsInstance& d) const {
    auto& b = std::get<LcsInstance>(base);
    // Validate both before mutating either: apply is all-or-nothing.
    check_result_size(b.a.size(), d.a.size(), "lcs a");
    check_result_size(b.b.size(), d.b.size(), "lcs b");
    b.a.insert(b.a.end(), d.a.begin(), d.a.end());
    b.b.insert(b.b.end(), d.b.begin(), d.b.end());
  }
  void operator()(const GlwsInstance& d) const {
    auto& b = std::get<GlwsInstance>(base);
    check_result_size(b.n, d.n, "glws n");
    b.n += d.n;
  }
  void operator()(const KglwsInstance& d) const {
    auto& b = std::get<KglwsInstance>(base);
    check_result_size(b.n, d.n, "kglws n");
    b.n += d.n;
  }
  void operator()(const GapInstance& d) const {
    auto& b = std::get<GapInstance>(base);
    check_result_size(b.a.size(), d.a.size(), "gap a");
    check_result_size(b.b.size(), d.b.size(), "gap b");
    b.a.insert(b.a.end(), d.a.begin(), d.a.end());
    b.b.insert(b.b.end(), d.b.begin(), d.b.end());
  }
  void operator()(const OatInstance& d) const {
    append_vec(std::get<OatInstance>(base).weights, d.weights, "oat weights");
  }
  void operator()(const ObstInstance& d) const {
    append_vec(std::get<ObstInstance>(base).weights, d.weights,
               "obst weights");
  }
  void operator()(const TreeGlwsInstance& d) const {
    auto& b = std::get<TreeGlwsInstance>(base);
    std::uint64_t old_n = b.parent.size();
    check_result_size(old_n, d.parent.size(), "treeglws parent");
    // Appended nodes must attach to the existing tree (or earlier
    // appended nodes): parents reference absolute indices.
    for (std::size_t i = 0; i < d.parent.size(); ++i)
      if (d.parent[i] >= old_n + i)
        reject("treeglws appended node " + std::to_string(old_n + i) +
               " has parent " + std::to_string(d.parent[i]) +
               " >= its own index");
    b.parent.insert(b.parent.end(), d.parent.begin(), d.parent.end());
  }
  void operator()(const DagInstance& d) const {
    auto& b = std::get<DagInstance>(base);
    check_result_size(b.n, d.n, "dag states");
    check_result_size(b.boundary.size(), d.boundary.size(), "dag boundary");
    check_result_size(b.edges.size(), d.edges.size(), "dag edges");
    std::uint64_t new_n = b.n + d.n;
    // Appended edge/boundary indices are absolute into the grown DAG;
    // range-check them here so a bad delta fails before build().
    for (const auto& [state, value] : d.boundary) {
      (void)value;
      if (state >= new_n)
        reject("dag boundary state " + std::to_string(state) +
               " out of range [0, " + std::to_string(new_n) + ")");
    }
    for (const DagInstance::Edge& e : d.edges)
      if (e.src >= new_n || e.dst >= new_n)
        reject("dag edge " + std::to_string(e.src) + "->" +
               std::to_string(e.dst) + " out of range [0, " +
               std::to_string(new_n) + ")");
    b.n = new_n;
    b.boundary.insert(b.boundary.end(), d.boundary.begin(), d.boundary.end());
    b.edges.insert(b.edges.end(), d.edges.begin(), d.edges.end());
  }
};

}  // namespace

void apply_delta_inplace(Instance& base, const Delta& delta) {
  if (base.kind != delta.kind)
    reject("kind '" + delta.kind + "' does not match instance kind '" +
           base.kind + "'");
  if (base.payload.index() != delta.append.index())
    reject("payload type does not match instance payload");
  validate_delta(delta);
  // Chaos: reject before mutation, so the all-or-nothing contract holds
  // for injected failures exactly as for real validation failures.
  CORDON_FAULT_POINT(core::fault::Site::kDeltaApply,
                     reject("fault injection: delta apply"));
  std::visit(ApplyVisitor{base.payload}, delta.append);
}

Instance apply_delta(const Instance& base, const Delta& delta) {
  Instance grown = base;
  apply_delta_inplace(grown, delta);
  return grown;
}

// --- text round-trip --------------------------------------------------------

void serialize_delta(const Delta& delta, std::ostream& out) {
  out << kDeltaMagic << ' ' << kDeltaVersion << ' ' << delta.kind << ' '
      << delta.base_version << '\n';
  serialize_payload_body(delta.append, out);
  out << "end\n";
}

Delta parse_delta(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kDeltaMagic)
    throw std::runtime_error("delta parse: missing '" +
                             std::string(kDeltaMagic) + "' header");
  std::string version;
  Delta delta;
  if (!(in >> version >> delta.kind >> delta.base_version) ||
      version != kDeltaVersion)
    throw std::runtime_error(
        "delta parse: header must be 'cordon-delta v1 <kind> "
        "<base-version>'");
  // Consume the rest of the header line so the body parser starts clean.
  std::string rest;
  std::getline(in, rest);
  delta.append = parse_payload_body(in, delta.kind);
  validate_delta(delta);
  return delta;
}

std::string to_string(const Delta& delta) {
  std::ostringstream out;
  serialize_delta(delta, out);
  return out.str();
}

Delta delta_from_string(const std::string& text) {
  std::istringstream in(text);
  return parse_delta(in);
}

// --- harness helpers --------------------------------------------------------

namespace {

template <typename T>
std::vector<T> slice(const std::vector<T>& v, std::uint64_t from,
                     std::uint64_t to) {
  from = std::min<std::uint64_t>(from, v.size());
  to = std::min<std::uint64_t>(to, v.size());
  if (from > to) from = to;
  return {v.begin() + static_cast<std::ptrdiff_t>(from),
          v.begin() + static_cast<std::ptrdiff_t>(to)};
}

[[noreturn]] void no_slicing(const std::string& kind) {
  throw std::invalid_argument(
      "prefix/slice unsupported for kind '" + kind +
      "' (dag deltas carry explicit appended states/edges instead)");
}

}  // namespace

Instance prefix_instance(const Instance& full, std::uint64_t m) {
  Instance out;
  out.kind = full.kind;
  if (const auto* p = std::get_if<LisInstance>(&full.payload)) {
    out.payload = LisInstance{slice(p->values, 0, m)};
  } else if (const auto* p = std::get_if<LcsInstance>(&full.payload)) {
    out.payload = LcsInstance{slice(p->a, 0, m), p->b};
  } else if (const auto* p = std::get_if<GlwsInstance>(&full.payload)) {
    out.payload = GlwsInstance{std::min(p->n, m), p->d0, p->cost};
  } else if (const auto* p = std::get_if<KglwsInstance>(&full.payload)) {
    out.payload = KglwsInstance{std::min(p->n, m), p->k, p->cost};
  } else if (const auto* p = std::get_if<GapInstance>(&full.payload)) {
    out.payload =
        GapInstance{slice(p->a, 0, m), slice(p->b, 0, m), p->w1, p->w2};
  } else if (const auto* p = std::get_if<OatInstance>(&full.payload)) {
    out.payload = OatInstance{slice(p->weights, 0, m)};
  } else if (const auto* p = std::get_if<ObstInstance>(&full.payload)) {
    out.payload = ObstInstance{slice(p->weights, 0, m)};
  } else if (const auto* p = std::get_if<TreeGlwsInstance>(&full.payload)) {
    out.payload = TreeGlwsInstance{slice(p->parent, 0, m), p->d0, p->cost};
  } else {
    no_slicing(full.kind);
  }
  return out;
}

Delta slice_delta(const Instance& full, std::uint64_t from, std::uint64_t to,
                  std::uint64_t base_version) {
  Delta d;
  d.kind = full.kind;
  d.base_version = base_version;
  if (const auto* p = std::get_if<LisInstance>(&full.payload)) {
    d.append = LisInstance{slice(p->values, from, to)};
  } else if (const auto* p = std::get_if<LcsInstance>(&full.payload)) {
    // Grows `a` only; `b` is the fixed reference sequence.
    d.append = LcsInstance{slice(p->a, from, to), {}};
  } else if (const auto* p = std::get_if<GlwsInstance>(&full.payload)) {
    std::uint64_t hi = std::min(p->n, to);
    d.append = GlwsInstance{hi > from ? hi - from : 0, 0.0, CostSpec{}};
  } else if (const auto* p = std::get_if<KglwsInstance>(&full.payload)) {
    std::uint64_t hi = std::min(p->n, to);
    d.append = KglwsInstance{hi > from ? hi - from : 0, 1, CostSpec{}};
  } else if (const auto* p = std::get_if<GapInstance>(&full.payload)) {
    d.append = GapInstance{slice(p->a, from, to), slice(p->b, from, to),
                           CostSpec{}, CostSpec{}};
  } else if (const auto* p = std::get_if<OatInstance>(&full.payload)) {
    d.append = OatInstance{slice(p->weights, from, to)};
  } else if (const auto* p = std::get_if<ObstInstance>(&full.payload)) {
    d.append = ObstInstance{slice(p->weights, from, to)};
  } else if (const auto* p = std::get_if<TreeGlwsInstance>(&full.payload)) {
    d.append = TreeGlwsInstance{slice(p->parent, from, to), 0.0, CostSpec{}};
  } else {
    no_slicing(full.kind);
  }
  return d;
}

}  // namespace cordon::engine
