// Delta instances: the append-only update model of solve sessions.
//
// A Delta carries the *suffix* a client wants appended to an existing
// instance, expressed as a payload of the same kind (the delta's vectors
// are the appended elements; its scalar `n` is the number of appended
// states).  The restricted model is deliberate — appends are the update
// every incremental solver in this codebase can absorb from its saved
// frontier/envelope, while edits and prepends would force fully-dynamic
// machinery (see docs/SESSIONS.md); those arrive at the session API as a
// fresh base instance instead.
//
// Text format, sharing the instance body grammar and parser caps:
//
//   cordon-delta v1 <kind> <base-version>
//   <key> <values...>          # same per-kind keys as the instance body
//   end
//
// `base-version` is the session version the delta applies on top of; the
// service rejects a mismatch so a lineage is always linear.
//
// Hardening mirrors the PR 3 instance caps: per-delta op counts are
// capped at kMaxDeltaOps, and applying a delta re-checks the *resulting*
// sizes against kMaxDeclaredSize (two under-cap halves can sum over the
// cap), so a hostile delta fails its future instead of the process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/engine/instance.hpp"

namespace cordon::engine {

/// Elements (or declared states, or edges) one delta may append.  Far
/// above any interactive append, far below an allocation hazard; bulk
/// loads beyond it belong on the one-shot submit path.
inline constexpr std::uint64_t kMaxDeltaOps = 1ull << 20;

struct Delta {
  std::string kind;
  std::uint64_t base_version = 0;
  Payload append;  // appended suffix, same payload type as the instance
};

/// Number of appended elements the delta declares (vector elements, glws
/// and kglws `n`, dag states + edges + boundary entries).
[[nodiscard]] std::uint64_t delta_op_count(const Delta& delta);

/// Throws std::invalid_argument when the delta exceeds kMaxDeltaOps or
/// carries fields an append may not change (glws/kglws/treeglws cost and
/// d0 must stay at their defaults: an append adds states, it cannot
/// retroactively reprice existing ones).
void validate_delta(const Delta& delta);

/// Applies `delta` to `base` in place (amortized O(appended), never
/// O(instance) — the session hot path relies on this).  Validates the
/// delta, checks kind match, and re-checks resulting sizes against
/// kMaxDeclaredSize.  Throws std::invalid_argument on any violation,
/// leaving `base` unchanged.
void apply_delta_inplace(Instance& base, const Delta& delta);

/// Copying convenience over apply_delta_inplace.
[[nodiscard]] Instance apply_delta(const Instance& base, const Delta& delta);

// --- text round-trip --------------------------------------------------------

void serialize_delta(const Delta& delta, std::ostream& out);
[[nodiscard]] Delta parse_delta(std::istream& in);

[[nodiscard]] std::string to_string(const Delta& delta);
[[nodiscard]] Delta delta_from_string(const std::string& text);

// --- harness helpers (CLI / bench / tests) ----------------------------------

/// The first `m` "elements" of a generated instance, as a standalone
/// instance: lis values, lcs `a` (with `b` intact — the incremental LCS
/// model grows `a` against a fixed `b`), oat/obst weights, treeglws
/// parents, gap `a` and `b` both, glws/kglws `n`.  Unsupported for dag
/// (its edges have no per-state slicing); throws std::invalid_argument.
[[nodiscard]] Instance prefix_instance(const Instance& full, std::uint64_t m);

/// The delta that grows prefix_instance(full, from) into
/// prefix_instance(full, to), stamped with `base_version`.  Same kind
/// support as prefix_instance.
[[nodiscard]] Delta slice_delta(const Instance& full, std::uint64_t from,
                                std::uint64_t to, std::uint64_t base_version);

}  // namespace cordon::engine
