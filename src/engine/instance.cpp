#include "src/engine/instance.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string_view>

namespace cordon::engine {

// --- CostSpec ---------------------------------------------------------------

glws::Shape CostSpec::shape() const {
  return family == Family::kLogarithmic ? glws::Shape::kConcave
                                        : glws::Shape::kConvex;
}

glws::CostFn CostSpec::make() const {
  double o = open, s = scale;
  switch (family) {
    case Family::kAffine:
      return [o, s](std::size_t l, std::size_t r) {
        return o + s * static_cast<double>(r - l);
      };
    case Family::kQuadratic:
      return [o, s](std::size_t l, std::size_t r) {
        double len = static_cast<double>(r - l);
        return o + s * len * len;
      };
    case Family::kLogarithmic:
      return [o, s](std::size_t l, std::size_t r) {
        return o + s * std::log1p(static_cast<double>(r - l));
      };
  }
  throw std::logic_error("CostSpec: unknown family");
}

const char* CostSpec::family_name(Family f) {
  switch (f) {
    case Family::kAffine:
      return "affine";
    case Family::kQuadratic:
      return "quadratic";
    case Family::kLogarithmic:
      return "logarithmic";
  }
  return "?";
}

CostSpec::Family CostSpec::family_from_name(const std::string& name) {
  if (name == "affine") return Family::kAffine;
  if (name == "quadratic") return Family::kQuadratic;
  if (name == "logarithmic") return Family::kLogarithmic;
  throw std::invalid_argument("unknown cost family '" + name + "'");
}

// --- declared-size hardening ------------------------------------------------

void check_declared_size(std::uint64_t value, const char* what) {
  if (value > kMaxDeclaredSize)
    throw std::invalid_argument(
        std::string("instance rejected: ") + what + " = " +
        std::to_string(value) + " exceeds the declared-size cap " +
        std::to_string(kMaxDeclaredSize));
}

// --- DagInstance ------------------------------------------------------------

core::DpDag DagInstance::build() const {
  // Validate before the first proportional allocation: build() runs at
  // solve time, so a hostile in-memory instance (which never went
  // through the parser's caps) fails the request instead of the process.
  check_declared_size(n, "dag states");
  for (auto& [state, value] : boundary) {
    (void)value;
    if (state >= n)
      throw std::invalid_argument("dag boundary state " +
                                  std::to_string(state) + " out of range [0, " +
                                  std::to_string(n) + ")");
  }
  core::DpDag dag(n, objective);
  for (auto& [state, value] : boundary) dag.set_boundary(state, value);
  // Affine edges as data: with every edge affine the ExplicitCordon
  // solves this DAG through its vectorized CSR path.
  for (const Edge& e : edges)
    dag.add_affine_edge(e.src, e.dst, e.weight, e.effective);
  return dag;
}

// --- serialization ----------------------------------------------------------

namespace {

constexpr const char* kMagic = "cordon-instance";
constexpr const char* kVersion = "v1";

void write_cost(std::ostream& out, const char* key, const CostSpec& c) {
  out << key << ' ' << CostSpec::family_name(c.family) << ' ' << c.open << ' '
      << c.scale << '\n';
}

template <typename T>
void write_vec(std::ostream& out, const char* key, const std::vector<T>& v) {
  // Wrap long vectors: repeated keys append on parse.
  constexpr std::size_t kPerLine = 64;
  for (std::size_t i = 0; i < v.size(); i += kPerLine) {
    out << key;
    for (std::size_t j = i; j < v.size() && j < i + kPerLine; ++j)
      out << ' ' << v[j];
    out << '\n';
  }
  if (v.empty()) out << key << '\n';
}

// One "<key> tokens..." line with '#' comments stripped.
struct Line {
  std::string key;
  std::istringstream rest;
};

bool next_line(std::istream& in, Line& out) {
  std::string raw;
  while (std::getline(in, raw)) {
    if (auto pos = raw.find('#'); pos != std::string::npos) raw.resize(pos);
    std::istringstream ss(raw);
    std::string key;
    if (!(ss >> key)) continue;  // blank / comment-only line
    out.key = std::move(key);
    std::string tail;
    std::getline(ss, tail);
    out.rest = std::istringstream(tail);
    return true;
  }
  return false;
}

template <typename T>
T parse_scalar(Line& line) {
  T v{};
  if (!(line.rest >> v))
    throw std::runtime_error("instance parse: bad value for key '" + line.key +
                             "'");
  return v;
}

// Scalar that declares an allocation size downstream: parse + cap.
std::uint64_t parse_size(Line& line, const char* what) {
  auto v = parse_scalar<std::uint64_t>(line);
  check_declared_size(v, what);
  return v;
}

template <typename T>
void parse_append(Line& line, std::vector<T>& out) {
  // Reserve for exactly the tokens on this line before appending: long
  // vectors arrive as many wrapped lines, and growing by push_back alone
  // re-copies the accumulated prefix on every reallocation.  One
  // whitespace scan over the remaining tail is far cheaper than that.
  {
    std::string_view tail = line.rest.view();
    tail.remove_prefix(std::min<std::size_t>(
        tail.size(),
        static_cast<std::size_t>(std::max<std::streamoff>(
            0, static_cast<std::streamoff>(line.rest.tellg())))));
    std::size_t tokens = 0;
    bool in_token = false;
    for (char c : tail) {
      bool ws = c == ' ' || c == '\t' || c == '\r' || c == '\n';
      tokens += !ws && !in_token;
      in_token = !ws;
    }
    // Geometric floor so a reserve per wrapped line cannot degrade the
    // amortized growth into one reallocation per line; clamped to the
    // declared-size cap so a hostile line with billions of tokens
    // cannot force an over-cap allocation before the per-element check
    // below rejects it.
    std::size_t need = std::min<std::size_t>(out.size() + tokens,
                                             kMaxDeclaredSize);
    if (need > out.capacity())
      out.reserve(std::max(need, out.capacity() * 2));
  }
  T v{};
  while (line.rest >> v) {
    // Same std::invalid_argument as every other cap violation, so
    // callers can classify hostile payloads by one exception type.
    if (out.size() >= kMaxDeclaredSize)
      check_declared_size(out.size() + 1,
                          (line.key + " element count").c_str());
    out.push_back(v);
  }
  if (!line.rest.eof())
    throw std::runtime_error("instance parse: bad element in '" + line.key +
                             "' list");
}

CostSpec parse_cost(Line& line) {
  std::string family;
  CostSpec c;
  if (!(line.rest >> family >> c.open >> c.scale))
    throw std::runtime_error(
        "instance parse: cost spec needs '<family> <open> <scale>' after '" +
        line.key + "'");
  c.family = CostSpec::family_from_name(family);
  return c;
}

[[noreturn]] void unknown_key(const std::string& kind, const std::string& key) {
  throw std::runtime_error("instance parse: unknown key '" + key +
                           "' for kind '" + kind + "'");
}

// Consumes lines until "end", feeding each to on_line.
template <typename Fn>
void read_body(std::istream& in, const std::string& kind, Fn&& on_line) {
  Line line;
  while (next_line(in, line)) {
    if (line.key == "end") return;
    on_line(line);
  }
  throw std::runtime_error("instance parse: missing 'end' for kind '" + kind +
                           "'");
}

Payload parse_payload(std::istream& in, const std::string& kind) {
  if (kind == "lis") {
    LisInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "values")
        parse_append(l, p.values);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "lcs") {
    LcsInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "a")
        parse_append(l, p.a);
      else if (l.key == "b")
        parse_append(l, p.b);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "glws") {
    GlwsInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "n")
        p.n = parse_size(l, "glws n");
      else if (l.key == "d0")
        p.d0 = parse_scalar<double>(l);
      else if (l.key == "cost")
        p.cost = parse_cost(l);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "kglws") {
    KglwsInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "n")
        p.n = parse_size(l, "kglws n");
      else if (l.key == "k")
        p.k = parse_size(l, "kglws k");
      else if (l.key == "cost")
        p.cost = parse_cost(l);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "gap") {
    GapInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "a")
        parse_append(l, p.a);
      else if (l.key == "b")
        parse_append(l, p.b);
      else if (l.key == "w1")
        p.w1 = parse_cost(l);
      else if (l.key == "w2")
        p.w2 = parse_cost(l);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "oat" || kind == "obst") {
    std::vector<double> weights;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "weights")
        parse_append(l, weights);
      else
        unknown_key(kind, l.key);
    });
    if (kind == "oat") return OatInstance{std::move(weights)};
    return ObstInstance{std::move(weights)};
  }
  if (kind == "treeglws") {
    TreeGlwsInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "parent")
        parse_append(l, p.parent);
      else if (l.key == "d0")
        p.d0 = parse_scalar<double>(l);
      else if (l.key == "cost")
        p.cost = parse_cost(l);
      else
        unknown_key(kind, l.key);
    });
    return p;
  }
  if (kind == "dag") {
    DagInstance p;
    read_body(in, kind, [&](Line& l) {
      if (l.key == "states") {
        p.n = parse_size(l, "dag states");
      } else if (l.key == "objective") {
        auto word = parse_scalar<std::string>(l);
        if (word == "min")
          p.objective = core::Objective::kMin;
        else if (word == "max")
          p.objective = core::Objective::kMax;
        else
          throw std::runtime_error(
              "instance parse: objective must be 'min' or 'max', got '" + word +
              "'");
      } else if (l.key == "boundary") {
        std::uint32_t state;
        double value;
        if (!(l.rest >> state >> value))
          throw std::runtime_error(
              "instance parse: boundary needs '<state> <value>'");
        p.boundary.emplace_back(state, value);
      } else if (l.key == "edge") {
        DagInstance::Edge e;
        int effective = 1;
        if (!(l.rest >> e.src >> e.dst >> e.weight))
          throw std::runtime_error(
              "instance parse: edge needs '<src> <dst> <weight> [effective]'");
        if (l.rest >> effective)
          e.effective = effective != 0;
        else if (!l.rest.eof())
          throw std::runtime_error(
              "instance parse: edge effective flag must be 0 or 1");
        p.edges.push_back(e);
      } else {
        unknown_key(kind, l.key);
      }
    });
    return p;
  }
  throw std::runtime_error("instance parse: unknown kind '" + kind + "'");
}

struct SerializeVisitor {
  std::ostream& out;

  void operator()(const LisInstance& p) const {
    write_vec(out, "values", p.values);
  }
  void operator()(const LcsInstance& p) const {
    write_vec(out, "a", p.a);
    write_vec(out, "b", p.b);
  }
  void operator()(const GlwsInstance& p) const {
    out << "n " << p.n << '\n' << "d0 " << p.d0 << '\n';
    write_cost(out, "cost", p.cost);
  }
  void operator()(const KglwsInstance& p) const {
    out << "n " << p.n << '\n' << "k " << p.k << '\n';
    write_cost(out, "cost", p.cost);
  }
  void operator()(const GapInstance& p) const {
    write_vec(out, "a", p.a);
    write_vec(out, "b", p.b);
    write_cost(out, "w1", p.w1);
    write_cost(out, "w2", p.w2);
  }
  void operator()(const OatInstance& p) const {
    write_vec(out, "weights", p.weights);
  }
  void operator()(const ObstInstance& p) const {
    write_vec(out, "weights", p.weights);
  }
  void operator()(const TreeGlwsInstance& p) const {
    write_vec(out, "parent", p.parent);
    out << "d0 " << p.d0 << '\n';
    write_cost(out, "cost", p.cost);
  }
  void operator()(const DagInstance& p) const {
    out << "states " << p.n << '\n'
        << "objective " << (p.objective == core::Objective::kMin ? "min" : "max")
        << '\n';
    for (auto& [state, value] : p.boundary)
      out << "boundary " << state << ' ' << value << '\n';
    for (const DagInstance::Edge& e : p.edges)
      out << "edge " << e.src << ' ' << e.dst << ' ' << e.weight << ' '
          << (e.effective ? 1 : 0) << '\n';
  }
};

}  // namespace

namespace {

// Sink that FNV-1a-hashes every byte the serializer writes, optionally
// collecting them too, so hashing needs no intermediate string.
class HashingBuf final : public std::streambuf {
 public:
  explicit HashingBuf(std::string* collect) : collect_(collect) {}

  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) mix(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) mix(s[i]);
    return n;
  }

 private:
  void mix(char c) {
    hash_ = (hash_ ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    if (collect_ != nullptr) collect_->push_back(c);
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  std::string* collect_;
};

}  // namespace

std::uint64_t instance_hash(const Instance& inst) {
  HashingBuf buf(nullptr);
  std::ostream out(&buf);
  serialize_instance(inst, out);
  return buf.hash();
}

namespace {

// Sink appending to a caller-owned string (capacity reused across calls).
class AppendBuf final : public std::streambuf {
 public:
  explicit AppendBuf(std::string& out) : out_(out) {}

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) out_.push_back(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_.append(s, static_cast<std::size_t>(n));
    return n;
  }

 private:
  std::string& out_;
};

}  // namespace

void canonical_text_into(const Instance& inst, std::string& out) {
  out.clear();
  AppendBuf buf(out);
  std::ostream os(&buf);
  serialize_instance(inst, os);
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (char c : bytes)
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return hash;
}

InstanceKey canonical_key(const Instance& inst) {
  InstanceKey key;
  HashingBuf buf(&key.text);
  std::ostream out(&buf);
  serialize_instance(inst, out);
  key.hash = buf.hash();
  return key;
}

void serialize_instance(const Instance& inst, std::ostream& out) {
  out << kMagic << ' ' << kVersion << ' ' << inst.kind << '\n';
  out.precision(17);  // doubles must survive the round-trip
  std::visit(SerializeVisitor{out}, inst.payload);
  out << "end\n";
}

Payload parse_payload_body(std::istream& in, const std::string& kind) {
  return parse_payload(in, kind);
}

void serialize_payload_body(const Payload& payload, std::ostream& out) {
  out.precision(17);
  std::visit(SerializeVisitor{out}, payload);
}

Instance parse_instance(std::istream& in) {
  Line header;
  if (!next_line(in, header) || header.key != kMagic)
    throw std::runtime_error("instance parse: missing '" + std::string(kMagic) +
                             "' header");
  std::string version, kind;
  if (!(header.rest >> version >> kind) || version != kVersion)
    throw std::runtime_error(
        "instance parse: header must be 'cordon-instance v1 <kind>'");
  Instance inst;
  inst.kind = kind;
  inst.payload = parse_payload(in, kind);
  return inst;
}

std::string to_string(const Instance& inst) {
  std::ostringstream out;
  serialize_instance(inst, out);
  return out.str();
}

Instance from_string(const std::string& text) {
  std::istringstream in(text);
  return parse_instance(in);
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open instance file '" + path + "'");
  try {
    return parse_instance(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void save_instance(const Instance& inst, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("cannot write instance file '" + path + "'");
  serialize_instance(inst, out);
}

}  // namespace cordon::engine
