// Instance model of the unified solver engine.
//
// A workload is data, not a hand-written main(): every problem kind the
// library solves has a serializable instance struct, a tagged union
// `Instance` carries one of them together with its registry key, and a
// line-oriented text format round-trips instances through files so the
// CLI, the batch executor, tests, and benchmarks all speak one language.
//
// Cost functions cannot be serialized as arbitrary code, so instances
// reference a closed set of named cost families (`CostSpec`): affine and
// quadratic (convex Monge) and logarithmic (concave Monge) costs in the
// transition span, the same families the paper's evaluation uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/core/dp_dag.hpp"
#include "src/glws/glws.hpp"  // CostFn, Shape

namespace cordon::engine {

/// A named, serializable cost family w(j, i) on the span i - j (plus a
/// fixed opening charge).  `shape()` reports the Monge regime solvers
/// must be told about.
struct CostSpec {
  enum class Family { kAffine, kQuadratic, kLogarithmic };

  Family family = Family::kAffine;
  double open = 1.0;   // charged per transition
  double scale = 1.0;  // multiplies the span term

  [[nodiscard]] glws::Shape shape() const;
  [[nodiscard]] glws::CostFn make() const;

  [[nodiscard]] static const char* family_name(Family f);
  [[nodiscard]] static Family family_from_name(const std::string& name);

  friend bool operator==(const CostSpec&, const CostSpec&) = default;
};

// --- one struct per registered problem kind --------------------------------

struct LisInstance {
  std::vector<std::uint64_t> values;
};

struct LcsInstance {
  std::vector<std::uint32_t> a, b;
};

struct GlwsInstance {
  std::uint64_t n = 0;  // states 0..n, D[0] = d0
  double d0 = 0;
  CostSpec cost;
};

struct KglwsInstance {
  std::uint64_t n = 0;
  std::uint64_t k = 1;  // exactly k clusters
  CostSpec cost;        // must be convex (affine or quadratic)
};

struct GapInstance {
  std::vector<std::uint32_t> a, b;
  CostSpec w1, w2;  // gap costs in A / in B; shapes must match
};

struct OatInstance {
  std::vector<double> weights;
};

struct ObstInstance {
  std::vector<double> weights;
};

struct TreeGlwsInstance {
  std::vector<std::uint32_t> parent;  // parent[root] == 0xffffffff
  double d0 = 0;
  CostSpec cost;  // convex (the parallel algorithm's requirement)
};

/// An explicit DP DAG with affine transitions f(x) = x + weight — the
/// serializable subset of DpDag, solved by the ExplicitCordon reference.
struct DagInstance {
  struct Edge {
    std::uint32_t src = 0, dst = 0;
    double weight = 0;
    bool effective = true;
  };

  std::uint64_t n = 0;
  core::Objective objective = core::Objective::kMin;
  std::vector<std::pair<std::uint32_t, double>> boundary;
  std::vector<Edge> edges;

  [[nodiscard]] core::DpDag build() const;
};

using Payload =
    std::variant<LisInstance, LcsInstance, GlwsInstance, KglwsInstance,
                 GapInstance, OatInstance, ObstInstance, TreeGlwsInstance,
                 DagInstance>;

// --- declared-size hardening ------------------------------------------------
//
// Some payloads *declare* their size as a scalar (glws/kglws `n`, dag
// `states`) and solvers allocate proportionally, so a malformed or
// hostile input could request petabytes with a 20-byte payload.  Every
// declared size and element count is capped: the parser rejects
// oversized declarations up front, and solve-time validation
// (DagInstance::build, the glws/kglws adapters) rejects oversized
// in-memory instances, so a hostile submit() surfaces as a failed
// future instead of OOM-ing the process.
inline constexpr std::uint64_t kMaxDeclaredSize = 1ull << 27;  // 134M states

/// Throws std::invalid_argument when a declared size/element count
/// exceeds kMaxDeclaredSize.  `what` names the field for the message.
void check_declared_size(std::uint64_t value, const char* what);

/// A problem instance: the registry key of the solver that understands it
/// plus the kind-specific payload.
struct Instance {
  std::string kind;
  Payload payload;

  /// Typed access; throws if the payload does not match the expectation
  /// (e.g. a hand-edited file with a wrong header).
  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = std::get_if<T>(&payload);
    if (p == nullptr)
      throw std::invalid_argument("instance payload does not match kind '" +
                                  kind + "'");
    return *p;
  }
};

// --- canonicalization & hashing ---------------------------------------------
//
// The serializer emits a unique, deterministic text form for any payload
// (fixed key order, fixed vector wrapping, precision-17 doubles), so the
// serialized text IS the canonical form: two instances are semantically
// equal iff their canonical texts are byte-identical, and the form is
// stable across parse/serialize round-trips.  The service layer's result
// cache keys on the 64-bit FNV-1a hash of that text (cheap shard pick)
// plus the text itself (exact equality, so a hash collision can never
// return the wrong cached result).

struct InstanceKey {
  std::uint64_t hash = 0;  // FNV-1a 64 of `text`
  std::string text;        // canonical serialization

  friend bool operator==(const InstanceKey&, const InstanceKey&) = default;
};

/// FNV-1a 64 of the canonical text, computed in one streaming pass
/// without materializing the text.
[[nodiscard]] std::uint64_t instance_hash(const Instance& inst);

/// Canonical text plus its hash (one serialization pass).
[[nodiscard]] InstanceKey canonical_key(const Instance& inst);

/// Serializes the canonical text into `out` (cleared first), reusing its
/// capacity — the zero-allocation-when-warm form of to_string.  The
/// service's submit path serializes each instance exactly once into a
/// reused buffer, hashes the bytes with fnv1a64, and compares candidate
/// cache keys by memcmp against the same buffer.
void canonical_text_into(const Instance& inst, std::string& out);

/// FNV-1a 64 over raw bytes — the same function instance_hash streams
/// through the serializer, exposed so a materialized canonical text
/// hashes to the identical value.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

// --- text round-trip --------------------------------------------------------
//
// Format (whitespace-separated, '#' starts a comment):
//   cordon-instance v1 <kind>
//   <key> <values...>          # scalars: "n 1000"; vectors: rest of line,
//   ...                        # repeated keys append (long vectors wrap)
//   end
// Cost specs serialize as "<key> <family> <open> <scale>".

void serialize_instance(const Instance& inst, std::ostream& out);
[[nodiscard]] Instance parse_instance(std::istream& in);

/// Parses one payload body for `kind` — the lines between the header and
/// `end`, which the delta format (src/engine/delta.hpp) shares with the
/// instance format.  Consumes up to and including the `end` line; applies
/// the same declared-size caps as parse_instance.
[[nodiscard]] Payload parse_payload_body(std::istream& in,
                                         const std::string& kind);

/// Serializes just the payload body (key/value lines, no header and no
/// `end`), in the canonical field order with round-trip-safe doubles.
void serialize_payload_body(const Payload& payload, std::ostream& out);

[[nodiscard]] std::string to_string(const Instance& inst);
[[nodiscard]] Instance from_string(const std::string& text);

/// Reads one instance from a file; throws std::runtime_error with the
/// path on open/parse failure.
[[nodiscard]] Instance load_instance(const std::string& path);
void save_instance(const Instance& inst, const std::string& path);

}  // namespace cordon::engine
