#include "src/engine/registry.hpp"

#include <stdexcept>

namespace cordon::engine {

void ProblemRegistry::add(std::unique_ptr<Solver> solver) {
  if (solver == nullptr)
    throw std::invalid_argument("ProblemRegistry: null solver");
  if (find(solver->key()) != nullptr)
    throw std::invalid_argument("ProblemRegistry: duplicate key '" +
                                std::string(solver->key()) + "'");
  solvers_.push_back(std::move(solver));
}

const Solver* ProblemRegistry::find(std::string_view key) const noexcept {
  for (const auto& s : solvers_)
    if (s->key() == key) return s.get();
  return nullptr;
}

const Solver& ProblemRegistry::at(std::string_view key) const {
  const Solver* s = find(key);
  if (s == nullptr)
    throw std::out_of_range("no solver registered for problem '" +
                            std::string(key) + "'");
  return *s;
}

std::vector<std::string_view> ProblemRegistry::keys() const {
  std::vector<std::string_view> out;
  out.reserve(solvers_.size());
  for (const auto& s : solvers_) out.push_back(s->key());
  return out;
}

const ProblemRegistry& builtin_registry() {
  static ProblemRegistry* reg = [] {
    auto* r = new ProblemRegistry;
    register_glws(*r);
    register_kglws(*r);
    register_lis(*r);
    register_lcs(*r);
    register_gap(*r);
    register_oat(*r);
    register_obst(*r);
    register_treeglws(*r);
    register_dag(*r);
    return r;
  }();
  return *reg;
}

}  // namespace cordon::engine
