// ProblemRegistry: string key -> Solver adapter.
//
// Registration is explicit (no static-initializer magic — self-registering
// translation units silently vanish when archived into static libraries):
// each algorithm module implements `register_<family>(ProblemRegistry&)`
// next to its adapter, and `builtin_registry()` assembles all of them
// once.  Tests can also build small custom registries.
//
// Threading: registration is not synchronized — build a registry on one
// thread, then treat it as immutable.  All const members (find/at/keys/
// solvers) are safe to call concurrently, which is what lets the batch
// executor and the service dispatch from many threads at once;
// builtin_registry() construction is thread-safe (function-local
// static).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/engine/solver.hpp"

namespace cordon::engine {

class ProblemRegistry {
 public:
  /// Takes ownership; throws std::invalid_argument on a duplicate key.
  void add(std::unique_ptr<Solver> solver);

  [[nodiscard]] const Solver* find(std::string_view key) const noexcept;
  /// Like find, but throws std::out_of_range naming the key.
  [[nodiscard]] const Solver& at(std::string_view key) const;

  [[nodiscard]] std::vector<std::string_view> keys() const;
  [[nodiscard]] std::size_t size() const noexcept { return solvers_.size(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Solver>>& solvers() const {
    return solvers_;
  }

 private:
  std::vector<std::unique_ptr<Solver>> solvers_;  // small N: linear scan
};

// One registration hook per algorithm module (defined in
// src/<family>/<family>_adapter.cpp; register_dag in src/engine).
void register_glws(ProblemRegistry& reg);
void register_kglws(ProblemRegistry& reg);
void register_lis(ProblemRegistry& reg);
void register_lcs(ProblemRegistry& reg);
void register_gap(ProblemRegistry& reg);
void register_oat(ProblemRegistry& reg);
void register_obst(ProblemRegistry& reg);
void register_treeglws(ProblemRegistry& reg);
void register_dag(ProblemRegistry& reg);

/// The registry holding every built-in family; constructed on first use.
[[nodiscard]] const ProblemRegistry& builtin_registry();

}  // namespace cordon::engine
