// Type-erased solver interface of the unified engine.
//
// Every algorithm family adapts itself to this interface (one adapter
// per module, registered in a ProblemRegistry under a stable string
// key), so callers — the CLI, the batch executor, tests, benches — can
// treat "solve an instance" as data-driven dispatch instead of linking
// against nine bespoke APIs.
//
// Threading: adapters hold no mutable state — solve/solve_reference/
// generate are const and safe to call concurrently on one Solver (the
// batch executor and service rely on this).  Solvers parallelize
// internally on the shared scheduler; callers need no locking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include <memory>

#include "src/core/dp_stats.hpp"
#include "src/engine/instance.hpp"

namespace cordon::engine {

struct Delta;  // src/engine/delta.hpp

/// Knobs for `Solver::generate`; interpretation is per-problem (`n` is
/// the dominant size, `k` the layer/cluster count where one exists) but
/// every generator is deterministic in `seed`.
struct GenOptions {
  std::uint64_t n = 1000;
  std::uint64_t k = 8;
  std::uint64_t seed = 1;
};

/// Outcome of one solve.  `objective` is the problem's headline scalar
/// (minimum total cost, maximum subsequence length, ...); `stats` are the
/// machine-independent work/span counters; `effective_depth` is the
/// known effective depth d^(G) of the instance's DP DAG when the solver
/// can certify one (0 = unknown).  For perfect parallelizations
/// (Thm 3.1/3.2, kGLWS) rounds == effective depth, and the dag solver
/// computes it exactly.
struct SolveResult {
  double objective = 0;
  core::DpStats stats;
  std::uint64_t effective_depth = 0;
  std::string detail;  // one human-readable line, e.g. "lis length=41 of n=100"
  /// Which algorithm `solve` ran: kParallel, or kSequentialCutoff when
  /// the adaptive cutoff (src/core/cutoff.hpp) routed the instance to
  /// the family's sequential algorithm.  Always kParallel from
  /// solve_reference (the oracle has no routing).
  core::SolvePath path = core::SolvePath::kParallel;
};

/// Opaque resumable solver state: the frontier/envelope a solve left
/// behind, from which an append-only delta can be re-solved without
/// touching the already-finalized prefix.  Concrete types are private to
/// each family's adapter; callers only store and hand back the pointer.
///
/// Ownership rule (docs/SESSIONS.md): checkpoint state is plain
/// heap-owned data — never arena- or worker-slot-backed — so it survives
/// `parallel::detail::shutdown_pool()` / `set_num_workers()` cycles.
/// Shared immutably via shared_ptr<const>: N session versions alias one
/// state (or path-copied structure inside it) instead of deep-copying.
class SolverState {
 public:
  virtual ~SolverState() = default;
};

/// What resume() produced: the result for the grown instance, the
/// checkpoint to resume the NEXT append from, and whether the solve was
/// actually served incrementally (false = the cold-fallback default ran;
/// the service's telemetry counters split on this).
struct ResumeResult {
  SolveResult result;
  std::shared_ptr<const SolverState> state;
  bool resumed = false;
};

/// A registered problem family.  `solve` runs the optimized (cordon /
/// parallel) algorithm; `solve_reference` runs the naive oracle the
/// paper's correctness claims are checked against — tests cross-validate
/// the two on random instances, and the CLI exposes both.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual std::string_view key() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;

  [[nodiscard]] virtual SolveResult solve(const Instance& inst) const = 0;
  [[nodiscard]] virtual SolveResult solve_reference(
      const Instance& inst) const = 0;

  /// Deterministic random instance of this problem kind.
  [[nodiscard]] virtual Instance generate(const GenOptions& opt) const = 0;

  // --- session capability (append-only incremental re-solve) ---------------
  //
  // The default implementations make every family session-capable via
  // cold fallback: solve_checkpoint() is solve() with a null state, and
  // resume() is a cold solve of the full grown instance.  Incremental
  // families (lis/lcs/glws) override all three; callers never branch on
  // the capability — they call resume() and read ResumeResult::resumed.

  /// True when this family can absorb append deltas from saved state.
  /// Capability may still degrade per call (e.g. a concave glws cost or
  /// an lcs delta that grows `b`): resume() reports what actually ran.
  [[nodiscard]] virtual bool incremental() const { return false; }

  /// solve() that also emits the checkpoint to resume appends from
  /// (null for non-incremental families or un-checkpointable instances).
  [[nodiscard]] virtual SolveResult solve_checkpoint(
      const Instance& inst,
      std::shared_ptr<const SolverState>& state) const {
    state = nullptr;
    return solve(inst);
  }

  /// Re-solves after `delta` was applied: `full` is the grown instance
  /// (delta already folded in), `state` the checkpoint from the previous
  /// version (possibly null).  The default ignores both and cold-solves
  /// `full`.  Overrides must fall back to the same behavior whenever the
  /// state is missing, of the wrong dynamic type, or inconsistent with
  /// `full` — never throw for a merely-unresumable input.
  [[nodiscard]] virtual ResumeResult resume(
      const std::shared_ptr<const SolverState>& state, const Instance& full,
      const Delta& delta) const {
    (void)state;
    (void)delta;
    return {solve(full), nullptr, false};
  }
};

}  // namespace cordon::engine
