// Type-erased solver interface of the unified engine.
//
// Every algorithm family adapts itself to this interface (one adapter
// per module, registered in a ProblemRegistry under a stable string
// key), so callers — the CLI, the batch executor, tests, benches — can
// treat "solve an instance" as data-driven dispatch instead of linking
// against nine bespoke APIs.
//
// Threading: adapters hold no mutable state — solve/solve_reference/
// generate are const and safe to call concurrently on one Solver (the
// batch executor and service rely on this).  Solvers parallelize
// internally on the shared scheduler; callers need no locking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/dp_stats.hpp"
#include "src/engine/instance.hpp"

namespace cordon::engine {

/// Knobs for `Solver::generate`; interpretation is per-problem (`n` is
/// the dominant size, `k` the layer/cluster count where one exists) but
/// every generator is deterministic in `seed`.
struct GenOptions {
  std::uint64_t n = 1000;
  std::uint64_t k = 8;
  std::uint64_t seed = 1;
};

/// Outcome of one solve.  `objective` is the problem's headline scalar
/// (minimum total cost, maximum subsequence length, ...); `stats` are the
/// machine-independent work/span counters; `effective_depth` is the
/// known effective depth d^(G) of the instance's DP DAG when the solver
/// can certify one (0 = unknown).  For perfect parallelizations
/// (Thm 3.1/3.2, kGLWS) rounds == effective depth, and the dag solver
/// computes it exactly.
struct SolveResult {
  double objective = 0;
  core::DpStats stats;
  std::uint64_t effective_depth = 0;
  std::string detail;  // one human-readable line, e.g. "lis length=41 of n=100"
  /// Which algorithm `solve` ran: kParallel, or kSequentialCutoff when
  /// the adaptive cutoff (src/core/cutoff.hpp) routed the instance to
  /// the family's sequential algorithm.  Always kParallel from
  /// solve_reference (the oracle has no routing).
  core::SolvePath path = core::SolvePath::kParallel;
};

/// A registered problem family.  `solve` runs the optimized (cordon /
/// parallel) algorithm; `solve_reference` runs the naive oracle the
/// paper's correctness claims are checked against — tests cross-validate
/// the two on random instances, and the CLI exposes both.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual std::string_view key() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;

  [[nodiscard]] virtual SolveResult solve(const Instance& inst) const = 0;
  [[nodiscard]] virtual SolveResult solve_reference(
      const Instance& inst) const = 0;

  /// Deterministic random instance of this problem kind.
  [[nodiscard]] virtual Instance generate(const GenOptions& opt) const = 0;
};

}  // namespace cordon::engine
