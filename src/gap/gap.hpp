// GAP edit distance (Sec. 5.2, Thm 5.2): align strings A[1..n], B[1..m]
// where deleting a whole substring costs w1 (in A) / w2 (in B):
//   P[i][j] = min_{i'<i} D[i'][j] + w1(i', i)     (gap in A, column GLWS)
//   Q[i][j] = min_{j'<j} D[i][j'] + w2(j', j)     (gap in B, row GLWS)
//   D[i][j] = min{ P[i][j], Q[i][j], D[i-1][j-1] if A[i]==B[j] }.
//
//   * gap_naive    — direct evaluation: O(n^2 m + n m^2) (oracle),
//   * gap_seq      — Γgap: every row of Q and column of P is a 1D GLWS,
//     solved with monotonic queues in row-major order: O(nm log nm),
//   * gap_parallel — the Cordon Algorithm on the 2D grid: the frontier is
//     a staircase; synchronized prefix-doubling across rows probes it,
//     sentinels come from (a) row-wise first_win, (b) column-wise
//     first_win, (c) diagonal edges whose source is unfinalized; a
//     prefix-min over rows turns sentinels into the staircase cordon.
//     Row/column best-decision lists are rebuilt per round with the
//     shared FindIntervals + envelope merge (convex needs the merge too:
//     a state can be past the cordon for column reasons while its best
//     row decision is old).  Work O(nm log n), span O(k log^2 n) rounds
//     where k is the effective depth of Γgap's DAG (Thm 5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/glws/glws.hpp"  // CostFn, Shape

namespace cordon::gap {

struct GapResult {
  std::vector<double> d;  // (n+1) x (m+1), row-major
  std::size_t rows = 0, cols = 0;
  double distance = 0;  // D[n][m]
  core::DpStats stats;
  core::SolvePath path = core::SolvePath::kParallel;  // set by gap_auto

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return d[i * cols + j];
  }
};

/// Direct evaluation of the recurrence (oracle).
[[nodiscard]] GapResult gap_naive(const std::vector<std::uint32_t>& a,
                                  const std::vector<std::uint32_t>& b,
                                  const glws::CostFn& w1,
                                  const glws::CostFn& w2);

/// Γgap — sequential row-major with per-row / per-column monotonic
/// queues.  `shape` applies to both w1 and w2 (the common case; the
/// paper's evaluation uses convex costs).
[[nodiscard]] GapResult gap_seq(const std::vector<std::uint32_t>& a,
                                const std::vector<std::uint32_t>& b,
                                const glws::CostFn& w1,
                                const glws::CostFn& w2, glws::Shape shape);

/// Cordon Algorithm on the grid (Thm 5.2).  stats.rounds counts the
/// staircase cordon rounds.
[[nodiscard]] GapResult gap_parallel(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b,
                                     const glws::CostFn& w1,
                                     const glws::CostFn& w2,
                                     glws::Shape shape);

/// Production entry point: gap_seq when effective parallelism is 1 or
/// the grid (n+1)*(m+1) is under the adaptive cutoff
/// (core::kGapSeqCutoff, override CORDON_GAP_CUTOFF), gap_parallel
/// otherwise.  The routing decision is recorded in GapResult::path.
[[nodiscard]] GapResult gap_auto(const std::vector<std::uint32_t>& a,
                                 const std::vector<std::uint32_t>& b,
                                 const glws::CostFn& w1,
                                 const glws::CostFn& w2, glws::Shape shape);

/// Affine gap cost builder: open + extend * length, convex Monge.
[[nodiscard]] inline glws::CostFn affine_gap_cost(double open,
                                                  double extend) {
  return [open, extend](std::size_t l, std::size_t r) {
    return open + extend * static_cast<double>(r - l);
  };
}

/// Strictly convex gap cost: open + sqrt-free quadratic-growth penalty
/// dampened to stay subadditive-friendly; used to exercise non-linear
/// costs in tests.
[[nodiscard]] inline glws::CostFn quadratic_gap_cost(double open,
                                                     double scale) {
  return [open, scale](std::size_t l, std::size_t r) {
    double len = static_cast<double>(r - l);
    return open + scale * len * len;
  };
}

/// Concave gap cost: logarithmic growth (classic in bioinformatics).
[[nodiscard]] glws::CostFn log_gap_cost(double open, double scale);

}  // namespace cordon::gap
