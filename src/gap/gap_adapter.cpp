// Engine adapter: GAP edit distance (Sec. 5.2, Thm 5.2).
#include <memory>
#include <stdexcept>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/gap/gap.hpp"

namespace cordon::engine {
namespace {

class GapSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "gap"; }
  [[nodiscard]] std::string_view description() const override {
    return "GAP edit distance with substring-deletion costs (Sec. 5.2)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = gap::gap_auto(p.a, p.b, p.w1.make(), p.w2.make(),
                           p.w1.shape());
    return pack(p, r);
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = gap::gap_naive(p.a, p.b, p.w1.make(), p.w2.make());
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    GapInstance p;
    // Small alphabet: diagonal (match) edges matter.
    p.a = detail::gen_symbols(opt.n, opt.seed, 4);
    p.b = detail::gen_symbols(std::max<std::uint64_t>(1, opt.n * 3 / 4),
                              opt.seed ^ 0x5bd1e995u, 4);
    p.w1 = detail::gen_cost(opt.seed, /*convex_only=*/true);
    p.w2 = detail::gen_cost(opt.seed ^ 0xff51afd7u, /*convex_only=*/true);
    return {"gap", p};
  }

 private:
  static const GapInstance& validate(const Instance& inst) {
    const auto& p = inst.as<GapInstance>();
    if (p.w1.shape() != p.w2.shape())
      throw std::invalid_argument(
          "gap requires w1 and w2 of the same Monge shape");
    return p;
  }

  static SolveResult pack(const GapInstance& p, const gap::GapResult& r) {
    SolveResult out;
    out.objective = r.distance;
    out.stats = r.stats;
    out.path = r.path;
    out.detail = "gap |a|=" + std::to_string(p.a.size()) +
                 " |b|=" + std::to_string(p.b.size()) +
                 " distance=" + std::to_string(r.distance);
    return out;
  }
};

}  // namespace

void register_gap(ProblemRegistry& reg) {
  reg.add(std::make_unique<GapSolver>());
}

}  // namespace cordon::engine
