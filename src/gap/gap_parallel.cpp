// Parallel GAP via the Cordon Algorithm (Sec. 5.2, Thm 5.2).
//
// The finalized region is always down-closed under (i', j') <= (i, j)
// componentwise, i.e. a staircase: front[i] = first unfinalized column of
// row i is non-increasing in i.  Each round:
//
//   1. synchronized prefix-doubling: every row extends a probe window
//      right of its front; a probed state computes its tentative value
//      from the *finalized* row/column envelopes (and the diagonal if its
//      source is finalized) and places sentinels:
//        (a) row-wise  — first state it would relax in its row,
//        (b) column-wise — first state it would relax in its column,
//        (c) diagonal  — on itself, if A[i]==B[j] but (i-1,j-1) is
//            tentative;
//      sentinel (x, y) blocks everything >= (x, y), which a per-substep
//      prefix-min over the rows' caps implements in O(n);
//   2. rows finalize [front[i], cap[i]); the per-row and per-column
//      best-decision lists are rebuilt with FindIntervals and spliced
//      onto the old envelopes with the generalized Alg. 2 merge.
//
// Caps stay non-increasing across rows at every substep, which is what
// makes the probe sound: a tentative state outside every window can only
// relax states that are themselves outside every window.
#include <atomic>
#include <limits>
#include <optional>
#include <span>
#include <utility>

#include "src/core/arena.hpp"
#include "src/core/cutoff.hpp"
#include "src/core/trace.hpp"
#include "src/gap/gap.hpp"
#include "src/glws/envelope_tools.hpp"
#include "src/parallel/primitives.hpp"

namespace cordon::gap {
namespace {

using glws::Shape;
using structures::BestDecisionList;
using structures::DecisionInterval;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = BestDecisionList::kNone;

struct Grid {
  std::size_t n, m;
  std::vector<double> d;  // (n+1) x (m+1)

  double& at(std::size_t i, std::size_t j) { return d[i * (m + 1) + j]; }
  [[nodiscard]] double get(std::size_t i, std::size_t j) const {
    return d[i * (m + 1) + j];
  }
};

}  // namespace

GapResult gap_parallel(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b,
                       const glws::CostFn& w1, const glws::CostFn& w2,
                       glws::Shape shape) {
  const std::size_t n = a.size(), m = b.size();
  const bool convex = shape == Shape::kConvex;
  GapResult res;
  res.rows = n + 1;
  res.cols = m + 1;

  Grid g{n, m, std::vector<double>((n + 1) * (m + 1), kInf)};
  g.at(0, 0) = 0.0;
  core::AtomicDpStats stats;

  // Row envelope of row i: decisions are finalized columns j' of row i,
  // eval(j', j) = D[i][j'] + w2(j', j).  Column envelope symmetric.
  auto row_eval = [&](std::size_t i) {
    return [&, i](std::size_t jp, std::size_t j) {
      stats.add_relaxations(1);
      return g.get(i, jp) + w2(jp, j);
    };
  };
  auto col_eval = [&](std::size_t j) {
    return [&, j](std::size_t ip, std::size_t i) {
      stats.add_relaxations(1);
      return g.get(ip, j) + w1(ip, i);
    };
  };

  std::vector<BestDecisionList> row_b(n + 1), col_b(m + 1);
  // Per-row/-column merge temporaries, hoisted so every round's envelope
  // splice reuses warm SoA capacity instead of allocating three fresh
  // arrays per row (safe in the parallel loops below: row i / column j
  // only ever touches its own slot).
  std::vector<BestDecisionList> row_tmp(n + 1), col_tmp(m + 1);

  // Whole-run and per-round dense scratch comes from the worker's arena:
  // each round rewinds to `round_mark` instead of freeing, so the steady
  // state of the round loop performs no heap allocation for any of the
  // cap / window / front bookkeeping below.
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<std::size_t> front = arena.make_span<std::size_t>(n + 1, std::size_t{0});
  std::span<std::size_t> new_front = arena.make_span<std::size_t>(n + 1, std::size_t{0});
  std::span<std::size_t> colfront = arena.make_span<std::size_t>(m + 1, std::size_t{0});
  front[0] = 1;  // (0,0) is the boundary state
  colfront[0] = 1;
  if (m >= 1) row_b[0].assign({{1, m, 0}});
  if (n >= 1) col_b[0].assign({{1, n, 0}});

  auto done = [&] {
    for (std::size_t i = 0; i <= n; ++i)
      if (front[i] <= m) return false;
    return true;
  };

  // Round fusion: near the end of a run the staircase often advances by
  // a handful of cells per round; forking the row/column envelope loops
  // for that is pure overhead.  The previous round's measured relaxation
  // count decides whether the next round runs inline.
  const std::size_t fuse_threshold = core::fuse_relax_threshold();
  std::uint64_t prev_round_relax = std::numeric_limits<std::uint64_t>::max();

  while (!done()) {
    stats.add_round();
    telemetry::RoundSpan round_span("gap.round", stats);
    std::uint64_t relax_before =
        stats.relaxations.load(std::memory_order_relaxed);
    std::optional<parallel::SequentialRegion> fuse_guard;
    if (core::fuse_round(prev_round_relax, fuse_threshold))
      fuse_guard.emplace();
    core::ArenaScope round_scope(arena);
    // Relaxed atomic caps over a plain arena span via atomic_ref — the
    // CAS loop below is the only cross-thread access.
    std::span<std::size_t> cap =
        arena.make_span<std::size_t>(n + 1, m + 1);
    std::span<std::size_t> checked = arena.make_span<std::size_t>(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      checked[i] = front[i] == 0 ? 0 : front[i] - 1;
    // checked[i] = last probed column (front[i]-1 means "none yet").
    // Special case front[i]==0: use a sentinel meaning none probed.
    std::span<std::uint8_t> none_checked =
        arena.make_span<std::uint8_t>(n + 1, std::uint8_t{1});
    // Per-substep probe windows, refilled each substep.  (A plain struct:
    // std::pair's user-provided assignment makes it non-trivial, which
    // the arena rejects.)
    struct Window {
      std::size_t lo, hi;
    };
    std::span<Window> span = arena.make_span<Window>(n + 1);

    auto lower_cap = [&](std::size_t row, std::size_t col) {
      std::atomic_ref<std::size_t> c(cap[row]);
      std::size_t cur = c.load(std::memory_order_relaxed);
      while (col < cur &&
             !c.compare_exchange_weak(cur, col, std::memory_order_relaxed)) {
      }
    };
    auto load_cap = [&](std::size_t row) {
      return std::atomic_ref<std::size_t>(cap[row])
          .load(std::memory_order_relaxed);
    };

    for (std::size_t t = 1;; ++t) {
      // Probe windows: row i extends to front[i] + 2^t - 2, clamped by
      // its cap and the grid.
      bool any = false;
      for (std::size_t i = 0; i <= n; ++i) span[i] = {1, 0};
      for (std::size_t i = 0; i <= n; ++i) {
        std::size_t c = load_cap(i);
        if (front[i] > m || c <= front[i]) continue;
        std::size_t lo = none_checked[i] ? front[i] : checked[i] + 1;
        std::size_t hi =
            std::min({m, c - 1, front[i] + (std::size_t{1} << t) - 2});
        if (lo > hi) continue;
        span[i] = {lo, hi};
        any = true;
      }
      if (!any) break;

      parallel::parallel_for(0, n + 1, [&](std::size_t i) {
        auto [lo, hi] = span[i];
        if (lo > hi) return;
        // Body-local counting: one atomic flush per probed window
        // instead of a locked RMW per cost evaluation (the probe loop
        // is the bulk of all relaxations).
        std::uint64_t local_relax = 0;
        auto reval = [&](std::size_t jp, std::size_t j) {
          ++local_relax;
          return g.get(i, jp) + w2(jp, j);
        };
        for (std::size_t j = lo; j <= hi; ++j) {
          auto ceval = [&](std::size_t ip, std::size_t ii) {
            ++local_relax;
            return g.get(ip, j) + w1(ip, ii);
          };
          double v = kInf;
          std::size_t rb = row_b[i].best_of(j);
          if (rb != kNone) v = std::min(v, reval(rb, j));
          std::size_t cb = col_b[j].best_of(i);
          if (cb != kNone) v = std::min(v, ceval(cb, i));
          if (i >= 1 && j >= 1 && a[i - 1] == b[j - 1]) {
            if (j - 1 < front[i - 1]) {
              v = std::min(v, g.get(i - 1, j - 1));
            } else {
              lower_cap(i, j);  // diagonal source tentative: sentinel here
            }
          }
          g.at(i, j) = v;
          if (v == kInf) continue;  // cannot relax anyone yet

          // Row-wise sentinel.
          if (!row_b[i].empty()) {
            std::size_t s;
            if (convex) {
              s = row_b[i].first_win(j, reval, j + 1);
            } else {
              s = kNone;
              if (j + 1 <= m && j + 1 >= row_b[i].cover_lo()) {
                std::size_t bn = row_b[i].best_of(j + 1);
                if (bn != kNone && reval(j, j + 1) < reval(bn, j + 1))
                  s = j + 1;
              }
            }
            if (s != kNone) lower_cap(i, s);
          } else if (j + 1 <= m) {
            lower_cap(i, j + 1);  // no envelope yet: block conservatively
          }
          // Column-wise sentinel.
          if (!col_b[j].empty()) {
            std::size_t s;
            if (convex) {
              s = col_b[j].first_win(i, ceval, i + 1);
            } else {
              s = kNone;
              if (i + 1 <= n && i + 1 >= col_b[j].cover_lo()) {
                std::size_t bn = col_b[j].best_of(i + 1);
                if (bn != kNone && ceval(i, i + 1) < ceval(bn, i + 1))
                  s = i + 1;
              }
            }
            if (s != kNone) lower_cap(s, j);
          } else if (i + 1 <= n) {
            lower_cap(i + 1, j);
          }
        }
        stats.add_states(hi - lo + 1);
        stats.add_relaxations(local_relax);
      });

      // Staircase clamp: sentinel (x, y) blocks every row below at
      // column y and beyond.  (Sequential: the parallel_for above joined,
      // so plain accesses are ordered after every CAS.)
      for (std::size_t i = 1; i <= n; ++i) {
        if (cap[i - 1] < cap[i]) cap[i] = cap[i - 1];
      }
      for (std::size_t i = 0; i <= n; ++i) {
        auto [lo, hi] = span[i];
        if (lo > hi) continue;
        checked[i] = hi;
        none_checked[i] = 0;
      }
    }

    // Finalize [front[i], cap[i]) per row and rebuild envelopes.
    for (std::size_t i = 0; i <= n; ++i)
      new_front[i] = std::max(front[i], std::min(cap[i], m + 1));

    // Row envelopes.
    parallel::parallel_for(0, n + 1, [&](std::size_t i) {
      std::size_t f0 = front[i], f1 = new_front[i];
      if (f1 == f0 || f1 > m) {
        if (f1 > m) row_b[i].assign({});
        return;
      }
      auto reval = row_eval(i);
      std::size_t dlo = f0 == 0 ? 0 : f0;
      std::vector<DecisionInterval> fresh = glws::coalesce(
          glws::find_intervals(reval, dlo, f1 - 1, f1, m, convex));
      if (row_b[i].empty()) {
        row_b[i].assign(fresh);
      } else {
        row_b[i].advance_to(f1);
        BestDecisionList& bnew = row_tmp[i];
        bnew.assign(fresh);
        row_b[i].assign(glws::coalesce(
            glws::merge_envelopes(row_b[i], bnew, reval, f1, m, convex)));
      }
    });

    // Column envelopes: column j gained rows [colfront[j], c1) where c1 =
    // first row with new_front <= j (new_front is non-increasing).
    parallel::parallel_for(0, m + 1, [&](std::size_t j) {
      // Binary search: rows 0..c1-1 have new_front > j.
      std::size_t lo = 0, hi = n + 1;
      while (lo < hi) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (new_front[mid] > j)
          lo = mid + 1;
        else
          hi = mid;
      }
      std::size_t c1 = lo, c0 = colfront[j];
      if (c1 == c0) return;
      colfront[j] = c1;
      if (c1 > n) {
        col_b[j].assign({});
        return;
      }
      auto ceval = col_eval(j);
      std::vector<DecisionInterval> fresh = glws::coalesce(
          glws::find_intervals(ceval, c0, c1 - 1, c1, n, convex));
      if (col_b[j].empty()) {
        col_b[j].assign(fresh);
      } else {
        col_b[j].advance_to(c1);
        BestDecisionList& bnew = col_tmp[j];
        bnew.assign(fresh);
        col_b[j].assign(glws::coalesce(
            glws::merge_envelopes(col_b[j], bnew, ceval, c1, n, convex)));
      }
    });

    std::swap(front, new_front);  // new_front is fully rewritten next round
    prev_round_relax =
        stats.relaxations.load(std::memory_order_relaxed) - relax_before;
  }

  res.d = std::move(g.d);
  res.distance = res.at(n, m);
  res.stats = stats.snapshot();
  return res;
}

GapResult gap_auto(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b, const glws::CostFn& w1,
                   const glws::CostFn& w2, glws::Shape shape) {
  const std::size_t cells = (a.size() + 1) * (b.size() + 1);
  const std::size_t cutoff =
      core::cutoff_from_env("CORDON_GAP_CUTOFF", core::kGapSeqCutoff);
  const std::size_t min_workers =
      core::cutoff_from_env("CORDON_GAP_MIN_WORKERS", core::kGapMinWorkers);
  if (core::use_sequential(cells, cutoff, min_workers)) {
    GapResult r = gap_seq(a, b, w1, w2, shape);
    r.path = core::SolvePath::kSequentialCutoff;
    return r;
  }
  return gap_parallel(a, b, w1, w2, shape);
}

}  // namespace cordon::gap
