#include <cmath>
#include <limits>
#include <memory>

#include "src/core/cancel.hpp"
#include "src/gap/gap.hpp"
#include "src/structures/monotonic_queue.hpp"

namespace cordon::gap {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

glws::CostFn log_gap_cost(double open, double scale) {
  return [open, scale](std::size_t l, std::size_t r) {
    return open + scale * std::log1p(static_cast<double>(r - l));
  };
}

GapResult gap_naive(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b,
                    const glws::CostFn& w1, const glws::CostFn& w2) {
  const std::size_t n = a.size(), m = b.size();
  GapResult res;
  res.rows = n + 1;
  res.cols = m + 1;
  res.d.assign(res.rows * res.cols, kInf);
  auto d = [&](std::size_t i, std::size_t j) -> double& {
    return res.d[i * res.cols + j];
  };
  d(0, 0) = 0.0;
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = 0; j <= m; ++j) {
      if (i == 0 && j == 0) continue;
      double best = kInf;
      for (std::size_t ip = 0; ip < i; ++ip) {  // P: gap in A
        ++res.stats.relaxations;
        best = std::min(best, d(ip, j) + w1(ip, i));
      }
      for (std::size_t jp = 0; jp < j; ++jp) {  // Q: gap in B
        ++res.stats.relaxations;
        best = std::min(best, d(i, jp) + w2(jp, j));
      }
      if (i > 0 && j > 0 && a[i - 1] == b[j - 1]) {
        ++res.stats.relaxations;
        best = std::min(best, d(i - 1, j - 1));
      }
      d(i, j) = best;
      ++res.stats.states;
    }
  }
  res.distance = d(n, m);
  return res;
}

GapResult gap_seq(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, const glws::CostFn& w1,
                  const glws::CostFn& w2, glws::Shape shape) {
  const std::size_t n = a.size(), m = b.size();
  GapResult res;
  res.rows = n + 1;
  res.cols = m + 1;
  res.d.assign(res.rows * res.cols, kInf);
  auto d = [&](std::size_t i, std::size_t j) -> double& {
    return res.d[i * res.cols + j];
  };
  d(0, 0) = 0.0;

  core::DpStats stats;
  const bool convex = shape == glws::Shape::kConvex;

  // One monotonic queue per column (candidates = finalized rows of that
  // column, evaluated with w1) and one per row (candidates = finalized
  // columns of that row, evaluated with w2).  Row-major order inserts
  // every candidate before any state that needs it.
  struct ColEval {
    const GapResult* res;
    const glws::CostFn* w1;
    std::size_t j;
    core::DpStats* stats;
    double operator()(std::size_t ip, std::size_t i) const {
      ++stats->relaxations;
      return res->at(ip, j) + (*w1)(ip, i);
    }
  };
  struct RowEval {
    const GapResult* res;
    const glws::CostFn* w2;
    std::size_t i;
    core::DpStats* stats;
    double operator()(std::size_t jp, std::size_t j) const {
      ++stats->relaxations;
      return res->at(i, jp) + (*w2)(jp, j);
    }
  };
  using ColQueue = structures::MonotonicQueue<ColEval>;
  using RowQueue = structures::MonotonicQueue<RowEval>;

  std::vector<std::unique_ptr<ColQueue>> col_q(m + 1);
  for (std::size_t j = 0; j <= m; ++j)
    col_q[j] = std::make_unique<ColQueue>(n, ColEval{&res, &w1, j, &stats});

  core::PollTicker poll;
  for (std::size_t i = 0; i <= n; ++i) {
    RowQueue row_q(m, RowEval{&res, &w2, i, &stats});
    for (std::size_t j = 0; j <= m; ++j) {
      poll.tick();
      if (i != 0 || j != 0) {
        double best = kInf;
        if (i > 0) {
          std::size_t ip = col_q[j]->best(i);
          best = std::min(best, res.at(ip, j) + w1(ip, i));
        }
        if (j > 0) {
          std::size_t jp = row_q.best(j);
          best = std::min(best, res.at(i, jp) + w2(jp, j));
        }
        if (i > 0 && j > 0 && a[i - 1] == b[j - 1])
          best = std::min(best, res.at(i - 1, j - 1));
        d(i, j) = best;
        ++stats.states;
      }
      // D[i][j] is now final: offer it as a candidate to its row and
      // column queues.
      if (j < m) {
        if (convex)
          row_q.insert_convex(j);
        else
          row_q.insert_concave(j);
      }
      if (i < n) {
        if (convex)
          col_q[j]->insert_convex(i);
        else
          col_q[j]->insert_concave(i);
      }
    }
  }
  res.distance = res.at(n, m);
  res.stats = stats;
  return res;
}

}  // namespace cordon::gap
