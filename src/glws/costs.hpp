// Standard cost functions for GLWS-family problems.
//
// All satisfy the convex or concave Monge condition (Sec. 4.1); tests
// verify this with core/monge.hpp validators.  Each returns a CostFn
// closing over shared immutable data (positions / prefix sums), so
// copies are cheap and thread-safe.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "src/glws/glws.hpp"

namespace cordon::glws {

/// Post-office cost (the paper's running example, Sec. 4 / Fig. 7
/// workload): serving villages j+1..i with one office costs a fixed
/// `open_cost` plus the squared span of the served range.  Convex Monge:
/// w(j, i) = open_cost + (x[i] - x[j+1])^2 over sorted positions x[1..n].
/// Larger open_cost => fewer offices in the optimum (the paper's knob
/// for the output size k).
[[nodiscard]] inline CostFn post_office_cost(
    std::shared_ptr<const std::vector<double>> x, double open_cost) {
  return [x = std::move(x), open_cost](std::size_t j, std::size_t i) {
    double span = (*x)[i] - (*x)[j + 1];
    return open_cost + span * span;
  };
}

/// Linear-span post-office variant (also convex Monge, weaker curvature).
[[nodiscard]] inline CostFn post_office_linear_cost(
    std::shared_ptr<const std::vector<double>> x, double open_cost) {
  return [x = std::move(x), open_cost](std::size_t j, std::size_t i) {
    return open_cost + ((*x)[i] - (*x)[j + 1]);
  };
}

/// Concave example: square-root of the span (economies of scale).
/// Satisfies the inverse quadrangle inequality.
[[nodiscard]] inline CostFn sqrt_span_cost(
    std::shared_ptr<const std::vector<double>> x, double open_cost) {
  return [x = std::move(x), open_cost](std::size_t j, std::size_t i) {
    return open_cost + std::sqrt((*x)[i] - (*x)[j + 1]);
  };
}

/// Knuth–Plass line-breaking badness: words j+1..i on one line of width
/// `line_width`; cost is cube of the slack (overfull lines get a large
/// convex penalty).  `word_prefix[i]` = total length of words 1..i plus
/// one space per word.  Convex Monge.
[[nodiscard]] inline CostFn line_break_cost(
    std::shared_ptr<const std::vector<double>> word_prefix,
    double line_width) {
  return [wp = std::move(word_prefix), line_width](std::size_t j,
                                                   std::size_t i) {
    double len = (*wp)[i] - (*wp)[j] - 1.0;  // drop the trailing space
    double slack = line_width - len;
    if (slack < 0) return 1e12 + slack * slack;  // overfull: huge penalty
    return slack * slack * slack / (line_width * line_width);
  };
}

/// Convex clustering cost via prefix sums: sum of squared distances of
/// points j+1..i to their mean (the 1D k-means / ckmeans objective).
/// Uses sum and sum-of-squares prefixes for O(1) evaluation.
struct SquaredDistanceCost {
  std::shared_ptr<const std::vector<double>> prefix_sum;    // of x
  std::shared_ptr<const std::vector<double>> prefix_sq;     // of x^2

  double operator()(std::size_t j, std::size_t i) const {
    double cnt = static_cast<double>(i - j);
    double s = (*prefix_sum)[i] - (*prefix_sum)[j];
    double sq = (*prefix_sq)[i] - (*prefix_sq)[j];
    return sq - s * s / cnt;
  }
};

/// Builds SquaredDistanceCost from sorted values x[1..n] (x[0] ignored).
[[nodiscard]] inline SquaredDistanceCost squared_distance_cost(
    const std::vector<double>& x) {
  auto ps = std::make_shared<std::vector<double>>(x.size(), 0.0);
  auto pq = std::make_shared<std::vector<double>>(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) {
    (*ps)[i] = (*ps)[i - 1] + x[i];
    (*pq)[i] = (*pq)[i - 1] + x[i] * x[i];
  }
  return {std::move(ps), std::move(pq)};
}

}  // namespace cordon::glws
