// Shared envelope machinery for DM algorithms: FindIntervals (Alg. 1
// lines 23-32), triple coalescing, and the old/new envelope merge
// (Alg. 2, generalized to both shapes as the paper notes).
//
// Everything is templated on Eval: eval(j, i) -> double is the transition
// value E[j] + w(j, i).  GLWS instantiates it over its 1D E array; GAP
// instantiates one Eval per row and per column of the grid.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/audit.hpp"
#include "src/core/kernels.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/structures/best_decision_list.hpp"

namespace cordon::glws {

using structures::BestDecisionList;
using structures::DecisionInterval;

namespace detail {

// Parallel argmin of eval(j, im) over j in [jl, jr].  Convex callers want
// the leftmost minimum, concave the rightmost (keeps the recursive
// decision ranges consistent with DM under ties).
template <typename Eval>
std::size_t argmin_decision(const Eval& eval, std::size_t jl, std::size_t jr,
                            std::size_t im, bool prefer_larger_j) {
  struct Cand {
    double v;
    std::size_t j;
  };
  auto pick = [&](const Cand& a, const Cand& b) {
    if (a.v < b.v) return a;
    if (b.v < a.v) return b;
    return prefer_larger_j ? (a.j > b.j ? a : b) : (a.j < b.j ? a : b);
  };
  constexpr std::size_t kSeq = 1024;
  if (jr - jl <= kSeq) {
    // Branchless single-pass kernels; tie direction picks the variant.
    auto value = [&](std::size_t j) { return eval(j, im); };
    return prefer_larger_j
               ? core::kernels::argmin_transform_last(jl, jr + 1, value).index
               : core::kernels::argmin_transform(jl, jr + 1, value).index;
  }
  std::size_t mid = jl + (jr - jl) / 2;
  std::size_t a = 0, b = 0;
  parallel::par_do(
      [&] { a = argmin_decision(eval, jl, mid, im, prefer_larger_j); },
      [&] { b = argmin_decision(eval, mid + 1, jr, im, prefer_larger_j); });
  return pick({eval(a, im), a}, {eval(b, im), b}).j;
}

}  // namespace detail

/// FindIntervals: best-decision triples for states [il, ir] with decisions
/// restricted to [jl, jr].  O(M log N) work, O(log^2) span.
template <typename Eval>
std::vector<DecisionInterval> find_intervals(const Eval& eval, std::size_t jl,
                                             std::size_t jr, std::size_t il,
                                             std::size_t ir, bool convex) {
  if (il > ir) return {};
  if (jl == jr) return {{il, ir, jl}};
  std::size_t im = il + (ir - il) / 2;
  std::size_t jm =
      detail::argmin_decision(eval, jl, jr, im, /*prefer_larger_j=*/!convex);

  std::vector<DecisionInterval> left, right;
  if (convex) {
    parallel::par_do(
        [&] { left = find_intervals(eval, jl, jm, il, im - 1, convex); },
        [&] { right = find_intervals(eval, jm, jr, im + 1, ir, convex); });
  } else {
    parallel::par_do(
        [&] { left = find_intervals(eval, jm, jr, il, im - 1, convex); },
        [&] { right = find_intervals(eval, jl, jm, im + 1, ir, convex); });
  }
  std::vector<DecisionInterval> out;
  out.reserve(left.size() + right.size() + 1);
  out.insert(out.end(), left.begin(), left.end());
  out.push_back({im, im, jm});
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

/// Audit-build check: a decision list must tile [lo, hi] exactly —
/// ordered, gap-free, overlap-free.  O(size) over a list that was just
/// built in O(size), so it never changes the complexity of a round.
inline void audit_covers([[maybe_unused]] const std::vector<DecisionInterval>& v,
                         [[maybe_unused]] std::size_t lo,
                         [[maybe_unused]] std::size_t hi) {
  if constexpr (core::audit::kEnabled) {
    CORDON_DCHECK(!v.empty() && v.front().l == lo && v.back().r == hi,
                  "envelope does not span its state range");
    for (std::size_t t = 0; t + 1 < v.size(); ++t)
      CORDON_DCHECK(v[t].l <= v[t].r && v[t].r + 1 == v[t + 1].l,
                    "envelope intervals overlap or leave a gap");
  }
}

/// Merges adjacent triples with the same decision (Alg. 1 line 22).
inline std::vector<DecisionInterval> coalesce(std::vector<DecisionInterval> v) {
  std::vector<DecisionInterval> out;
  out.reserve(v.size());
  for (const auto& t : v) {
    if (!out.empty() && out.back().j == t.j && out.back().r + 1 == t.l)
      out.back().r = t.r;
    else
      out.push_back(t);
  }
  return out;
}

/// Alg. 2 (generalized): splice the envelope of *newer* decisions (bnew)
/// with the envelope of older ones (bold).  Both lists must cover
/// [lo, hi].  Concave costs: new decisions win a prefix [lo, p]; convex:
/// a suffix [p, hi].  Binary search of the cutting point.
template <typename Eval>
std::vector<DecisionInterval> merge_envelopes(const BestDecisionList& bold,
                                              const BestDecisionList& bnew,
                                              const Eval& eval, std::size_t lo,
                                              std::size_t hi, bool convex) {
  auto new_wins = [&](std::size_t i) {
    return eval(bnew.best_of(i), i) < eval(bold.best_of(i), i);
  };
  // Locate the boundary of the new-wins region.
  std::vector<DecisionInterval> merged;
  auto splice = [&](std::size_t new_lo, std::size_t new_hi, bool new_first) {
    // new decisions serve [new_lo, new_hi]; old ones serve the rest.
    auto append_clipped = [&](const BestDecisionList& src, std::size_t a,
                              std::size_t b) {
      if (a > b) return;
      for (std::size_t t = 0; t < src.size(); ++t) {
        if (src.triple_r(t) < a || src.triple_l(t) > b) continue;
        merged.push_back({std::max(src.triple_l(t), a),
                          std::min(src.triple_r(t), b), src.triple_j(t)});
      }
    };
    if (new_first) {
      append_clipped(bnew, new_lo, new_hi);
      if (new_hi < hi) append_clipped(bold, new_hi + 1, hi);
    } else {
      if (new_lo > lo) append_clipped(bold, lo, new_lo - 1);
      append_clipped(bnew, new_lo, new_hi);
    }
  };

  if (!convex) {
    // Concave: new wins on a prefix.
    if (!new_wins(lo)) return bold.to_triples();
    if (new_wins(hi)) return bnew.to_triples();
    std::size_t a = lo, b = hi;  // wins at a, loses at b
    while (a + 1 < b) {
      std::size_t mid = a + (b - a) / 2;
      if (new_wins(mid))
        a = mid;
      else
        b = mid;
    }
    splice(lo, a, /*new_first=*/true);
  } else {
    // Convex: new wins on a suffix.
    if (!new_wins(hi)) return bold.to_triples();
    if (new_wins(lo)) return bnew.to_triples();
    std::size_t a = lo, b = hi;  // loses at a, wins at b
    while (a + 1 < b) {
      std::size_t mid = a + (b - a) / 2;
      if (new_wins(mid))
        b = mid;
      else
        a = mid;
    }
    splice(b, hi, /*new_first=*/false);
  }
  audit_covers(merged, lo, hi);
  return merged;
}

}  // namespace cordon::glws
