// Generalized Least Weight Subsequence (Sec. 4):
//   D[i] = min_{0 <= j < i} { E[j] + w(j, i) },  E[j] = f(D[j], j).
//
// Algorithms:
//   * glws_naive      — O(n^2) evaluation of the recurrence (oracle),
//   * glws_sequential — Γlws: the classic O(n log n) monotonic-queue
//     algorithm [44] for convex or concave costs (the algorithm that the
//     parallel version faithfully parallelizes),
//   * glws_parallel   — the Cordon Algorithm, Alg. 1 (+ Alg. 2 for the
//     concave merge): O(n log n) work, O(k log^2 n) span, where k is the
//     number of phase-parallel rounds (= effective depth; for convex
//     costs the *perfect* depth, e.g. the number of post offices in the
//     optimal solution).  Thm 4.1 / 4.2.
//
// Cost functions are type-erased (std::function): GLWS evaluates only
// O(n log n) transitions, so call-through overhead is a small constant
// factor and type-erasure keeps the public API simple.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::glws {

enum class Shape { kConvex, kConcave };

/// w(j, i): cost of a transition j -> i, defined for 0 <= j < i <= n.
using CostFn = std::function<double(std::size_t, std::size_t)>;

/// E[j] = f(D[j], j); must be O(1).
using EFn = std::function<double(double, std::size_t)>;

/// The identity E used by the original (non-generalized) LWS.
[[nodiscard]] inline EFn identity_e() {
  return [](double d, std::size_t) { return d; };
}

struct GlwsResult {
  std::vector<double> d;             // D[0..n] (d[0] is the boundary)
  std::vector<std::uint32_t> best;   // best[i], i in 1..n (best[0] unused)
  core::DpStats stats;
  core::SolvePath path = core::SolvePath::kParallel;  // set by glws_auto
};

/// O(n^2) reference (oracle).
[[nodiscard]] GlwsResult glws_naive(std::size_t n, double d0, const CostFn& w,
                                    const EFn& e);

/// Γlws — sequential O(n log n) monotonic-queue algorithm.
[[nodiscard]] GlwsResult glws_sequential(std::size_t n, double d0,
                                         const CostFn& w, const EFn& e,
                                         Shape shape);

/// Parallel Cordon Algorithm (Alg. 1; Alg. 2 merge in the concave case).
/// stats.rounds is the number of cordon rounds (= k in Thm 4.1/4.2).
[[nodiscard]] GlwsResult glws_parallel(std::size_t n, double d0,
                                       const CostFn& w, const EFn& e,
                                       Shape shape);

/// Production entry point: glws_sequential when effective parallelism is
/// 1 or n is under the adaptive cutoff (core::kGlwsSeqCutoff, override
/// CORDON_GLWS_CUTOFF), glws_parallel otherwise.  The routing decision
/// is recorded in GlwsResult::path.
[[nodiscard]] GlwsResult glws_auto(std::size_t n, double d0, const CostFn& w,
                                   const EFn& e, Shape shape);

}  // namespace cordon::glws
