// Generalized Least Weight Subsequence (Sec. 4):
//   D[i] = min_{0 <= j < i} { E[j] + w(j, i) },  E[j] = f(D[j], j).
//
// Algorithms:
//   * glws_naive      — O(n^2) evaluation of the recurrence (oracle),
//   * glws_sequential — Γlws: the classic O(n log n) monotonic-queue
//     algorithm [44] for convex or concave costs (the algorithm that the
//     parallel version faithfully parallelizes),
//   * glws_parallel   — the Cordon Algorithm, Alg. 1 (+ Alg. 2 for the
//     concave merge): O(n log n) work, O(k log^2 n) span, where k is the
//     number of phase-parallel rounds (= effective depth; for convex
//     costs the *perfect* depth, e.g. the number of post offices in the
//     optimal solution).  Thm 4.1 / 4.2.
//
// Cost functions are type-erased (std::function): GLWS evaluates only
// O(n log n) transitions, so call-through overhead is a small constant
// factor and type-erasure keeps the public API simple.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::glws {

enum class Shape { kConvex, kConcave };

/// w(j, i): cost of a transition j -> i, defined for 0 <= j < i <= n.
using CostFn = std::function<double(std::size_t, std::size_t)>;

/// E[j] = f(D[j], j); must be O(1).
using EFn = std::function<double(double, std::size_t)>;

/// The identity E used by the original (non-generalized) LWS.
[[nodiscard]] inline EFn identity_e() {
  return [](double d, std::size_t) { return d; };
}

struct GlwsResult {
  std::vector<double> d;             // D[0..n] (d[0] is the boundary)
  std::vector<std::uint32_t> best;   // best[i], i in 1..n (best[0] unused)
  core::DpStats stats;
  core::SolvePath path = core::SolvePath::kParallel;  // set by glws_auto
};

/// O(n^2) reference (oracle).
[[nodiscard]] GlwsResult glws_naive(std::size_t n, double d0, const CostFn& w,
                                    const EFn& e);

/// Γlws — sequential O(n log n) monotonic-queue algorithm.
[[nodiscard]] GlwsResult glws_sequential(std::size_t n, double d0,
                                         const CostFn& w, const EFn& e,
                                         Shape shape);

/// Parallel Cordon Algorithm (Alg. 1; Alg. 2 merge in the concave case).
/// stats.rounds is the number of cordon rounds (= k in Thm 4.1/4.2).
[[nodiscard]] GlwsResult glws_parallel(std::size_t n, double d0,
                                       const CostFn& w, const EFn& e,
                                       Shape shape);

/// Production entry point: glws_sequential when effective parallelism is
/// 1 or n is under the adaptive cutoff (core::kGlwsSeqCutoff, override
/// CORDON_GLWS_CUTOFF), glws_parallel otherwise.  The routing decision
/// is recorded in GlwsResult::path.
[[nodiscard]] GlwsResult glws_auto(std::size_t n, double d0, const CostFn& w,
                                   const EFn& e, Shape shape);

// --- append-resumable envelope (solve sessions, convex costs) ---------------
//
// The deque of glws_sequential discards convex candidates whose winning
// suffix starts beyond the current n — exactly the candidates a later
// append may need — so its state cannot be checkpointed.  The
// incremental solver instead keeps the lower envelope as
// DecisionIntervals extending to a fixed `horizon` in a
// PersistentIntervalTreap (Sec. 5.3): no candidate is ever discarded
// for any extension up to the horizon, and path-copying lets N session
// versions share one O(n)-node structure.  Appending a state costs
// O(log n) treap work plus O(log horizon) cost evaluations; already-
// finalized D values never change (appends only add candidates for
// LATER states), so the per-state values are bitwise those of a cold
// sequential solve of the grown instance.
//
// Concave costs admit candidates on a *prefix* of future states — an
// appended state can invalidate the saved front — so sessions fall back
// to cold solves there (the adapter handles the routing).

class ConvexIncremental;  // shared append-only solve log (internal)

/// Immutable O(1) handle on the first `n` states of a shared solve log.
/// Copies are cheap; extending never invalidates existing versions.
/// The log is internally synchronized and heap-owned (survives
/// scheduler pool restarts).
struct IncrementalVersion {
  std::shared_ptr<ConvexIncremental> shared;
  std::size_t n = 0;

  [[nodiscard]] bool valid() const noexcept { return shared != nullptr; }
};

/// Solves states 1..n from scratch (convex costs only) and returns the
/// version handle.  `horizon` bounds every future extension (extending
/// past it throws std::invalid_argument); n must be <= horizon.
[[nodiscard]] IncrementalVersion incremental_solve(std::size_t n, double d0,
                                                   CostFn w, EFn e,
                                                   std::size_t horizon,
                                                   core::DpStats& stats);

/// Version covering n_new >= v.n states; shares all prior structure.
/// Thread-safe against concurrent extends of the same log (appended
/// states are pure functions of the instance, so racing branches agree).
[[nodiscard]] IncrementalVersion incremental_extend(
    const IncrementalVersion& v, std::size_t n_new, core::DpStats& stats);

/// D[v.n] — the objective of the version's instance.
[[nodiscard]] double incremental_objective(const IncrementalVersion& v);

}  // namespace cordon::glws
