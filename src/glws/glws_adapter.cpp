// Engine adapter: GLWS (Sec. 4) as a registry problem.
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/registry.hpp"
#include "src/glws/glws.hpp"

namespace cordon::engine {
namespace {

/// Session checkpoint: a version handle on the shared persistent-treap
/// envelope (convex costs only), plus the pricing it was built under —
/// a delta cannot reprice states, so a base with a different (d0, cost)
/// must never resume from this state.
struct GlwsState final : SolverState {
  glws::IncrementalVersion version;
  double d0 = 0;
  CostSpec cost;
};

class GlwsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "glws"; }
  [[nodiscard]] std::string_view description() const override {
    return "generalized least-weight subsequence, convex or concave costs "
           "(Sec. 4)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = glws::glws_auto(p.n, p.d0, p.cost.make(), glws::identity_e(),
                             p.cost.shape());
    return pack(p, r);
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = glws::glws_naive(p.n, p.d0, p.cost.make(), glws::identity_e());
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    GlwsInstance p;
    p.n = opt.n;
    p.d0 = 0;
    p.cost = detail::gen_cost(opt.seed, /*convex_only=*/false);
    return {"glws", p};
  }

  [[nodiscard]] bool incremental() const override { return true; }

  [[nodiscard]] SolveResult solve_checkpoint(
      const Instance& inst,
      std::shared_ptr<const SolverState>& state) const override {
    state = checkpoint(validate(inst));
    return solve(inst);
  }

  [[nodiscard]] ResumeResult resume(
      const std::shared_ptr<const SolverState>& state, const Instance& full,
      const Delta& delta) const override {
    const auto& p = validate(full);
    const auto* st = dynamic_cast<const GlwsState*>(state.get());
    const auto* ap = std::get_if<GlwsInstance>(&delta.append);
    // Concave costs admit candidates on a prefix of future states, so an
    // append can rewrite the saved envelope: cold fallback.  Also fall
    // back on any pricing or length mismatch with the saved version.
    if (st == nullptr || ap == nullptr || !st->version.valid() ||
        p.cost.shape() != glws::Shape::kConvex || st->d0 != p.d0 ||
        !(st->cost == p.cost) || st->version.n + ap->n != p.n) {
      return {solve(full), checkpoint(p), false};
    }
    auto next = std::make_shared<GlwsState>();
    next->d0 = p.d0;
    next->cost = p.cost;
    SolveResult out;
    next->version = glws::incremental_extend(st->version, p.n, out.stats);
    out.objective = glws::incremental_objective(next->version);
    out.detail = detail_line(p.n, out.objective);
    out.path = core::SolvePath::kResumed;
    return {std::move(out), std::move(next), true};
  }

 private:
  static std::shared_ptr<const GlwsState> checkpoint(const GlwsInstance& p) {
    if (p.cost.shape() != glws::Shape::kConcave) {
      auto st = std::make_shared<GlwsState>();
      core::DpStats scratch;
      // Horizon = the declared-size cap: any in-cap append stays
      // resumable, and intervals never outlive valid state indices.
      st->version =
          glws::incremental_solve(p.n, p.d0, p.cost.make(), glws::identity_e(),
                                  kMaxDeclaredSize, scratch);
      st->d0 = p.d0;
      st->cost = p.cost;
      return st;
    }
    return nullptr;  // concave: sessions run cold on every append
  }

  static std::string detail_line(std::uint64_t n, double objective) {
    return "glws n=" + std::to_string(n) +
           " D[n]=" + std::to_string(objective);
  }

  static const GlwsInstance& validate(const Instance& inst) {
    // The solver allocates O(n) from the *declared* n, so cap it here:
    // a hostile submit() fails this one request, not the process.
    const auto& p = inst.as<GlwsInstance>();
    check_declared_size(p.n, "glws n");
    return p;
  }

  static SolveResult pack(const GlwsInstance& p, const glws::GlwsResult& r) {
    SolveResult out;
    out.objective = r.d.empty() ? p.d0 : r.d.back();
    out.stats = r.stats;
    out.path = r.path;
    out.detail = detail_line(p.n, out.objective);
    return out;
  }
};

}  // namespace

void register_glws(ProblemRegistry& reg) {
  reg.add(std::make_unique<GlwsSolver>());
}

}  // namespace cordon::engine
