// Engine adapter: GLWS (Sec. 4) as a registry problem.
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/glws/glws.hpp"

namespace cordon::engine {
namespace {

class GlwsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "glws"; }
  [[nodiscard]] std::string_view description() const override {
    return "generalized least-weight subsequence, convex or concave costs "
           "(Sec. 4)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = glws::glws_auto(p.n, p.d0, p.cost.make(), glws::identity_e(),
                             p.cost.shape());
    return pack(p, r);
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = glws::glws_naive(p.n, p.d0, p.cost.make(), glws::identity_e());
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    GlwsInstance p;
    p.n = opt.n;
    p.d0 = 0;
    p.cost = detail::gen_cost(opt.seed, /*convex_only=*/false);
    return {"glws", p};
  }

 private:
  static const GlwsInstance& validate(const Instance& inst) {
    // The solver allocates O(n) from the *declared* n, so cap it here:
    // a hostile submit() fails this one request, not the process.
    const auto& p = inst.as<GlwsInstance>();
    check_declared_size(p.n, "glws n");
    return p;
  }

  static SolveResult pack(const GlwsInstance& p, const glws::GlwsResult& r) {
    SolveResult out;
    out.objective = r.d.empty() ? p.d0 : r.d.back();
    out.stats = r.stats;
    out.path = r.path;
    out.detail = "glws n=" + std::to_string(p.n) +
                 " D[n]=" + std::to_string(out.objective);
    return out;
  }
};

}  // namespace

void register_glws(ProblemRegistry& reg) {
  reg.add(std::make_unique<GlwsSolver>());
}

}  // namespace cordon::engine
