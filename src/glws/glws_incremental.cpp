// Append-resumable GLWS for convex costs (solve sessions).
//
// Mirrors glws_sequential exactly, but stores the candidate envelope in
// a PersistentIntervalTreap whose intervals extend to a fixed `horizon`
// instead of the current n.  The deque trims candidates that never win
// a state <= n; here such a candidate keeps an interval [h, horizon]
// with h > n, so any later append finds it.  root_at_[i] is the
// envelope after candidate i was inserted — path-copying makes every
// prior version O(1) to retain, and a session holding version n shares
// all treap structure with version n + k.
//
// Bit-identity with the cold sequential solve: state i is decided
// against the same candidate set (0..i-1), the winning interval is
// found by the same strict-< comparisons, and D[i] is computed by the
// same expression ev[j] + w(j, i).  The only divergence is the binary
// search for a crossover inside the LAST interval, which probes
// [.., horizon] instead of [.., n]; in exact arithmetic the crossover
// is unique, so this matters only if the fp win-predicate is
// non-monotone — the same assumption the deque's own binary search
// already makes (see docs/SESSIONS.md).

#include <cassert>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/glws/glws.hpp"
#include "src/structures/persistent_treap.hpp"

namespace cordon::glws {

/// Shared append-only solve log.  All members are guarded by mu_; the
/// arrays only ever grow, and entry i is a pure function of (d0, w, e),
/// so concurrent extends of racing session branches compute identical
/// values.  Heap-owned plain data: survives scheduler pool restarts.
class ConvexIncremental {
 public:
  using Ref = structures::PersistentIntervalTreap::Ref;

  ConvexIncremental(double d0, CostFn w, EFn e, std::size_t horizon)
      : horizon_(horizon), w_(std::move(w)), e_(std::move(e)) {
    d_.push_back(d0);
    ev_.push_back(e_(d0, 0));
    // Candidate 0 covers every future state.
    root_at_.push_back(
        horizon_ >= 1
            ? treap_.insert(structures::PersistentIntervalTreap::kNil,
                            {1, horizon_, 0})
            : structures::PersistentIntervalTreap::kNil);
  }

  /// Ensures states 1..n are decided.  No-op when already covered.
  void extend_to(std::size_t n, core::DpStats& stats) {
    if (n > horizon_)
      throw std::invalid_argument("glws incremental: extend past horizon");
    std::lock_guard<std::mutex> lock(mu_);
    while (d_.size() <= n) push_state_locked(stats);
  }

  [[nodiscard]] double objective_at(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (n >= d_.size())
      throw std::logic_error("glws incremental: objective past covered n");
    return d_[n];
  }

 private:
  void push_state_locked(core::DpStats& stats) {
    const std::size_t i = d_.size();  // state to decide; candidates are 0..i-1
    const structures::DecisionInterval* iv = treap_.find(root_at_[i - 1], i);
    assert(iv != nullptr);
    const std::size_t j = iv->j;  // copy out: insert below grows the arena
    ++stats.relaxations;
    const double di = ev_[j] + w_(j, i);
    d_.push_back(di);
    ev_.push_back(e_(di, i));
    ++stats.states;
    root_at_.push_back(insert_candidate(root_at_[i - 1], i, stats));
  }

  /// Convex envelope insert, comparison-for-comparison the deque's
  /// insert_convex: find the first state h >= cand + 1 where cand
  /// strictly beats the incumbent, trim the envelope at h, and give
  /// cand [h, horizon].  O(log) treap probes, O(log) cost evals.
  Ref insert_candidate(Ref root, std::size_t cand, core::DpStats& stats) {
    const std::size_t lo = cand + 1;
    if (lo > horizon_) return root;
    auto eval = [&](std::size_t j, std::size_t s) {
      ++stats.relaxations;
      return ev_[j] + w_(j, s);
    };
    // Monotone over the sorted intervals: stale intervals (entirely
    // before cand's range) read false, then losers, then — by convexity
    // (win region is a suffix) — winners.
    auto pred = [&](const structures::DecisionInterval& iv) {
      if (iv.r < lo) return false;
      const std::size_t s = std::max(iv.l, lo);
      return eval(cand, s) < eval(iv.j, s);
    };
    const auto [first, prev] = treap_.find_first_with_prev(root, pred);

    std::size_t h;
    structures::DecisionInterval cross{};  // interval holding the crossover
    bool bisect = false;
    if (first == nullptr) {
      if (prev == nullptr) return single(lo, horizon_, cand);  // empty envelope
      cross = *prev;  // the last interval; r == horizon_ >= lo
      if (!(eval(cand, cross.r) < eval(cross.j, cross.r)))
        return root;  // cand never wins within the horizon: keep as-is
      bisect = true;
      h = 0;  // overwritten below
    } else {
      h = std::max(first->l, lo);
      if (prev != nullptr && prev->r >= lo) {
        cross = *prev;
        // Loses at max(prev.l, lo); if it wins by prev->r the crossover
        // is strictly inside prev, else exactly at first->l (== h).
        if (eval(cand, cross.r) < eval(cross.j, cross.r)) bisect = true;
      }
    }
    if (bisect) {
      std::size_t lo2 = std::max(cross.l, lo);  // cand loses here
      std::size_t hi2 = cross.r;                // cand wins here
      while (lo2 + 1 < hi2) {
        const std::size_t mid = lo2 + (hi2 - lo2) / 2;
        if (eval(cand, mid) < eval(cross.j, mid))
          hi2 = mid;
        else
          lo2 = mid;
      }
      h = hi2;
    }

    // Rebuild: keep [1, h - 1], trim the interval spanning h, append
    // [h, horizon] for cand.  Everything at l >= h is dominated.
    auto [left, dropped] = treap_.split(root, h);
    (void)dropped;
    if (!treap_.is_nil(left)) {
      const structures::DecisionInterval span = *treap_.last(left);
      if (span.r >= h) {
        auto [head, spanned] = treap_.split(left, span.l);
        (void)spanned;
        left = treap_.join(head, single(span.l, h - 1, span.j));
      }
    }
    return treap_.join(left, single(h, horizon_, cand));
  }

  Ref single(std::size_t l, std::size_t r, std::size_t j) {
    return treap_.insert(structures::PersistentIntervalTreap::kNil, {l, r, j});
  }

  std::mutex mu_;
  const std::size_t horizon_;
  const CostFn w_;
  const EFn e_;
  std::vector<double> d_;    // d_[i] = D[i]; d_[0] = d0
  std::vector<double> ev_;   // ev_[i] = e(D[i], i)
  std::vector<Ref> root_at_; // envelope after candidate i was inserted
  structures::PersistentIntervalTreap treap_;
};

IncrementalVersion incremental_solve(std::size_t n, double d0, CostFn w, EFn e,
                                     std::size_t horizon,
                                     core::DpStats& stats) {
  if (n > horizon)
    throw std::invalid_argument("glws incremental: n exceeds horizon");
  IncrementalVersion v;
  v.shared = std::make_shared<ConvexIncremental>(d0, std::move(w), std::move(e),
                                                 horizon);
  v.n = n;
  v.shared->extend_to(n, stats);
  return v;
}

IncrementalVersion incremental_extend(const IncrementalVersion& v,
                                      std::size_t n_new,
                                      core::DpStats& stats) {
  if (!v.valid())
    throw std::invalid_argument("glws incremental: extend of invalid version");
  if (n_new < v.n)
    throw std::invalid_argument("glws incremental: extend shrinks n");
  v.shared->extend_to(n_new, stats);
  return {v.shared, n_new};
}

double incremental_objective(const IncrementalVersion& v) {
  if (!v.valid())
    throw std::invalid_argument("glws incremental: objective of invalid version");
  return v.shared->objective_at(v.n);
}

}  // namespace cordon::glws
