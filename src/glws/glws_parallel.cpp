// Parallel convex/concave GLWS — Alg. 1 of the paper, with the concave
// merge of Alg. 2.
//
// Round structure (Sec. 4.2):
//   FindCordon  — prefix-doubling over batches of tentative states; each
//                 batch state j relaxes itself from B and binary-searches
//                 the first state it could successfully relax (its
//                 sentinel position s_j); the leftmost sentinel is the
//                 cordon.  Wasted probes are bounded by 2x the frontier.
//   UpdateBest  — FindIntervals over the newly finalized decision range
//                 rebuilds the best-decision triple list for all states
//                 past the cordon.  For concave costs the new list only
//                 accounts for new decisions, so Alg. 2 finds the cutting
//                 point p and splices it with the previous list.
//
// The FindIntervals / merge machinery lives in envelope_tools.hpp and is
// shared with the GAP algorithm (Sec. 5.2).
#include <atomic>
#include <limits>
#include <span>

#include "src/core/arena.hpp"
#include "src/core/cutoff.hpp"
#include "src/core/trace.hpp"
#include "src/glws/envelope_tools.hpp"
#include "src/glws/glws.hpp"
#include "src/parallel/primitives.hpp"
#include "src/structures/best_decision_list.hpp"

namespace cordon::glws {
namespace {

using structures::BestDecisionList;
using structures::DecisionInterval;

constexpr std::size_t kNone = BestDecisionList::kNone;

// FindCordon (Alg. 1 lines 7-18): prefix-doubling probe for the leftmost
// sentinel after `now`.  Returns cordon in (now+1, n+1].
//
// The probe body counts relaxations in a body-local integer and flushes
// once per state: the shared AtomicDpStats costs a locked RMW per
// add, which at one increment per cost evaluation was a measurable
// fraction of the whole round.
std::size_t find_cordon(std::size_t n, std::size_t now,
                        const BestDecisionList& b, bool convex,
                        const CostFn& w, std::vector<double>& d,
                        std::span<double> ev, const EFn& e,
                        core::AtomicDpStats& stats) {
  std::size_t cordon = n + 1;
  for (std::size_t t = 1;; ++t) {
    std::size_t l = now + (std::size_t{1} << (t - 1));
    if (l > n || l >= cordon) break;
    std::size_t r = std::min(n, now + (std::size_t{1} << t) - 1);
    std::size_t hi = std::min(r, cordon - 1);

    std::atomic<std::size_t> batch_min{cordon};
    parallel::parallel_for(l, hi + 1, [&](std::size_t j) {
      std::uint64_t local_relax = 0;
      auto eval = [&](std::size_t jj, std::size_t ii) {
        ++local_relax;
        return ev[jj] + w(jj, ii);
      };
      // Relax j from its recorded best decision (tentative if unready).
      std::size_t bd = b.best_of(j);
      d[j] = eval(bd, j);
      ev[j] = e(d[j], j);

      std::size_t s = kNone;
      if (convex) {
        // Convexity: if j relaxes anything it relaxes a suffix; binary
        // search the first win against the recorded envelope.
        s = b.first_win(j, eval, j + 1);
      } else if (j + 1 <= n) {
        // Concavity: if j relaxes anything it relaxes j+1 (Sec. 4.3).
        std::size_t bn = b.best_of(j + 1);
        if (eval(j, j + 1) < eval(bn, j + 1)) s = j + 1;
      }
      if (s != kNone) {
        std::size_t cur = batch_min.load(std::memory_order_relaxed);
        while (s < cur && !batch_min.compare_exchange_weak(
                              cur, s, std::memory_order_relaxed)) {
        }
      }
      stats.add_states(1);
      stats.add_relaxations(local_relax);
    });
    cordon = std::min(cordon, batch_min.load(std::memory_order_relaxed));
    if (cordon <= r + 1 || r == n) break;
  }
  return cordon;
}

}  // namespace

GlwsResult glws_parallel(std::size_t n, double d0, const CostFn& w,
                         const EFn& e, Shape shape) {
  GlwsResult res;
  res.d.assign(n + 1, 0.0);
  res.best.assign(n + 1, 0);
  res.d[0] = d0;
  if (n == 0) return res;

  // E values are whole-run scratch (never returned): per-worker arena
  // instead of the global allocator, so repeated solves on a warm worker
  // allocate nothing here.
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<double> ev = arena.make_span<double>(n + 1);
  ev[0] = e(d0, 0);
  core::AtomicDpStats stats;
  auto eval = [&](std::size_t j, std::size_t i) {
    stats.add_relaxations(1);
    return ev[j] + w(j, i);
  };
  const bool convex = shape == Shape::kConvex;

  // Initially every state's best (and only) candidate is state 0.
  BestDecisionList b(std::vector<DecisionInterval>{{1, n, 0}});
  BestDecisionList bnew;  // concave merge scratch, capacity reused per round

  // Round fusion: a round whose predecessor did almost no work (high-k
  // regimes run thousands of rounds of ~150 relaxations) is dominated by
  // fork and envelope-rebuild overhead; run it inline instead.
  const std::size_t fuse_threshold = core::fuse_relax_threshold();
  std::uint64_t prev_round_relax = std::numeric_limits<std::uint64_t>::max();

  std::size_t now = 0;
  auto round = [&] {
    std::size_t cordon =
        find_cordon(n, now, b, convex, w, res.d, ev, e, stats);

    // States now+1 .. cordon-1 are the frontier: find_cordon already
    // computed their true D/E values; record their decisions.
    parallel::parallel_for(now + 1, cordon, [&](std::size_t i) {
      res.best[i] = static_cast<std::uint32_t>(b.best_of(i));
    });

    if (cordon <= n) {
      // Rebuild B for the states past the cordon using the newly
      // finalized decisions [now+1, cordon-1].
      std::vector<DecisionInterval> fresh = coalesce(
          find_intervals(eval, now + 1, cordon - 1, cordon, n, convex));
      if (convex) {
        // Convex: every state past the cordon has its best decision among
        // the new range (Sec. 4.2.2), so the new list replaces B.
        b.assign(std::move(fresh));
      } else {
        // Concave (Alg. 2): new decisions win a prefix of [cordon, n].
        b.advance_to(cordon);
        bnew.assign(fresh);
        b.assign(coalesce(
            merge_envelopes(b, bnew, eval, cordon, n, /*convex=*/false)));
      }
    }
    now = cordon - 1;
  };
  while (now < n) {
    stats.add_round();
    telemetry::RoundSpan round_span("glws.round", stats);
    std::uint64_t relax_before =
        stats.relaxations.load(std::memory_order_relaxed);
    if (core::fuse_round(prev_round_relax, fuse_threshold)) {
      parallel::SequentialRegion seq;
      round();
    } else {
      round();
    }
    prev_round_relax =
        stats.relaxations.load(std::memory_order_relaxed) - relax_before;
  }
  res.stats = stats.snapshot();
  return res;
}

GlwsResult glws_auto(std::size_t n, double d0, const CostFn& w, const EFn& e,
                     Shape shape) {
  const std::size_t cutoff =
      core::cutoff_from_env("CORDON_GLWS_CUTOFF", core::kGlwsSeqCutoff);
  const std::size_t min_workers =
      core::cutoff_from_env("CORDON_GLWS_MIN_WORKERS", core::kGlwsMinWorkers);
  if (core::use_sequential(n, cutoff, min_workers)) {
    GlwsResult r = glws_sequential(n, d0, w, e, shape);
    r.path = core::SolvePath::kSequentialCutoff;
    return r;
  }
  return glws_parallel(n, d0, w, e, shape);
}

}  // namespace cordon::glws
