#include <limits>

#include "src/core/cancel.hpp"
#include "src/glws/glws.hpp"
#include "src/structures/monotonic_queue.hpp"

namespace cordon::glws {

GlwsResult glws_naive(std::size_t n, double d0, const CostFn& w,
                      const EFn& e) {
  GlwsResult res;
  res.d.assign(n + 1, std::numeric_limits<double>::infinity());
  res.best.assign(n + 1, 0);
  res.d[0] = d0;
  std::vector<double> ev(n + 1);
  ev[0] = e(d0, 0);
  core::PollTicker poll;
  for (std::size_t i = 1; i <= n; ++i) {
    poll.tick();
    for (std::size_t j = 0; j < i; ++j) {
      double cand = ev[j] + w(j, i);
      ++res.stats.relaxations;
      if (cand < res.d[i]) {
        res.d[i] = cand;
        res.best[i] = static_cast<std::uint32_t>(j);
      }
    }
    ev[i] = e(res.d[i], i);
    ++res.stats.states;
  }
  return res;
}

GlwsResult glws_sequential(std::size_t n, double d0, const CostFn& w,
                           const EFn& e, Shape shape) {
  GlwsResult res;
  res.d.assign(n + 1, 0.0);
  res.best.assign(n + 1, 0);
  res.d[0] = d0;
  if (n == 0) return res;

  // E values are filled in as states finalize; eval(j, i) never touches
  // an E that has not been computed because candidates are inserted only
  // after their state is decided.
  std::vector<double> ev(n + 1);
  ev[0] = e(d0, 0);

  core::DpStats stats;
  auto eval = [&](std::size_t j, std::size_t i) {
    ++stats.relaxations;
    return ev[j] + w(j, i);
  };
  structures::MonotonicQueue<decltype(eval)> queue(n, eval);
  shape == Shape::kConvex ? queue.insert_convex(0) : queue.insert_concave(0);

  core::PollTicker poll;
  for (std::size_t i = 1; i <= n; ++i) {
    poll.tick();
    std::size_t j = queue.best(i);
    res.best[i] = static_cast<std::uint32_t>(j);
    res.d[i] = ev[j] + w(j, i);
    ev[i] = e(res.d[i], i);
    ++stats.states;
    if (i < n) {
      if (shape == Shape::kConvex)
        queue.insert_convex(i);
      else
        queue.insert_concave(i);
    }
  }
  res.stats = stats;
  return res;
}

}  // namespace cordon::glws
