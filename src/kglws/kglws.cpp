#include "src/kglws/kglws.hpp"

#include <limits>
#include <span>

#include "src/core/arena.hpp"
#include "src/core/kernels.hpp"
#include "src/core/trace.hpp"
#include "src/kglws/smawk.hpp"
#include "src/parallel/primitives.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::kglws {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One D&C layer: given prev[j] = D[j][k'-1], fill cur[i] = min_{j<i}
// prev[j] + w(j, i) and arg[i], for i in [il, ir] with decisions
// restricted to [jl, jr].  Total monotonicity shrinks the two recursive
// decision ranges to the midpoint's argmin (leftmost on ties).
void layer_rec(std::span<const double> prev, std::span<double> cur,
               std::span<std::uint32_t> arg, const glws::CostFn& w,
               std::size_t il, std::size_t ir, std::size_t jl, std::size_t jr,
               core::AtomicDpStats& stats) {
  if (il > ir) return;
  std::size_t im = il + (ir - il) / 2;
  std::size_t hi = std::min(jr, im - 1);  // decisions must satisfy j < i
  // Leftmost argmin with the infinite-source skip kept as a branch: the
  // early layers are mostly infinite and the type-erased w(j, im) call
  // is the expensive part, so skipping it beats a branchless evaluate-
  // everything kernel here (the array kernels assume cheap loads).
  core::kernels::ArgMin best{kInf, jl};
  for (std::size_t j = jl; j <= hi; ++j) {
    if (prev[j] == kInf) continue;
    double v = prev[j] + w(j, im);
    if (v < best.value) {
      best.value = v;
      best.index = j;
    }
  }
  stats.add_relaxations(hi >= jl ? hi - jl + 1 : 0);
  stats.add_states(1);
  cur[im] = best.value;
  arg[im] = static_cast<std::uint32_t>(best.index);
  std::size_t best_j = best.value == kInf ? jl : best.index;
  auto left = [&] { layer_rec(prev, cur, arg, w, il, im - 1, jl, best_j, stats); };
  auto right = [&] { layer_rec(prev, cur, arg, w, im + 1, ir, best_j, jr, stats); };
  if (ir - il > 2048) {
    parallel::par_do(left, right);
  } else {
    left();
    right();
  }
}

// Runs all k layers with a per-layer engine over arena-backed layer
// arrays (prev / cur / arg are whole-run scratch: the result copies out
// once at the end, so repeated solves on a warm worker allocate nothing
// proportional to n here).
template <typename LayerFn>
KglwsResult run_layers(std::size_t n, std::size_t k, const LayerFn& layer) {
  KglwsResult res;
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<double> prev = arena.make_span<double>(n + 1, kInf);
  std::span<double> cur = arena.make_span<double>(n + 1, kInf);
  std::span<std::uint32_t> arg = arena.make_span<std::uint32_t>(n + 1, 0u);
  prev[0] = 0.0;
  for (std::size_t kk = 1; kk <= k; ++kk) {
    ++res.stats.rounds;  // Cordon view: one frontier per layer
    telemetry::RoundSpan round_span("kglws.round", res.stats);
    layer(prev, cur, arg, res.stats);
    cur[0] = kInf;  // zero elements cannot form kk >= 1 clusters
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), kInf);
  }
  res.d.assign(prev.begin(), prev.end());
  res.cut.assign(arg.begin(), arg.end());
  res.total = res.d[n];
  return res;
}

}  // namespace

KglwsResult kglws_naive(std::size_t n, std::size_t k, const glws::CostFn& w) {
  return run_layers(n, k,
                    [&](std::span<const double> prev, std::span<double> cur,
                        std::span<std::uint32_t> arg, core::DpStats& stats) {
                      for (std::size_t i = 1; i <= n; ++i) {
                        cur[i] = kInf;
                        for (std::size_t j = 0; j < i; ++j) {
                          ++stats.relaxations;
                          if (prev[j] == kInf) continue;
                          double v = prev[j] + w(j, i);
                          if (v < cur[i]) {
                            cur[i] = v;
                            arg[i] = static_cast<std::uint32_t>(j);
                          }
                        }
                        ++stats.states;
                      }
                    });
}

KglwsResult kglws_smawk(std::size_t n, std::size_t k, const glws::CostFn& w) {
  return run_layers(
      n, k,
      [&](std::span<const double> prev, std::span<double> cur,
          std::span<std::uint32_t> arg, core::DpStats& stats) {
        // Rows are states 1..n, columns are decisions 0..n-1.  Entries
        // with j >= i are padded so that total monotonicity is preserved:
        // a huge value increasing with j keeps row minima to the left.
        std::uint64_t evals = 0;
        auto value = [&](std::size_t r, std::size_t c) {
          std::size_t i = r + 1, j = c;
          ++evals;
          // Pad invalid entries with values strictly increasing in j —
          // the increment must be large enough to survive double
          // rounding next to the base, or total monotonicity silently
          // degrades to ties.
          if (j >= i || prev[j] == kInf)
            return 1e15 + static_cast<double>(j) * 1e6;
          return prev[j] + w(j, i);
        };
        std::vector<std::size_t> mins = smawk_row_minima(n, n, value);
        for (std::size_t i = 1; i <= n; ++i) {
          std::size_t j = mins[i - 1];
          cur[i] = prev[j] == kInf || j >= i ? kInf : prev[j] + w(j, i);
          arg[i] = static_cast<std::uint32_t>(j);
        }
        stats.relaxations += evals;
        stats.states += n;
      });
}

KglwsResult kglws_dc(std::size_t n, std::size_t k, const glws::CostFn& w) {
  return run_layers(
      n, k,
      [&](std::span<const double> prev, std::span<double> cur,
          std::span<std::uint32_t> arg, core::DpStats& stats) {
        core::AtomicDpStats local;
        layer_rec(prev, cur, arg, w, 1, n, 0, n - 1, local);
        core::DpStats snap = local.snapshot();
        stats.states += snap.states;
        stats.relaxations += snap.relaxations;
      });
}

std::vector<std::uint32_t> kglws_backtrack(std::size_t n, std::size_t k,
                                           const glws::CostFn& w) {
  // Store every layer's argmins (O(k n) arena scratch) and chase them
  // back.
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<double> prev = arena.make_span<double>(n + 1, kInf);
  std::span<double> cur = arena.make_span<double>(n + 1, kInf);
  std::span<std::uint32_t> args = arena.make_span<std::uint32_t>(k * (n + 1));
  prev[0] = 0.0;
  for (std::size_t kk = 1; kk <= k; ++kk) {
    std::span<std::uint32_t> arg = args.subspan((kk - 1) * (n + 1), n + 1);
    std::fill(arg.begin(), arg.end(), 0u);
    core::AtomicDpStats stats;
    layer_rec(prev, cur, arg, w, 1, n, 0, n - 1, stats);
    cur[0] = kInf;
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), kInf);
  }
  std::vector<std::uint32_t> cuts(k + 1);
  cuts[k] = static_cast<std::uint32_t>(n);
  for (std::size_t kk = k; kk >= 1; --kk)
    cuts[kk - 1] = args[(kk - 1) * (n + 1) + cuts[kk]];
  return cuts;
}

}  // namespace cordon::kglws
