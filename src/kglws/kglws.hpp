// k-GLWS (Sec. 5.4): cluster the first n elements into exactly k clusters,
//   D[i][k'] = min_{j<i} D[j][k'-1] + w(j, i),  D[0][0] = 0.
//
// With a convex w each layer k' is a *static* totally-monotone row-minima
// problem.  We provide
//   * kglws_naive    — O(k n^2) (oracle),
//   * kglws_smawk    — SMAWK per layer: O(k n) evaluations, the best
//     sequential algorithm (inherently sequential),
//   * kglws_dc       — the practical divide-and-conquer per layer [6]
//     (the paper's choice): O(k n log n) work, O(k log^2 n) span when the
//     recursion and the column-min reductions run in parallel.  Under the
//     Cordon view, layer k' is exactly the k'-th frontier, so
//     stats.rounds == k: a perfect parallelization.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/glws/glws.hpp"  // CostFn

namespace cordon::kglws {

struct KglwsResult {
  std::vector<double> d;              // D[i] = D[i][k] final layer, i in 0..n
  std::vector<std::uint32_t> cut;     // cut[i]: best j for D[i][k] (backtrack
                                      // via layer-by-layer recompute if needed)
  double total = 0;                   // D[n][k]
  core::DpStats stats;
};

/// O(k n^2) reference.
[[nodiscard]] KglwsResult kglws_naive(std::size_t n, std::size_t k,
                                      const glws::CostFn& w);

/// SMAWK per layer (sequential optimum).
[[nodiscard]] KglwsResult kglws_smawk(std::size_t n, std::size_t k,
                                      const glws::CostFn& w);

/// Parallel divide-and-conquer per layer (the Cordon frontier-per-layer
/// algorithm).  stats.rounds == k.
[[nodiscard]] KglwsResult kglws_dc(std::size_t n, std::size_t k,
                                   const glws::CostFn& w);

/// Optimal cluster boundaries (k+1 indices, 0 and n inclusive) recovered
/// from a full run of the D&C algorithm.
[[nodiscard]] std::vector<std::uint32_t> kglws_backtrack(std::size_t n,
                                                         std::size_t k,
                                                         const glws::CostFn& w);

}  // namespace cordon::kglws
