// Engine adapter: k-GLWS / 1-D k-clustering (Sec. 5.4).
#include <memory>
#include <stdexcept>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/kglws/kglws.hpp"

namespace cordon::engine {
namespace {

class KglwsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "kglws"; }
  [[nodiscard]] std::string_view description() const override {
    return "k-layer GLWS (exactly k clusters), convex costs (Sec. 5.4)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = kglws::kglws_dc(p.n, p.k, p.cost.make());
    SolveResult out = pack(p, r.total, r.stats);
    // Layer k' is exactly the k'-th cordon frontier: rounds == depth.
    out.effective_depth = out.stats.rounds;
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    auto r = kglws::kglws_naive(p.n, p.k, p.cost.make());
    return pack(p, r.total, r.stats);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    KglwsInstance p;
    p.n = opt.n;
    p.k = std::min<std::uint64_t>(std::max<std::uint64_t>(opt.k, 1), opt.n);
    p.cost = detail::gen_cost(opt.seed, /*convex_only=*/true);
    return {"kglws", p};
  }

 private:
  static const KglwsInstance& validate(const Instance& inst) {
    const auto& p = inst.as<KglwsInstance>();
    check_declared_size(p.n, "kglws n");  // solver allocates O(n) per layer
    if (p.cost.shape() != glws::Shape::kConvex)
      throw std::invalid_argument("kglws requires a convex cost family");
    if (p.k == 0 || p.k > p.n)
      throw std::invalid_argument("kglws requires 1 <= k <= n");
    return p;
  }

  static SolveResult pack(const KglwsInstance& p, double total,
                          const core::DpStats& stats) {
    SolveResult out;
    out.objective = total;
    out.stats = stats;
    out.detail = "kglws n=" + std::to_string(p.n) +
                 " k=" + std::to_string(p.k) +
                 " cost=" + std::to_string(total);
    return out;
  }
};

}  // namespace

void register_kglws(ProblemRegistry& reg) {
  reg.add(std::make_unique<KglwsSolver>());
}

}  // namespace cordon::engine
