#include "src/kglws/smawk.hpp"

namespace cordon::kglws {
namespace {

// Recursive SMAWK on explicit row/column index lists.
void smawk_rec(const std::vector<std::size_t>& rows,
               const std::vector<std::size_t>& cols, const MatrixFn& value,
               std::vector<std::size_t>& out) {
  if (rows.empty()) return;

  // REDUCE: prune columns that cannot hold any row minimum, keeping at
  // most |rows| columns.  Invariant of the stack: col stack[k] is the
  // best candidate so far for row k among scanned columns.
  std::vector<std::size_t> stack;
  stack.reserve(rows.size());
  for (std::size_t c : cols) {
    while (!stack.empty()) {
      std::size_t r = rows[stack.size() - 1];
      if (value(r, stack.back()) <= value(r, c)) break;  // stack col wins
      stack.pop_back();
    }
    if (stack.size() < rows.size()) stack.push_back(c);
  }

  // INTERPOLATE: solve odd rows recursively, then fill even rows by
  // scanning between the neighbouring odd answers.
  std::vector<std::size_t> odd_rows;
  for (std::size_t k = 1; k < rows.size(); k += 2) odd_rows.push_back(rows[k]);
  smawk_rec(odd_rows, stack, value, out);

  std::size_t col_pos = 0;
  for (std::size_t k = 0; k < rows.size(); k += 2) {
    std::size_t r = rows[k];
    std::size_t hi = k + 1 < rows.size()
                         ? out[rows[k + 1]]  // next odd row's answer
                         : stack.back();
    std::size_t best = stack[col_pos];
    double best_v = value(r, best);
    while (stack[col_pos] != hi) {
      ++col_pos;
      double v = value(r, stack[col_pos]);
      if (v < best_v) {
        best = stack[col_pos];
        best_v = v;
      }
    }
    out[r] = best;
  }
}

}  // namespace

std::vector<std::size_t> smawk_row_minima(std::size_t rows, std::size_t cols,
                                          const MatrixFn& value) {
  std::vector<std::size_t> out(rows, 0);
  std::vector<std::size_t> row_idx(rows), col_idx(cols);
  for (std::size_t i = 0; i < rows; ++i) row_idx[i] = i;
  for (std::size_t c = 0; c < cols; ++c) col_idx[c] = c;
  smawk_rec(row_idx, col_idx, value, out);
  return out;
}

}  // namespace cordon::kglws
