// SMAWK algorithm [2]: row minima of an implicit totally monotone matrix
// in O(rows + cols) evaluations.
//
// The paper (Sec. 5.4) notes SMAWK is the theoretically optimal — but
// complicated and inherently sequential — way to compute one k-GLWS
// layer; we implement it both as the strongest sequential baseline and
// so benchmarks can quantify the D&C alternative's O(log n) overhead.
//
// Convention: value(r, c) returns row r / column c of an n x m matrix
// that is *convex totally monotone* (row-minima column indices are
// non-decreasing).  Ties pick the leftmost column.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cordon::kglws {

using MatrixFn = std::function<double(std::size_t, std::size_t)>;

/// argmin column for every row.  O(n + m) evaluations.
[[nodiscard]] std::vector<std::size_t> smawk_row_minima(std::size_t rows,
                                                        std::size_t cols,
                                                        const MatrixFn& value);

}  // namespace cordon::kglws
