#include "src/lcs/lcs.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <unordered_map>

#include "src/core/audit.hpp"
#include "src/core/cutoff.hpp"
#include "src/core/kernels.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/primitives.hpp"
#include "src/parallel/sort.hpp"
#include "src/structures/tournament_tree.hpp"

namespace cordon::lcs {

namespace {

// Bucket positions of each symbol in b (j ascending per symbol), plus the
// total number of match pairs — so emitters reserve exactly once.
struct SymbolBuckets {
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> where;
  std::size_t total_pairs = 0;

  SymbolBuckets(const std::vector<std::uint32_t>& a,
                const std::vector<std::uint32_t>& b) {
    where.reserve(b.size());
    for (std::uint32_t j = 0; j < b.size(); ++j) where[b[j]].push_back(j);
    for (std::uint32_t x : a) {
      auto it = where.find(x);
      if (it != where.end()) total_pairs += it->second.size();
    }
  }
};

// Emits every pair in (i asc, j desc) order through emit(i, j).
template <typename Emit>
void for_each_pair(const std::vector<std::uint32_t>& a,
                   const SymbolBuckets& buckets, const Emit& emit) {
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    auto it = buckets.where.find(a[i]);
    if (it == buckets.where.end()) continue;
    // j descending within equal i: later j first.
    for (std::size_t k = it->second.size(); k > 0; --k)
      emit(i, it->second[k - 1]);
  }
}

}  // namespace

std::vector<MatchPair> match_pairs(const std::vector<std::uint32_t>& a,
                                   const std::vector<std::uint32_t>& b) {
  SymbolBuckets buckets(a, b);
  std::vector<MatchPair> pairs;
  pairs.reserve(buckets.total_pairs);
  for_each_pair(a, buckets, [&](std::uint32_t i, std::uint32_t j) {
    pairs.push_back({i, j});
  });
  return pairs;  // already (i asc, j desc) by construction
}

MatchPairsSoA match_pairs_soa(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  SymbolBuckets buckets(a, b);
  MatchPairsSoA pairs;
  pairs.i.reserve(buckets.total_pairs);
  pairs.j.reserve(buckets.total_pairs);
  for_each_pair(a, buckets, [&](std::uint32_t i, std::uint32_t j) {
    pairs.i.push_back(i);
    pairs.j.push_back(j);
  });
  return pairs;
}

LcsResult lcs_naive(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  const std::size_t n = a.size(), m = b.size();
  LcsResult res;
  std::vector<std::uint32_t> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      ++res.stats.relaxations;
      cur[j] = a[i - 1] == b[j - 1]
                   ? prev[j - 1] + 1
                   : std::max(prev[j], cur[j - 1]);
    }
    res.stats.states += m;
    std::swap(prev, cur);
  }
  res.length = prev[m];
  return res;
}

namespace {

// Hunt–Szymanski core over the contiguous j stream: process pairs in
// (i asc, j desc) order; thresholds[k] is the smallest j ending a chain
// of length k+1.  Because j is descending within one i, a pair never
// chains onto another pair with the same i.
LcsResult sparse_seq_impl(std::span<const std::uint32_t> js) {
  LcsResult res;
  res.pair_dp.assign(js.size(), 0);
  std::vector<std::uint32_t> thresholds;  // strictly increasing j values
  core::PollTicker poll;
  for (std::size_t p = 0; p < js.size(); ++p) {
    poll.tick();
    std::uint32_t j = js[p];
    auto it = std::lower_bound(thresholds.begin(), thresholds.end(), j);
    std::uint32_t len = static_cast<std::uint32_t>(it - thresholds.begin());
    if (it == thresholds.end())
      thresholds.push_back(j);
    else
      *it = j;
    // The frontier stays strictly increasing after every overwrite:
    // O(1) neighbor probe at the touched slot is enough, since only one
    // slot changed.
    CORDON_DCHECK(len == 0 || thresholds[len - 1] < thresholds[len],
                  "lcs threshold frontier lost sortedness (left)");
    CORDON_DCHECK(len + 1 >= thresholds.size() ||
                      thresholds[len] < thresholds[len + 1],
                  "lcs threshold frontier lost sortedness (right)");
    res.pair_dp[p] = len + 1;
    ++res.stats.states;
    ++res.stats.relaxations;
  }
  res.length = static_cast<std::uint32_t>(thresholds.size());
  return res;
}

// Cordon rounds over the j key stream.  The pairs on the cordon are
// exactly the prefix minima (Sec. 3, Fig. 2(f)), i.e., the LCS over the
// secondary keys is an LIS instance.  One frontier buffer is reused for
// every round and the finalization scatter runs through the block kernel.
LcsResult parallel_impl(std::span<const std::uint32_t> js) {
  LcsResult res;
  res.pair_dp.assign(js.size(), 0);
  if (js.empty()) return res;

  structures::TournamentTree tree(js);
  core::AtomicDpStats stats;
  std::vector<std::size_t> frontier;  // reused: zero-alloc steady state
  // Round fusion: a cordon of few pairs (relaxations == frontier size)
  // is not worth forking the scatter for; run such rounds inline.  The
  // previous round's frontier predicts the next one well enough here.
  const std::size_t fuse_threshold = core::fuse_relax_threshold();
  std::size_t prev_frontier = std::numeric_limits<std::size_t>::max();
  std::uint32_t round = 0;
  while (!tree.empty()) {
    ++round;
    telemetry::RoundSpan round_span("lcs.round", stats);
    tree.extract_prefix_minima_into(frontier);
    stats.add_round();
    stats.add_states(frontier.size());
    stats.add_relaxations(frontier.size());
    if (core::fuse_round(prev_frontier, fuse_threshold)) {
      parallel::SequentialRegion seq;
      core::kernels::parallel_scatter_fill(res.pair_dp.data(), frontier.data(),
                                           frontier.size(), round);
    } else {
      core::kernels::parallel_scatter_fill(res.pair_dp.data(), frontier.data(),
                                           frontier.size(), round);
    }
    prev_frontier = frontier.size();
  }
  res.length = round;
  res.stats = stats.snapshot();
  return res;
}

// The AoS entry points only need the j stream: peel it off once.
std::vector<std::uint32_t> j_stream(const std::vector<MatchPair>& pairs) {
  std::vector<std::uint32_t> js(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) js[p] = pairs[p].j;
  return js;
}

}  // namespace

LcsResult lcs_sparse_seq(const std::vector<MatchPair>& pairs) {
  return sparse_seq_impl(j_stream(pairs));
}

LcsResult lcs_sparse_seq(const MatchPairsSoA& pairs) {
  return sparse_seq_impl(pairs.j);
}

LcsResult lcs_parallel(const std::vector<MatchPair>& pairs) {
  return parallel_impl(j_stream(pairs));
}

LcsResult lcs_parallel(const MatchPairsSoA& pairs) {
  return parallel_impl(pairs.j);
}

namespace {

LcsResult auto_impl(std::span<const std::uint32_t> js) {
  const std::size_t cutoff =
      core::cutoff_from_env("CORDON_LCS_CUTOFF", core::kLcsSeqCutoff);
  const std::size_t min_workers =
      core::cutoff_from_env("CORDON_LCS_MIN_WORKERS", core::kLcsMinWorkers);
  if (core::use_sequential(js.size(), cutoff, min_workers)) {
    LcsResult r = sparse_seq_impl(js);
    r.path = core::SolvePath::kSequentialCutoff;
    return r;
  }
  return parallel_impl(js);
}

}  // namespace

LcsResult lcs_auto(const std::vector<MatchPair>& pairs) {
  return auto_impl(j_stream(pairs));
}

LcsResult lcs_auto(const MatchPairsSoA& pairs) { return auto_impl(pairs.j); }

namespace {

// Backward greedy: a pair with DP value v chains onto any pair with
// value v-1 strictly above-left of it; scanning the (i asc, j desc)
// order backwards and keeping strictly-dominated coordinates always
// finds one (the DP values certify existence).
template <typename PairAt>
std::vector<MatchPair> recover_impl(std::size_t count, const PairAt& pair_at,
                                    const LcsResult& res) {
  std::vector<MatchPair> chain;
  std::uint32_t want = res.length;
  std::uint32_t limit_i = 0xffffffffu, limit_j = 0xffffffffu;
  for (std::size_t p = count; p > 0 && want > 0; --p) {
    const MatchPair pr = pair_at(p - 1);
    if (res.pair_dp[p - 1] == want && pr.i < limit_i && pr.j < limit_j) {
      chain.push_back(pr);
      limit_i = pr.i;
      limit_j = pr.j;
      --want;
    }
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

std::vector<MatchPair> recover_chain(const std::vector<MatchPair>& pairs,
                                     const LcsResult& res) {
  return recover_impl(
      pairs.size(), [&](std::size_t p) { return pairs[p]; }, res);
}

std::vector<MatchPair> recover_chain(const MatchPairsSoA& pairs,
                                     const LcsResult& res) {
  return recover_impl(
      pairs.size(),
      [&](std::size_t p) {
        return MatchPair{pairs.i[p], pairs.j[p]};
      },
      res);
}

BIndex build_b_index(const std::vector<std::uint32_t>& b) {
  BIndex index;
  index.b_size = b.size();
  index.where.reserve(b.size());
  for (std::uint32_t j = 0; j < b.size(); ++j) index.where[b[j]].push_back(j);
  return index;
}

void lcs_extend(LcsFrontier& f, const BIndex& index,
                const std::uint32_t* a_suffix, std::size_t count,
                core::DpStats& stats) {
  // Same update as sparse_seq_impl, same (i asc, j desc) pair order:
  // the frontier after (prefix ++ suffix) is bitwise the frontier the
  // sequential algorithm would reach on the concatenation.
  for (std::size_t ai = 0; ai < count; ++ai) {
    auto it = index.where.find(a_suffix[ai]);
    if (it == index.where.end()) continue;
    const std::vector<std::uint32_t>& positions = it->second;
    for (std::size_t k = positions.size(); k > 0; --k) {
      std::uint32_t j = positions[k - 1];
      auto t = std::lower_bound(f.thresholds.begin(), f.thresholds.end(), j);
      std::size_t slot = static_cast<std::size_t>(t - f.thresholds.begin());
      if (t == f.thresholds.end())
        f.thresholds.push_back(j);
      else
        *t = j;
      CORDON_DCHECK(slot == 0 || f.thresholds[slot - 1] < f.thresholds[slot],
                    "lcs resumed frontier lost sortedness (left)");
      CORDON_DCHECK(slot + 1 >= f.thresholds.size() ||
                        f.thresholds[slot] < f.thresholds[slot + 1],
                    "lcs resumed frontier lost sortedness (right)");
      ++f.pairs_consumed;
      ++stats.states;
      ++stats.relaxations;
    }
  }
  f.a_consumed += count;
}

}  // namespace cordon::lcs
