#include "src/lcs/lcs.hpp"

#include <algorithm>
#include <unordered_map>

#include "src/parallel/primitives.hpp"
#include "src/parallel/sort.hpp"
#include "src/structures/tournament_tree.hpp"

namespace cordon::lcs {

std::vector<MatchPair> match_pairs(const std::vector<std::uint32_t>& a,
                                   const std::vector<std::uint32_t>& b) {
  // Bucket positions of each symbol in b, then emit per position of a.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> where;
  where.reserve(b.size());
  for (std::uint32_t j = 0; j < b.size(); ++j) where[b[j]].push_back(j);

  std::vector<MatchPair> pairs;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    auto it = where.find(a[i]);
    if (it == where.end()) continue;
    // j descending within equal i: later j first.
    for (std::size_t k = it->second.size(); k > 0; --k)
      pairs.push_back({i, it->second[k - 1]});
  }
  return pairs;  // already (i asc, j desc) by construction
}

LcsResult lcs_naive(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  const std::size_t n = a.size(), m = b.size();
  LcsResult res;
  std::vector<std::uint32_t> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      ++res.stats.relaxations;
      cur[j] = a[i - 1] == b[j - 1]
                   ? prev[j - 1] + 1
                   : std::max(prev[j], cur[j - 1]);
    }
    res.stats.states += m;
    std::swap(prev, cur);
  }
  res.length = prev[m];
  return res;
}

LcsResult lcs_sparse_seq(const std::vector<MatchPair>& pairs) {
  // Hunt–Szymanski: process pairs in (i asc, j desc) order; thresholds[k]
  // is the smallest j ending a chain of length k+1.  Because j is
  // descending within one i, a pair never chains onto another pair with
  // the same i.
  LcsResult res;
  res.pair_dp.assign(pairs.size(), 0);
  std::vector<std::uint32_t> thresholds;  // strictly increasing j values
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    std::uint32_t j = pairs[p].j;
    auto it = std::lower_bound(thresholds.begin(), thresholds.end(), j);
    std::uint32_t len = static_cast<std::uint32_t>(it - thresholds.begin());
    if (it == thresholds.end())
      thresholds.push_back(j);
    else
      *it = j;
    res.pair_dp[p] = len + 1;
    ++res.stats.states;
    ++res.stats.relaxations;
  }
  res.length = static_cast<std::uint32_t>(thresholds.size());
  return res;
}

LcsResult lcs_parallel(const std::vector<MatchPair>& pairs) {
  LcsResult res;
  res.pair_dp.assign(pairs.size(), 0);
  if (pairs.empty()) return res;

  // Keys are the j coordinates in (i asc, j desc) order: the pairs on the
  // cordon are exactly the prefix minima (Sec. 3, Fig. 2(f)), i.e., the
  // LCS over the secondary keys is an LIS instance.
  std::vector<std::uint64_t> keys(pairs.size());
  parallel::parallel_for(0, pairs.size(),
                         [&](std::size_t p) { keys[p] = pairs[p].j; });
  structures::TournamentTree tree(keys);
  core::AtomicDpStats stats;
  std::uint32_t round = 0;
  while (!tree.empty()) {
    ++round;
    std::vector<std::size_t> frontier = tree.extract_prefix_minima();
    stats.add_round();
    stats.add_states(frontier.size());
    stats.add_relaxations(frontier.size());
    parallel::parallel_for(0, frontier.size(), [&](std::size_t k) {
      res.pair_dp[frontier[k]] = round;
    });
  }
  res.length = round;
  res.stats = stats.snapshot();
  return res;
}

std::vector<MatchPair> recover_chain(const std::vector<MatchPair>& pairs,
                                     const LcsResult& res) {
  // Backward greedy: a pair with DP value v chains onto any pair with
  // value v-1 strictly above-left of it; scanning the (i asc, j desc)
  // order backwards and keeping strictly-dominated coordinates always
  // finds one (the DP values certify existence).
  std::vector<MatchPair> chain;
  std::uint32_t want = res.length;
  std::uint32_t limit_i = 0xffffffffu, limit_j = 0xffffffffu;
  for (std::size_t p = pairs.size(); p > 0 && want > 0; --p) {
    const MatchPair& pr = pairs[p - 1];
    if (res.pair_dp[p - 1] == want && pr.i < limit_i && pr.j < limit_j) {
      chain.push_back(pr);
      limit_i = pr.i;
      limit_j = pr.j;
      --want;
    }
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace cordon::lcs
