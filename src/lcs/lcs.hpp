// Sparse Longest Common Subsequence (Sec. 3, Thm 3.2).
//
// The sparsification [7, 40, 51, 56]: only states (i, j) with
// A[i] == B[j] matter (L such "match pairs"), and LCS is the longest
// chain of pairs increasing in both coordinates.
//
//   * lcs_naive      — O(nm) grid DP (oracle),
//   * lcs_sparse_seq — Hunt–Szymanski-style O(L log n) over match pairs,
//   * lcs_parallel   — the Cordon Algorithm (Thm 3.2): sort pairs by
//     (i asc, j desc); each round a tournament tree extracts the pairs on
//     the cordon (prefix minima of the j keys), which are exactly the
//     states with LCS value = round number.  O(L log n) work,
//     O(k log n) span where k is the LCS length.
//
// The pre-processing that finds match pairs is provided (and excluded
// from benchmark timings, as in the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::lcs {

struct MatchPair {
  std::uint32_t i;  // position in A
  std::uint32_t j;  // position in B
};

/// Match pairs stored struct-of-arrays: the two coordinate streams live
/// in separate contiguous arrays, in the same (i asc, j desc) order as
/// the AoS form.  This is the hot-path representation: the cordon rounds
/// read ONLY the j stream (tournament keys) and the threshold scan of
/// the sequential algorithm walks it linearly, so keeping j densely
/// packed halves the bandwidth per probe versus interleaved {i, j}
/// records.  The i stream is touched only by witness recovery.
struct MatchPairsSoA {
  std::vector<std::uint32_t> i, j;

  [[nodiscard]] std::size_t size() const noexcept { return j.size(); }
  [[nodiscard]] bool empty() const noexcept { return j.empty(); }
};

/// All (i, j) with a[i] == b[j], sorted by (i asc, j desc) — the order
/// the cordon algorithm consumes.  |result| = L.
[[nodiscard]] std::vector<MatchPair> match_pairs(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

/// SoA variant of match_pairs — same pairs, same order, coordinate
/// streams split.  The engine adapter and benches use this form.
[[nodiscard]] MatchPairsSoA match_pairs_soa(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

struct LcsResult {
  std::uint32_t length = 0;
  core::DpStats stats;
  /// For the sparse algorithms: dp[p] = LCS of prefixes (a[0..i_p],
  /// b[0..j_p]) that *ends at* pair p, aligned with the match_pairs order.
  std::vector<std::uint32_t> pair_dp;
  core::SolvePath path = core::SolvePath::kParallel;  // set by lcs_auto
};

/// O(nm) grid DP over recurrence (3) (oracle).
[[nodiscard]] LcsResult lcs_naive(const std::vector<std::uint32_t>& a,
                                  const std::vector<std::uint32_t>& b);

/// Sparse sequential O(L log n) over pre-computed pairs.
[[nodiscard]] LcsResult lcs_sparse_seq(const std::vector<MatchPair>& pairs);
[[nodiscard]] LcsResult lcs_sparse_seq(const MatchPairsSoA& pairs);

/// Cordon Algorithm over pre-computed pairs (Thm 3.2).
/// stats.rounds == LCS length.
[[nodiscard]] LcsResult lcs_parallel(const std::vector<MatchPair>& pairs);
[[nodiscard]] LcsResult lcs_parallel(const MatchPairsSoA& pairs);

/// Production entry point: lcs_sparse_seq when effective parallelism is
/// 1 or L (the pair count) is under the adaptive cutoff
/// (core::kLcsSeqCutoff, override CORDON_LCS_CUTOFF), lcs_parallel
/// otherwise.  The routing decision is recorded in LcsResult::path.
/// Both produce the same pair_dp semantics (LCS value ending at pair p).
[[nodiscard]] LcsResult lcs_auto(const std::vector<MatchPair>& pairs);
[[nodiscard]] LcsResult lcs_auto(const MatchPairsSoA& pairs);

/// One optimal chain of match pairs (an LCS witness), recovered from the
/// per-pair DP values of either sparse algorithm.  Returned in chain
/// order (increasing i and j); length == res.length.  O(L) scan.
[[nodiscard]] std::vector<MatchPair> recover_chain(
    const std::vector<MatchPair>& pairs, const LcsResult& res);
[[nodiscard]] std::vector<MatchPair> recover_chain(const MatchPairsSoA& pairs,
                                                   const LcsResult& res);

// --- append-resumable frontier (solve sessions) -----------------------------

/// Positions of every symbol in the fixed reference sequence `b`
/// (j ascending per symbol).  Immutable once built — session versions
/// share one index behind a shared_ptr; growing `b` invalidates it and
/// forces a cold re-solve (the restricted update model).
struct BIndex {
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> where;
  std::size_t b_size = 0;
};

[[nodiscard]] BIndex build_b_index(const std::vector<std::uint32_t>& b);

/// Hunt–Szymanski thresholds after consuming a prefix of `a` against a
/// fixed `b`: thresholds[k] is the smallest j ending a common chain of
/// length k+1.  Appending to `a` appends match pairs at the END of the
/// (i asc, j desc) pair stream, so the thresholds array is exactly the
/// suffix-re-solve state — O(LCS) space, O(new pairs · log) per append,
/// and bitwise the same lengths as lcs_sparse_seq over the full pair
/// stream.
struct LcsFrontier {
  std::vector<std::uint32_t> thresholds;
  std::uint64_t a_consumed = 0;
  std::uint64_t pairs_consumed = 0;

  [[nodiscard]] std::uint32_t length() const noexcept {
    return static_cast<std::uint32_t>(thresholds.size());
  }
};

/// Feeds `count` appended `a` symbols through the frontier in place,
/// emitting their match pairs against `index` in (i asc, j desc) order.
void lcs_extend(LcsFrontier& f, const BIndex& index,
                const std::uint32_t* a_suffix, std::size_t count,
                core::DpStats& stats);

}  // namespace cordon::lcs
