// Engine adapter: sparse longest common subsequence (Sec. 3, Thm 3.2).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/registry.hpp"
#include "src/lcs/lcs.hpp"

namespace cordon::engine {
namespace {

/// Session checkpoint: the Hunt–Szymanski thresholds after consuming all
/// of `a`, plus the symbol index of the fixed `b` (shared across session
/// versions — only the O(LCS) frontier is copied per resume).
struct LcsState final : SolverState {
  std::shared_ptr<const lcs::BIndex> b_index;
  lcs::LcsFrontier frontier;
};

class LcsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "lcs"; }
  [[nodiscard]] std::string_view description() const override {
    return "sparse longest common subsequence over match pairs (Sec. 3, "
           "Thm 3.2)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<LcsInstance>();
    // SoA pairs: the solve path only streams the j coordinates.
    auto pairs = lcs::match_pairs_soa(p.a, p.b);
    auto r = lcs::lcs_auto(pairs);
    SolveResult out = pack(p, pairs.size(), r);
    out.effective_depth = out.stats.rounds;  // rounds == LCS length (Thm 3.2)
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<LcsInstance>();
    auto r = lcs::lcs_naive(p.a, p.b);
    return pack(p, 0, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    // Alphabet ~n/2 keeps the expected number of match pairs near-linear
    // (the sparse regime the algorithm targets).
    std::uint64_t alphabet = std::max<std::uint64_t>(2, opt.n / 2);
    LcsInstance p;
    p.a = detail::gen_symbols(opt.n, opt.seed, alphabet);
    p.b = detail::gen_symbols(opt.n, opt.seed ^ 0x9e3779b9u, alphabet);
    return {"lcs", p};
  }

  [[nodiscard]] bool incremental() const override { return true; }

  [[nodiscard]] SolveResult solve_checkpoint(
      const Instance& inst,
      std::shared_ptr<const SolverState>& state) const override {
    state = checkpoint(inst.as<LcsInstance>());
    return solve(inst);
  }

  [[nodiscard]] ResumeResult resume(
      const std::shared_ptr<const SolverState>& state, const Instance& full,
      const Delta& delta) const override {
    const auto& p = full.as<LcsInstance>();
    const auto* st = dynamic_cast<const LcsState*>(state.get());
    const auto* ap = std::get_if<LcsInstance>(&delta.append);
    // Incremental only when the delta grows `a` against the same fixed
    // `b`: appending to `b` reorders the whole (i asc, j desc) pair
    // stream, which invalidates the thresholds — cold fallback (and a
    // fresh checkpoint for subsequent appends).
    if (st == nullptr || ap == nullptr || !ap->b.empty() ||
        st->b_index == nullptr || st->b_index->b_size != p.b.size() ||
        st->frontier.a_consumed + ap->a.size() != p.a.size()) {
      return {solve(full), checkpoint(p), false};
    }
    auto next = std::make_shared<LcsState>();
    next->b_index = st->b_index;    // shared: b is immutable in a session
    next->frontier = st->frontier;  // O(LCS) copy
    SolveResult out;
    lcs::lcs_extend(next->frontier, *next->b_index, ap->a.data(),
                    ap->a.size(), out.stats);
    out.objective = next->frontier.length();
    out.detail = detail_line(p, next->frontier.pairs_consumed,
                             next->frontier.length());
    out.path = core::SolvePath::kResumed;
    return {std::move(out), std::move(next), true};
  }

 private:
  static std::shared_ptr<const LcsState> checkpoint(const LcsInstance& p) {
    auto st = std::make_shared<LcsState>();
    st->b_index = std::make_shared<lcs::BIndex>(lcs::build_b_index(p.b));
    core::DpStats scratch;
    lcs::lcs_extend(st->frontier, *st->b_index, p.a.data(), p.a.size(),
                    scratch);
    return st;
  }

  // frontier.pairs_consumed after a full replay equals the match-pair
  // count L of the full instance, so resumed details match cold ones.
  static std::string detail_line(const LcsInstance& p, std::uint64_t num_pairs,
                                 std::uint32_t length) {
    return "lcs |a|=" + std::to_string(p.a.size()) +
           " |b|=" + std::to_string(p.b.size()) +
           (num_pairs > 0 ? " L=" + std::to_string(num_pairs) : "") +
           " length=" + std::to_string(length);
  }

  static SolveResult pack(const LcsInstance& p, std::size_t num_pairs,
                          const lcs::LcsResult& r) {
    SolveResult out;
    out.objective = static_cast<double>(r.length);
    out.stats = r.stats;
    out.path = r.path;
    out.detail = detail_line(p, num_pairs, r.length);
    return out;
  }
};

}  // namespace

void register_lcs(ProblemRegistry& reg) {
  reg.add(std::make_unique<LcsSolver>());
}

}  // namespace cordon::engine
