// Engine adapter: sparse longest common subsequence (Sec. 3, Thm 3.2).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/lcs/lcs.hpp"

namespace cordon::engine {
namespace {

class LcsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "lcs"; }
  [[nodiscard]] std::string_view description() const override {
    return "sparse longest common subsequence over match pairs (Sec. 3, "
           "Thm 3.2)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<LcsInstance>();
    // SoA pairs: the solve path only streams the j coordinates.
    auto pairs = lcs::match_pairs_soa(p.a, p.b);
    auto r = lcs::lcs_auto(pairs);
    SolveResult out = pack(p, pairs.size(), r);
    out.effective_depth = out.stats.rounds;  // rounds == LCS length (Thm 3.2)
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<LcsInstance>();
    auto r = lcs::lcs_naive(p.a, p.b);
    return pack(p, 0, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    // Alphabet ~n/2 keeps the expected number of match pairs near-linear
    // (the sparse regime the algorithm targets).
    std::uint64_t alphabet = std::max<std::uint64_t>(2, opt.n / 2);
    LcsInstance p;
    p.a = detail::gen_symbols(opt.n, opt.seed, alphabet);
    p.b = detail::gen_symbols(opt.n, opt.seed ^ 0x9e3779b9u, alphabet);
    return {"lcs", p};
  }

 private:
  static SolveResult pack(const LcsInstance& p, std::size_t num_pairs,
                          const lcs::LcsResult& r) {
    SolveResult out;
    out.objective = static_cast<double>(r.length);
    out.stats = r.stats;
    out.path = r.path;
    out.detail = "lcs |a|=" + std::to_string(p.a.size()) +
                 " |b|=" + std::to_string(p.b.size()) +
                 (num_pairs > 0 ? " L=" + std::to_string(num_pairs) : "") +
                 " length=" + std::to_string(r.length);
    return out;
  }
};

}  // namespace

void register_lcs(ProblemRegistry& reg) {
  reg.add(std::make_unique<LcsSolver>());
}

}  // namespace cordon::engine
