#include "src/lis/lis.hpp"

#include <algorithm>
#include <limits>

#include "src/core/kernels.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/primitives.hpp"
#include "src/structures/tournament_tree.hpp"

namespace cordon::lis {

LisResult lis_naive(const std::vector<std::uint64_t>& a) {
  const std::size_t n = a.size();
  LisResult res;
  res.dp.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      ++res.stats.relaxations;
      if (a[j] < a[i] && res.dp[j] + 1 > res.dp[i]) res.dp[i] = res.dp[j] + 1;
    }
    ++res.stats.states;
    if (res.dp[i] > res.length) res.length = res.dp[i];
  }
  return res;
}

namespace {

// Fenwick tree over value ranks supporting prefix-max queries.
class FenwickMax {
 public:
  explicit FenwickMax(std::size_t n) : tree_(n + 1, 0) {}

  void update(std::size_t i, std::uint32_t v) {
    for (++i; i < tree_.size(); i += i & (~i + 1))
      tree_[i] = std::max(tree_[i], v);
  }

  /// Max over ranks [0, i) — i.e., strictly smaller values.
  [[nodiscard]] std::uint32_t prefix_max(std::size_t i) const {
    std::uint32_t best = 0;
    for (; i > 0; i -= i & (~i + 1)) best = std::max(best, tree_[i]);
    return best;
  }

 private:
  std::vector<std::uint32_t> tree_;
};

// Dense ranks of a (equal values share a rank).
std::vector<std::uint32_t> dense_ranks(const std::vector<std::uint64_t>& a) {
  std::vector<std::uint64_t> sorted(a);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::uint32_t> rank(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    rank[i] = static_cast<std::uint32_t>(
        std::lower_bound(sorted.begin(), sorted.end(), a[i]) -
        sorted.begin());
  }
  return rank;
}

}  // namespace

LisResult lis_sequential(const std::vector<std::uint64_t>& a) {
  const std::size_t n = a.size();
  LisResult res;
  res.dp.assign(n, 1);
  std::vector<std::uint32_t> rank = dense_ranks(a);
  FenwickMax fen(n);
  core::PollTicker poll;
  for (std::size_t i = 0; i < n; ++i) {
    poll.tick();
    // Best decision: the max DP among strictly smaller values to the left.
    std::uint32_t best = fen.prefix_max(rank[i]);
    res.dp[i] = best + 1;
    fen.update(rank[i], res.dp[i]);
    ++res.stats.states;
    ++res.stats.relaxations;  // exactly one effective transition per state
    if (res.dp[i] > res.length) res.length = res.dp[i];
  }
  return res;
}

LisResult lis_parallel(const std::vector<std::uint64_t>& a) {
  const std::size_t n = a.size();
  LisResult res;
  res.dp.assign(n, 0);
  if (n == 0) return res;

  // Cordon rounds: the ready states of round r are the prefix-minimum
  // elements among the still-active ones (Sec. 3) — no active j < i has
  // a[j] < a[i].  All of them share tentative value r, so D never needs
  // explicit relaxation (the "global tentative value" observation).
  structures::TournamentTree tree(a);
  core::AtomicDpStats stats;
  std::vector<std::size_t> frontier;  // reused: zero-alloc steady state
  std::uint32_t round = 0;
  while (!tree.empty()) {
    ++round;
    telemetry::RoundSpan round_span("lis.round", stats);
    tree.extract_prefix_minima_into(frontier);
    stats.add_round();
    stats.add_states(frontier.size());
    stats.add_relaxations(frontier.size());
    core::kernels::parallel_scatter_fill(res.dp.data(), frontier.data(),
                                         frontier.size(), round);
  }
  res.length = round;
  res.stats = stats.snapshot();
  return res;
}

std::vector<std::size_t> lis_witness(const std::vector<std::uint64_t>& a,
                                     const LisResult& res) {
  // Backward greedy: a state with DP value v chains after any earlier
  // state with value v-1 and a strictly smaller element.
  std::vector<std::size_t> out;
  std::uint32_t want = res.length;
  std::uint64_t ceiling = std::numeric_limits<std::uint64_t>::max();
  bool ceiling_open = true;  // no upper constraint yet
  for (std::size_t i = a.size(); i > 0 && want > 0; --i) {
    if (res.dp[i - 1] == want && (ceiling_open || a[i - 1] < ceiling)) {
      out.push_back(i - 1);
      ceiling = a[i - 1];
      ceiling_open = false;
      --want;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void lis_extend(LisFrontier& f, const std::uint64_t* values,
                std::size_t count, core::DpStats& stats) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = values[i];
    // First tail >= v: v extends the chain of that length - 1 and
    // becomes the new (strictly smaller or equal) tail; past-the-end
    // means v extends the longest chain.
    auto it = std::lower_bound(f.tails.begin(), f.tails.end(), v);
    if (it == f.tails.end())
      f.tails.push_back(v);
    else
      *it = v;
    ++stats.states;
    ++stats.relaxations;
  }
  f.consumed += count;
}

}  // namespace cordon::lis
