// Longest Increasing Subsequence (Sec. 3, Thm 3.1).
//
// Three algorithms over one recurrence
//   D[i] = max{1, max_{j<i, A[j]<A[i]} D[j] + 1}:
//   * lis_naive       — the textbook O(n^2) evaluation (test oracle),
//   * lis_sequential  — the optimized O(n log k) algorithm [65]: a
//     Fenwick-tree prefix-max finds each state's best decision exactly,
//   * lis_parallel    — the Cordon Algorithm: each round extracts the
//     prefix-minimum elements (the states whose tentative value cannot be
//     improved) with a tournament tree; round r finalizes exactly the
//     states with D = r.  Work O(n log k), span O(k log n); a perfect
//     parallelization of the sequential algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::lis {

struct LisResult {
  std::vector<std::uint32_t> dp;  // D[i] = LIS length ending at i
  std::uint32_t length = 0;       // max D
  core::DpStats stats;
};

/// O(n^2) reference evaluation of the recurrence.
[[nodiscard]] LisResult lis_naive(const std::vector<std::uint64_t>& a);

/// Optimized sequential algorithm: O(n log n) with a Fenwick prefix-max
/// over value ranks (the Γ whose parallelization Thm 3.1 analyzes).
[[nodiscard]] LisResult lis_sequential(const std::vector<std::uint64_t>& a);

/// Cordon Algorithm with a tournament tree (Thm 3.1).
/// stats.rounds == LIS length (the perfect depth of the DP DAG).
[[nodiscard]] LisResult lis_parallel(const std::vector<std::uint64_t>& a);

/// One longest strictly increasing subsequence (indices into `a`),
/// reconstructed from per-state DP values in one backward scan.
[[nodiscard]] std::vector<std::size_t> lis_witness(
    const std::vector<std::uint64_t>& a, const LisResult& res);

// --- append-resumable frontier (solve sessions) -----------------------------

/// Patience frontier: tails[k] is the smallest value ending a strictly
/// increasing subsequence of length k+1 among the `consumed` elements so
/// far.  tails is strictly increasing, O(LIS) space, and — unlike the
/// per-state dp array — absorbing one appended element costs O(log LIS):
/// exactly the state an append-only session checkpoints.  The LIS length
/// of any extension never depends on dropped information, so
/// lis_extend(frontier of a) ++ suffix == lis(a ++ suffix) exactly.
struct LisFrontier {
  std::vector<std::uint64_t> tails;
  std::uint64_t consumed = 0;

  [[nodiscard]] std::uint32_t length() const noexcept {
    return static_cast<std::uint32_t>(tails.size());
  }
};

/// Feeds `count` appended values through the frontier in place.
/// O(count log LIS); stats counts one state and one relaxation per value
/// (matching the sequential algorithm's accounting unit).
void lis_extend(LisFrontier& f, const std::uint64_t* values,
                std::size_t count, core::DpStats& stats);

}  // namespace cordon::lis
