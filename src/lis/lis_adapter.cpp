// Engine adapter: longest increasing subsequence (Sec. 3, Thm 3.1).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/registry.hpp"
#include "src/lis/lis.hpp"

namespace cordon::engine {
namespace {

/// Session checkpoint: the patience frontier after the instance's values.
struct LisState final : SolverState {
  lis::LisFrontier frontier;
};

class LisSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "lis"; }
  [[nodiscard]] std::string_view description() const override {
    return "longest increasing subsequence (Sec. 3, Thm 3.1)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<LisInstance>();
    auto r = lis::lis_parallel(p.values);
    SolveResult out = pack(p, r);
    // Thm 3.1: round r finalizes exactly the states with D = r, so the
    // observed rounds equal the DAG's (perfect) effective depth.
    out.effective_depth = out.stats.rounds;
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<LisInstance>();
    auto r = lis::lis_naive(p.values);
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    // Value range ~n/2 gives a duplicate-rich but nontrivial LIS.
    std::uint64_t bound = std::max<std::uint64_t>(2, opt.n / 2);
    return {"lis", LisInstance{detail::gen_values(opt.n, opt.seed, bound)}};
  }

  [[nodiscard]] bool incremental() const override { return true; }

  [[nodiscard]] SolveResult solve_checkpoint(
      const Instance& inst,
      std::shared_ptr<const SolverState>& state) const override {
    state = checkpoint(inst.as<LisInstance>());
    return solve(inst);
  }

  [[nodiscard]] ResumeResult resume(
      const std::shared_ptr<const SolverState>& state, const Instance& full,
      const Delta& delta) const override {
    const auto& p = full.as<LisInstance>();
    const auto* st = dynamic_cast<const LisState*>(state.get());
    const auto* ap = std::get_if<LisInstance>(&delta.append);
    if (st == nullptr || ap == nullptr ||
        st->frontier.consumed + ap->values.size() != p.values.size()) {
      // Inconsistent or missing state: cold solve, but rebuild the
      // checkpoint so the next append can resume again.
      return {solve(full), checkpoint(p), false};
    }
    auto next = std::make_shared<LisState>();
    next->frontier = st->frontier;  // O(LIS) copy; prior versions untouched
    SolveResult out;
    lis::lis_extend(next->frontier, ap->values.data(), ap->values.size(),
                    out.stats);
    out.objective = next->frontier.length();
    out.effective_depth = next->frontier.length();  // == cordon rounds (Thm 3.1)
    out.detail = detail_line(p.values.size(), next->frontier.length());
    out.path = core::SolvePath::kResumed;
    return {std::move(out), std::move(next), true};
  }

 private:
  static std::shared_ptr<const LisState> checkpoint(const LisInstance& p) {
    auto st = std::make_shared<LisState>();
    core::DpStats scratch;
    lis::lis_extend(st->frontier, p.values.data(), p.values.size(), scratch);
    return st;
  }

  static std::string detail_line(std::size_t n, std::uint32_t length) {
    return "lis n=" + std::to_string(n) + " length=" + std::to_string(length);
  }

  static SolveResult pack(const LisInstance& p, const lis::LisResult& r) {
    SolveResult out;
    out.objective = static_cast<double>(r.length);
    out.stats = r.stats;
    out.detail = detail_line(p.values.size(), r.length);
    return out;
  }
};

}  // namespace

void register_lis(ProblemRegistry& reg) {
  reg.add(std::make_unique<LisSolver>());
}

}  // namespace cordon::engine
