// Engine adapter: longest increasing subsequence (Sec. 3, Thm 3.1).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/lis/lis.hpp"

namespace cordon::engine {
namespace {

class LisSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "lis"; }
  [[nodiscard]] std::string_view description() const override {
    return "longest increasing subsequence (Sec. 3, Thm 3.1)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<LisInstance>();
    auto r = lis::lis_parallel(p.values);
    SolveResult out = pack(p, r);
    // Thm 3.1: round r finalizes exactly the states with D = r, so the
    // observed rounds equal the DAG's (perfect) effective depth.
    out.effective_depth = out.stats.rounds;
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<LisInstance>();
    auto r = lis::lis_naive(p.values);
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    // Value range ~n/2 gives a duplicate-rich but nontrivial LIS.
    std::uint64_t bound = std::max<std::uint64_t>(2, opt.n / 2);
    return {"lis", LisInstance{detail::gen_values(opt.n, opt.seed, bound)}};
  }

 private:
  static SolveResult pack(const LisInstance& p, const lis::LisResult& r) {
    SolveResult out;
    out.objective = static_cast<double>(r.length);
    out.stats = r.stats;
    out.detail = "lis n=" + std::to_string(p.values.size()) +
                 " length=" + std::to_string(r.length);
    return out;
  }
};

}  // namespace

void register_lis(ProblemRegistry& reg) {
  reg.add(std::make_unique<LisSolver>());
}

}  // namespace cordon::engine
