// Sequential Garsia–Wachs (phase 1 + level extraction).
//
// Scans for the first node y with w(prev(y)) <= w(next(y)); the pair
// (prev(y), y) is then a locally minimal pair (the failed triggers to its
// left force strict descent of 2-sums).  After combining and
// reinserting, only the neighbourhoods of the removal and insertion
// points can produce new triggers, so the scan resumes at prev(x) — the
// classic near-linear behaviour on non-adversarial inputs.
#include "src/oat/gw_list.hpp"
#include "src/oat/oat.hpp"

namespace cordon::oat {

OatResult oat_garsia_wachs(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  OatResult res;
  if (n == 0) return res;
  if (n == 1) {
    res.levels = {0};
    return res;
  }

  detail::GwList list(weights);
  std::uint32_t y = list.next(list.first());
  while (list.size() > 1) {
    // Find the first trigger position at or after y.
    while (!(list.weight(list.prev(y)) <= list.weight(list.next(y)))) {
      y = list.next(y);
      ++res.stats.relaxations;
    }
    std::uint32_t x = list.prev(y);
    std::uint32_t resume = list.prev(x);
    std::uint32_t after = list.next(y);
    std::uint32_t z = list.combine(x);
    res.stats.relaxations += list.reinsert(z, after);
    ++res.stats.states;
    // Resume at the leftmost node whose neighbourhood changed.
    y = list.is_sentinel(resume) ? list.first() : resume;
    if (list.is_sentinel(y)) y = list.first();
    // The trigger needs a real prev; if y is the very first node its
    // prev is the +inf sentinel and the trigger can still fire only via
    // next being +inf (size 1), which the loop guard handles.
  }
  res.levels = list.leaf_levels(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.cost += weights[i] * res.levels[i];
    res.height = std::max(res.height, res.levels[i]);
  }
  res.stats.rounds = res.stats.states;  // one combine per "round" sequentially
  return res;
}

}  // namespace cordon::oat
