// Internal working list for the Garsia–Wachs family (phase 1).
//
// Doubly linked list over an arena of nodes (n leaves + up to n-1
// internal combine nodes + 2 infinite sentinels).  Provides the two
// primitive steps of phase 1:
//   combine(x, y)       — replace adjacent (x, y) by a parent node,
//   reinsert(z, from)   — insert z before the first node at/after `from`
//                         whose weight >= w(z) (GW's reinsertion rule),
// plus leaf-level extraction from the recorded combine forest.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace cordon::oat::detail {

class GwList {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  explicit GwList(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    // Arena layout: [0, n) leaves, then internal nodes, then the two
    // sentinels at the end (allocated first for fixed ids).
    w_.reserve(2 * n + 2);
    prev_.reserve(2 * n + 2);
    next_.reserve(2 * n + 2);
    child_.reserve(2 * n + 2);
    for (std::size_t i = 0; i < n; ++i) push_node(weights[i]);
    head_ = push_node(std::numeric_limits<double>::infinity());
    tail_ = push_node(std::numeric_limits<double>::infinity());
    // Link: head -> 0 -> 1 -> ... -> n-1 -> tail.
    next_[head_] = n > 0 ? 0 : tail_;
    prev_[tail_] = n > 0 ? static_cast<std::uint32_t>(n - 1) : head_;
    for (std::uint32_t i = 0; i < n; ++i) {
      prev_[i] = i == 0 ? head_ : i - 1;
      next_[i] = i + 1 == n ? tail_ : i + 1;
    }
    size_ = n;
  }

  [[nodiscard]] std::uint32_t head() const noexcept { return head_; }
  [[nodiscard]] std::uint32_t tail() const noexcept { return tail_; }
  [[nodiscard]] std::uint32_t first() const noexcept { return next_[head_]; }
  [[nodiscard]] std::uint32_t next(std::uint32_t v) const { return next_[v]; }
  [[nodiscard]] std::uint32_t prev(std::uint32_t v) const { return prev_[v]; }
  [[nodiscard]] double weight(std::uint32_t v) const { return w_[v]; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool is_sentinel(std::uint32_t v) const {
    return v == head_ || v == tail_;
  }

  /// Creates a parent node over two arbitrary nodes *without* touching
  /// the list links.  Used by the sorted-endgame drain of oat_parallel,
  /// which manages its own (two-queue) order and only needs the combine
  /// forest recorded for leaf_levels().
  std::uint32_t make_parent(std::uint32_t x, std::uint32_t y) {
    std::uint32_t z = push_node(w_[x] + w_[y]);
    child_[z] = {x, y};
    --size_;
    return z;
  }

  [[nodiscard]] std::size_t arena_size() const noexcept { return w_.size(); }

  /// Combines adjacent nodes (x, next(x)) into a new node (not linked
  /// into the list); unlinks both.  Returns the new node id.
  std::uint32_t combine(std::uint32_t x) {
    std::uint32_t y = next_[x];
    std::uint32_t z = push_node(w_[x] + w_[y]);
    child_[z] = {x, y};
    // Unlink x and y.
    std::uint32_t before = prev_[x], after = next_[y];
    next_[before] = after;
    prev_[after] = before;
    --size_;  // two removed, one pending insert
    return z;
  }

  /// GW reinsertion: scanning right from `from`, inserts z before the
  /// first node with weight >= w(z) (the tail sentinel always qualifies).
  /// Returns the number of nodes scanned (work accounting).
  std::size_t reinsert(std::uint32_t z, std::uint32_t from) {
    std::size_t scanned = 0;
    std::uint32_t q = from;
    while (w_[q] < w_[z]) {
      q = next_[q];
      ++scanned;
    }
    std::uint32_t before = prev_[q];
    next_[before] = z;
    prev_[z] = before;
    next_[z] = q;
    prev_[q] = z;
    return scanned;
  }

  /// Leaf levels (depths in the combine forest) for leaves 0..n_leaves-1.
  /// Requires the list to have collapsed to a single root node.
  [[nodiscard]] std::vector<std::uint32_t> leaf_levels(
      std::size_t n_leaves) const {
    std::vector<std::uint32_t> depth(w_.size(), 0);
    // Internal nodes were appended after creation of their children, so a
    // reverse pass assigns depths top-down.
    for (std::size_t v = w_.size(); v > 0; --v) {
      std::uint32_t id = static_cast<std::uint32_t>(v - 1);
      if (child_[id].first == kNone) continue;
      depth[child_[id].first] = depth[id] + 1;
      depth[child_[id].second] = depth[id] + 1;
    }
    depth.resize(n_leaves);
    return depth;
  }

 private:
  std::uint32_t push_node(double weight) {
    w_.push_back(weight);
    prev_.push_back(kNone);
    next_.push_back(kNone);
    child_.push_back({kNone, kNone});
    return static_cast<std::uint32_t>(w_.size() - 1);
  }

  std::vector<double> w_;
  std::vector<std::uint32_t> prev_, next_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> child_;
  std::uint32_t head_ = kNone, tail_ = kNone;
  std::size_t size_ = 0;
};

}  // namespace cordon::oat::detail
