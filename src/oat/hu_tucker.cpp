// Hu–Tucker (phase 1) — the original optimal alphabetic tree algorithm.
//
// Working list of nodes, each *opaque* (an original leaf) or
// *transparent* (a combined internal node).  A pair is compatible when
// every node strictly between its endpoints is transparent.  Each step
// combines the compatible pair with the minimum weight sum, breaking
// ties towards the smaller left position and then the smaller right
// position (Knuth's tie-break, required for correctness).  The combined
// node is transparent and takes the left endpoint's position.
//
// This is the straightforward O(n^2) variant (the O(n log n) versions
// need mergeable priority queues per opaque gap); it exists as an
// independent check on Garsia–Wachs: both must produce the same l-tree
// level sequence.
#include <limits>
#include <vector>

#include "src/oat/oat.hpp"

namespace cordon::oat {

OatResult oat_hu_tucker(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  OatResult res;
  if (n == 0) return res;
  if (n == 1) {
    res.levels = {0};
    return res;
  }

  constexpr std::uint32_t kNone = 0xffffffffu;
  // Arena: leaves then internal nodes.
  std::vector<double> w(weights);
  std::vector<bool> transparent(n, false);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> child;
  child.assign(n, {kNone, kNone});
  // Live list as next/prev over arena ids (position = list order).
  std::vector<std::uint32_t> order;  // current list, rebuilt lazily
  order.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) order.push_back(i);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the min-sum compatible pair.  For a left endpoint at list
    // position p, the right candidates run until just past the first
    // opaque node after p.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_p = 0, best_q = 0;
    for (std::size_t p = 0; p + 1 < order.size(); ++p) {
      std::uint32_t a = order[p];
      for (std::size_t q = p + 1; q < order.size(); ++q) {
        std::uint32_t b = order[q];
        double s = w[a] + w[b];
        ++res.stats.relaxations;
        if (s < best) {  // strict <: earliest (p, q) wins ties
          best = s;
          best_p = p;
          best_q = q;
        }
        if (!transparent[b]) break;  // opaque blocks further pairs from p
      }
    }
    // Combine: new transparent node at best_p's position.
    std::uint32_t a = order[best_p], b = order[best_q];
    std::uint32_t z = static_cast<std::uint32_t>(w.size());
    w.push_back(w[a] + w[b]);
    transparent.push_back(true);
    child.push_back({a, b});
    order[best_p] = z;
    order.erase(order.begin() + static_cast<std::ptrdiff_t>(best_q));
    ++res.stats.states;
  }

  // Leaf levels from the combine forest (children created before parent).
  std::vector<std::uint32_t> depth(w.size(), 0);
  for (std::size_t v = w.size(); v > 0; --v) {
    std::uint32_t id = static_cast<std::uint32_t>(v - 1);
    if (child[id].first == kNone) continue;
    depth[child[id].first] = depth[id] + 1;
    depth[child[id].second] = depth[id] + 1;
  }
  depth.resize(n);
  res.levels = std::move(depth);
  for (std::size_t i = 0; i < n; ++i) {
    res.cost += weights[i] * res.levels[i];
    res.height = std::max(res.height, res.levels[i]);
  }
  res.stats.rounds = n - 1;
  return res;
}

}  // namespace cordon::oat
