// Huffman coding (the unordered counterpart of OAT).
//
// The paper situates OAT next to Huffman [55] and OBST [64]: Huffman
// minimizes sum w_i * depth_i over *all* binary trees, OAT over trees
// whose leaves keep the input order.  Having both lets tests and
// examples sandwich the alphabetic optimum:
//     huffman_cost(w) <= oat_cost(w)  (fewer constraints)
// and quantify the price of order preservation.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace cordon::oat {

struct HuffmanResult {
  std::vector<std::uint32_t> lengths;  // codeword length per symbol
  double cost = 0;                     // sum w_i * length_i
};

/// Classic two-heap Huffman, O(n log n).
[[nodiscard]] inline HuffmanResult huffman(const std::vector<double>& w) {
  HuffmanResult res;
  const std::size_t n = w.size();
  res.lengths.assign(n, 0);
  if (n <= 1) return res;

  struct Node {
    double weight;
    std::uint32_t id;  // arena id
  };
  auto cmp = [](const Node& a, const Node& b) { return a.weight > b.weight; };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  // Arena: leaves then internal combines; parent links give depths.
  std::vector<std::uint32_t> parent(n, 0xffffffffu);
  for (std::uint32_t i = 0; i < n; ++i) heap.push({w[i], i});
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    std::uint32_t z = static_cast<std::uint32_t>(parent.size());
    parent.push_back(0xffffffffu);
    parent[a.id] = z;
    parent[b.id] = z;
    heap.push({a.weight + b.weight, z});
  }
  // Depths: walk parents top-down (parents have larger arena ids).
  std::vector<std::uint32_t> depth(parent.size(), 0);
  for (std::size_t v = parent.size(); v > 0; --v) {
    std::uint32_t id = static_cast<std::uint32_t>(v - 1);
    if (parent[id] != 0xffffffffu) depth[id] = depth[parent[id]] + 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    res.lengths[i] = depth[i];
    res.cost += w[i] * depth[i];
  }
  return res;
}

}  // namespace cordon::oat
