// Shared l-tree machinery: leaf levels from a combine forest, the O(n^2)
// DP oracle, and phase 2 (levels -> explicit alphabetic tree).
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/oat/oat.hpp"

namespace cordon::oat {

double oat_dp_cost(const std::vector<double>& weights) {
  // D[i][j] = optimal cost of an alphabetic tree over leaves i..j-1
  // (0-based, half-open on j): D[i][i+1] = 0, and
  // D[i][j] = min_k D[i][k] + D[k][j] + W(i, j) — every merge pushes the
  // whole range one level deeper, hence the +W.  Knuth ranges apply.
  const std::size_t n = weights.size();
  if (n == 0) return 0;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];
  std::vector<double> d((n + 1) * (n + 1), 0.0);
  std::vector<std::uint32_t> rt((n + 1) * (n + 1), 0);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return d[i * (n + 1) + j];
  };
  auto root = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return rt[i * (n + 1) + j];
  };
  for (std::size_t i = 0; i + 1 <= n; ++i) root(i, i + 1) = static_cast<std::uint32_t>(i + 1);
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      std::size_t j = i + len;
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_k = 0;
      std::size_t klo = root(i, j - 1), khi = root(i + 1, j);
      if (klo < i + 1) klo = i + 1;
      if (khi > j - 1) khi = j - 1;
      for (std::size_t k = klo; k <= khi; ++k) {
        double v = at(i, k) + at(k, j);
        if (v < best) {
          best = v;
          best_k = static_cast<std::uint32_t>(k);
        }
      }
      at(i, j) = best + (prefix[j] - prefix[i]);
      root(i, j) = best_k;
    }
  }
  return at(0, n);
}

AlphabeticTree tree_from_levels(const std::vector<std::uint32_t>& levels) {
  // Stack reconstruction: push leaves left to right; whenever the two top
  // subtrees sit at the same level, merge them one level up.  A valid
  // level sequence (e.g. from Garsia–Wachs) collapses to a single level-0
  // tree.
  const std::size_t n = levels.size();
  AlphabeticTree t;
  if (n == 0) return t;
  if (n == 1) {
    if (levels[0] != 0)
      throw std::invalid_argument("single leaf must have level 0");
    return t;
  }
  struct Item {
    std::int32_t id;      // >= 0 leaf, < 0 internal (~id indexes t.left)
    std::uint32_t level;
  };
  std::vector<Item> stack;
  stack.reserve(64);
  auto merge_tops = [&] {
    while (stack.size() >= 2 &&
           stack[stack.size() - 1].level == stack[stack.size() - 2].level) {
      Item r = stack.back();
      stack.pop_back();
      Item l = stack.back();
      stack.pop_back();
      t.left.push_back(l.id);
      t.right.push_back(r.id);
      std::int32_t id = ~static_cast<std::int32_t>(t.left.size() - 1);
      if (l.level == 0)
        throw std::invalid_argument("level sequence merges above the root");
      stack.push_back({id, l.level - 1});
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    stack.push_back({static_cast<std::int32_t>(i), levels[i]});
    merge_tops();
  }
  if (stack.size() != 1 || stack.front().level != 0)
    throw std::invalid_argument("level sequence is not realizable");
  return t;
}

}  // namespace cordon::oat
