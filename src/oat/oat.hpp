// Optimal Alphabetic Tree (Sec. 5.1, Thm 5.1, Appendix A).
//
// Given leaf weights a[0..n-1], find the binary tree with those leaves in
// order minimizing sum a_i * depth_i.
//
//   * oat_dp_cost      — O(n^2) Knuth-style interval DP (oracle, small n),
//   * oat_garsia_wachs — the classic two-phase sequential algorithm:
//     phase 1 builds the l-tree by repeatedly combining the leftmost
//     locally minimal pair and reinserting; phase 2 rebuilds the
//     alphabetic tree from the leaf levels,
//   * oat_parallel     — the phase-parallel scheme of Larmore et al. [72]
//     that the paper accelerates: every round combines *all* disjoint
//     locally minimal pairs at once and batch-reinserts (any locally
//     minimal pair yields the same l-tree).  stats.rounds counts the
//     phase-parallel rounds.  The 1-valley/convex-LWS acceleration of
//     Appendix A (which bounds rounds by O(log n) on adversarial inputs)
//     is discussed in DESIGN.md; this implementation exposes the same
//     experimental quantities (rounds, height, work) the paper's analysis
//     is parameterized by.
//
// Lemma 5.1 utilities: oat height is O(log W) for positive integer
// weights of word size W (tests/bench A4 check this).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::oat {

struct OatResult {
  std::vector<std::uint32_t> levels;  // depth of each leaf in the OAT
  double cost = 0;                    // sum a_i * levels_i
  std::uint32_t height = 0;           // max level
  core::DpStats stats;
};

/// O(n^2) interval-DP optimal cost (Knuth-range speedup); oracle.
[[nodiscard]] double oat_dp_cost(const std::vector<double>& weights);

/// Sequential Garsia–Wachs.
[[nodiscard]] OatResult oat_garsia_wachs(const std::vector<double>& weights);

/// Sequential Hu–Tucker [53]: the original OAT algorithm.  This is the
/// textbook variant that repeatedly combines the minimum-sum
/// *compatible* pair (only transparent/internal nodes may sit between
/// the two), O(n^2) worst case — kept as an independent baseline whose
/// l-tree levels must agree with Garsia–Wachs.
[[nodiscard]] OatResult oat_hu_tucker(const std::vector<double>& weights);

/// Phase-parallel all-locally-minimal-pairs rounds ([72] base scheme).
[[nodiscard]] OatResult oat_parallel(const std::vector<double>& weights);

/// Phase 2: rebuilds an explicit alphabetic tree from leaf levels.
/// Returns, for each of the n-1 internal nodes, its children as signed
/// ids: value >= 0 -> leaf index, value < 0 -> internal node ~value.
/// The last internal node is the root.  Validates that the level
/// sequence is realizable (throws std::invalid_argument otherwise).
struct AlphabeticTree {
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  [[nodiscard]] std::size_t num_internal() const noexcept {
    return left.size();
  }
};
[[nodiscard]] AlphabeticTree tree_from_levels(
    const std::vector<std::uint32_t>& levels);

}  // namespace cordon::oat
