// Engine adapter: optimal alphabetic tree (Sec. 5.1, Thm 5.1).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/oat/oat.hpp"

namespace cordon::engine {
namespace {

class OatSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "oat"; }
  [[nodiscard]] std::string_view description() const override {
    return "optimal alphabetic tree via phase-parallel Garsia-Wachs "
           "(Sec. 5.1)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<OatInstance>();
    auto r = oat::oat_parallel(p.weights);
    SolveResult out;
    out.objective = r.cost;
    out.stats = r.stats;
    out.detail = "oat n=" + std::to_string(p.weights.size()) +
                 " cost=" + std::to_string(r.cost) +
                 " height=" + std::to_string(r.height);
    return out;
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<OatInstance>();
    SolveResult out;
    out.objective = oat::oat_dp_cost(p.weights);
    out.detail = "oat n=" + std::to_string(p.weights.size()) +
                 " cost=" + std::to_string(out.objective) +
                 " (interval-DP oracle)";
    return out;
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    return {"oat",
            OatInstance{detail::gen_weights(opt.n, opt.seed, 1.0, 100.0)}};
  }
};

}  // namespace

void register_oat(ProblemRegistry& reg) {
  reg.add(std::make_unique<OatSolver>());
}

}  // namespace cordon::engine
