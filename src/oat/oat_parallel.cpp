// Phase-parallel OAT ([72] base scheme; Sec. 5.1 / Appendix A).
//
// Each round:
//   1. snapshot the working list and compute all 2-sums,
//   2. mark every locally minimal pair (strict on the left, non-strict on
//      the right, so marked pairs are disjoint) — Larmore et al. prove
//      combining any set of disjoint locally minimal pairs yields the
//      same l-tree as sequential Garsia–Wachs,
//   3. combine the marked pairs and reinsert each parent with the GW
//      rightward-scan rule, left to right.
//
// Rounds (stats.rounds) are the phase-parallel span driver: for random
// weights rounds ~ O(log n); monotone weight sequences degrade to O(n)
// rounds, which is exactly the case the paper's 1-valley + convex-LWS
// machinery (Appendix A) addresses — see DESIGN.md for the substitution
// note and bench A4 for the measured round counts.
#include <span>

#include "src/core/arena.hpp"
#include "src/core/trace.hpp"
#include "src/oat/gw_list.hpp"
#include "src/oat/oat.hpp"
#include "src/parallel/primitives.hpp"

namespace cordon::oat {

OatResult oat_parallel(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  OatResult res;
  if (n == 0) return res;
  if (n == 1) {
    res.levels = {0};
    return res;
  }

  detail::GwList list(weights);
  core::AtomicDpStats stats;
  // Round scratch: snapshot/pending are reused push targets (high-water
  // capacity retained); sums/marked are dense per-round arrays carved
  // from the worker arena and rewound every round.
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::vector<std::uint32_t> snapshot;

  struct Pending {
    std::uint32_t z;
    std::uint32_t anchor;  // surviving node just left of the pair's gap
  };
  std::vector<Pending> pending;

  bool drained = false;
  while (list.size() > 1 && !drained) {
    stats.add_round();
    telemetry::RoundSpan round_span("oat.round", stats);
    core::ArenaScope round_scope(arena);
    const std::size_t m = list.size();
    snapshot.clear();
    snapshot.reserve(m);  // lint: allow-alloc (high-water scratch, reused across rounds)
    for (std::uint32_t v = list.first(); !list.is_sentinel(v);
         v = list.next(v))
      snapshot.push_back(v);  // lint: allow-alloc (within reserved capacity)

    // Sorted-list fast path.  On a non-decreasing working list the
    // leftmost locally minimal pair is always the first two elements and
    // reinsertion keeps the list sorted — Garsia-Wachs degenerates to
    // Huffman's two-queue algorithm (and the all-LMP rounds above to one
    // combine per round, the [72] worst case).  Drain it directly; the
    // honest span of this phase is the dependency depth of the combines
    // (level k pairs depend only on level k-1), which Lemma 5.1 bounds
    // by O(log W) — we add exactly that measured depth to the rounds.
    {
      bool sorted = true;
      for (std::size_t p = 0; p + 1 < m && sorted; ++p)
        if (list.weight(snapshot[p]) > list.weight(snapshot[p + 1]))
          sorted = false;
      if (sorted) {
        std::vector<std::uint32_t> leaves(snapshot);
        std::vector<std::uint32_t> combined;  // sorted; consumed from head
        std::size_t lh = 0, ch = 0;           // queue heads
        std::vector<std::uint32_t> depth_of(2 * list.arena_size() + 2, 0);
        std::uint32_t max_depth = 0;
        auto take = [&]() {
          bool from_combined =
              ch < combined.size() &&
              (lh >= leaves.size() ||
               // Ties prefer the combined node: reinsertion places a new
               // parent *before* equal-weight elements.
               list.weight(combined[ch]) <= list.weight(leaves[lh]));
          return from_combined ? combined[ch++] : leaves[lh++];
        };
        while ((leaves.size() - lh) + (combined.size() - ch) > 1) {
          std::uint32_t x = take();
          std::uint32_t y = take();
          std::uint32_t z = list.make_parent(x, y);
          if (z >= depth_of.size()) depth_of.resize(z + 1, 0);  // lint: allow-alloc (rare: fresh parent ids only)
          depth_of[z] = std::max(depth_of[x], depth_of[y]) + 1;
          max_depth = std::max(max_depth, depth_of[z]);
          // Insert before any equal-weight combined suffix (sums are
          // non-decreasing, so z belongs at or near the back).
          std::size_t at = combined.size();
          while (at > ch && list.weight(combined[at - 1]) >= list.weight(z))
            --at;
          combined.insert(combined.begin() + static_cast<std::ptrdiff_t>(at),
                          z);
        }
        stats.add_states(m);
        // The phase's parallel span: one round per combine level.
        for (std::uint32_t r = 1; r < max_depth; ++r) stats.add_round();
        if (max_depth > 1)
          telemetry::count(telemetry::Counter::kSolverRounds, max_depth - 1);
        drained = true;
        continue;
      }
    }

    std::span<double> sums = arena.make_span<double>(m - 1);
    parallel::parallel_for(0, m - 1, [&](std::size_t p) {
      sums[p] = list.weight(snapshot[p]) + list.weight(snapshot[p + 1]);
    });
    std::span<std::uint8_t> marked = arena.make_span<std::uint8_t>(m - 1);
    parallel::parallel_for(0, m - 1, [&](std::size_t p) {
      bool left_ok = p == 0 || sums[p] < sums[p - 1];
      bool right_ok = p + 2 >= m || sums[p] <= sums[p + 1];
      marked[p] = left_ok && right_ok;
    });
    stats.add_states(m);

    // First combine (unlink) every marked pair, then reinsert the new
    // parents left to right — exactly the [72] round structure.  A
    // reinsertion scan must start at the first *surviving* node after
    // its pair, since the node right after may itself have been combined.
    pending.clear();
    auto removed = [&](std::size_t q) {
      return marked[q] != 0 || (q > 0 && marked[q - 1] != 0);
    };
    for (std::size_t p = 0; p + 1 < m; ++p) {
      if (!marked[p]) continue;
      std::uint32_t z = list.combine(snapshot[p]);
      // Nearest surviving snapshot node left of the pair (head if none).
      std::uint32_t anchor = list.head();
      for (std::size_t q = p; q > 0; --q) {
        if (!removed(q - 1)) {
          anchor = snapshot[q - 1];
          break;
        }
      }
      pending.push_back({z, anchor});  // lint: allow-alloc (high-water scratch, reused across rounds)
    }
    // Reinsert left to right.  Scanning starts at the gap's *current*
    // successor (next of the left anchor), so parents inserted by earlier
    // pairs of this round are seen exactly as the sequential rule demands.
    std::uint64_t scanned = 0;
    for (const Pending& pd : pending)
      scanned += list.reinsert(pd.z, list.next(pd.anchor));
    stats.add_relaxations(scanned);
  }

  res.levels = list.leaf_levels(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.cost += weights[i] * res.levels[i];
    res.height = std::max(res.height, res.levels[i]);
  }
  res.stats = stats.snapshot();
  return res;
}

}  // namespace cordon::oat
