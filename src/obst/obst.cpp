#include "src/obst/obst.hpp"

#include <limits>
#include <span>

#include "src/core/arena.hpp"
#include "src/core/kernels.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/primitives.hpp"

namespace cordon::obst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Tables {
  std::size_t n;
  std::span<double> d;             // (n+1)^2, row-major; arena scratch
  std::vector<std::uint32_t> root; // result: moved into ObstResult
  std::span<double> prefix;        // prefix[i] = w[0] + ... + w[i-1]

  // The cost table and prefix sums are pure scratch (only `root` leaves
  // this translation unit), so they bump the caller's arena epoch
  // instead of the heap — O(n^2) doubles reused across solves.
  Tables(const std::vector<double>& w, core::Arena& arena)
      : n(w.size()),
        d(arena.make_span<double>((n + 1) * (n + 1), kInf)),
        root((n + 1) * (n + 1), 0),
        prefix(arena.make_span<double>(n + 1, 0.0)) {
    for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + w[i];
    for (std::size_t i = 0; i <= n; ++i) at(i, i) = 0.0;
  }

  double& at(std::size_t i, std::size_t j) { return d[i * (n + 1) + j]; }
  [[nodiscard]] double get(std::size_t i, std::size_t j) const {
    return d[i * (n + 1) + j];
  }
  std::uint32_t& rt(std::size_t i, std::size_t j) {
    return root[i * (n + 1) + j];
  }
  [[nodiscard]] double weight(std::size_t i, std::size_t j) const {
    return prefix[j] - prefix[i];
  }
};

// Fills one cell scanning decisions in [klo, khi]; returns (cost, argmin).
// The scan is the strided min-plus kernel: t.get(i, k) walks row i
// contiguously while t.get(k + 1, j) walks column j with stride n+1.
void fill_cell(Tables& t, std::size_t i, std::size_t j, std::size_t klo,
               std::size_t khi, core::AtomicDpStats& stats) {
  const std::size_t stride = t.n + 1;
  core::kernels::ArgMin best = core::kernels::argmin_add_strided(
      t.d.data() + i * stride + klo, t.d.data() + (klo + 1) * stride + j,
      stride, khi - klo + 1);
  stats.add_relaxations(khi - klo + 1);
  stats.add_states(1);
  t.at(i, j) = best.value + t.weight(i, j);
  t.rt(i, j) = static_cast<std::uint32_t>(klo + best.index);
}

ObstResult finish(Tables& t, core::AtomicDpStats& stats) {
  ObstResult res;
  res.n = t.n;
  res.cost = t.get(0, t.n);
  res.root = std::move(t.root);
  res.stats = stats.snapshot();
  return res;
}

}  // namespace

ObstResult obst_naive(const std::vector<double>& w) {
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  Tables t(w, arena);
  core::AtomicDpStats stats;
  for (std::size_t delta = 1; delta <= t.n; ++delta) {
    stats.add_round();
    telemetry::RoundSpan round_span("obst.round", stats);
    for (std::size_t i = 0; i + delta <= t.n; ++i)
      fill_cell(t, i, i + delta, i, i + delta - 1, stats);
  }
  return finish(t, stats);
}

ObstResult obst_knuth(const std::vector<double>& w) {
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  Tables t(w, arena);
  core::AtomicDpStats stats;
  for (std::size_t delta = 1; delta <= t.n; ++delta) {
    stats.add_round();
    telemetry::RoundSpan round_span("obst.round", stats);
    for (std::size_t i = 0; i + delta <= t.n; ++i) {
      std::size_t j = i + delta;
      // Knuth's ranges: best split is monotone in both endpoints.
      std::size_t klo = delta == 1 ? i : t.rt(i, j - 1);
      std::size_t khi = delta == 1 ? i : std::min<std::size_t>(t.rt(i + 1, j),
                                                               j - 1);
      fill_cell(t, i, j, klo, khi, stats);
    }
  }
  return finish(t, stats);
}

ObstResult obst_parallel(const std::vector<double>& w) {
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  Tables t(w, arena);
  core::AtomicDpStats stats;
  // Diagonal wavefront: the delta-th cordon frontier is exactly the
  // diagonal j - i == delta (Sec. 5.5); cells of one diagonal are
  // independent given the previous diagonals and can use the same Knuth
  // ranges because rt(i, j-1) and rt(i+1, j) live on earlier diagonals.
  for (std::size_t delta = 1; delta <= t.n; ++delta) {
    stats.add_round();
    telemetry::RoundSpan round_span("obst.round", stats);
    std::size_t cells = t.n - delta + 1;
    parallel::parallel_for(0, cells, [&](std::size_t i) {
      std::size_t j = i + delta;
      std::size_t klo = delta == 1 ? i : t.rt(i, j - 1);
      std::size_t khi =
          delta == 1 ? i : std::min<std::size_t>(t.rt(i + 1, j), j - 1);
      fill_cell(t, i, j, klo, khi, stats);
    });
  }
  return finish(t, stats);
}

}  // namespace cordon::obst
