// Optimal Binary Search Tree (Sec. 5.5): Knuth's classic DM example.
//   D[i][j] = min_{i<=k<j} D[i][k] + D[k][j] + W(i, j),  D[i][i] = 0,
// over keys i+1..j (W(i, j) = total access weight of that key range).
//
//   * obst_naive    — O(n^3): full decision range per cell (oracle),
//   * obst_knuth    — O(n^2): Knuth's bound best[i][j-1] <= k <=
//     best[i+1][j] (sequential),
//   * obst_parallel — Cordon view: the delta-th frontier is the diagonal
//     {D[i][i+delta]}; each round computes one diagonal in parallel with
//     the Knuth ranges.  n-1 rounds (the paper notes o(n) span needs a
//     different recurrence — this is the *optimal parallelization* of the
//     classic algorithm, not a redesign).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::obst {

struct ObstResult {
  double cost = 0;  // optimal cost D[0][n]
  core::DpStats stats;
  std::vector<std::uint32_t> root;  // root[i*(n+1)+j]: best split of (i, j)
  std::size_t n = 0;

  [[nodiscard]] std::uint32_t root_of(std::size_t i, std::size_t j) const {
    return root[i * (n + 1) + j];
  }
};

/// Weights w[0..n-1] = access frequency of key k (internal-node model:
/// cost = sum over keys of w[k] * (depth[k] + 1)).
[[nodiscard]] ObstResult obst_naive(const std::vector<double>& w);
[[nodiscard]] ObstResult obst_knuth(const std::vector<double>& w);
[[nodiscard]] ObstResult obst_parallel(const std::vector<double>& w);

}  // namespace cordon::obst
