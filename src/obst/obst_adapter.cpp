// Engine adapter: optimal binary search tree (Sec. 5.5).
#include <memory>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/obst/obst.hpp"

namespace cordon::engine {
namespace {

class ObstSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "obst"; }
  [[nodiscard]] std::string_view description() const override {
    return "optimal binary search tree, Knuth ranges by diagonal "
           "(Sec. 5.5)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = inst.as<ObstInstance>();
    return pack(p, obst::obst_parallel(p.weights));
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = inst.as<ObstInstance>();
    return pack(p, obst::obst_naive(p.weights));
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    return {"obst",
            ObstInstance{detail::gen_weights(opt.n, opt.seed, 1.0, 50.0)}};
  }

 private:
  static SolveResult pack(const ObstInstance& p, const obst::ObstResult& r) {
    SolveResult out;
    out.objective = r.cost;
    out.stats = r.stats;
    out.detail = "obst n=" + std::to_string(p.weights.size()) +
                 " cost=" + std::to_string(r.cost);
    return out;
  }
};

}  // namespace

void register_obst(ProblemRegistry& reg) {
  reg.add(std::make_unique<ObstSolver>());
}

}  // namespace cordon::engine
