// EventCount: the park/wake primitive underneath the scheduler.
//
// An eventcount lets a thread block on an arbitrary predicate ("some
// deque is non-empty", "this job's done flag is set") without a lock
// around the predicate and without a lost-wakeup window.  The waiter
// side is a three-step dance:
//
//   std::uint64_t key = ec.prepare_wait();   // announce intent to sleep
//   if (predicate())  ec.cancel_wait();      // re-check: work appeared
//   else              ec.commit_wait(key);   // sleep until notified
//
// and the producer side publishes its work *before* calling
// notify_one()/notify_all().  Correctness is the classic store-buffer
// (Dekker) argument: the waiter increments the waiter count with
// seq_cst and only then re-checks the predicate; the producer publishes
// work and only then (behind a seq_cst fence) reads the waiter count.
// In the total order of seq_cst operations one of the two must see the
// other's write, so either the waiter's re-check observes the new work
// (and it cancels), or the producer observes waiters > 0 (and it bumps
// the epoch under the mutex, which commit_wait cannot miss: a waiter
// whose key is stale returns immediately, and a waiter already inside
// the condvar is woken by it).
//
// notify_one()/notify_all() are cheap when nobody is parked — one
// seq_cst fence plus one load — which is what makes it affordable to
// call them on the fork hot path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/core/audit.hpp"

namespace cordon::parallel {

class EventCount {
 public:
  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Step 1 of waiting: registers the caller as a waiter and snapshots
  /// the epoch.  After this call the caller MUST re-check its predicate
  /// and then call exactly one of cancel_wait() / commit_wait(key).
  [[nodiscard]] std::uint64_t prepare_wait() noexcept {
    // order: seq_cst — the waiter half of Dekker; must totally order
    // against notify()'s fence + waiter-count read.
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // order: seq_cst — the key must not be reordered before the waiter
    // registration, or a concurrent bump could be missed.
    std::uint64_t key = epoch_.load(std::memory_order_seq_cst);
    // Order the caller's predicate re-check after the waiter-count
    // increment in the seq_cst total order (the waiter half of Dekker).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return key;
  }

  /// The re-check found work: deregister without sleeping.
  void cancel_wait() noexcept {
    // order: release — deregistration must not sink above the caller's
    // predicate re-check; no acquire needed, nothing is read back.
    std::uint64_t prev = waiters_.fetch_sub(1, std::memory_order_release);
    CORDON_DCHECK(prev != 0, "eventcount waiter count underflow");
  }

  /// The re-check found nothing: sleep until an epoch bump newer than
  /// `key`.  Returns deregistered.
  void commit_wait(std::uint64_t key) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        // order: relaxed — the mutex orders this read against the
        // locked epoch bump in notify().
        return epoch_.load(std::memory_order_relaxed) != key;
      });
      // The epoch only ever increments (under this mutex), so a woken
      // waiter must observe a value strictly newer than its key — a
      // smaller one would mean the counter moved backwards.
      // order: relaxed — still under the mutex that guards every bump.
      CORDON_DCHECK(
          epoch_.load(std::memory_order_relaxed) - key < (1ull << 63),
          "eventcount epoch moved backwards");
    }
    // order: release — same contract as cancel_wait's deregistration.
    std::uint64_t prev = waiters_.fetch_sub(1, std::memory_order_release);
    CORDON_DCHECK(prev != 0, "eventcount waiter count underflow");
  }

  /// Wakes one parked waiter (all of them for notify_all).  The caller
  /// must have published the work it is advertising before calling.
  /// No-ops in one fence + one load when no waiter is registered.
  void notify_one() noexcept { notify(false); }
  void notify_all() noexcept { notify(true); }

 private:
  void notify(bool all) noexcept {
    // Producer half of Dekker: order the caller's work-publication
    // before the waiter-count read.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: seq_cst — the producer half of Dekker; pairs with
    // prepare_wait's registration in the seq_cst total order.
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      // The bump must happen under the mutex: commit_wait's predicate
      // runs under it, so a waiter is either not yet inside cv_.wait
      // (its predicate will see the new epoch) or is inside and will be
      // woken by the notify below.
      std::lock_guard<std::mutex> lock(mu_);
      // order: seq_cst — the bump must be visible to prepare_wait's key
      // snapshot; the mutex alone only covers committed waiters.
      epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    if (all)
      cv_.notify_all();
    else
      cv_.notify_one();
  }

  std::atomic<std::uint64_t> waiters_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace cordon::parallel
