// Parallel sequence primitives: map, reduce, scan, pack/filter, merge.
//
// These mirror the ParlayLib primitives the paper's implementation relies
// on.  All primitives are deterministic: reductions use a balanced binary
// recursion tree, so floating-point and other non-associative-in-practice
// monoids give the same result on any number of threads.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cordon::parallel {

inline constexpr std::size_t kSeqThreshold = 2048;

/// reduce(lo, hi, id, f, op): balanced-tree reduction of f(lo..hi) under
/// the associative operator op with identity id.
template <typename T, typename F, typename Op>
T reduce(std::size_t lo, std::size_t hi, T identity, const F& f,
         const Op& op) {
  if (hi <= lo) return identity;
  if (hi - lo <= kSeqThreshold) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, f(i));
    return acc;
  }
  std::size_t mid = lo + (hi - lo) / 2;
  T left{}, right{};
  par_do([&] { left = reduce(lo, mid, identity, f, op); },
         [&] { right = reduce(mid, hi, identity, f, op); });
  return op(left, right);
}

template <typename T>
T reduce_add(const std::vector<T>& v) {
  return reduce(
      0, v.size(), T{}, [&](std::size_t i) { return v[i]; }, std::plus<T>{});
}

/// Index of a minimum of f over [lo, hi) (leftmost minimum; hi if empty).
template <typename F>
std::size_t min_index(std::size_t lo, std::size_t hi, const F& f) {
  if (hi <= lo) return hi;
  if (hi - lo <= kSeqThreshold) {
    std::size_t best = lo;
    for (std::size_t i = lo + 1; i < hi; ++i)
      if (f(i) < f(best)) best = i;
    return best;
  }
  std::size_t mid = lo + (hi - lo) / 2;
  std::size_t l = 0, r = 0;
  par_do([&] { l = min_index(lo, mid, f); },
         [&] { r = min_index(mid, hi, f); });
  return f(r) < f(l) ? r : l;
}

/// Exclusive scan (prefix sums) of v under op in place; returns the total.
/// Blocked two-pass algorithm: per-block sums, scan of sums, local scans.
template <typename T, typename Op>
T scan_exclusive(std::vector<T>& v, T identity, const Op& op) {
  std::size_t n = v.size();
  if (n == 0) return identity;
  if (n <= kSeqThreshold) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      T next = op(acc, v[i]);
      v[i] = acc;
      acc = next;
    }
    return acc;
  }
  std::size_t nblocks = (n + kSeqThreshold - 1) / kSeqThreshold;
  std::vector<T> sums(nblocks, identity);
  parallel_for(0, nblocks, [&](std::size_t b) {
    std::size_t lo = b * kSeqThreshold, hi = std::min(n, lo + kSeqThreshold);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, v[i]);
    sums[b] = acc;
  });
  T total = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }
  parallel_for(0, nblocks, [&](std::size_t b) {
    std::size_t lo = b * kSeqThreshold, hi = std::min(n, lo + kSeqThreshold);
    T acc = sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = op(acc, v[i]);
      v[i] = acc;
      acc = next;
    }
  });
  return total;
}

template <typename T>
T scan_add(std::vector<T>& v) {
  return scan_exclusive(v, T{}, std::plus<T>{});
}

/// pack: keep v[i] where flag(i) is true, preserving order.
template <typename T, typename Flag>
std::vector<T> pack(const std::vector<T>& v, const Flag& flag) {
  std::size_t n = v.size();
  std::vector<std::size_t> offsets(n);
  parallel_for(0, n,
               [&](std::size_t i) { offsets[i] = flag(i) ? 1u : 0u; });
  std::size_t total = scan_add(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flag(i)) out[offsets[i]] = v[i];
  });
  return out;
}

/// filter by predicate on values.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& v, const Pred& pred) {
  return pack(v, [&](std::size_t i) { return pred(v[i]); });
}

/// tabulate: out[i] = f(i) for i in [0, n).
template <typename F>
auto tabulate(std::size_t n, const F& f) {
  using T = decltype(f(std::size_t{0}));
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace cordon::parallel
