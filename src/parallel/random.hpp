// Deterministic pseudo-random generation for workloads and tests.
//
// All workload generators in bench/ and tests/ are seeded, so every run of
// an experiment sees the same input.  splitmix64 gives independent streams
// per index, which lets generators fill arrays with parallel_for without
// any ordering dependence between elements.
#pragma once

#include <cstdint>
#include <vector>

#include "src/parallel/primitives.hpp"

namespace cordon::parallel {

/// Stateless hash-based RNG: hash64(seed, i) is an independent uniform
/// 64-bit value for each (seed, i) pair.
inline std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t hash64(std::uint64_t seed, std::uint64_t i) noexcept {
  return hash64(seed * 0x100000001b3ull + i);
}

/// Uniform value in [0, bound).
inline std::uint64_t uniform(std::uint64_t seed, std::uint64_t i,
                             std::uint64_t bound) noexcept {
  return hash64(seed, i) % bound;
}

/// Uniform double in [0, 1).
inline double uniform_double(std::uint64_t seed, std::uint64_t i) noexcept {
  return static_cast<double>(hash64(seed, i) >> 11) * 0x1.0p-53;
}

/// Random permutation of [0, n) via parallel-friendly Fisher–Yates seeding
/// (sequential swap loop; used for test inputs, not in timed sections).
inline std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                     std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = hash64(seed, i) % i;
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace cordon::parallel
