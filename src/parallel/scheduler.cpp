#include "src/parallel/scheduler.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/fault.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/event_count.hpp"
#include "src/parallel/work_deque.hpp"

// ThreadSanitizer runs link the prebuilt system libstdc++, which is not
// TSAN-instrumented.  The exception_ptr refcount (eh_ptr.cc, compiled
// into libstdc++.so) is one of the few cross-thread handoffs living
// there: the atomic decrement that orders the final free of a thrown
// exception after every catch-handler's reads is invisible to the
// runtime, so any promise::set_exception consumed by future::get on
// another thread — the service's entire typed-failure surface — reports
// a false race between the catch-block reads and the refcount-zero
// free.  Suppress exactly that one runtime function via the default
// suppressions hook (picked up without TSAN_OPTIONS plumbing); races in
// instrumented code still fire.
#if defined(__SANITIZE_THREAD__)
#define CORDON_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CORDON_TSAN_ACTIVE 1
#endif
#endif
#ifdef CORDON_TSAN_ACTIVE
extern "C" const char* __tsan_default_suppressions();
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::__exception_ptr::exception_ptr::_M_release\n";
}
#endif

namespace cordon::parallel {
namespace {

using Deque = WorkDeque<detail::Job>;

// Pause instruction for spin phases: cheaper than yield(), tells the
// core (and SMT sibling) the thread is busy-waiting.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Exponential spin backoff: ~2^min(step,6) pauses, then a yield per
// round once the budget is mostly burnt.
inline void spin_backoff(int step) noexcept {
  if (step > 16) {
    std::this_thread::yield();
    return;
  }
  int pauses = 1 << (step < 6 ? step : 6);
  for (int i = 0; i < pauses; ++i) cpu_relax();
}

// Failed steal sweeps an idle worker performs before parking, and a
// join-waiter performs before parking on its job's completion.  Big
// enough that a wake->more-work burst never pays the park/unpark cost,
// small enough that a quiet pool reaches zero CPU within ~100us.
constexpr int kIdleSpinSweeps = 48;
constexpr int kJoinSpinSweeps = 48;

struct Pool {
  // Reserved deque slots for adopted external threads (ExternalWorkerScope):
  // slots [n, n + kMaxExternal) are allocated up front so thieves can scan
  // a fixed range without synchronizing on slot churn.
  static constexpr std::size_t kMaxExternal = kMaxExternalWorkers;

  std::vector<std::unique_ptr<Deque>> deques;
  std::vector<std::thread> threads;
  std::array<std::atomic<bool>, kMaxExternal> external_claimed{};
  std::atomic<bool> shutting_down{false};
  std::size_t n = 1;
  std::uint64_t generation = 0;  // stamp for worker identities

  // Park/wake protocol state.  Idle workers and join-waiters both park
  // on `sleepers`; `join_parked` counts the join-waiters among them so
  // job completion can skip the wake when nobody waits on a join.
  EventCount sleepers;
  std::atomic<std::uint64_t> join_parked{0};

  Pool(std::size_t workers, bool adopt_caller);
  ~Pool();

  void stop();

  [[nodiscard]] std::size_t slots() const { return n + kMaxExternal; }

  detail::Job* try_steal(std::size_t self, std::uint64_t& rng);
  [[nodiscard]] bool any_work(std::size_t self) const;
  void run_job(detail::Job* job);
  void worker_loop(std::size_t id);
};

thread_local std::size_t t_worker_id = 0;
thread_local bool t_is_worker = false;
thread_local bool t_sequential = false;
// Which pool incarnation the thread-local worker identity belongs to.
// After detail::shutdown_pool a surviving thread's (id, is_worker) pair
// would otherwise alias a deque owned by a thread of the NEXT pool —
// two "owners" on one Chase-Lev deque is undefined — so every identity
// is stamped with the generation that issued it, and push_job/adoption
// compare the stamp against the generation of the pool they actually
// obtained.  A thread with a stale stamp is an outsider again: its
// forks run inline until it re-registers (creates the next pool
// itself, or adopts an external slot).
thread_local std::uint64_t t_worker_generation = 0;

std::atomic<std::uint64_t> g_pool_counter{0};  // generation allocator

// Current worker count for the next/current pool incarnation.  0 means
// "not yet initialized": num_workers() lazily seeds it from the
// environment, set_num_workers() overwrites it between incarnations.
std::atomic<std::size_t> g_num_workers{0};

std::size_t configured_workers() {
  if (const char* env = std::getenv("CORDON_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::size_t configured_deque_capacity() {
  // Test/tuning hook: tiny capacities force the push-overflow fallback
  // (par_do runs the right branch inline), which test_deque_overflow
  // uses to prove overflow degrades to sequential execution instead of
  // losing work.
  if (const char* env = std::getenv("CORDON_DEQUE_CAPACITY")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return Deque::kDefaultCapacity;
}

// The pool is created lazily by the first fork (or ensure_started) and
// lives until process exit — except under detail::shutdown_pool(),
// which destroys it (joining every worker, parked or not) and lets the
// next fork start a fresh one.  A mutex instead of call_once makes that
// restart possible.
std::mutex g_pool_mu;
std::atomic<Pool*> g_pool{nullptr};

Pool& pool(bool adopt_caller = true) {
  // order: acquire — pairs with the release publish below so a caller
  // sees the fully constructed Pool behind the pointer.
  Pool* p = g_pool.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  // order: relaxed — re-check under the mutex that guards all writes.
  p = g_pool.load(std::memory_order_relaxed);
  if (p == nullptr) {
    // num_workers(), not configured_workers(): the public worker count
    // is sticky once read (changeable only through set_num_workers
    // between incarnations), and per-slot state (worker arenas,
    // telemetry slots) is sized from the fixed max_workers() cap, so
    // every incarnation's slot ids stay in bounds.
    p = new Pool(num_workers(), adopt_caller);
    // order: release — publishes the constructed Pool to lock-free
    // readers taking the acquire fast path above.
    g_pool.store(p, std::memory_order_release);
  }
  return *p;
}

std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

Pool::Pool(std::size_t workers, bool adopt_caller) : n(workers) {
  // order: relaxed — a unique stamp is all that is needed; pool
  // visibility is ordered by g_pool's release publish.
  generation = g_pool_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t deque_capacity = configured_deque_capacity();
  deques.reserve(slots());
  for (std::size_t i = 0; i < slots(); ++i)
    deques.push_back(std::make_unique<Deque>(deque_capacity));
  std::size_t first_spawned = 1;
  if (adopt_caller) {
    // Worker 0 is the thread that created the pool (typically main);
    // spawn the remaining n-1 threads.
    t_worker_id = 0;
    t_is_worker = true;
    t_worker_generation = generation;
  } else {
    // Bootstrapped from a transient external thread (e.g. a service
    // dispatcher adopting a slot): conscripting it as worker 0 would
    // permanently shrink the pool when it exits, so spawn a dedicated
    // worker 0 and let the caller claim an external slot like any
    // other thread.
    first_spawned = 0;
  }
  for (std::size_t i = first_spawned; i < n; ++i) {
    threads.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() { stop(); }

void Pool::stop() {
  // Publish the flag, then wake every parked worker so it can observe
  // it.  A worker racing toward commit_wait is safe too: its pre-sleep
  // re-check loads shutting_down after registering as a waiter, so
  // either it sees the flag (and exits) or notify_all sees the waiter
  // (and wakes it) — the same Dekker argument the work path uses.
  // order: seq_cst — must totally order against the workers' pre-park
  // re-check (the same Dekker argument as the work path).
  shutting_down.store(true, std::memory_order_seq_cst);
  sleepers.notify_all();
  for (auto& t : threads) t.join();
  threads.clear();
}

detail::Job* Pool::try_steal(std::size_t self, std::uint64_t& rng) {
  // Victims include the external slots: work forked by adopted threads is
  // stealable by everyone, and vice versa.
  for (std::size_t attempt = 0; attempt < 2 * slots(); ++attempt) {
    std::size_t victim = next_rand(rng) % slots();
    if (victim == self) continue;
    if (detail::Job* job = deques[victim]->steal()) {
      // Flush the probe count once per sweep, not per probe.
      telemetry::count(telemetry::Counter::kSchedStealAttempts, attempt + 1);
      telemetry::count(telemetry::Counter::kSchedSteals);
      telemetry::gauge_add(telemetry::Gauge::kSchedDequeJobs, -1);
      return job;
    }
  }
  telemetry::count(telemetry::Counter::kSchedStealAttempts, 2 * slots());
  return nullptr;
}

bool Pool::any_work(std::size_t self) const {
  for (std::size_t i = 0; i < slots(); ++i) {
    if (i == self) continue;
    if (deques[i]->maybe_nonempty()) return true;
  }
  return false;
}

void Pool::run_job(detail::Job* job) {
  telemetry::count(telemetry::Counter::kSchedJobsRun);
  {
    // One span per job taken off a deque — the stolen/helped half of a
    // par_do.  The inline fast path (pop_job succeeding in par_do) is
    // deliberately not traced: it dominates event volume and carries no
    // scheduling information.
    telemetry::TraceSpan span("steal_run", "sched");
    // A stolen/helped job has no exception rail above this frame:
    // anything unwinding out of run() would tear down the worker (or
    // strand the owner's join).  Mark the whole execution throw-unsafe
    // so cancellation polls and throwing fault injections inside the
    // job body stand down (see core/cancel.hpp).
    core::ThrowGate no_throw(false);
    job->run();
  }
  // A join-waiter may be parked on this job's completion flag.  The
  // fence orders run()'s done-store before the counter read (producer
  // half of the store-buffer argument against wait_for's park path);
  // when nobody is join-parked — the overwhelmingly common case — the
  // cost is this fence plus one load.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // order: seq_cst — producer half of the join-park Dekker handshake;
  // pairs with wait_for's registration.
  if (join_parked.load(std::memory_order_seq_cst) > 0) {
    telemetry::count(telemetry::Counter::kSchedWakes);
    // Chaos: delay (never drop) the wake to widen the park/wake race.
    CORDON_FAULT_DELAY(core::fault::Site::kWorkerWake);
    sleepers.notify_all();
  }
}

void Pool::worker_loop(std::size_t id) {
  t_worker_id = id;
  t_is_worker = true;
  t_worker_generation = generation;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull * (id + 1) + 1;
  // order: acquire — see the stop()-side state (joinable threads) that
  // precedes the flag; the park path re-checks with seq_cst.
  while (!shutting_down.load(std::memory_order_acquire)) {
    detail::Job* job = deques[id]->pop();
    if (job != nullptr)
      telemetry::gauge_add(telemetry::Gauge::kSchedDequeJobs, -1);
    else
      job = try_steal(id, rng);
    if (job != nullptr) {
      run_job(job);
      continue;
    }
    // Bounded spin phase: a burst that re-arrives right after the queue
    // drained is picked up without a park/unpark round-trip.
    for (int spin = 0; spin < kIdleSpinSweeps && job == nullptr; ++spin) {
      // order: acquire — cheap exit probe; the authoritative check is
      // the seq_cst one after prepare_wait.
      if (shutting_down.load(std::memory_order_acquire)) return;
      spin_backoff(spin);
      job = try_steal(id, rng);
    }
    if (job != nullptr) {
      run_job(job);
      continue;
    }
    // Park.  prepare / re-check / commit: after registering as a waiter
    // we re-scan every deque (and the shutdown flag); any push we miss
    // here must itself see our registration and wake us (EventCount's
    // Dekker guarantee), so no wakeup can be lost and an idle pool
    // burns no CPU at all.
    std::uint64_t key = sleepers.prepare_wait();
    // order: seq_cst — the pre-sleep re-check must order after the
    // waiter registration or stop()'s store could be missed.
    if (shutting_down.load(std::memory_order_seq_cst) || any_work(id)) {
      sleepers.cancel_wait();
      continue;
    }
    telemetry::count(telemetry::Counter::kSchedParks);
    telemetry::gauge_add(telemetry::Gauge::kSchedParkedWorkers, 1);
    {
      telemetry::TraceSpan span("park", "sched");
      sleepers.commit_wait(key);
    }
    telemetry::gauge_add(telemetry::Gauge::kSchedParkedWorkers, -1);
  }
}

}  // namespace

namespace detail {

bool push_job(Job* job) {
  if (!t_is_worker) return false;
  Pool& p = pool();
  // A stale identity (this pool incarnation did not issue it) must not
  // touch a deque some current thread owns: run inline instead.  The
  // check is against the pool we actually obtained, so a concurrent
  // restart by another thread cannot slip a fresh pool under a stale
  // id between check and push.
  if (t_worker_generation != p.generation) return false;
  // order: acquire — don't publish onto a deque stop() is tearing down;
  // a stale false is safe (the job just runs inline).
  if (p.shutting_down.load(std::memory_order_acquire)) return false;
  if (!p.deques[t_worker_id]->push(job)) {
    // Full deque: the caller runs the branch inline.
    telemetry::count(telemetry::Counter::kSchedPushOverflows);
    return false;
  }
  telemetry::gauge_add(telemetry::Gauge::kSchedDequeJobs, 1);
  // Publish-then-wake: the push above is the publication, so a parked
  // worker (or join-waiter) can now take the job.  No-op in one fence +
  // one load when nobody is parked.
  telemetry::count(telemetry::Counter::kSchedWakes);
  // Chaos: delay (never drop) the wake to widen the park/wake race.
  CORDON_FAULT_DELAY(core::fault::Site::kWorkerWake);
  p.sleepers.notify_one();
  return true;
}

Job* pop_job() {
  Job* job = pool().deques[t_worker_id]->pop();
  if (job != nullptr)
    telemetry::gauge_add(telemetry::Gauge::kSchedDequeJobs, -1);
  return job;
}

void wait_for(Job* job) {
  Pool& p = pool();
  std::uint64_t rng = 0xdeadbeefcafef00dull + t_worker_id;
  int idle_sweeps = 0;
  // order: acquire — pairs with run()'s release store; seeing done also
  // makes the job's side effects visible to the joiner.
  while (!job->done.load(std::memory_order_acquire)) {
    // Helping: run other jobs so nested joins cannot deadlock.
    Job* other = p.deques[t_worker_id]->pop();
    if (other != nullptr)
      telemetry::gauge_add(telemetry::Gauge::kSchedDequeJobs, -1);
    else
      other = p.try_steal(t_worker_id, rng);
    if (other != nullptr) {
      p.run_job(other);
      idle_sweeps = 0;
      continue;
    }
    if (idle_sweeps < kJoinSpinSweeps) {
      // Exponential backoff before parking: joins usually resolve in
      // microseconds (the thief finishes the stolen branch).
      spin_backoff(idle_sweeps++);
      continue;
    }
    // Park on the job's completion flag.  Progress does not depend on
    // this thread: whoever stole the job can finish the whole subtree
    // alone (its own pops always succeed), so sleeping here is safe.
    // The waiter registers in join_parked AFTER prepare_wait: run_job's
    // completion path reads join_parked behind a seq_cst fence, so if
    // it misses our registration we must see the done flag in the
    // re-check below, and if it sees us it must also see our sleepers
    // registration and bump the epoch (see EventCount).  New pushes
    // wake us too (notify_one), so a parked join-waiter resumes
    // helping when work appears.
    std::uint64_t key = p.sleepers.prepare_wait();
    // order: seq_cst — waiter half of the join-park Dekker handshake
    // against run_job's fence + join_parked read.
    p.join_parked.fetch_add(1, std::memory_order_seq_cst);
    // order: seq_cst — the re-check must order after the registration
    // above, or run_job's done-store could be missed.
    if (job->done.load(std::memory_order_seq_cst) ||
        p.any_work(t_worker_id)) {
      // order: seq_cst — keep deregistration in the same total order as
      // the completion path's read (simple and cold).
      p.join_parked.fetch_sub(1, std::memory_order_seq_cst);
      p.sleepers.cancel_wait();
    } else {
      telemetry::count(telemetry::Counter::kSchedParks);
      telemetry::gauge_add(telemetry::Gauge::kSchedParkedWorkers, 1);
      {
        telemetry::TraceSpan span("join_park", "sched");
        p.sleepers.commit_wait(key);
      }
      telemetry::gauge_add(telemetry::Gauge::kSchedParkedWorkers, -1);
      // order: seq_cst — same contract as the cancel path above.
      p.join_parked.fetch_sub(1, std::memory_order_seq_cst);
    }
    idle_sweeps = 0;
  }
}

bool in_sequential_region() noexcept { return t_sequential; }
void set_sequential_region(bool on) noexcept { t_sequential = on; }

bool adopt_external_worker() {
  // If the pool does not exist yet, start it WITHOUT becoming worker 0
  // (this thread may be transient); fall through to claim a slot.
  Pool& p = pool(/*adopt_caller=*/false);
  // Already a worker (pool or adopted) of THIS pool incarnation; a
  // stale identity from a pre-shutdown_pool incarnation is void and the
  // thread may re-adopt.
  if (t_is_worker && t_worker_generation == p.generation) return false;
  // order: acquire — don't adopt a slot in a pool that is tearing down.
  if (p.shutting_down.load(std::memory_order_acquire)) return false;
  for (std::size_t i = 0; i < Pool::kMaxExternal; ++i) {
    bool expected = false;
    // order: acq_rel — acquire the previous owner's release of the slot
    // (its deque residue), release our claim to the next contender.
    if (p.external_claimed[i].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      t_worker_id = p.n + i;
      t_is_worker = true;
      t_worker_generation = p.generation;
      telemetry::count(telemetry::Counter::kSchedAdoptions);
      telemetry::trace_instant("adopt", "sched");
      // The adopter is about to publish forks onto a fresh deque: give
      // a parked worker a head start on stealing them.
      telemetry::count(telemetry::Counter::kSchedWakes);
      // Chaos: delay (never drop) the wake to widen the park/wake race.
      CORDON_FAULT_DELAY(core::fault::Site::kWorkerWake);
      p.sleepers.notify_one();
      return true;
    }
  }
  return false;  // all slots taken: caller runs inline
}

void release_external_worker() {
  Pool& p = pool();
  assert(t_is_worker && t_worker_id >= p.n);
  std::size_t slot = t_worker_id - p.n;
  t_is_worker = false;
  t_worker_id = 0;
  // order: release — hands the slot (and its deque state) to the next
  // adopter's acquire CAS.
  p.external_claimed[slot].store(false, std::memory_order_release);
}

void shutdown_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  // order: acq_rel — acquire the pool we are about to delete, release
  // the null so lock-free readers stop handing it out.
  Pool* p = g_pool.exchange(nullptr, std::memory_order_acq_rel);
  if (p == nullptr) return;
  delete p;  // ~Pool: set shutting_down, wake every parked worker, join
  // Thread-local worker ids on surviving threads (e.g. the thread that
  // was worker 0) become void: they carry the dead pool's generation
  // stamp, so push_job treats their owners as outsiders (forks run
  // inline) unless the thread itself creates the next pool — which
  // re-registers it as worker 0 — or adopts an external slot.
}

}  // namespace detail

std::size_t num_workers() noexcept {
  // order: acquire — pairs with set_num_workers' release store.
  std::size_t n = g_num_workers.load(std::memory_order_acquire);
  if (n == 0) {
    n = configured_workers();
    if (n > max_workers()) n = max_workers();
    std::size_t expected = 0;
    // Lost race: another thread (or set_num_workers) seeded it first.
    // order: acq_rel — seed exactly once; the loser adopts the winner's
    // value through the acquire side.
    if (!g_num_workers.compare_exchange_strong(expected, n,
                                               std::memory_order_acq_rel))
      n = expected;
  }
  return n;
}

std::size_t max_workers() noexcept {
  // max() of every source a pool size can come from, so set_num_workers
  // can never be asked to exceed it except by explicit clamp: the env
  // configuration, the machine, and the fixed sweep grid {1, 2, 4, 8}
  // the scaling tests restart through on any hardware.
  static const std::size_t cap = [] {
    std::size_t m = configured_workers();
    unsigned hc = std::thread::hardware_concurrency();
    if (hc > m) m = hc;
    if (m < 8) m = 8;
    return m;
  }();
  return cap;
}

bool set_num_workers(std::size_t n) noexcept {
  if (n == 0) return false;
  if (n > max_workers()) n = max_workers();
  std::lock_guard<std::mutex> lock(g_pool_mu);
  // A live pool's deques/threads are sized to its creation-time count;
  // the new size takes effect at the next incarnation only, so refuse
  // while one exists (callers shutdown_pool() first).
  // order: acquire — under g_pool_mu, so relaxed would do; acquire keeps
  // the probe identical to the lock-free readers.
  if (g_pool.load(std::memory_order_acquire) != nullptr) return false;
  // order: release — pairs with num_workers' acquire load.
  g_num_workers.store(n, std::memory_order_release);
  return true;
}

std::size_t worker_id() noexcept { return t_worker_id; }

bool is_worker_thread() noexcept {
  if (!t_is_worker) return false;
  // A stale identity (issued by a pool that shutdown_pool destroyed) must
  // not claim slot ownership: the same slot id may belong to a live
  // thread of the next incarnation.
  // order: acquire — the generation read below must see the incarnation
  // the pointer was published with.
  Pool* p = g_pool.load(std::memory_order_acquire);
  return p != nullptr && p->generation == t_worker_generation;
}

void ensure_started() { (void)pool(); }

}  // namespace cordon::parallel
