#include "src/parallel/scheduler.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cordon::parallel {
namespace {

// ---------------------------------------------------------------------------
// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13).  The owner pushes and
// pops at the bottom; thieves steal from the top.  Capacity is fixed: the
// number of outstanding jobs per worker is bounded by the fork recursion
// depth, which for all algorithms here is O(log n + log #workers).
// ---------------------------------------------------------------------------
class Deque {
 public:
  static constexpr std::size_t kCapacity = 1u << 16;

  bool push(detail::Job* job) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    // Release on the slot itself (not just the fence): the thief's
    // acquire load of the same slot then carries the job's plain fields
    // with it — this is what lets ThreadSanitizer verify the handoff.
    buffer_[static_cast<std::size_t>(b) & kMask].store(
        job, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  detail::Job* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    detail::Job* job =
        buffer_[static_cast<std::size_t>(b) & kMask].load(
            std::memory_order_relaxed);
    if (t == b) {  // last element: race with thieves
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        job = nullptr;  // lost the race
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  detail::Job* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    detail::Job* job =
        buffer_[static_cast<std::size_t>(t) & kMask].load(
            std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to another thief or the owner
    }
    return job;
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<detail::Job*>> buffer_{kCapacity};
};

struct Pool {
  // Reserved deque slots for adopted external threads (ExternalWorkerScope):
  // slots [n, n + kMaxExternal) are allocated up front so thieves can scan
  // a fixed range without synchronizing on slot churn.
  static constexpr std::size_t kMaxExternal = 8;

  std::vector<std::unique_ptr<Deque>> deques;
  std::vector<std::thread> threads;
  std::array<std::atomic<bool>, kMaxExternal> external_claimed{};
  std::atomic<bool> shutting_down{false};
  std::size_t n = 1;

  Pool(std::size_t workers, bool adopt_caller);
  ~Pool();

  [[nodiscard]] std::size_t slots() const { return n + kMaxExternal; }

  detail::Job* try_steal(std::size_t self, std::uint64_t& rng);
  void worker_loop(std::size_t id);
};

thread_local std::size_t t_worker_id = 0;
thread_local bool t_is_worker = false;
thread_local bool t_sequential = false;

std::size_t configured_workers() {
  if (const char* env = std::getenv("CORDON_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

Pool* g_pool = nullptr;
std::once_flag g_pool_once;

std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

Pool::Pool(std::size_t workers, bool adopt_caller) : n(workers) {
  deques.reserve(slots());
  for (std::size_t i = 0; i < slots(); ++i)
    deques.push_back(std::make_unique<Deque>());
  std::size_t first_spawned = 1;
  if (adopt_caller) {
    // Worker 0 is the thread that created the pool (typically main);
    // spawn the remaining n-1 threads.
    t_worker_id = 0;
    t_is_worker = true;
  } else {
    // Bootstrapped from a transient external thread (e.g. a service
    // dispatcher adopting a slot): conscripting it as worker 0 would
    // permanently shrink the pool when it exits, so spawn a dedicated
    // worker 0 and let the caller claim an external slot like any
    // other thread.
    first_spawned = 0;
  }
  for (std::size_t i = first_spawned; i < n; ++i) {
    threads.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  shutting_down.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

detail::Job* Pool::try_steal(std::size_t self, std::uint64_t& rng) {
  // Victims include the external slots: work forked by adopted threads is
  // stealable by everyone, and vice versa.
  for (std::size_t attempt = 0; attempt < 2 * slots(); ++attempt) {
    std::size_t victim = next_rand(rng) % slots();
    if (victim == self) continue;
    if (detail::Job* job = deques[victim]->steal()) return job;
  }
  return nullptr;
}

void Pool::worker_loop(std::size_t id) {
  t_worker_id = id;
  t_is_worker = true;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull * (id + 1) + 1;
  std::size_t idle_spins = 0;
  while (!shutting_down.load(std::memory_order_acquire)) {
    detail::Job* job = deques[id]->pop();
    if (job == nullptr) job = try_steal(id, rng);
    if (job != nullptr) {
      job->run();
      idle_spins = 0;
    } else if (++idle_spins > 256) {
      std::this_thread::yield();
    }
  }
}

Pool& pool(bool adopt_caller = true) {
  std::call_once(g_pool_once, [adopt_caller] {
    g_pool = new Pool(configured_workers(), adopt_caller);
  });
  return *g_pool;
}

}  // namespace

namespace detail {

bool push_job(Job* job) {
  if (!t_is_worker) return false;
  return pool().deques[t_worker_id]->push(job);
}

Job* pop_job() { return pool().deques[t_worker_id]->pop(); }

void wait_for(Job* job) {
  Pool& p = pool();
  std::uint64_t rng = 0xdeadbeefcafef00dull + t_worker_id;
  while (!job->done.load(std::memory_order_acquire)) {
    Job* other = p.deques[t_worker_id]->pop();
    if (other == nullptr) other = p.try_steal(t_worker_id, rng);
    if (other != nullptr) {
      other->run();
    } else {
      std::this_thread::yield();
    }
  }
}

bool in_sequential_region() noexcept { return t_sequential; }
void set_sequential_region(bool on) noexcept { t_sequential = on; }

bool adopt_external_worker() {
  if (t_is_worker) return false;  // already a worker (pool or adopted)
  // If the pool does not exist yet, start it WITHOUT becoming worker 0
  // (this thread may be transient); fall through to claim a slot.
  Pool& p = pool(/*adopt_caller=*/false);
  for (std::size_t i = 0; i < Pool::kMaxExternal; ++i) {
    bool expected = false;
    if (p.external_claimed[i].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      t_worker_id = p.n + i;
      t_is_worker = true;
      return true;
    }
  }
  return false;  // all slots taken: caller runs inline
}

void release_external_worker() {
  Pool& p = pool();
  assert(t_is_worker && t_worker_id >= p.n);
  std::size_t slot = t_worker_id - p.n;
  t_is_worker = false;
  t_worker_id = 0;
  p.external_claimed[slot].store(false, std::memory_order_release);
}

}  // namespace detail

std::size_t num_workers() noexcept {
  static std::size_t n = configured_workers();
  return n;
}

std::size_t worker_id() noexcept { return t_worker_id; }

void ensure_started() { (void)pool(); }

}  // namespace cordon::parallel
