// Fork-join work-stealing scheduler.
//
// This is the runtime substrate for the whole library.  The paper's
// implementation uses ParlayLib's scheduler; we implement the same design
// from scratch: one Chase-Lev deque per worker, binary forking via
// `par_do`, and helping (a thread blocked on a join steals other jobs)
// so that nested parallelism cannot deadlock.
//
// The model matches the binary-forking work-span model of the paper
// (Sec. 2): `par_do(f, g)` runs f inline and exposes g for stealing;
// `parallel_for` is a logarithmic-depth binary split over the range.
//
// Thread count is taken from the environment variable CORDON_NUM_THREADS
// (default: std::thread::hardware_concurrency()).  A `SequentialRegion`
// RAII guard forces inline execution, which is how benchmarks produce the
// "ours (1 thread)" series without restarting the pool.
//
// The thread that first starts the pool via par_do/ensure_started
// becomes worker 0 (when an adopting external thread bootstraps the
// pool instead, a dedicated worker-0 thread is spawned so a transient
// thread is never conscripted); every other thread is an outsider whose
// forks would run inline.  Threads the
// library does not own (service dispatchers, user threads calling into
// solvers) adopt a reserved worker slot with an `ExternalWorkerScope`,
// which gives them a deque of their own so their forks are stealable and
// they help steal while joining — this is what lets an asynchronous
// front-end drive the same nested fork-join substrate as main().
//
// Threading contract (park/wake protocol).  Workers never busy-wait
// indefinitely: a worker that finds no work runs a bounded spin+steal
// phase, then parks on a shared eventcount; a join-waiter in wait_for
// helps (steals and runs other jobs), backs off exponentially, and
// finally parks on the target job's completion flag.  Every site that
// publishes work — detail::push_job on the fork path, external-slot
// adoption, and (transitively) the service dispatcher's batch dispatch
// — wakes a sleeper after publishing, using the eventcount's
// prepare/re-check/commit sequence so no wakeup can be lost between a
// failed steal sweep and parking (see event_count.hpp for the
// store-buffer argument).  Consequences callers may rely on:
//   * An idle pool consumes no CPU: with no outstanding work every
//     worker is parked in the OS (asserted by test_scheduler_stress and
//     measured by bench_sched_wake).
//   * Wake latency is bounded by one condvar round-trip; work bursts
//     arriving within the spin window skip the park entirely.
//   * Destroying the pool (or detail::shutdown_pool) wakes every
//     parked worker and joins it; parked workers never block shutdown.
// Per-worker deques have a fixed capacity (CORDON_DEQUE_CAPACITY,
// default 2^16); a full deque makes push_job return false and par_do
// run the right branch inline, so overflow degrades to sequential
// execution instead of losing work.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <type_traits>
#include <utility>

#include "src/core/cancel.hpp"

namespace cordon::parallel {

namespace detail {

// A unit of stealable work.  Lives on the forking thread's stack for the
// duration of the join, so no heap allocation is needed.
struct Job {
  void (*execute)(Job*) = nullptr;
  std::atomic<bool> done{false};

  void run() {
    execute(this);
    // order: release — publishes the job's side effects to the joiner's
    // acquire load of `done` in wait_until_done.
    done.store(true, std::memory_order_release);
  }
};

// Pushes `job` onto the calling worker's deque; returns false if the
// calling thread is not a pool worker (caller must run the job inline).
bool push_job(Job* job);
// Pops the most recently pushed job from the calling worker's own deque
// if it has not been stolen.  Returns nullptr if it was stolen.
Job* pop_job();
// Executes other jobs while waiting for `job->done` (helping).
void wait_for(Job* job);

bool in_sequential_region() noexcept;
void set_sequential_region(bool on) noexcept;

// Claims / releases one of the reserved external worker slots for the
// calling thread (see ExternalWorkerScope).  adopt returns false when the
// thread is already a worker or every slot is taken.
bool adopt_external_worker();
void release_external_worker();

// Stops the pool: wakes every parked worker, joins all pool threads,
// and destroys the pool object.  The pool must be quiescent (no forks
// in flight, no live ExternalWorkerScope).  The next fork lazily
// creates a fresh pool.  Exists for embedders that must reclaim the
// worker threads and for shutdown-ordering tests; a no-op when the
// pool was never started.
void shutdown_pool();

}  // namespace detail

/// Number of reserved deque slots for adopted external threads
/// (ExternalWorkerScope).  Fixed at pool construction so per-slot state
/// (deques, scratch arenas) can be allocated up front.
inline constexpr std::size_t kMaxExternalWorkers = 8;

/// Number of worker threads in the pool (>= 1), excluding adopted
/// external slots.  Initialized from CORDON_NUM_THREADS (default:
/// hardware_concurrency) on first use; changeable between pool
/// incarnations with set_num_workers().
std::size_t num_workers() noexcept;

/// Upper bound on num_workers() for the lifetime of the process:
/// max(CORDON_NUM_THREADS at first use, hardware_concurrency, 8).
/// Per-worker-slot registries (scratch arenas, telemetry slots, trace
/// rings) are sized from this fixed cap so they stay in bounds across
/// pool restarts at different thread counts.
std::size_t max_workers() noexcept;

/// Sets the pool size used by the NEXT pool incarnation.  Fails (returns
/// false) when a pool is currently live — call detail::shutdown_pool()
/// first — or when n is 0.  Values above max_workers() are clamped.
/// This is how the thread-sweep tests and benches restart the pool at
/// {1, 2, 4, 8} workers inside one process.
bool set_num_workers(std::size_t n) noexcept;

/// Id of the calling worker; pool workers get [0, num_workers()), adopted
/// external threads get [num_workers(), num_workers() + slots), and
/// non-worker threads get 0.
std::size_t worker_id() noexcept;

/// Total number of worker slots: the worker-count cap plus reserved
/// external slots.  worker_id() of any thread for which
/// is_worker_thread() holds is always < worker_slots(), for every pool
/// incarnation regardless of its num_workers().
inline std::size_t worker_slots() noexcept {
  return max_workers() + kMaxExternalWorkers;
}

/// True when the calling thread currently holds a live worker identity of
/// the CURRENT pool incarnation — a pool worker or an adopted external
/// thread.  False for outsiders and for threads whose identity went stale
/// through detail::shutdown_pool.  Per-worker-slot state (e.g. the
/// scratch arenas of core/arena.hpp) keys off this: a slot id is owned by
/// exactly one live thread at a time, and the ownership handoff across a
/// pool restart is synchronized by the pool join / slot CAS.
bool is_worker_thread() noexcept;

/// Starts the pool if not yet running.  Called lazily by par_do; exposed so
/// benchmarks can exclude startup cost from timed sections.
void ensure_started();

/// Runs `left()` and `right()` potentially in parallel; returns when both
/// are complete.  This is the binary "fork" of the work-span model.
template <typename Left, typename Right>
void par_do(Left&& left, Right&& right) {
  if (detail::in_sequential_region()) {
    left();
    right();
    return;
  }
  ensure_started();

  using RightFn = std::remove_reference_t<Right>;
  struct RightJob : detail::Job {
    RightFn* fn;
    static void invoke(detail::Job* j) { (*static_cast<RightJob*>(j)->fn)(); }
  };
  RightJob job;
  job.fn = &right;
  job.execute = &RightJob::invoke;

  if (!detail::push_job(&job)) {
    // Called from a non-pool thread (e.g., main before the pool spun up a
    // worker context): run sequentially inline.
    left();
    right();
    return;
  }
  {
    // While the right branch sits published on the deque, an exception
    // unwinding past this frame would leave a thief pointing at a
    // destroyed stack job: the left branch runs throw-unsafe (see
    // core/cancel.hpp — cancellation polls and throwing fault
    // injections become no-ops).  Restored before the join; once the
    // job is popped or joined nothing dangles.
    core::ThrowGate no_throw(false);
    left();
  }
  if (detail::Job* mine = detail::pop_job(); mine != nullptr) {
    // Not stolen: run inline (the common, allocation-free fast path).
    static_cast<RightJob*>(mine)->run();
  } else {
    detail::wait_for(&job);
  }
}

namespace detail {

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, std::size_t gran,
                      const F& f) {
  if (hi - lo <= gran) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::size_t mid = lo + (hi - lo) / 2;
  par_do([&] { parallel_for_rec(lo, mid, gran, f); },
         [&] { parallel_for_rec(mid, hi, gran, f); });
}

}  // namespace detail

/// Default floor applied by the auto-granularity heuristic: chunks never
/// shrink below this many iterations, which amortizes fork overhead when
/// loop bodies are cheap (the common case for data-parallel inner loops).
inline constexpr std::size_t kDefaultGranularityFloor = 64;

/// The auto-granularity heuristic parallel_for applies when granularity
/// is 0: aim for ~8 chunks per worker (slack for stealing without
/// drowning in fork overhead), clamped up to `floor`.  Exposed so tests
/// can pin the boundary behavior and cutoff tuning can reason about it.
/// Consequences: n <= floor yields granularity >= n (the loop runs
/// sequentially on the caller); the result is always >= 1.
inline std::size_t auto_granularity(
    std::size_t n, std::size_t floor = kDefaultGranularityFloor) noexcept {
  std::size_t chunks = 8 * num_workers();
  std::size_t granularity = n / chunks + 1;
  // Clamp unconditionally: chunks below the floor never amortize their
  // fork, no matter how small the loop.  (An `n > floor` guard here
  // would silently shatter sub-floor loops into per-worker slivers.)
  if (granularity < floor) granularity = floor;
  return granularity;
}

/// Parallelism actually available to the calling thread right now: 1
/// inside a SequentialRegion (forks run inline) or when the pool has a
/// single worker, num_workers() otherwise.  The adaptive sequential
/// cutoffs in the family solvers key off this.
inline std::size_t effective_parallelism() noexcept {
  return detail::in_sequential_region() ? 1 : num_workers();
}

/// Applies f(i) for i in [lo, hi) in parallel.  `granularity` is the
/// largest chunk executed sequentially; 0 applies auto_granularity()
/// with `granularity_floor`.  Loops with few
/// iterations but *expensive* bodies (e.g. dispatching whole DP
/// instances) must lower the floor — with the default, any n <= 64 runs
/// entirely sequentially.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity = 0,
                  std::size_t granularity_floor = kDefaultGranularityFloor) {
  if (hi <= lo) return;
  std::size_t n = hi - lo;
  if (granularity == 0) granularity = auto_granularity(n, granularity_floor);
  if (n <= granularity || detail::in_sequential_region()) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  detail::parallel_for_rec(lo, hi, granularity, f);
}

/// RAII guard: while alive, all par_do/parallel_for on this thread run
/// inline.  Used for the "1 thread" benchmark series and as a fallback in
/// recursive helpers once subproblems are tiny.
class SequentialRegion {
 public:
  SequentialRegion() : prev_(detail::in_sequential_region()) {
    detail::set_sequential_region(true);
  }
  ~SequentialRegion() { detail::set_sequential_region(prev_); }
  SequentialRegion(const SequentialRegion&) = delete;
  SequentialRegion& operator=(const SequentialRegion&) = delete;

 private:
  bool prev_;
};

/// RAII guard: while alive, the calling thread — which must NOT be a pool
/// worker — occupies one of a small number of reserved worker slots, so
/// its par_do/parallel_for calls fork onto the shared pool (stealable by
/// every worker) instead of degrading to inline execution, and the thread
/// itself helps execute jobs while it waits on joins.
///
/// Used by threads the scheduler does not own: the service dispatcher,
/// client threads calling BatchExecutor::run directly, tests.  If the
/// calling thread already is a worker, or all slots are taken, the guard
/// is a no-op and forks simply run inline — so nesting scopes on one
/// thread is safe (the inner scope adopts nothing and releases nothing;
/// BatchExecutor::run relies on this when called from the service's
/// already-adopted dispatcher).  The scope must outlive every fork the
/// thread issues while holding it.
class ExternalWorkerScope {
 public:
  ExternalWorkerScope() : adopted_(detail::adopt_external_worker()) {}
  ~ExternalWorkerScope() {
    if (adopted_) detail::release_external_worker();
  }
  ExternalWorkerScope(const ExternalWorkerScope&) = delete;
  ExternalWorkerScope& operator=(const ExternalWorkerScope&) = delete;

  /// True when a slot was claimed (forks from this thread are stealable).
  [[nodiscard]] bool adopted() const noexcept { return adopted_; }

 private:
  bool adopted_;
};

}  // namespace cordon::parallel
