// Parallel stable merge sort and helpers.
//
// Used for the (i asc, j desc) ordering of match pairs in the parallel LCS
// (Sec. 3), the reinsertion step of the parallel OAT (Appendix A), and by
// tests.  The merge is the classic D&C parallel merge: split the larger
// half at its midpoint, binary-search the split point in the other half,
// recurse on both sides in parallel — O(n) work, O(log^2 n) span.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cordon::parallel {

namespace detail {

inline constexpr std::size_t kSortCutoff = 4096;

template <typename It, typename Out, typename Less>
void merge_par(It a_lo, It a_hi, It b_lo, It b_hi, Out out, const Less& less) {
  std::size_t na = static_cast<std::size_t>(a_hi - a_lo);
  std::size_t nb = static_cast<std::size_t>(b_hi - b_lo);
  if (na + nb <= kSortCutoff) {
    std::merge(a_lo, a_hi, b_lo, b_hi, out, less);
    return;
  }
  // Split the larger run at its midpoint and binary-search the matching
  // split point in the other run.  The bound choice keeps the merge
  // stable: elements of `b` equal to the pivot from `a` must land after
  // it (lower_bound), while elements of `a` equal to a pivot from `b`
  // must land before it (upper_bound).
  It a_mid, b_mid;
  if (na >= nb) {
    a_mid = a_lo + static_cast<std::ptrdiff_t>(na / 2);
    b_mid = std::lower_bound(b_lo, b_hi, *a_mid, less);
  } else {
    b_mid = b_lo + static_cast<std::ptrdiff_t>(nb / 2);
    a_mid = std::upper_bound(a_lo, a_hi, *b_mid, less);
  }
  Out out_mid = out + (a_mid - a_lo) + (b_mid - b_lo);
  par_do([&] { merge_par(a_lo, a_mid, b_lo, b_mid, out, less); },
         [&] { merge_par(a_mid, a_hi, b_mid, b_hi, out_mid, less); });
}

template <typename T, typename Less>
void sort_rec(T* data, T* buffer, std::size_t n, const Less& less,
              bool data_is_dest) {
  if (n <= kSortCutoff) {
    std::stable_sort(data, data + n, less);
    if (!data_is_dest) std::copy(data, data + n, buffer);
    return;
  }
  std::size_t mid = n / 2;
  par_do([&] { sort_rec(data, buffer, mid, less, !data_is_dest); },
         [&] { sort_rec(data + mid, buffer + mid, n - mid, less,
                        !data_is_dest); });
  // After recursion the sorted halves live in the *other* array.
  T* src = data_is_dest ? buffer : data;
  T* dst = data_is_dest ? data : buffer;
  merge_par(src, src + mid, src + mid, src + n, dst, less);
}

}  // namespace detail

/// Stable parallel sort.
template <typename T, typename Less = std::less<T>>
void sort(std::vector<T>& v, Less less = Less{}) {
  if (v.size() <= detail::kSortCutoff) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  std::vector<T> buffer(v.size());
  detail::sort_rec(v.data(), buffer.data(), v.size(), less,
                   /*data_is_dest=*/true);
}

/// Sorted copy.
template <typename T, typename Less = std::less<T>>
std::vector<T> sorted(std::vector<T> v, Less less = Less{}) {
  sort(v, less);
  return v;
}

}  // namespace cordon::parallel
