// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13).  The owner pushes
// and pops at the bottom; thieves steal from the top.
//
// Capacity is fixed at construction (rounded up to a power of two): the
// number of outstanding jobs per worker is bounded by the fork recursion
// depth, which for all algorithms here is O(log n + log #workers), so the
// default never fills in practice.  push() returns false when the deque
// IS full, and the caller must then run the job inline — par_do does
// exactly that, so overflow degrades to sequential execution instead of
// losing work (test_deque_overflow forces this path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cordon::parallel {

template <typename T>
class WorkDeque {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit WorkDeque(std::size_t capacity = kDefaultCapacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        buffer_(capacity_) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Owner only.  False when full: the caller must run `item` inline.
  bool push(T* item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(capacity_)) return false;
    // Release on the slot itself (not just the fence): the thief's
    // acquire load of the same slot then carries the job's plain fields
    // with it — this is what lets ThreadSanitizer verify the handoff.
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner only.  Most recently pushed item, or nullptr if empty or the
  /// last item was lost to a thief.
  T* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {  // last element: race with thieves
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost the race
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread.  Oldest item, or nullptr (empty / lost the race).
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    T* item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to another thief or the owner
    }
    return item;
  }

  /// Racy emptiness probe for the park protocol's pre-sleep re-check: a
  /// true result may already be stale, but a false result is safe to act
  /// on *if* the caller ordered this load after registering as a waiter
  /// (see EventCount) — any push that this probe misses will then see
  /// the registered waiter and wake it.
  [[nodiscard]] bool maybe_nonempty() const noexcept {
    return bottom_.load(std::memory_order_acquire) >
           top_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 2;  // minimum: pop()'s b-1 arithmetic needs >= 2 slots
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<T*>> buffer_;
};

}  // namespace cordon::parallel
