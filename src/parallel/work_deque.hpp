// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13).  The owner pushes
// and pops at the bottom; thieves steal from the top.
//
// Capacity is fixed at construction (rounded up to a power of two): the
// number of outstanding jobs per worker is bounded by the fork recursion
// depth, which for all algorithms here is O(log n + log #workers), so the
// default never fills in practice.  push() returns false when the deque
// IS full, and the caller must then run the job inline — par_do does
// exactly that, so overflow degrades to sequential execution instead of
// losing work (test_deque_overflow forces this path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/audit.hpp"

namespace cordon::parallel {

template <typename T>
class WorkDeque {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit WorkDeque(std::size_t capacity = kDefaultCapacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        buffer_(capacity_) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Owner only.  False when full: the caller must run `item` inline.
  bool push(T* item) {
    // order: relaxed — bottom is owner-private; only this thread writes it.
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // order: acquire — pairs with thieves' seq_cst CAS on top; stale top
    // only makes the full check conservative.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // Thieves only advance top toward bottom, so the owner can never
    // observe more than capacity outstanding or top past bottom.
    CORDON_DCHECK(t <= b, "deque top ran past bottom");
    CORDON_DCHECK(b - t <= static_cast<std::int64_t>(capacity_),
                  "deque holds more than its capacity");
    if (b - t >= static_cast<std::int64_t>(capacity_)) return false;
    // Release on the slot itself (not just the fence): the thief's
    // acquire load of the same slot then carries the job's plain fields
    // with it — this is what lets ThreadSanitizer verify the handoff.
    // order: release — publishes the job's plain fields to the thief's
    // acquire load of this same slot.
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    // order: relaxed — the fence above orders the slot write before this
    // bottom bump for steal()'s fence-separated load pair.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner only.  Most recently pushed item, or nullptr if empty or the
  /// last item was lost to a thief.
  T* pop() {
    // order: relaxed — owner-private read-modify of bottom; the seq_cst
    // fence below is what makes the reservation visible to thieves.
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: relaxed — ordered against thieves by the fence above (the
    // PPoPP'13 Dekker-style handshake on bottom/top).
    std::int64_t t = top_.load(std::memory_order_relaxed);
    // After the owner's reservation, top may be at most one past b
    // (the deque was empty and a thief took nothing more).
    CORDON_DCHECK(t <= b + 1, "deque top overtook the owner's reservation");
    if (t > b) {  // empty
      // order: relaxed — restoring the owner-private reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    // order: relaxed — the owner published this slot itself, so it needs
    // no synchronization to read it back.
    T* item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {  // last element: race with thieves
      // order: seq_cst — arbitration for the final item must totally
      // order against the thief's CAS; relaxed on failure (retry-free).
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // lost the race
      }
      // order: relaxed — owner-private restore after the arbitration.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread.  Oldest item, or nullptr (empty / lost the race).
  T* steal() {
    // order: acquire — a thief must observe slot contents no older than
    // the top index it read.
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: acquire — pairs with the owner's release fence in push();
    // the seq_cst fence between the two loads closes the Dekker race
    // against pop()'s reservation.
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    // order: acquire — pairs with push()'s release store of the slot;
    // carries the job's plain fields across the steal.
    T* item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_acquire);
    // order: seq_cst — claim arbitration against the owner's final-item
    // CAS and other thieves; relaxed on failure (no retry here).
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to another thief or the owner
    }
    return item;
  }

  /// Racy emptiness probe for the park protocol's pre-sleep re-check: a
  /// true result may already be stale, but a false result is safe to act
  /// on *if* the caller ordered this load after registering as a waiter
  /// (see EventCount) — any push that this probe misses will then see
  /// the registered waiter and wake it.
  [[nodiscard]] bool maybe_nonempty() const noexcept {
    // order: acquire — ordered after the caller's waiter registration so
    // a concurrent push either shows up here or sees the waiter.
    return bottom_.load(std::memory_order_acquire) >
           top_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 2;  // minimum: pop()'s b-1 arithmetic needs >= 2 slots
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<T*>> buffer_;
};

}  // namespace cordon::parallel
