#include "src/service/journal.hpp"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/cancel.hpp"
#include "src/core/fault.hpp"
#include "src/core/telemetry.hpp"
#include "src/engine/instance.hpp"

namespace cordon::service {

namespace {

constexpr std::string_view kMagic = "cordon-journal";
constexpr std::string_view kVersion = "v1";

[[noreturn]] void io_fail(const std::string& path, const char* op) {
  telemetry::count(telemetry::Counter::kSessionJournalErrors);
  throw core::SolveError(core::SolveErrorCode::kInternal,
                         std::string("session journal ") + op + " failed: " +
                             path + ": " + std::strerror(errno));
}

void write_all(std::FILE* f, const std::string& path, std::string_view bytes,
               const char* op) {
  // Chaos: a journal write that "fails" must look exactly like a real
  // one — nothing of the record is considered durable.
  if (CORDON_FAULT_CHECK(core::fault::Site::kJournalIo)) {
    errno = EIO;
    io_fail(path, op);
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size())
    io_fail(path, op);
}

void flush(std::FILE* f, const std::string& path, const char* op) {
  if (std::fflush(f) != 0) io_fail(path, op);
}

std::string frame_header(std::string_view keyword, std::uint64_t a,
                         std::string_view payload, std::uint64_t chain,
                         bool with_chain) {
  char buf[160];
  if (with_chain) {
    std::snprintf(buf, sizeof buf,
                  "%.*s %" PRIu64 " %zu %016" PRIx64 " %016" PRIx64 "\n",
                  static_cast<int>(keyword.size()), keyword.data(), a,
                  payload.size(), engine::fnv1a64(payload), chain);
  } else {
    std::snprintf(buf, sizeof buf, "%.*s %zu %016" PRIx64 "\n",
                  static_cast<int>(keyword.size()), keyword.data(),
                  payload.size(), engine::fnv1a64(payload));
  }
  return buf;
}

}  // namespace

SessionJournal::~SessionJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<SessionJournal> SessionJournal::create(
    const std::string& dir, std::uint64_t id, const std::string& kind,
    std::string_view base_text) {
  std::string path =
      dir + "/session-" + std::to_string(id) + ".jnl";
  // "x": exclusive create — a leftover journal for this id means a
  // recovery/creation race or id reuse; refuse rather than clobber.
  std::FILE* f = std::fopen(path.c_str(), "wbx");
  if (f == nullptr) io_fail(path, "create");
  std::unique_ptr<SessionJournal> j(new SessionJournal(std::move(path), f));
  try {
    char head[128];
    std::snprintf(head, sizeof head, "%.*s %.*s %" PRIu64 " %s\n",
                  static_cast<int>(kMagic.size()), kMagic.data(),
                  static_cast<int>(kVersion.size()), kVersion.data(), id,
                  kind.c_str());
    write_all(f, j->path_, head, "header write");
    write_all(f, j->path_, frame_header("base", 0, base_text, 0, false),
              "base write");
    write_all(f, j->path_, base_text, "base write");
    write_all(f, j->path_, "\n", "base write");
    flush(f, j->path_, "base flush");
  } catch (...) {
    // Leave no unusable file behind: creation either yields a journal
    // whose base record is durable, or nothing.
    std::remove(j->path_.c_str());
    throw;
  }
  telemetry::count(telemetry::Counter::kSessionJournalWrites);
  return j;
}

std::unique_ptr<SessionJournal> SessionJournal::open_existing(
    std::string path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) io_fail(path, "open");
  return std::unique_ptr<SessionJournal>(
      new SessionJournal(std::move(path), f));
}

void SessionJournal::append_delta(std::string_view delta_text,
                                  std::uint64_t version,
                                  std::uint64_t chain_hash) {
  write_all(file_, path_, frame_header("delta", version, delta_text,
                                       chain_hash, true),
            "delta write");
  write_all(file_, path_, delta_text, "delta write");
  write_all(file_, path_, "\n", "delta write");
  flush(file_, path_, "delta flush");
  telemetry::count(telemetry::Counter::kSessionJournalWrites);
}

void SessionJournal::remove() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(path_.c_str());
}

std::optional<SessionJournal::Replay> SessionJournal::load(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
  };

  std::string line;
  if (!std::getline(in, line)) {
    set_error("empty journal");
    return std::nullopt;
  }
  Replay out;
  {
    std::istringstream head(line);
    std::string magic, version, kind;
    std::uint64_t id = 0;
    if (!(head >> magic >> version >> id >> kind) || magic != kMagic ||
        version != kVersion) {
      set_error("bad journal header '" + line + "'");
      return std::nullopt;
    }
    out.id = id;
    out.kind = std::move(kind);
  }

  // Reads one framed payload of `n` bytes plus its separator; false on
  // a short read (damaged tail).
  auto read_payload = [&](std::uint64_t n, std::string& dst) {
    dst.resize(n);
    if (n != 0 && !in.read(dst.data(), static_cast<std::streamsize>(n)))
      return false;
    char sep = '\0';
    return in.get(sep) && sep == '\n';
  };
  auto parse_hex = [](const std::string& s, std::uint64_t& v) {
    char* end = nullptr;
    v = std::strtoull(s.c_str(), &end, 16);
    return end != nullptr && *end == '\0' && !s.empty();
  };

  // Base record.
  if (!std::getline(in, line)) {
    set_error("journal ends before base record");
    return std::nullopt;
  }
  {
    std::istringstream head(line);
    std::string keyword, fnv_hex;
    std::uint64_t nbytes = 0, fnv = 0;
    if (!(head >> keyword >> nbytes >> fnv_hex) || keyword != "base" ||
        !parse_hex(fnv_hex, fnv) || !read_payload(nbytes, out.base_text) ||
        engine::fnv1a64(out.base_text) != fnv) {
      set_error("damaged base record");
      return std::nullopt;
    }
  }
  out.valid_bytes = static_cast<std::uint64_t>(in.tellg());

  // Delta records until EOF or first damage.
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate a stray trailing newline
    std::istringstream head(line);
    std::string keyword, fnv_hex, chain_hex;
    std::uint64_t version = 0, nbytes = 0, fnv = 0, chain = 0;
    ReplayDelta d;
    if (!(head >> keyword >> version >> nbytes >> fnv_hex >> chain_hex) ||
        keyword != "delta" || !parse_hex(fnv_hex, fnv) ||
        !parse_hex(chain_hex, chain) || !read_payload(nbytes, d.text) ||
        engine::fnv1a64(d.text) != fnv) {
      out.truncated_tail = true;  // crash mid-write: drop the tail
      break;
    }
    d.version = version;
    d.chain_hash = chain;
    out.deltas.push_back(std::move(d));
    out.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  return out;
}

bool SessionJournal::truncate_file(const std::string& path,
                                   std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

}  // namespace cordon::service
