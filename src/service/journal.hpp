// SessionJournal: the durable, append-only record of one solve session.
//
// One file per session — `<journal_dir>/session-<id>.jnl` — holding the
// base instance's canonical text followed by the lineage's delta texts
// (the PR 8 wire grammar, docs/SESSIONS.md), each framed by a header
// line carrying sizes and FNV-1a hashes:
//
//   cordon-journal v1 <session-id> <kind>
//   base <nbytes> <fnv64hex>
//   <nbytes of canonical instance text>
//   delta <version> <nbytes> <fnv64hex> <chain64hex>
//   <nbytes of delta text (engine::to_string grammar)>
//   ...
//
// Every record is written and flushed under the session's mutex before
// the append's future resolves, so an acknowledged append is always on
// disk.  `chain` is the session's running lineage hash AFTER the delta
// applied; replay verifies it, so a journal cannot silently splice one
// lineage onto another.
//
// Recovery contract (CordonService::recover): load() parses records
// until EOF or the first damaged frame; a damaged or half-written tail
// — the expected state after a crash mid-write — is DROPPED (the file
// is truncated back to the last whole record) and everything before it
// is replayed.  Re-solving the base and re-applying the deltas through
// the normal append path reproduces the uninterrupted lineage
// bit-identically, because the solvers are deterministic.
//
// Failure semantics on the write path: an I/O error (or an injected
// fault::Site::kJournalIo) throws core::SolveError{kInternal}; the
// owning session is then POISONED by the service — its in-memory state
// is one step ahead of the durable state, so further appends must fail
// rather than widen the divergence.  Durability falls back to the last
// flushed record.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cordon::service {

class SessionJournal {
 public:
  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Creates `<dir>/session-<id>.jnl` (refusing to overwrite an
  /// existing file), writes and flushes the header + base record.
  /// Throws core::SolveError{kInternal} on any I/O failure, removing
  /// the partial file.
  static std::unique_ptr<SessionJournal> create(const std::string& dir,
                                                std::uint64_t id,
                                                const std::string& kind,
                                                std::string_view base_text);

  /// Re-binds an existing journal for appending (recovery path).  The
  /// file must already be well-formed up to its current size.
  static std::unique_ptr<SessionJournal> open_existing(std::string path);

  /// Appends and flushes one delta record.  Throws
  /// core::SolveError{kInternal} on I/O failure (or injected fault); the
  /// caller must poison the owning session (see header comment).
  void append_delta(std::string_view delta_text, std::uint64_t version,
                    std::uint64_t chain_hash);

  /// Closes and unlinks the file — a cleanly closed session needs no
  /// recovery.  The object is unusable afterwards.
  void remove();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // --- replay -------------------------------------------------------------

  struct ReplayDelta {
    std::uint64_t version = 0;     // session version AFTER this delta
    std::uint64_t chain_hash = 0;  // lineage hash AFTER this delta
    std::string text;              // delta wire text
  };

  struct Replay {
    std::uint64_t id = 0;
    std::string kind;
    std::string base_text;  // canonical instance text
    std::vector<ReplayDelta> deltas;
    std::uint64_t valid_bytes = 0;  // end offset of the last whole record
    bool truncated_tail = false;    // damage found (and to be dropped)
  };

  /// Parses a journal file.  Returns nullopt (with `error` set) when
  /// even the header/base record is unusable; otherwise returns every
  /// whole record, flagging a damaged tail via `truncated_tail`.
  static std::optional<Replay> load(const std::string& path,
                                    std::string* error);

  /// Truncates `path` to `size` bytes (drops a damaged tail before
  /// re-binding).  Returns false on failure.
  static bool truncate_file(const std::string& path, std::uint64_t size);

 private:
  SessionJournal(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace cordon::service
