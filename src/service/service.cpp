#include "src/service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/core/arena.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/scheduler.hpp"

namespace {

inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace

namespace cordon::service {

CordonService::CordonService(ServiceOptions opt,
                             const engine::ProblemRegistry& reg)
    : opt_(opt), registry_(reg), executor_(reg) {
  if (opt_.max_batch == 0) opt_.max_batch = 1;
  if (opt_.cache_capacity > 0)
    cache_ = std::make_unique<ShardedLruCache<engine::SolveResult>>(
        opt_.cache_capacity, opt_.cache_shards);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

CordonService::~CordonService() { shutdown(); }

std::future<engine::SolveResult> CordonService::submit(engine::Instance inst,
                                                       SubmitOptions sopt) {
  // Reject up front — without taking the global lock, so the cache-hit
  // fast path never contends on mu_ — and again under mu_ before
  // enqueueing, so the post-shutdown contract holds on both paths and
  // does not depend on cache contents.  SolveError derives from
  // std::runtime_error, so the documented pre-taxonomy contract holds.
  if (stopping_.load(std::memory_order_acquire))
    throw core::SolveError(core::SolveErrorCode::kShutdown,
                           "CordonService: submit after shutdown");
  telemetry::TraceSpan submit_span("submit", "service");
  auto submit_t0 = std::chrono::steady_clock::now();
  auto record_submit = [&] {
    telemetry::count(telemetry::Counter::kServiceSubmits);
    telemetry::observe(
        telemetry::Histogram::kServiceSubmitNs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submit_t0)
                .count()));
  };
  // Hash-first probe, one serialization total: the canonical bytes go
  // into a thread-local buffer whose capacity is reused across submits
  // (zero allocation when warm), the 64-bit key hash is computed from
  // those bytes, and a full-hash bucket hit compares candidates by
  // straight memcmp against the same buffer.  A cold probe never
  // compares text at all, and only the miss path copies the buffer into
  // an owned key.
  thread_local std::string canonical_buf;
  engine::canonical_text_into(inst, canonical_buf);
  engine::InstanceKey key;
  key.hash = engine::fnv1a64(canonical_buf);
  if (cache_ != nullptr) {
    auto hit = cache_->get_matching(key.hash, [&](std::string_view stored) {
      return stored == canonical_buf;
    });
    if (hit) {
      // Fast path: completed future, no queue, no dispatcher wake-up,
      // no service-wide lock.  seq_cst increments in this order let
      // stats() (which reads hit_completed_ before submitted_) never
      // observe completed > submitted.
      submitted_.fetch_add(1);
      hit_completed_.fetch_add(1);
      record_submit();
      std::promise<engine::SolveResult> ready;
      ready.set_value(*std::move(hit));
      return ready.get_future();
    }
  }
  // Miss path: the dispatcher needs an owned copy of the canonical text
  // (in-batch coalescing, cache insertion).
  key.text = canonical_buf;
  // A timeout materializes as an absolute deadline on the request's
  // token (created on demand) so the dispatcher and the solver's
  // round-boundary polls see one coherent clock.
  if (sopt.timeout.count() > 0) {
    if (sopt.token == nullptr) sopt.token = std::make_shared<core::CancelToken>();
    sopt.token->set_timeout(sopt.timeout);
  }
  Pending pend{std::move(inst), std::move(key), {},
               std::chrono::steady_clock::now(), std::move(sopt.token)};
  std::future<engine::SolveResult> fut = pend.promise.get_future();
  std::optional<Pending> victim;  // kShedOldest: failed outside mu_
  {
    std::lock_guard lock(mu_);
    if (stopping_.load(std::memory_order_relaxed))
      throw core::SolveError(core::SolveErrorCode::kShutdown,
                             "CordonService: submit after shutdown");
    if (opt_.max_queue != 0 && queue_.size() >= opt_.max_queue) {
      if (opt_.overload_policy == OverloadPolicy::kRejectNew) {
        // Count the attempt, then fail THIS request's future with a
        // retry-after hint; the queue is untouched.
        submitted_.fetch_add(1);
        record_submit();
        fail_pending(pend, core::SolveErrorCode::kShed,
                     "admission queue full (" +
                         std::to_string(queue_.size()) + " waiting)",
                     retry_after_hint(queue_.size()));
        return fut;
      }
      // kShedOldest: evict the head (the request most likely to be
      // stale) to make room; its future fails after we drop the lock.
      victim.emplace(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_.push_back(std::move(pend));
    // Count only successfully admitted requests, while the dispatcher
    // cannot yet have taken this one: submitted >= completed + failed
    // holds at every instant.
    submitted_.fetch_add(1);
  }
  if (victim.has_value()) {
    fail_pending(*victim, core::SolveErrorCode::kShed,
                 "shed by a newer request under overload (shed-oldest)",
                 retry_after_hint(opt_.max_queue));
  } else {
    telemetry::gauge_add(telemetry::Gauge::kServiceQueueDepth, 1);
  }
  record_submit();
  cv_.notify_one();
  return fut;
}

std::chrono::nanoseconds CordonService::retry_after_hint(
    std::size_t queue_depth) const {
  // Batches ahead of a would-be admit × EWMA batch wall time, plus one
  // batching window.  Before any batch has run the EWMA is 0 and the
  // hint degrades to the window alone — still a sane backoff floor.
  std::uint64_t ewma = ewma_batch_ns_.load(std::memory_order_relaxed);
  std::uint64_t batches_ahead =
      (queue_depth + opt_.max_batch - 1) / opt_.max_batch;
  return std::chrono::nanoseconds(ewma * batches_ahead) +
         std::chrono::duration_cast<std::chrono::nanoseconds>(
             opt_.batch_window);
}

void CordonService::fail_pending(Pending& p, core::SolveErrorCode code,
                                 const std::string& msg,
                                 std::chrono::nanoseconds retry_after) {
  p.done = true;
  switch (code) {
    case core::SolveErrorCode::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kServiceShed);
      break;
    case core::SolveErrorCode::kDeadlineExceeded:
      expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kServiceExpired);
      break;
    case core::SolveErrorCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kServiceCancelled);
      break;
    default:
      break;
  }
  telemetry::observe(
      telemetry::Histogram::kServiceRejectWaitNs,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - p.enqueued)
              .count()));
  rejected_failed_.fetch_add(1, std::memory_order_relaxed);
  p.promise.set_exception(
      std::make_exception_ptr(core::SolveError(code, msg, retry_after)));
}

namespace {

/// Cache key text for one session version.  The "cordon-session" prefix
/// is disjoint from every canonical instance header ("cordon-instance"),
/// so version entries can never collide with plain submit() keys; the
/// delta-chain hash makes two lineages that happen to share (base,
/// version) but applied different deltas distinct.
std::string session_version_key(std::uint64_t base_hash, std::uint64_t version,
                                std::uint64_t chain_hash) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "cordon-session %016llx v%llu chain %016llx\n",
                static_cast<unsigned long long>(base_hash),
                static_cast<unsigned long long>(version),
                static_cast<unsigned long long>(chain_hash));
  return buf;
}

}  // namespace

std::uint64_t CordonService::create_session(engine::Instance base) {
  if (stopping_.load(std::memory_order_acquire))
    throw std::runtime_error("CordonService: create_session after shutdown");
  const engine::Solver* solver = registry_.find(base.kind);
  if (solver == nullptr)
    throw std::invalid_argument("CordonService: unknown problem kind '" +
                                base.kind + "'");
  telemetry::TraceSpan span("create_session", "service");

  auto session = std::make_shared<Session>();
  session->solver = solver;
  engine::InstanceKey key = engine::canonical_key(base);
  session->base_hash = key.hash;
  session->chain_hash = key.hash;  // lineage hash seeded from the base

  // Base solve on the calling thread (adopting a pool slot so solver
  // forks are stealable), checkpointing resumable state when the family
  // has any.  Reference mode cross-checks with the oracle and never
  // checkpoints: every append will cold-solve with the oracle too.
  parallel::ExternalWorkerScope adopt;
  engine::SolveResult result;
  if (opt_.use_reference) {
    result = solver->solve_reference(base);
  } else {
    result = solver->solve_checkpoint(base, session->state);
  }
  const std::uint64_t id = next_session_id_.fetch_add(1);
  if (!opt_.journal_dir.empty()) {
    // Durability before registration: either the base record is on disk
    // or create_session throws (SolveError{kInternal}) with no session,
    // no pinned cache entry, and no journal file left behind.
    try {
      session->journal =
          SessionJournal::create(opt_.journal_dir, id, base.kind, key.text);
      journal_writes_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }
  if (cache_ != nullptr)
    cache_->put_pinned(key.hash, key.text, result);
  session->base_key_text = std::move(key.text);
  session->current = std::move(base);

  {
    std::lock_guard lock(sessions_mu_);
    sessions_.emplace(id, std::move(session));
  }
  telemetry::gauge_add(telemetry::Gauge::kServiceOpenSessions, 1);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.sessions_created;
  }
  return id;
}

std::future<engine::SolveResult> CordonService::append(std::uint64_t id,
                                                      engine::Delta delta) {
  std::promise<engine::SolveResult> promise;
  std::future<engine::SolveResult> fut = promise.get_future();
  try {
    if (stopping_.load(std::memory_order_acquire))
      throw core::SolveError(core::SolveErrorCode::kShutdown,
                             "CordonService: append after shutdown");
    std::shared_ptr<Session> session;
    {
      std::lock_guard lock(sessions_mu_);
      auto it = sessions_.find(id);
      if (it != sessions_.end()) session = it->second;
    }
    if (session == nullptr)
      throw core::SolveError(core::SolveErrorCode::kInvalidArgument,
                             "CordonService: no such session " +
                                 std::to_string(id));
    telemetry::TraceSpan span("append", "service");
    std::lock_guard lock(session->mu);
    promise.set_value(append_locked(*session, delta));
  } catch (const core::SolveError&) {
    promise.set_exception(std::current_exception());
  } catch (const std::invalid_argument& e) {
    // Hostile delta: wrong kind, over-cap ops, base-version mismatch.
    promise.set_exception(std::make_exception_ptr(core::SolveError(
        core::SolveErrorCode::kInvalidArgument, e.what())));
  } catch (const std::bad_alloc&) {
    promise.set_exception(std::make_exception_ptr(core::SolveError(
        core::SolveErrorCode::kInternal, "allocation failed")));
  } catch (const std::exception& e) {
    promise.set_exception(std::make_exception_ptr(
        core::SolveError(core::SolveErrorCode::kInternal, e.what())));
  }
  return fut;
}

engine::SolveResult CordonService::append_locked(Session& s,
                                                 const engine::Delta& delta,
                                                 bool journal_write) {
  if (s.poisoned)
    throw core::SolveError(
        core::SolveErrorCode::kInternal,
        "session poisoned by an earlier journal failure; re-create it (or "
        "recover()) to resume from the last durable version");
  if (delta.base_version != s.version)
    throw std::invalid_argument(
        "CordonService: delta base version " +
        std::to_string(delta.base_version) + " does not match session version " +
        std::to_string(s.version));
  // Validates caps and applies all-or-nothing: a hostile delta leaves
  // the session's current instance (and version) untouched.
  engine::apply_delta_inplace(s.current, delta);
  // Version linearity: whatever path serves this append below — resume,
  // cold fallback, version-cache hit, or a solver throw unwinding — the
  // lineage must leave exactly one version ahead of where it was.
  [[maybe_unused]] const std::uint64_t version_before = s.version;
  CORDON_AUDIT_SCOPE(CORDON_DCHECK(s.version == version_before + 1,
                                   "session version linearity broken"));
  ++s.version;
  // Lineage hash: fold each applied delta's text into the running hash.
  // Not a canonical form (order matters — deliberately: lineages are
  // linear), just a collision-resistant cache discriminator.
  const std::string delta_text = engine::to_string(delta);
  s.chain_hash = (s.chain_hash * 1099511628211ull) ^
                 engine::fnv1a64(delta_text);
  telemetry::count(telemetry::Counter::kSessionAppends);
  // Durability: the record is flushed under the session mutex before
  // the append's future can resolve.  On a write failure the in-memory
  // lineage is already one step ahead of disk, so the session is
  // poisoned — later appends fail fast instead of widening the gap —
  // and recover() resumes from the last durable version.  (Replay
  // passes journal_write = false: the records already exist.)
  if (journal_write && s.journal != nullptr) {
    try {
      s.journal->append_delta(delta_text, s.version, s.chain_hash);
      journal_writes_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      s.poisoned = true;
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }

  const std::string vkey = session_version_key(s.base_hash, s.version,
                                               s.chain_hash);
  const std::uint64_t vhash = engine::fnv1a64(vkey);

  // Solver forks must be stealable whether this lands on the resume
  // path (cheap, sequential) or the cold-fallback parallel solve.
  parallel::ExternalWorkerScope adopt;
  engine::SolveResult result;
  bool resumed = false;
  if (opt_.use_reference) {
    result = s.solver->solve_reference(s.current);
    s.state = nullptr;
  } else if (!s.solver->incremental() && cache_ != nullptr) {
    // Non-incremental family: a replayed lineage can serve this version
    // straight from the cache (there is no state to advance).
    if (auto hit = cache_->get(vhash, vkey)) {
      std::lock_guard lock(stats_mu_);
      ++stats_.session_appends;
      return *std::move(hit);
    }
    engine::ResumeResult rr = s.solver->resume(s.state, s.current, delta);
    result = std::move(rr.result);
  } else {
    // Incremental family (or cache off): always run resume — advancing
    // the checkpoint is the cheap path, and a cache hit could not hand
    // back the state the NEXT append needs.
    engine::ResumeResult rr = s.solver->resume(s.state, s.current, delta);
    s.state = std::move(rr.state);
    resumed = rr.resumed;
    result = std::move(rr.result);
  }
  telemetry::count(resumed ? telemetry::Counter::kSessionResumes
                           : telemetry::Counter::kSessionColdSolves);
  ++(resumed ? s.resumes : s.cold_solves);
  if (cache_ != nullptr) cache_->put(vhash, vkey, result);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.session_appends;
    ++(resumed ? stats_.session_resumes : stats_.session_cold_solves);
  }
  return result;
}

void CordonService::close_session(std::uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Wait out any in-flight append so the unpin below cannot race a
  // resume still reading the session.
  {
    std::lock_guard lock(session->mu);
    // A cleanly closed session needs no recovery: drop its journal so
    // recover() cannot resurrect a lineage the caller ended on purpose.
    if (session->journal != nullptr) {
      session->journal->remove();
      session->journal.reset();
    }
  }
  if (cache_ != nullptr)
    cache_->unpin(session->base_hash, session->base_key_text);
  telemetry::gauge_add(telemetry::Gauge::kServiceOpenSessions, -1);
  std::lock_guard lock(stats_mu_);
  ++stats_.sessions_closed;
}

std::optional<SessionInfo> CordonService::session_info(
    std::uint64_t id) const {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    session = it->second;
  }
  std::lock_guard lock(session->mu);
  SessionInfo info;
  info.id = id;
  info.kind = session->current.kind;
  info.version = session->version;
  info.base_hash = session->base_hash;
  info.incremental = session->solver->incremental();
  info.resumes = session->resumes;
  info.cold_solves = session->cold_solves;
  info.poisoned = session->poisoned;
  info.durable = session->journal != nullptr;
  return info;
}

std::vector<std::uint64_t> CordonService::recover() {
  if (opt_.journal_dir.empty())
    throw std::logic_error(
        "CordonService::recover requires ServiceOptions::journal_dir");
  std::vector<std::uint64_t> recovered;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(opt_.journal_dir)) {
    if (entry.path().extension() == ".jnl") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  for (const auto& file : files) {
    std::string error;
    auto replay = SessionJournal::load(file.string(), &error);
    if (!replay.has_value()) {
      // Unusable base: skip, leave the file for inspection.
      std::fprintf(stderr, "cordon recover: skipping %s: %s\n",
                   file.string().c_str(), error.c_str());
      continue;
    }
    // Re-create the lineage through the NORMAL solve/append paths (the
    // solvers are deterministic, so the recovered results are
    // bit-identical to the uninterrupted run's); the journal itself is
    // not re-written — the records already exist.
    engine::Instance base;
    try {
      base = engine::from_string(replay->base_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cordon recover: skipping %s: bad base: %s\n",
                   file.string().c_str(), e.what());
      continue;
    }
    const engine::Solver* solver = registry_.find(base.kind);
    if (solver == nullptr) {
      std::fprintf(stderr, "cordon recover: skipping %s: unknown kind\n",
                   file.string().c_str());
      continue;
    }
    auto session = std::make_shared<Session>();
    session->solver = solver;
    engine::InstanceKey key;
    key.text = replay->base_text;
    key.hash = engine::fnv1a64(key.text);
    session->base_hash = key.hash;
    session->chain_hash = key.hash;
    parallel::ExternalWorkerScope adopt;
    engine::SolveResult base_result;
    if (opt_.use_reference) {
      base_result = solver->solve_reference(base);
    } else {
      base_result = solver->solve_checkpoint(base, session->state);
    }
    if (cache_ != nullptr) cache_->put_pinned(key.hash, key.text, base_result);
    session->base_key_text = key.text;
    session->current = std::move(base);
    bool ok = true;
    for (const SessionJournal::ReplayDelta& rd : replay->deltas) {
      engine::Delta delta;
      try {
        delta = engine::delta_from_string(rd.text);
        (void)append_locked(*session, delta, /*journal_write=*/false);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cordon recover: %s: replay stopped at v%llu: %s\n",
                     file.string().c_str(),
                     static_cast<unsigned long long>(rd.version), e.what());
        ok = false;
        break;
      }
      if (session->version != rd.version ||
          session->chain_hash != rd.chain_hash) {
        std::fprintf(stderr,
                     "cordon recover: %s: lineage hash mismatch at v%llu\n",
                     file.string().c_str(),
                     static_cast<unsigned long long>(rd.version));
        ok = false;
        break;
      }
    }
    if (!ok) {
      // Keep what replayed cleanly but freeze the lineage: the journal
      // holds records the in-memory session does not, so appending
      // would fork history.
      session->poisoned = true;
    }
    if (replay->truncated_tail && ok) {
      // Drop the damaged half-record so the re-bound journal appends
      // after the last whole one.
      if (!SessionJournal::truncate_file(file.string(),
                                         replay->valid_bytes)) {
        std::fprintf(stderr, "cordon recover: %s: cannot drop damaged tail\n",
                     file.string().c_str());
        session->poisoned = true;
      }
    }
    if (!session->poisoned)
      session->journal = SessionJournal::open_existing(file.string());
    // Same id as the original process: journals are the id authority.
    const std::uint64_t id = replay->id;
    // Keep fresh ids above every recovered one.
    std::uint64_t next = next_session_id_.load();
    while (next <= id && !next_session_id_.compare_exchange_weak(next, id + 1)) {
    }
    {
      std::lock_guard lock(sessions_mu_);
      sessions_.emplace(id, std::move(session));
    }
    telemetry::gauge_add(telemetry::Gauge::kServiceOpenSessions, 1);
    telemetry::count(telemetry::Counter::kSessionsRecovered);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.sessions_created;
      ++stats_.sessions_recovered;
    }
    recovered.push_back(id);
  }
  return recovered;
}

void CordonService::shutdown() {
  {
    std::lock_guard lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // One thread joins; concurrent callers block here until it is done.
  std::call_once(join_once_, [this] {
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

ServiceStats CordonService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(stats_mu_);
    out = stats_;
  }
  // hit_completed_ before submitted_ (see submit's fast path): a hit's
  // submit increment is always visible by the time its completion is.
  out.completed += hit_completed_.load();
  out.failed += rejected_failed_.load();  // typed rejections count as failed
  out.submitted = submitted_.load();
  out.shed = shed_.load();
  out.expired = expired_.load();
  out.cancelled = cancelled_.load();
  out.journal_writes = journal_writes_.load();
  out.journal_errors = journal_errors_.load();
  if (cache_ != nullptr) out.cache = cache_->stats();
  return out;
}

std::size_t CordonService::cache_size() const {
  return cache_ == nullptr ? 0 : cache_->size();
}

namespace {

// Renders a StatField array under a metric-name prefix.  The field list
// is the same one the human-readable stream operators iterate
// (core::StatField::to_json_fields), so the two surfaces cannot drift:
// monotonic fields become `<prefix><name>_total` counters, the rest
// plain gauges (e.g. cordon_service_cache_hit_rate).
template <std::size_t N>
void write_stat_fields(std::ostream& os, const char* prefix,
                       const std::array<core::StatField, N>& fields) {
  for (const core::StatField& f : fields) {
    os << prefix << f.name << (f.monotonic ? "_total" : "") << ' ';
    if (f.integral) {
      os << static_cast<std::uint64_t>(f.value);
    } else {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.10g", f.value);
      os << buf;
    }
    os << '\n';
  }
}

}  // namespace

std::string CordonService::metrics_text() const {
  std::ostringstream os;
  telemetry::write_prometheus(os, telemetry::snapshot());

  ServiceStats s = stats();
  os << "# HELP cordon_service_submitted_total Requests admitted by submit()\n"
        "# TYPE cordon_service_submitted_total counter\n"
     << "cordon_service_submitted_total " << s.submitted << '\n'
     << "# HELP cordon_service_completed_total Futures fulfilled with a "
        "result\n# TYPE cordon_service_completed_total counter\n"
     << "cordon_service_completed_total " << s.completed << '\n'
     << "# HELP cordon_service_failed_total Futures fulfilled with an "
        "exception\n# TYPE cordon_service_failed_total counter\n"
     << "cordon_service_failed_total " << s.failed << '\n'
     << "# HELP cordon_service_largest_batch Most requests in one dispatch\n"
        "# TYPE cordon_service_largest_batch gauge\n"
     << "cordon_service_largest_batch " << s.largest_batch << '\n'
     << "# HELP cordon_service_cache_entries Result-cache entries resident\n"
        "# TYPE cordon_service_cache_entries gauge\n"
     << "cordon_service_cache_entries " << cache_size() << '\n'
     << "# HELP cordon_service_cache_pinned Cache entries pinned by open "
        "sessions\n# TYPE cordon_service_cache_pinned gauge\n"
     << "cordon_service_cache_pinned "
     << (cache_ == nullptr ? 0 : cache_->pinned()) << '\n'
     << "# HELP cordon_service_sessions_created_total Sessions created\n"
        "# TYPE cordon_service_sessions_created_total counter\n"
     << "cordon_service_sessions_created_total " << s.sessions_created << '\n'
     << "# HELP cordon_service_sessions_closed_total Sessions closed\n"
        "# TYPE cordon_service_sessions_closed_total counter\n"
     << "cordon_service_sessions_closed_total " << s.sessions_closed << '\n'
     << "# HELP cordon_service_session_appends_total Session appends "
        "fulfilled\n# TYPE cordon_service_session_appends_total counter\n"
     << "cordon_service_session_appends_total " << s.session_appends << '\n'
     << "# HELP cordon_service_session_resumes_total Appends served from "
        "saved solver state\n"
        "# TYPE cordon_service_session_resumes_total counter\n"
     << "cordon_service_session_resumes_total " << s.session_resumes << '\n'
     << "# HELP cordon_service_session_cold_solves_total Appends served by "
        "a cold solve\n"
        "# TYPE cordon_service_session_cold_solves_total counter\n"
     << "cordon_service_session_cold_solves_total " << s.session_cold_solves
     << '\n'
     << "# HELP cordon_service_shed_requests_total Requests rejected by "
        "admission control\n"
        "# TYPE cordon_service_shed_requests_total counter\n"
     << "cordon_service_shed_requests_total " << s.shed << '\n'
     << "# HELP cordon_service_expired_requests_total Requests that blew "
        "(or provably would blow) their deadline\n"
        "# TYPE cordon_service_expired_requests_total counter\n"
     << "cordon_service_expired_requests_total " << s.expired << '\n'
     << "# HELP cordon_service_cancelled_requests_total Requests failed "
        "through their cancel token\n"
        "# TYPE cordon_service_cancelled_requests_total counter\n"
     << "cordon_service_cancelled_requests_total " << s.cancelled << '\n'
     << "# HELP cordon_service_journal_writes_total Durable session-journal "
        "records written\n"
        "# TYPE cordon_service_journal_writes_total counter\n"
     << "cordon_service_journal_writes_total " << s.journal_writes << '\n'
     << "# HELP cordon_service_journal_errors_total Session-journal write "
        "failures (poisons the session)\n"
        "# TYPE cordon_service_journal_errors_total counter\n"
     << "cordon_service_journal_errors_total " << s.journal_errors << '\n'
     << "# HELP cordon_service_sessions_recovered_total Sessions rebuilt "
        "from journals by recover()\n"
        "# TYPE cordon_service_sessions_recovered_total counter\n"
     << "cordon_service_sessions_recovered_total " << s.sessions_recovered
     << '\n';
  write_stat_fields(os, "cordon_service_cache_", s.cache.to_json_fields());
  write_stat_fields(os, "cordon_service_queue_", s.queue.to_json_fields());
  return os.str();
}

void CordonService::dispatch_loop() {
  // Adopt an external worker slot for the thread's lifetime so the
  // executor's forks below go onto the shared pool instead of running
  // inline on this thread.
  parallel::ExternalWorkerScope adopt;

  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained

    // Batching window: dispatch when the batch is full or the oldest
    // request has waited long enough (shutdown flushes immediately).
    //
    // Flush-latency contract (test: RequestsNeverWaitASecondBatchWindow):
    // no request ever waits a second full window.  A request that
    // arrives while we sleep in wait_until below is either already in
    // queue_ when we re-acquire the lock after the timeout — so it
    // rides this very flush — or it missed this batch entirely, in
    // which case the next loop iteration computes a fresh deadline from
    // that request's OWN enqueue time (and if the dispatcher was busy
    // in run_batch meanwhile, that deadline is already partly or fully
    // elapsed, so wait_until returns immediately).  The one deadline
    // per batch therefore bounds every request's queue wait by
    // batch_window plus the batch ahead of it, never 2x the window.
    auto deadline = queue_.front().enqueued + opt_.batch_window;
    {
      telemetry::TraceSpan window_span("batch_window", "service");
      while (!stopping_ && queue_.size() < opt_.max_batch &&
             cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }

    std::size_t take = std::min(queue_.size(), opt_.max_batch);
    telemetry::gauge_add(telemetry::Gauge::kServiceQueueDepth,
                         -static_cast<std::int64_t>(take));
    std::vector<Pending> taken;
    taken.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      taken.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    run_batch(std::move(taken));
    lock.lock();
  }
}

void CordonService::run_batch(std::vector<Pending> taken) {
  try {
    run_batch_impl(taken);
    return;
  } catch (...) {
    // The dispatcher outlives any single batch: an allocation failure
    // (genuine or injected at fault::Site::kArenaAlloc during assembly)
    // fails this batch's unfulfilled futures typed, and the loop goes on
    // serving.  Nothing here re-throws.
    std::exception_ptr typed;
    try {
      throw;
    } catch (const core::SolveError&) {
      typed = std::current_exception();
    } catch (const std::bad_alloc&) {
      typed = std::make_exception_ptr(core::SolveError(
          core::SolveErrorCode::kInternal, "batch dispatch: allocation failed"));
    } catch (const std::exception& e) {
      typed = std::make_exception_ptr(core::SolveError(
          core::SolveErrorCode::kInternal,
          std::string("batch dispatch failed: ") + e.what()));
    } catch (...) {  // lint: allow-catch (converted to SolveError above)
      typed = std::make_exception_ptr(core::SolveError(
          core::SolveErrorCode::kInternal, "batch dispatch failed"));
    }
    std::uint64_t failed = 0;
    for (Pending& p : taken) {
      if (p.done) continue;
      p.done = true;
      ++failed;
      p.promise.set_exception(typed);
    }
    telemetry::count(telemetry::Counter::kEngineSolveErrors, failed);
    std::lock_guard lock(stats_mu_);
    stats_.failed += failed;
  }
}

void CordonService::run_batch_impl(std::vector<Pending>& taken) {
  auto dispatched_at = std::chrono::steady_clock::now();
  telemetry::count(telemetry::Counter::kServiceBatches);
  telemetry::TraceSpan batch_span("batch", "service");
  batch_span.arg("requests", taken.size());
  for (const Pending& p : taken)
    telemetry::observe(
        telemetry::Histogram::kServiceQueueWaitNs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                dispatched_at - p.enqueued)
                .count()));

  // Pre-dispatch triage: fail requests that were cancelled while they
  // queued, whose deadline already passed, or whose remaining budget is
  // under a quarter of the typical batch solve time (EWMA) — solving
  // those would burn a pool slot to produce a result nobody can use.
  {
    const std::uint64_t now_ns = steady_now_ns();
    const std::uint64_t ewma = ewma_batch_ns_.load(std::memory_order_relaxed);
    for (Pending& p : taken) {
      if (p.token == nullptr) continue;
      if (p.token->cancelled()) {
        fail_pending(p, core::SolveErrorCode::kCancelled,
                     "cancelled while queued");
        continue;
      }
      const std::uint64_t dl = p.token->deadline_ns();
      if (dl == 0) continue;
      if (dl <= now_ns) {
        fail_pending(p, core::SolveErrorCode::kDeadlineExceeded,
                     "deadline expired while queued");
      } else if (ewma != 0 && dl - now_ns < ewma / 4) {
        fail_pending(p, core::SolveErrorCode::kDeadlineExceeded,
                     "deadline unmeetable: less than a quarter of the "
                     "typical batch solve time remains");
      }
    }
  }

  // Batch assembly runs inside one arena epoch of the dispatcher's
  // worker arena (the dispatcher holds an adopted slot for its
  // lifetime): every transient array below — groups, probe outcomes,
  // the instance batch itself — bumps the same retained chunks each
  // dispatch instead of round-tripping the global allocator.  The
  // vectors must not outlive `assembly` (they don't: promises are
  // fulfilled before this function returns).
  core::Arena& arena = core::worker_arena();
  core::ArenaScope assembly(arena);

  // Coalesce: identical canonical texts collapse onto the first
  // occurrence (the "leader"); one solve serves every duplicate.
  struct Group {
    std::size_t leader;
    std::vector<std::size_t> members;
  };
  core::ArenaVector<Group> groups{core::ArenaAllocator<Group>(arena)};
  {
    std::unordered_map<std::string_view, std::size_t> by_text;  // -> group
    for (std::size_t i = 0; i < taken.size(); ++i) {
      if (taken[i].done) continue;  // already failed in triage
      if (taken[i].token != nullptr) {
        // Cancellable requests get a singleton group: coalescing one
        // under another member's token would let THAT client's cancel
        // (or deadline) fail a future it does not own.
        groups.push_back(Group{i, {i}});
        continue;
      }
      auto [it, fresh] =
          by_text.try_emplace(std::string_view(taken[i].key.text),
                              groups.size());
      if (fresh) groups.push_back(Group{i, {}});
      groups[it->second].members.push_back(i);
    }
  }

  // A prior batch may have cached a key after these requests were
  // admitted: re-probe before solving.  (So a queued request probes the
  // cache twice — once in submit, once here; CacheStats counts probes.)
  struct Outcome {
    const Group* group;
    engine::SolveResult result;      // when ok
    std::exception_ptr error;        // when !ok
    core::SolveErrorCode code;       // meaningful when error != nullptr
  };
  core::ArenaVector<Outcome> outcomes{core::ArenaAllocator<Outcome>(arena)};
  core::ArenaVector<const Group*> to_solve{
      core::ArenaAllocator<const Group*>(arena)};
  core::ArenaVector<engine::Instance> batch{
      core::ArenaAllocator<engine::Instance>(arena)};
  // Aligned with `batch`: the executor installs each leader's token for
  // the solver's round-boundary polls.
  core::ArenaVector<core::CancelToken*> tokens{
      core::ArenaAllocator<core::CancelToken*>(arena)};
  std::size_t live = 0;  // requests surviving triage
  for (const Group& g : groups) {
    live += g.members.size();
    const engine::InstanceKey& key = taken[g.leader].key;
    if (cache_ != nullptr) {
      if (auto hit = cache_->get(key.hash, key.text)) {
        outcomes.push_back(
            {&g, *std::move(hit), nullptr, core::SolveErrorCode::kInternal});
        continue;
      }
    }
    to_solve.push_back(&g);
    tokens.push_back(taken[g.leader].token.get());
    // The leader's instance is not read again (key/text live separately
    // in Pending::key), so hand it to the executor without copying.
    batch.push_back(std::move(taken[g.leader].inst));
  }

  telemetry::count(telemetry::Counter::kServiceCoalesced,
                   live - groups.size());
  batch_span.arg("groups", groups.size());

  engine::BatchReport report;
  if (!batch.empty()) {
    auto solve_t0 = std::chrono::steady_clock::now();
    report = executor_.run(
        batch, {.parallel = true,
                .use_reference = opt_.use_reference,
                .tokens = std::span<core::CancelToken* const>(tokens.data(),
                                                              tokens.size())});
    const auto solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - solve_t0)
            .count());
    telemetry::observe(telemetry::Histogram::kServiceBatchSolveNs, solve_ns);
    // EWMA of batch wall time, feeding the retry-after hint and the
    // early-shed test.  Single writer (the dispatcher), so a relaxed
    // load/store pair is a plain read-modify-write.
    const std::uint64_t old = ewma_batch_ns_.load(std::memory_order_relaxed);
    ewma_batch_ns_.store(old == 0 ? solve_ns : (3 * old + solve_ns) / 4,
                         std::memory_order_relaxed);
  }

  std::uint64_t completed = 0, failed = 0;
  for (std::size_t i = 0; i < to_solve.size(); ++i) {
    const Group& g = *to_solve[i];
    const engine::BatchItem& item = report.items[i];
    if (item.ok) {
      if (cache_ != nullptr) {
        engine::InstanceKey& key = taken[g.leader].key;
        cache_->put(key.hash, std::move(key.text), item.result);
      }
      outcomes.push_back(
          {&g, item.result, nullptr, core::SolveErrorCode::kInternal});
    } else {
      outcomes.push_back({&g, {},
                          std::make_exception_ptr(core::SolveError(
                              item.code, item.kind + ": " + item.error)),
                          item.code});
    }
  }
  for (const Outcome& o : outcomes) {
    std::uint64_t n = o.group->members.size();
    if (o.error == nullptr) {
      completed += n;
      continue;
    }
    failed += n;
    // Mid-solve aborts land here (queue-time ones went through
    // fail_pending): keep the per-category counters whole either way.
    if (o.code == core::SolveErrorCode::kCancelled) {
      cancelled_.fetch_add(n, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kServiceCancelled, n);
    } else if (o.code == core::SolveErrorCode::kDeadlineExceeded) {
      expired_.fetch_add(n, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kServiceExpired, n);
    }
  }

  // Counters first, futures second: a client that wakes from get() must
  // observe stats that already include its own request.
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, taken.size());
    stats_.coalesced += live - groups.size();
    stats_.completed += completed;
    stats_.failed += failed;
    stats_.solver += report.stats;
    for (const Pending& p : taken)
      stats_.queue.add(
          std::chrono::duration<double>(dispatched_at - p.enqueued).count());
  }

  for (const Outcome& o : outcomes) {
    for (std::size_t m : o.group->members) {
      taken[m].done = true;
      if (o.error == nullptr)
        taken[m].promise.set_value(o.result);
      else
        taken[m].promise.set_exception(o.error);
    }
  }
}

}  // namespace cordon::service
