#include "src/service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/core/arena.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/scheduler.hpp"

namespace cordon::service {

CordonService::CordonService(ServiceOptions opt,
                             const engine::ProblemRegistry& reg)
    : opt_(opt), registry_(reg), executor_(reg) {
  if (opt_.max_batch == 0) opt_.max_batch = 1;
  if (opt_.cache_capacity > 0)
    cache_ = std::make_unique<ShardedLruCache<engine::SolveResult>>(
        opt_.cache_capacity, opt_.cache_shards);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

CordonService::~CordonService() { shutdown(); }

std::future<engine::SolveResult> CordonService::submit(engine::Instance inst) {
  // Reject up front — without taking the global lock, so the cache-hit
  // fast path never contends on mu_ — and again under mu_ before
  // enqueueing, so the post-shutdown contract holds on both paths and
  // does not depend on cache contents.
  if (stopping_.load(std::memory_order_acquire))
    throw std::runtime_error("CordonService: submit after shutdown");
  telemetry::TraceSpan submit_span("submit", "service");
  auto submit_t0 = std::chrono::steady_clock::now();
  auto record_submit = [&] {
    telemetry::count(telemetry::Counter::kServiceSubmits);
    telemetry::observe(
        telemetry::Histogram::kServiceSubmitNs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submit_t0)
                .count()));
  };
  // Hash-first probe, one serialization total: the canonical bytes go
  // into a thread-local buffer whose capacity is reused across submits
  // (zero allocation when warm), the 64-bit key hash is computed from
  // those bytes, and a full-hash bucket hit compares candidates by
  // straight memcmp against the same buffer.  A cold probe never
  // compares text at all, and only the miss path copies the buffer into
  // an owned key.
  thread_local std::string canonical_buf;
  engine::canonical_text_into(inst, canonical_buf);
  engine::InstanceKey key;
  key.hash = engine::fnv1a64(canonical_buf);
  if (cache_ != nullptr) {
    auto hit = cache_->get_matching(key.hash, [&](std::string_view stored) {
      return stored == canonical_buf;
    });
    if (hit) {
      // Fast path: completed future, no queue, no dispatcher wake-up,
      // no service-wide lock.  seq_cst increments in this order let
      // stats() (which reads hit_completed_ before submitted_) never
      // observe completed > submitted.
      submitted_.fetch_add(1);
      hit_completed_.fetch_add(1);
      record_submit();
      std::promise<engine::SolveResult> ready;
      ready.set_value(*std::move(hit));
      return ready.get_future();
    }
  }
  // Miss path: the dispatcher needs an owned copy of the canonical text
  // (in-batch coalescing, cache insertion).
  key.text = canonical_buf;
  Pending pend{std::move(inst), std::move(key), {},
               std::chrono::steady_clock::now()};
  std::future<engine::SolveResult> fut = pend.promise.get_future();
  {
    std::lock_guard lock(mu_);
    if (stopping_.load(std::memory_order_relaxed))
      throw std::runtime_error("CordonService: submit after shutdown");
    queue_.push_back(std::move(pend));
    // Count only successfully admitted requests, while the dispatcher
    // cannot yet have taken this one: submitted >= completed + failed
    // holds at every instant.
    submitted_.fetch_add(1);
  }
  telemetry::gauge_add(telemetry::Gauge::kServiceQueueDepth, 1);
  record_submit();
  cv_.notify_one();
  return fut;
}

namespace {

/// Cache key text for one session version.  The "cordon-session" prefix
/// is disjoint from every canonical instance header ("cordon-instance"),
/// so version entries can never collide with plain submit() keys; the
/// delta-chain hash makes two lineages that happen to share (base,
/// version) but applied different deltas distinct.
std::string session_version_key(std::uint64_t base_hash, std::uint64_t version,
                                std::uint64_t chain_hash) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "cordon-session %016llx v%llu chain %016llx\n",
                static_cast<unsigned long long>(base_hash),
                static_cast<unsigned long long>(version),
                static_cast<unsigned long long>(chain_hash));
  return buf;
}

}  // namespace

std::uint64_t CordonService::create_session(engine::Instance base) {
  if (stopping_.load(std::memory_order_acquire))
    throw std::runtime_error("CordonService: create_session after shutdown");
  const engine::Solver* solver = registry_.find(base.kind);
  if (solver == nullptr)
    throw std::invalid_argument("CordonService: unknown problem kind '" +
                                base.kind + "'");
  telemetry::TraceSpan span("create_session", "service");

  auto session = std::make_shared<Session>();
  session->solver = solver;
  engine::InstanceKey key = engine::canonical_key(base);
  session->base_hash = key.hash;
  session->chain_hash = key.hash;  // lineage hash seeded from the base

  // Base solve on the calling thread (adopting a pool slot so solver
  // forks are stealable), checkpointing resumable state when the family
  // has any.  Reference mode cross-checks with the oracle and never
  // checkpoints: every append will cold-solve with the oracle too.
  parallel::ExternalWorkerScope adopt;
  engine::SolveResult result;
  if (opt_.use_reference) {
    result = solver->solve_reference(base);
  } else {
    result = solver->solve_checkpoint(base, session->state);
  }
  if (cache_ != nullptr)
    cache_->put_pinned(key.hash, key.text, result);
  session->base_key_text = std::move(key.text);
  session->current = std::move(base);

  const std::uint64_t id = next_session_id_.fetch_add(1);
  {
    std::lock_guard lock(sessions_mu_);
    sessions_.emplace(id, std::move(session));
  }
  telemetry::gauge_add(telemetry::Gauge::kServiceOpenSessions, 1);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.sessions_created;
  }
  return id;
}

std::future<engine::SolveResult> CordonService::append(std::uint64_t id,
                                                      engine::Delta delta) {
  std::promise<engine::SolveResult> promise;
  std::future<engine::SolveResult> fut = promise.get_future();
  try {
    if (stopping_.load(std::memory_order_acquire))
      throw std::runtime_error("CordonService: append after shutdown");
    std::shared_ptr<Session> session;
    {
      std::lock_guard lock(sessions_mu_);
      auto it = sessions_.find(id);
      if (it != sessions_.end()) session = it->second;
    }
    if (session == nullptr)
      throw std::invalid_argument("CordonService: no such session " +
                                  std::to_string(id));
    telemetry::TraceSpan span("append", "service");
    std::lock_guard lock(session->mu);
    promise.set_value(append_locked(*session, delta));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return fut;
}

engine::SolveResult CordonService::append_locked(Session& s,
                                                 const engine::Delta& delta) {
  if (delta.base_version != s.version)
    throw std::invalid_argument(
        "CordonService: delta base version " +
        std::to_string(delta.base_version) + " does not match session version " +
        std::to_string(s.version));
  // Validates caps and applies all-or-nothing: a hostile delta leaves
  // the session's current instance (and version) untouched.
  engine::apply_delta_inplace(s.current, delta);
  // Version linearity: whatever path serves this append below — resume,
  // cold fallback, version-cache hit, or a solver throw unwinding — the
  // lineage must leave exactly one version ahead of where it was.
  [[maybe_unused]] const std::uint64_t version_before = s.version;
  CORDON_AUDIT_SCOPE(CORDON_DCHECK(s.version == version_before + 1,
                                   "session version linearity broken"));
  ++s.version;
  // Lineage hash: fold each applied delta's text into the running hash.
  // Not a canonical form (order matters — deliberately: lineages are
  // linear), just a collision-resistant cache discriminator.
  s.chain_hash = (s.chain_hash * 1099511628211ull) ^
                 engine::fnv1a64(engine::to_string(delta));
  telemetry::count(telemetry::Counter::kSessionAppends);

  const std::string vkey = session_version_key(s.base_hash, s.version,
                                               s.chain_hash);
  const std::uint64_t vhash = engine::fnv1a64(vkey);

  // Solver forks must be stealable whether this lands on the resume
  // path (cheap, sequential) or the cold-fallback parallel solve.
  parallel::ExternalWorkerScope adopt;
  engine::SolveResult result;
  bool resumed = false;
  if (opt_.use_reference) {
    result = s.solver->solve_reference(s.current);
    s.state = nullptr;
  } else if (!s.solver->incremental() && cache_ != nullptr) {
    // Non-incremental family: a replayed lineage can serve this version
    // straight from the cache (there is no state to advance).
    if (auto hit = cache_->get(vhash, vkey)) {
      std::lock_guard lock(stats_mu_);
      ++stats_.session_appends;
      return *std::move(hit);
    }
    engine::ResumeResult rr = s.solver->resume(s.state, s.current, delta);
    result = std::move(rr.result);
  } else {
    // Incremental family (or cache off): always run resume — advancing
    // the checkpoint is the cheap path, and a cache hit could not hand
    // back the state the NEXT append needs.
    engine::ResumeResult rr = s.solver->resume(s.state, s.current, delta);
    s.state = std::move(rr.state);
    resumed = rr.resumed;
    result = std::move(rr.result);
  }
  telemetry::count(resumed ? telemetry::Counter::kSessionResumes
                           : telemetry::Counter::kSessionColdSolves);
  ++(resumed ? s.resumes : s.cold_solves);
  if (cache_ != nullptr) cache_->put(vhash, vkey, result);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.session_appends;
    ++(resumed ? stats_.session_resumes : stats_.session_cold_solves);
  }
  return result;
}

void CordonService::close_session(std::uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Wait out any in-flight append so the unpin below cannot race a
  // resume still reading the session.
  { std::lock_guard lock(session->mu); }
  if (cache_ != nullptr)
    cache_->unpin(session->base_hash, session->base_key_text);
  telemetry::gauge_add(telemetry::Gauge::kServiceOpenSessions, -1);
  std::lock_guard lock(stats_mu_);
  ++stats_.sessions_closed;
}

std::optional<SessionInfo> CordonService::session_info(
    std::uint64_t id) const {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    session = it->second;
  }
  std::lock_guard lock(session->mu);
  SessionInfo info;
  info.id = id;
  info.kind = session->current.kind;
  info.version = session->version;
  info.base_hash = session->base_hash;
  info.incremental = session->solver->incremental();
  info.resumes = session->resumes;
  info.cold_solves = session->cold_solves;
  return info;
}

void CordonService::shutdown() {
  {
    std::lock_guard lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // One thread joins; concurrent callers block here until it is done.
  std::call_once(join_once_, [this] {
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

ServiceStats CordonService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(stats_mu_);
    out = stats_;
  }
  // hit_completed_ before submitted_ (see submit's fast path): a hit's
  // submit increment is always visible by the time its completion is.
  out.completed += hit_completed_.load();
  out.submitted = submitted_.load();
  if (cache_ != nullptr) out.cache = cache_->stats();
  return out;
}

std::size_t CordonService::cache_size() const {
  return cache_ == nullptr ? 0 : cache_->size();
}

namespace {

// Renders a StatField array under a metric-name prefix.  The field list
// is the same one the human-readable stream operators iterate
// (core::StatField::to_json_fields), so the two surfaces cannot drift:
// monotonic fields become `<prefix><name>_total` counters, the rest
// plain gauges (e.g. cordon_service_cache_hit_rate).
template <std::size_t N>
void write_stat_fields(std::ostream& os, const char* prefix,
                       const std::array<core::StatField, N>& fields) {
  for (const core::StatField& f : fields) {
    os << prefix << f.name << (f.monotonic ? "_total" : "") << ' ';
    if (f.integral) {
      os << static_cast<std::uint64_t>(f.value);
    } else {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.10g", f.value);
      os << buf;
    }
    os << '\n';
  }
}

}  // namespace

std::string CordonService::metrics_text() const {
  std::ostringstream os;
  telemetry::write_prometheus(os, telemetry::snapshot());

  ServiceStats s = stats();
  os << "# HELP cordon_service_submitted_total Requests admitted by submit()\n"
        "# TYPE cordon_service_submitted_total counter\n"
     << "cordon_service_submitted_total " << s.submitted << '\n'
     << "# HELP cordon_service_completed_total Futures fulfilled with a "
        "result\n# TYPE cordon_service_completed_total counter\n"
     << "cordon_service_completed_total " << s.completed << '\n'
     << "# HELP cordon_service_failed_total Futures fulfilled with an "
        "exception\n# TYPE cordon_service_failed_total counter\n"
     << "cordon_service_failed_total " << s.failed << '\n'
     << "# HELP cordon_service_largest_batch Most requests in one dispatch\n"
        "# TYPE cordon_service_largest_batch gauge\n"
     << "cordon_service_largest_batch " << s.largest_batch << '\n'
     << "# HELP cordon_service_cache_entries Result-cache entries resident\n"
        "# TYPE cordon_service_cache_entries gauge\n"
     << "cordon_service_cache_entries " << cache_size() << '\n'
     << "# HELP cordon_service_cache_pinned Cache entries pinned by open "
        "sessions\n# TYPE cordon_service_cache_pinned gauge\n"
     << "cordon_service_cache_pinned "
     << (cache_ == nullptr ? 0 : cache_->pinned()) << '\n'
     << "# HELP cordon_service_sessions_created_total Sessions created\n"
        "# TYPE cordon_service_sessions_created_total counter\n"
     << "cordon_service_sessions_created_total " << s.sessions_created << '\n'
     << "# HELP cordon_service_sessions_closed_total Sessions closed\n"
        "# TYPE cordon_service_sessions_closed_total counter\n"
     << "cordon_service_sessions_closed_total " << s.sessions_closed << '\n'
     << "# HELP cordon_service_session_appends_total Session appends "
        "fulfilled\n# TYPE cordon_service_session_appends_total counter\n"
     << "cordon_service_session_appends_total " << s.session_appends << '\n'
     << "# HELP cordon_service_session_resumes_total Appends served from "
        "saved solver state\n"
        "# TYPE cordon_service_session_resumes_total counter\n"
     << "cordon_service_session_resumes_total " << s.session_resumes << '\n'
     << "# HELP cordon_service_session_cold_solves_total Appends served by "
        "a cold solve\n"
        "# TYPE cordon_service_session_cold_solves_total counter\n"
     << "cordon_service_session_cold_solves_total " << s.session_cold_solves
     << '\n';
  write_stat_fields(os, "cordon_service_cache_", s.cache.to_json_fields());
  write_stat_fields(os, "cordon_service_queue_", s.queue.to_json_fields());
  return os.str();
}

void CordonService::dispatch_loop() {
  // Adopt an external worker slot for the thread's lifetime so the
  // executor's forks below go onto the shared pool instead of running
  // inline on this thread.
  parallel::ExternalWorkerScope adopt;

  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained

    // Batching window: dispatch when the batch is full or the oldest
    // request has waited long enough (shutdown flushes immediately).
    //
    // Flush-latency contract (test: RequestsNeverWaitASecondBatchWindow):
    // no request ever waits a second full window.  A request that
    // arrives while we sleep in wait_until below is either already in
    // queue_ when we re-acquire the lock after the timeout — so it
    // rides this very flush — or it missed this batch entirely, in
    // which case the next loop iteration computes a fresh deadline from
    // that request's OWN enqueue time (and if the dispatcher was busy
    // in run_batch meanwhile, that deadline is already partly or fully
    // elapsed, so wait_until returns immediately).  The one deadline
    // per batch therefore bounds every request's queue wait by
    // batch_window plus the batch ahead of it, never 2x the window.
    auto deadline = queue_.front().enqueued + opt_.batch_window;
    {
      telemetry::TraceSpan window_span("batch_window", "service");
      while (!stopping_ && queue_.size() < opt_.max_batch &&
             cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }

    std::size_t take = std::min(queue_.size(), opt_.max_batch);
    telemetry::gauge_add(telemetry::Gauge::kServiceQueueDepth,
                         -static_cast<std::int64_t>(take));
    std::vector<Pending> taken;
    taken.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      taken.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    run_batch(std::move(taken));
    lock.lock();
  }
}

void CordonService::run_batch(std::vector<Pending> taken) {
  auto dispatched_at = std::chrono::steady_clock::now();
  telemetry::count(telemetry::Counter::kServiceBatches);
  telemetry::TraceSpan batch_span("batch", "service");
  batch_span.arg("requests", taken.size());
  for (const Pending& p : taken)
    telemetry::observe(
        telemetry::Histogram::kServiceQueueWaitNs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                dispatched_at - p.enqueued)
                .count()));

  // Batch assembly runs inside one arena epoch of the dispatcher's
  // worker arena (the dispatcher holds an adopted slot for its
  // lifetime): every transient array below — groups, probe outcomes,
  // the instance batch itself — bumps the same retained chunks each
  // dispatch instead of round-tripping the global allocator.  The
  // vectors must not outlive `assembly` (they don't: promises are
  // fulfilled before this function returns).
  core::Arena& arena = core::worker_arena();
  core::ArenaScope assembly(arena);

  // Coalesce: identical canonical texts collapse onto the first
  // occurrence (the "leader"); one solve serves every duplicate.
  struct Group {
    std::size_t leader;
    std::vector<std::size_t> members;
  };
  core::ArenaVector<Group> groups{core::ArenaAllocator<Group>(arena)};
  {
    std::unordered_map<std::string_view, std::size_t> by_text;  // -> group
    for (std::size_t i = 0; i < taken.size(); ++i) {
      auto [it, fresh] =
          by_text.try_emplace(std::string_view(taken[i].key.text),
                              groups.size());
      if (fresh) groups.push_back(Group{i, {}});
      groups[it->second].members.push_back(i);
    }
  }

  // A prior batch may have cached a key after these requests were
  // admitted: re-probe before solving.  (So a queued request probes the
  // cache twice — once in submit, once here; CacheStats counts probes.)
  struct Outcome {
    const Group* group;
    engine::SolveResult result;      // when ok
    std::exception_ptr error;        // when !ok
  };
  core::ArenaVector<Outcome> outcomes{core::ArenaAllocator<Outcome>(arena)};
  core::ArenaVector<const Group*> to_solve{
      core::ArenaAllocator<const Group*>(arena)};
  core::ArenaVector<engine::Instance> batch{
      core::ArenaAllocator<engine::Instance>(arena)};
  for (const Group& g : groups) {
    const engine::InstanceKey& key = taken[g.leader].key;
    if (cache_ != nullptr) {
      if (auto hit = cache_->get(key.hash, key.text)) {
        outcomes.push_back({&g, *std::move(hit), nullptr});
        continue;
      }
    }
    to_solve.push_back(&g);
    // The leader's instance is not read again (key/text live separately
    // in Pending::key), so hand it to the executor without copying.
    batch.push_back(std::move(taken[g.leader].inst));
  }

  telemetry::count(telemetry::Counter::kServiceCoalesced,
                   taken.size() - groups.size());
  batch_span.arg("groups", groups.size());

  engine::BatchReport report;
  if (!batch.empty()) {
    auto solve_t0 = std::chrono::steady_clock::now();
    report = executor_.run(
        batch, {.parallel = true, .use_reference = opt_.use_reference});
    telemetry::observe(
        telemetry::Histogram::kServiceBatchSolveNs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - solve_t0)
                .count()));
  }

  std::uint64_t completed = 0, failed = 0;
  for (std::size_t i = 0; i < to_solve.size(); ++i) {
    const Group& g = *to_solve[i];
    const engine::BatchItem& item = report.items[i];
    if (item.ok) {
      if (cache_ != nullptr) {
        engine::InstanceKey& key = taken[g.leader].key;
        cache_->put(key.hash, std::move(key.text), item.result);
      }
      outcomes.push_back({&g, item.result, nullptr});
    } else {
      outcomes.push_back(
          {&g, {},
           std::make_exception_ptr(std::runtime_error(
               "cordon service: " + item.kind + ": " + item.error))});
    }
  }
  for (const Outcome& o : outcomes) {
    std::uint64_t n = o.group->members.size();
    (o.error == nullptr ? completed : failed) += n;
  }

  // Counters first, futures second: a client that wakes from get() must
  // observe stats that already include its own request.
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    stats_.largest_batch = std::max(stats_.largest_batch, taken.size());
    stats_.coalesced += taken.size() - groups.size();
    stats_.completed += completed;
    stats_.failed += failed;
    stats_.solver += report.stats;
    for (const Pending& p : taken)
      stats_.queue.add(
          std::chrono::duration<double>(dispatched_at - p.enqueued).count());
  }

  for (const Outcome& o : outcomes) {
    for (std::size_t m : o.group->members) {
      if (o.error == nullptr)
        taken[m].promise.set_value(o.result);
      else
        taken[m].promise.set_exception(o.error);
    }
  }
}

}  // namespace cordon::service
