// CordonService: the always-on asynchronous front door of the engine.
//
// Where BatchExecutor must be handed a whole queue up front and blocks
// until it drains, CordonService accepts `submit(Instance)` from any
// number of client threads and returns a std::future<SolveResult>
// immediately.  Behind the API:
//
//   1. submit() canonicalizes the instance (engine::canonical_key) and
//      probes the sharded LRU result cache — a hit completes the future
//      on the spot without touching the solver or the queue.
//   2. A miss appends the request to the admission queue.  A dedicated
//      dispatcher thread coalesces pending requests into batches —
//      dispatching when `max_batch` requests are waiting or when the
//      oldest has waited `batch_window`, whichever comes first — and
//      identical instances inside a batch collapse to one solve.
//   3. The batch runs through BatchExecutor on the shared work-stealing
//      pool (the dispatcher adopts an external worker slot, so nested
//      intra-instance parallelism works exactly as from main()), results
//      are inserted into the cache, and every waiting future completes.
//
// Threading guarantees: submit(), stats(), cache_size(), and shutdown()
// are all safe to call concurrently from any thread.  Futures may be
// waited on from any thread.  A solver failure (unknown kind, solver
// threw) surfaces as an exception on that request's future; it never
// takes down the service, is never cached, and other requests in the
// same batch are unaffected.  The destructor drains every already
// submitted request before returning, so no future is ever abandoned.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/cancel.hpp"
#include "src/core/dp_stats.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/service/journal.hpp"
#include "src/service/sharded_cache.hpp"

namespace cordon::service {

/// What submit() does when the admission queue is at max_queue.
enum class OverloadPolicy {
  /// Fail the NEW request with SolveError{kShed} carrying a retry-after
  /// hint (clients that can back off should).
  kRejectNew,
  /// Admit the new request and fail the OLDEST queued one with
  /// SolveError{kShed} (freshest-work-wins; suits deadline-bound
  /// clients whose oldest request is the most likely to be useless).
  kShedOldest,
};

struct ServiceOptions {
  /// Largest batch handed to the executor in one dispatch.
  std::size_t max_batch = 64;
  /// How long the dispatcher lets the oldest pending request wait for
  /// company before dispatching a partial batch.  Upper-bounds every
  /// request's queue wait at one window (plus the batch executing ahead
  /// of it) — a request can never be skipped into a second window.
  std::chrono::microseconds batch_window{500};
  /// Total result-cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 16;
  /// Solve with the naive oracle instead of the optimized algorithm
  /// (cross-validation workloads).
  bool use_reference = false;
  /// Admission-queue bound; 0 = unbounded (no overload protection).
  std::size_t max_queue = 0;
  /// Overload behavior when the queue is full (see OverloadPolicy).
  OverloadPolicy overload_policy = OverloadPolicy::kRejectNew;
  /// Directory for durable per-session journals (created sessions write
  /// a journal, recover() replays them).  Empty = journaling off.  The
  /// directory must already exist.
  std::string journal_dir;
};

/// Per-request options for submit().
struct SubmitOptions {
  /// Relative deadline, applied as an absolute steady-clock deadline at
  /// submit time; zero = none.  An expired request fails its future
  /// with SolveError{kDeadlineExceeded} — at dispatch when it already
  /// blew (or provably will blow) the deadline, or mid-solve at the
  /// next solver round boundary.
  std::chrono::nanoseconds timeout{0};
  /// Caller-held cancellation handle (token->cancel() fails the future
  /// with SolveError{kCancelled} at the next round boundary).  Created
  /// on demand when only `timeout` is set; must outlive the future's
  /// completion when supplied.
  std::shared_ptr<core::CancelToken> token;
};

/// Lifetime counters, readable at any time via CordonService::stats().
struct ServiceStats {
  std::uint64_t submitted = 0;       // every submit() call
  std::uint64_t completed = 0;       // futures fulfilled with a result
  std::uint64_t failed = 0;          // futures fulfilled with an exception
  std::uint64_t batches = 0;         // dispatcher batches executed
  std::uint64_t coalesced = 0;       // duplicate requests merged in-batch
  std::size_t largest_batch = 0;     // most requests in one dispatch
  std::uint64_t sessions_created = 0;    // create_session() successes
  std::uint64_t sessions_closed = 0;     // close_session() calls
  std::uint64_t session_appends = 0;     // append() futures fulfilled OK
  std::uint64_t session_resumes = 0;     // appends served from saved state
  std::uint64_t session_cold_solves = 0; // appends that solved from scratch
  std::uint64_t shed = 0;            // requests rejected by admission control
  std::uint64_t expired = 0;         // deadline blown or unmeetable
  std::uint64_t cancelled = 0;       // failed through their cancel token
  std::uint64_t journal_writes = 0;  // durable journal records written
  std::uint64_t journal_errors = 0;  // journal failures (session poisoned)
  std::uint64_t sessions_recovered = 0;  // sessions rebuilt by recover()
  core::CacheStats cache;            // hits / misses / evictions
  core::QueueStats queue;            // submit -> dispatch wait times
  core::BatchStats solver;           // aggregate over executed solves
};

/// Monitoring snapshot of one open session (CordonService::session_info).
struct SessionInfo {
  std::uint64_t id = 0;
  std::string kind;
  std::uint64_t version = 0;      // deltas applied so far (base = 0)
  std::uint64_t base_hash = 0;    // canonical hash of the base instance
  bool incremental = false;       // family capability (not per-append fate)
  std::uint64_t resumes = 0;      // appends served from saved state
  std::uint64_t cold_solves = 0;  // appends that fell back to a cold solve
  bool poisoned = false;          // journal failure froze the lineage
  bool durable = false;           // session carries a live journal
};

class CordonService {
 public:
  /// Starts the dispatcher thread.  The registry must outlive the
  /// service.
  explicit CordonService(ServiceOptions opt = {},
                         const engine::ProblemRegistry& reg =
                             engine::builtin_registry());

  /// Drains all pending requests, then joins the dispatcher.
  ~CordonService();

  CordonService(const CordonService&) = delete;
  CordonService& operator=(const CordonService&) = delete;

  /// Asynchronous admission: returns immediately.  Cache hits complete
  /// the returned future before submit() returns; misses complete once
  /// the dispatcher's batch containing them finishes.  Throws
  /// core::SolveError{kShutdown} (a std::runtime_error) if called after
  /// shutdown().  Every other failure — hostile instance, deadline,
  /// cancellation, overload shedding, solver fault — resolves the
  /// RETURNED FUTURE with a core::SolveError; no other exception type
  /// ever comes out of a submit() future.
  [[nodiscard]] std::future<engine::SolveResult> submit(engine::Instance inst,
                                                       SubmitOptions sopt);

  [[nodiscard]] std::future<engine::SolveResult> submit(
      engine::Instance inst) {
    return submit(std::move(inst), SubmitOptions{});
  }

  /// Replays every journal in options().journal_dir, re-creating the
  /// recorded sessions (same ids, same versions — bit-identical results
  /// to the uninterrupted lineage, the solvers being deterministic) and
  /// re-binding their journals for further appends.  A damaged tail
  /// record — the normal shape of a crash mid-append — is dropped and
  /// the session resumes from the last durable version; a journal whose
  /// base is unusable is skipped (left on disk for inspection).
  /// Returns the recovered session ids.  Call before serving traffic;
  /// throws std::logic_error when journaling is off.
  std::vector<std::uint64_t> recover();

  // --- stateful solve sessions (docs/SESSIONS.md) ---------------------------
  //
  // A session names a base instance plus a linear lineage of append-only
  // deltas.  Each append re-solves the grown instance — incrementally
  // from the family's saved frontier/envelope when it can (lis/lcs/glws
  // under the restricted update model), via transparent cold fallback
  // otherwise; callers never branch on the capability.  Versions are
  // cached under (base hash, version, delta-chain hash) keys, and the
  // base's canonical cache entry is PINNED for the session's lifetime so
  // unrelated traffic cannot evict the lineage's anchor.

  /// Solves `base` synchronously on the calling thread (checkpointing
  /// resumable state), caches the result pinned, and returns the new
  /// session id.  Throws std::invalid_argument for an unknown kind or
  /// invalid instance, std::runtime_error after shutdown().
  [[nodiscard]] std::uint64_t create_session(engine::Instance base);

  /// Applies `delta` on top of the session's current version and
  /// re-solves.  Runs synchronously on the calling thread; the returned
  /// future is already settled (kept as a future so hostile deltas —
  /// over-cap op counts, kind or base_version mismatches — fail THIS
  /// request instead of the process or the session).  Appends on one
  /// session serialize on the session's own mutex; different sessions
  /// run concurrently.  SolveResult::path == kResumed when the append
  /// was served from saved state.
  [[nodiscard]] std::future<engine::SolveResult> append(std::uint64_t id,
                                                       engine::Delta delta);

  /// Forgets the session and unpins its base cache entry.  Appends
  /// already in flight complete; later appends fail their future.
  /// Unknown ids are ignored (idempotent).
  void close_session(std::uint64_t id);

  /// Snapshot of one open session; nullopt after close (or unknown id).
  [[nodiscard]] std::optional<SessionInfo> session_info(
      std::uint64_t id) const;

  /// Stops admission, drains every pending request, joins the
  /// dispatcher.  Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept { return opt_; }

  /// Prometheus text exposition of the full observability surface: the
  /// process-wide telemetry registry (scheduler steal/park/wake
  /// counters, solver round/relaxation totals, submit-latency and
  /// queue-wait histograms — see docs/OBSERVABILITY.md for the catalog)
  /// followed by this service's own counters, cache stats (including
  /// hit rate), and queue-wait summary.  Safe to call concurrently with
  /// submits; surfaced by `cordon_cli stress --metrics`.
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Pending {
    engine::Instance inst;
    engine::InstanceKey key;
    std::promise<engine::SolveResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<core::CancelToken> token;  // null = not cancellable
    bool done = false;  // promise fulfilled (dispatcher-side bookkeeping)
  };

  /// One open session.  `mu` serializes appends (the lineage is linear
  /// by construction: base_version must match, so concurrent appends on
  /// one session resolve to one winner and one mismatch failure).
  struct Session {
    std::mutex mu;
    const engine::Solver* solver = nullptr;
    engine::Instance current;     // grown in place, amortized O(append)
    std::uint64_t version = 0;
    std::uint64_t base_hash = 0;
    std::string base_key_text;    // canonical base text, for unpin on close
    std::uint64_t chain_hash = 0; // running hash over applied delta texts
    std::shared_ptr<const engine::SolverState> state;  // null = cold next
    std::uint64_t resumes = 0;
    std::uint64_t cold_solves = 0;
    std::unique_ptr<SessionJournal> journal;  // null = not durable
    /// Set when a journal write failed AFTER the in-memory lineage
    /// advanced: memory is one step ahead of disk, so further appends
    /// fail (SolveError{kInternal}) instead of widening the divergence.
    /// recover() resumes from the last durable version.
    bool poisoned = false;
  };

  void dispatch_loop();
  void run_batch(std::vector<Pending> taken);
  void run_batch_impl(std::vector<Pending>& taken);
  /// Fails one pending request's future with a typed SolveError and
  /// records the rejection (telemetry + stats + reject-wait histogram).
  void fail_pending(Pending& p, core::SolveErrorCode code,
                    const std::string& msg,
                    std::chrono::nanoseconds retry_after =
                        std::chrono::nanoseconds{0});
  /// Backpressure hint for kShed: how long until the queue has likely
  /// drained enough to admit again (EWMA batch time × queued batches).
  [[nodiscard]] std::chrono::nanoseconds retry_after_hint(
      std::size_t queue_depth) const;
  engine::SolveResult append_locked(Session& s, const engine::Delta& delta,
                                    bool journal_write = true);

  ServiceOptions opt_;
  const engine::ProblemRegistry& registry_;
  engine::BatchExecutor executor_;
  std::unique_ptr<ShardedLruCache<engine::SolveResult>> cache_;  // null = off

  mutable std::mutex mu_;  // guards queue_; stopping_ writes happen
                           // under it too (condvar coordination), but
                           // the atomic lets submit()'s fast path check
                           // it without taking the global lock
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::atomic<bool> stopping_{false};

  // submitted and cache-hit completions are atomics so the cache-hit
  // fast path takes no service-wide lock (its only contention is the
  // cache shard); the dispatcher-side counters stay behind stats_mu_.
  // stats() merges all three sources into one ServiceStats.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> hit_completed_{0};
  // Rejection counters are atomics: the shed/expired paths run on
  // client threads and the dispatcher both, and stats() must not make
  // the fast rejection path contend on stats_mu_.
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> rejected_failed_{0};  // futures failed via
                                                   // fail_pending
  std::atomic<std::uint64_t> journal_writes_{0};
  std::atomic<std::uint64_t> journal_errors_{0};
  // EWMA of one dispatched batch's solve wall time (ns); seeds the
  // retry-after hint and the "will miss its deadline anyway" early shed.
  std::atomic<std::uint64_t> ewma_batch_ns_{0};
  mutable std::mutex stats_mu_;  // guards stats_ (cache keeps its own)
  ServiceStats stats_;           // batch-side counters; submitted /
                                 // fast-path completed live above

  mutable std::mutex sessions_mu_;  // guards the id -> session map only;
                                    // per-session work holds Session::mu
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};

  std::once_flag join_once_;  // exactly one shutdown() joins
  std::thread dispatcher_;    // started last, joined in shutdown()
};

}  // namespace cordon::service
