// ShardedLruCache: the service layer's result cache.
//
// A fixed array of independent LRU shards, each an intrusive
// list + hash-map pair behind its own mutex.  A key's 64-bit hash picks
// the shard (high bits, so shard choice is independent of the hash-map's
// bucket choice), and within the shard the *full* key string decides
// equality — a hash collision can therefore never return the wrong
// entry, only land two keys in the same shard.
//
// Threading: every public method is safe to call concurrently from any
// number of threads; only one shard's mutex is held at a time and no
// method blocks on more than one shard (stats/size/clear visit shards
// one by one, so they are monotonic snapshots, not a single atomic
// cut — fine for monitoring).  Values are returned by copy so no
// reference escapes a shard lock.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/dp_stats.hpp"

namespace cordon::service {

template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry, so the effective total is
  /// max(capacity, shards) rounded up to a multiple of the shard count).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16)
      : shards_(shards == 0 ? 1 : shards) {
    std::size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
    per_shard_capacity_ = per_shard == 0 ? 1 : per_shard;
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  /// Copy of the cached value, refreshing its recency; nullopt on miss.
  [[nodiscard]] std::optional<Value> get(std::uint64_t hash,
                                         std::string_view key) {
    Shard& s = shard(hash);
    std::lock_guard lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.stats.misses;
      return std::nullopt;
    }
    ++s.stats.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
    return it->second->value;
  }

  /// Inserts (or refreshes) key -> value, evicting the shard's least
  /// recently used entry when the shard is at capacity.
  void put(std::uint64_t hash, std::string key, Value value) {
    Shard& s = shard(hash);
    std::lock_guard lock(s.mu);
    auto it = s.index.find(std::string_view(key));
    if (it != s.index.end()) {
      it->second->value = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    if (s.lru.size() >= per_shard_capacity_) {
      s.index.erase(std::string_view(s.lru.back().key));
      s.lru.pop_back();
      ++s.stats.evictions;
    }
    s.lru.push_front(Entry{std::move(key), std::move(value)});
    // string_view into the list node: std::list never moves its nodes.
    s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
    ++s.stats.insertions;
  }

  /// Aggregated counters across shards (monotonic snapshot).
  [[nodiscard]] core::CacheStats stats() const {
    core::CacheStats out;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      out += s->stats;
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      n += s->lru.size();
    }
    return n;
  }

  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      s->index.clear();
      s->lru.clear();
    }
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return per_shard_capacity_ * shards_.size();
  }

 private:
  struct Entry {
    std::string key;
    Value value;
  };

  struct StringViewHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string_view, typename std::list<Entry>::iterator,
                       StringViewHash>
        index;  // views point into lru nodes (stable addresses)
    core::CacheStats stats;
  };

  Shard& shard(std::uint64_t hash) {
    // High bits: independent of unordered_map's low-bit bucket choice.
    return *shards_[(hash >> 48) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;
};

}  // namespace cordon::service
