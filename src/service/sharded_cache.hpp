// ShardedLruCache: the service layer's result cache.
//
// A fixed array of independent LRU shards, each an intrusive
// list + hash-map pair behind its own mutex.  A key's 64-bit hash picks
// the shard (high bits, so shard choice is independent of the hash-map's
// bucket choice) AND is stored alongside every entry as the primary
// index: a probe walks the (almost always empty or single-element)
// bucket of entries sharing the full 64-bit hash and only then decides
// equality on the full key text — so a MISS never touches key bytes at
// all, and a hit compares text exactly once.  `get_matching` takes the
// comparison as a callback, which is what lets CordonService probe with
// a streaming serializer instead of a materialized string: a hash
// collision can still never return the wrong entry, only cost one extra
// comparison.
//
// The matcher runs OUTSIDE the shard lock: the probe snapshots the
// candidate keys' shared_ptr handles under the mutex (refcount bumps,
// no allocation), compares unlocked — the comparison may be a full
// instance re-serialization, which must not serialize other clients of
// the shard — and re-locks to refresh recency and copy the value,
// tolerating a concurrent eviction by reporting a miss.
//
// Threading: every public method is safe to call concurrently from any
// number of threads; only one shard's mutex is held at a time and no
// method blocks on more than one shard (stats/size/clear visit shards
// one by one, so they are monotonic snapshots, not a single atomic
// cut — fine for monitoring).  Values are returned by copy so no
// reference escapes a shard lock.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/audit.hpp"
#include "src/core/dp_stats.hpp"
#include "src/core/fault.hpp"

namespace cordon::service {

template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry, so the effective total is
  /// max(capacity, shards) rounded up to a multiple of the shard count).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16)
      : shards_(shards == 0 ? 1 : shards) {
    std::size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
    per_shard_capacity_ = per_shard == 0 ? 1 : per_shard;
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  /// Hash-first probe: entries whose stored 64-bit hash equals `hash`
  /// are offered to `matches(stored_key)` — outside the shard lock —
  /// until one accepts.  Returns a copy of that entry's value
  /// (refreshing its recency); nullopt when the hash bucket is empty or
  /// every candidate is rejected.  `matches` is invoked zero times on a
  /// bucket miss, so the common cold probe costs no key comparison.
  /// At most kMaxProbe candidates are compared; a 5-way full-64-bit-hash
  /// collision (never, in practice) degrades to a miss, not a wrong
  /// value.  An entry evicted between the snapshot and the re-lock also
  /// reports a miss.
  template <typename Matcher>
  [[nodiscard]] std::optional<Value> get_matching(std::uint64_t hash,
                                                  Matcher&& matches) {
    Shard& s = shard(hash);
    std::array<KeyHandle, kMaxProbe> cand;
    std::size_t n = 0;
    {
      std::lock_guard lock(s.mu);
      auto [lo, hi] = s.index.equal_range(hash);
      for (auto it = lo; it != hi && n < kMaxProbe; ++it)
        cand[n++] = it->second->key;
      if (n == 0) {
        ++s.stats.misses;
        return std::nullopt;
      }
    }
    // Equality — possibly a full streaming re-serialization — runs with
    // no lock held; the shared_ptr keeps the key text alive even if the
    // entry is evicted meanwhile.
    KeyHandle matched;
    for (std::size_t i = 0; i < n; ++i) {
      if (matches(std::string_view(*cand[i]))) {
        matched = cand[i];
        break;
      }
    }
    std::lock_guard lock(s.mu);
    if (matched != nullptr) {
      auto [lo, hi] = s.index.equal_range(hash);
      for (auto it = lo; it != hi; ++it) {
        if (it->second->key == matched) {
          ++s.stats.hits;
          s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
          return it->second->value;
        }
      }
    }
    ++s.stats.misses;
    return std::nullopt;
  }

  /// Copy of the cached value for (hash, key), refreshing its recency;
  /// nullopt on miss.
  [[nodiscard]] std::optional<Value> get(std::uint64_t hash,
                                         std::string_view key) {
    return get_matching(hash, [&](std::string_view stored) {
      return stored == key;
    });
  }

  /// Inserts (or refreshes) (hash, key) -> value, evicting the shard's
  /// least recently used UNPINNED entry when the shard is at capacity.
  void put(std::uint64_t hash, std::string key, Value value) {
    put_impl(hash, std::move(key), std::move(value), /*pin_it=*/false);
  }

  /// put() + pin() in one critical section: the entry is inserted (or
  /// refreshed) with its pin count raised by one, so it can never be
  /// evicted between the insert and a separate pin call.
  void put_pinned(std::uint64_t hash, std::string key, Value value) {
    put_impl(hash, std::move(key), std::move(value), /*pin_it=*/true);
  }

  /// Raises the entry's pin count; a pinned entry is skipped by LRU
  /// eviction (sessions pin their base result so a burst of unrelated
  /// traffic cannot evict the state the whole lineage re-probes).
  /// Returns false when (hash, key) is not resident.
  bool pin(std::uint64_t hash, std::string_view key) {
    return adjust_pins(hash, key, +1);
  }

  /// Lowers the pin count (saturating at zero); the entry re-enters
  /// normal LRU eviction once every pin is released.  Returns false
  /// when (hash, key) is not resident.
  bool unpin(std::uint64_t hash, std::string_view key) {
    return adjust_pins(hash, key, -1);
  }

  /// Entries currently pinned, across shards (monitoring snapshot).
  [[nodiscard]] std::size_t pinned() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      for (const Entry& e : s->lru) n += e.pins > 0 ? 1 : 0;
    }
    return n;
  }

  /// Aggregated counters across shards (monotonic snapshot).
  [[nodiscard]] core::CacheStats stats() const {
    core::CacheStats out;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      out += s->stats;
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      n += s->lru.size();
    }
    return n;
  }

  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      s->index.clear();
      s->lru.clear();
    }
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return per_shard_capacity_ * shards_.size();
  }

 private:
  /// Candidates sharing one full 64-bit hash that a single probe will
  /// compare; beyond this the probe reports a miss (safe: re-solve).
  static constexpr std::size_t kMaxProbe = 4;

  // shared so a probe can keep comparing against a key after the shard
  // lock is dropped (and even after the entry is evicted).
  using KeyHandle = std::shared_ptr<const std::string>;

  struct Entry {
    std::uint64_t hash;
    KeyHandle key;
    Value value;
    std::uint32_t pins = 0;  // > 0 exempts the entry from eviction
  };

  // The stored hashes are already 64-bit FNV-1a: feed them through.
  struct IdentityHash {
    std::size_t operator()(std::uint64_t h) const noexcept {
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_multimap<std::uint64_t, typename std::list<Entry>::iterator,
                            IdentityHash>
        index;  // full-hash buckets; list iterators stay stable
    core::CacheStats stats;
  };

  Shard& shard(std::uint64_t hash) {
    // High bits: independent of the multimap's low-bit bucket choice.
    return *shards_[(hash >> 48) % shards_.size()];
  }

  void put_impl(std::uint64_t hash, std::string key, Value value,
                bool pin_it) {
    Shard& s = shard(hash);
    std::lock_guard lock(s.mu);
    auto [lo, hi] = s.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (std::string_view(*it->second->key) == std::string_view(key)) {
        it->second->value = std::move(value);
        if (pin_it) ++it->second->pins;
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
      }
    }
    // Chaos: simulate memory pressure by evicting one extra (unpinned)
    // entry before the insert.  Pins still protect session bases.
    if (CORDON_FAULT_CHECK(core::fault::Site::kCacheEvict))
      evict_one_locked(s);
    if (s.lru.size() >= per_shard_capacity_) evict_one_locked(s);
    s.lru.push_front(Entry{
        hash, std::make_shared<const std::string>(std::move(key)),
        std::move(value), pin_it ? 1u : 0u});
    s.index.emplace(hash, s.lru.begin());
    ++s.stats.insertions;
  }

  /// Drops the least recently used entry with no pins.  When EVERY
  /// resident entry is pinned the shard grows past its capacity instead
  /// — a session base must outlive arbitrary unrelated traffic, and the
  /// overshoot is bounded by the number of open sessions.
  void evict_one_locked(Shard& s) {
    for (auto it = s.lru.end(); it != s.lru.begin();) {
      --it;
      if (it->pins > 0) continue;
      auto [elo, ehi] = s.index.equal_range(it->hash);
      for (auto eit = elo; eit != ehi; ++eit) {
        if (eit->second == it) {
          s.index.erase(eit);
          break;
        }
      }
      s.lru.erase(it);
      ++s.stats.evictions;
      return;
    }
  }

  bool adjust_pins(std::uint64_t hash, std::string_view key, int delta) {
    Shard& s = shard(hash);
    std::lock_guard lock(s.mu);
    auto [lo, hi] = s.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (std::string_view(*it->second->key) == key) {
        if (delta > 0) {
          ++it->second->pins;
        } else {
          // The public contract saturates at zero, but a zero-pin unpin
          // means some owner released a pin it never took (or twice) —
          // exactly the imbalance that would let a session base get
          // evicted under a live lineage.  Fail loudly in audit builds.
          CORDON_DCHECK(it->second->pins > 0,
                        "cache pin refcount would go negative");
          if (it->second->pins > 0) --it->second->pins;
        }
        return true;
      }
    }
    return false;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;
};

}  // namespace cordon::service
