// Sorted best-decision triple array `B` for the parallel GLWS (Alg. 1).
//
// B stores triples ([l, r], j) in increasing order of l, covering a
// contiguous range of tentative states: best[i] = j for every l <= i <= r.
// Supports
//   * best_of(i)            — O(log n) lookup (Alg. 1 line 13),
//   * first_win(j, eval, lo) — the binary search of Alg. 1 line 15: the
//     first state i >= lo that candidate j would *successfully relax*,
//     i.e., eval(j, i) < eval(best(i), i).  For convex costs and a
//     candidate newer than everything in B, the win-set is a suffix
//     (intersection of per-candidate suffixes), so binary search is sound.
//
// The list is rebuilt (convex) or merged (concave, Alg. 2) each round by
// glws_parallel.cpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

#include "src/structures/monotonic_queue.hpp"  // DecisionInterval

namespace cordon::structures {

class BestDecisionList {
 public:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  BestDecisionList() = default;
  explicit BestDecisionList(std::vector<DecisionInterval> triples)
      : triples_(std::move(triples)) {}

  [[nodiscard]] bool empty() const noexcept { return triples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return triples_.size(); }
  [[nodiscard]] const std::vector<DecisionInterval>& triples() const noexcept {
    return triples_;
  }
  [[nodiscard]] std::size_t cover_lo() const {
    return triples_.empty() ? kNone : triples_.front().l;
  }
  [[nodiscard]] std::size_t cover_hi() const {
    return triples_.empty() ? 0 : triples_.back().r;
  }

  /// Best decision currently recorded for state i; kNone if i is outside
  /// the covered range.
  [[nodiscard]] std::size_t best_of(std::size_t i) const {
    std::size_t t = triple_index(i);
    return t == kNone ? kNone : triples_[t].j;
  }

  /// First state i >= lo (within the covered range) where candidate j
  /// beats the recorded envelope: eval(j, i) < eval(best(i), i).
  /// Returns kNone if j wins nowhere.  Requires the win-set to be a
  /// suffix, which holds for convex costs with j newer than all recorded
  /// decisions (see header comment).
  template <typename Eval>
  [[nodiscard]] std::size_t first_win(std::size_t j, const Eval& eval,
                                      std::size_t lo) const {
    if (triples_.empty()) return kNone;
    std::size_t hi = cover_hi();
    if (lo > hi) return kNone;
    if (lo < cover_lo()) lo = cover_lo();
    auto wins = [&](std::size_t i) {
      std::size_t b = best_of(i);
      assert(b != kNone);
      return eval(j, i) < eval(b, i);
    };
    if (!wins(hi)) return kNone;
    if (wins(lo)) return lo;
    // Invariant: !wins(lo), wins(hi).
    while (lo + 1 < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (wins(mid))
        hi = mid;
      else
        lo = mid;
    }
    return hi;
  }

  /// Replaces the whole list (convex rounds rebuild B from scratch).
  void assign(std::vector<DecisionInterval> triples) {
    triples_ = std::move(triples);
  }

  /// Drops every triple (or triple prefix) covering states < lo.  Used
  /// when the frontier advances past the start of the covered range.
  void advance_to(std::size_t lo) {
    std::size_t keep = 0;
    while (keep < triples_.size() && triples_[keep].r < lo) ++keep;
    if (keep > 0) triples_.erase(triples_.begin(),
                                 triples_.begin() + static_cast<std::ptrdiff_t>(keep));
    if (!triples_.empty() && triples_.front().l < lo) triples_.front().l = lo;
  }

 private:
  [[nodiscard]] std::size_t triple_index(std::size_t i) const {
    if (triples_.empty() || i < triples_.front().l || i > triples_.back().r)
      return kNone;
    std::size_t lo = 0, hi = triples_.size() - 1;
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (triples_[mid].r < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::vector<DecisionInterval> triples_;
};

}  // namespace cordon::structures
