// Sorted best-decision triple list `B` for the parallel GLWS (Alg. 1),
// stored struct-of-arrays.
//
// B records triples ([l, r], j) in increasing order of l, covering a
// contiguous range of tentative states: best[i] = j for every l <= i <= r.
// Supports
//   * best_of(i)            — O(log n) lookup (Alg. 1 line 13),
//   * first_win(j, eval, lo) — the binary search of Alg. 1 line 15: the
//     first state i >= lo that candidate j would *successfully relax*,
//     i.e., eval(j, i) < eval(best(i), i).  For convex costs and a
//     candidate newer than everything in B, the win-set is a suffix
//     (intersection of per-candidate suffixes), so binary search is sound.
//
// Layout: the three triple fields live in three parallel arrays (l_, r_,
// j_) instead of an array of structs.  Every hot operation — best_of's
// binary search, first_win's probes, the prefix-doubling loop that calls
// them thousands of times per round — touches ONLY the r_ array until the
// final j_ read, so the search walks a contiguous cache-dense array
// instead of striding over 3-word records.  The arrays are rebuilt
// (convex) or merged (concave, Alg. 2) each round by glws_parallel.cpp /
// gap_parallel.cpp; `assign` reuses their capacity, so the steady state
// allocates nothing.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

#include "src/structures/monotonic_queue.hpp"  // DecisionInterval

namespace cordon::structures {

class BestDecisionList {
 public:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  BestDecisionList() = default;
  explicit BestDecisionList(std::vector<DecisionInterval> triples) {
    assign(triples);
  }

  [[nodiscard]] bool empty() const noexcept { return r_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return r_.size(); }

  /// Per-triple field access (t indexes the sorted triple list).
  [[nodiscard]] std::size_t triple_l(std::size_t t) const { return l_[t]; }
  [[nodiscard]] std::size_t triple_r(std::size_t t) const { return r_[t]; }
  [[nodiscard]] std::size_t triple_j(std::size_t t) const { return j_[t]; }

  /// Materializes the AoS view (cold paths: envelope merge early-outs,
  /// tests).
  [[nodiscard]] std::vector<DecisionInterval> to_triples() const {
    std::vector<DecisionInterval> out;
    out.reserve(r_.size());
    for (std::size_t t = 0; t < r_.size(); ++t)
      out.push_back({l_[t], r_[t], j_[t]});
    return out;
  }

  [[nodiscard]] std::size_t cover_lo() const {
    return l_.empty() ? kNone : l_.front();
  }
  [[nodiscard]] std::size_t cover_hi() const {
    return r_.empty() ? 0 : r_.back();
  }

  /// Best decision currently recorded for state i; kNone if i is outside
  /// the covered range.
  [[nodiscard]] std::size_t best_of(std::size_t i) const {
    std::size_t t = triple_index(i);
    return t == kNone ? kNone : j_[t];
  }

  /// First state i >= lo (within the covered range) where candidate j
  /// beats the recorded envelope: eval(j, i) < eval(best(i), i).
  /// Returns kNone if j wins nowhere.  Requires the win-set to be a
  /// suffix, which holds for convex costs with j newer than all recorded
  /// decisions (see header comment).
  template <typename Eval>
  [[nodiscard]] std::size_t first_win(std::size_t j, const Eval& eval,
                                      std::size_t lo) const {
    if (r_.empty()) return kNone;
    std::size_t hi = cover_hi();
    if (lo > hi) return kNone;
    if (lo < cover_lo()) lo = cover_lo();
    auto wins = [&](std::size_t i) {
      std::size_t b = best_of(i);
      assert(b != kNone);
      return eval(j, i) < eval(b, i);
    };
    if (!wins(hi)) return kNone;
    if (wins(lo)) return lo;
    // Invariant: !wins(lo), wins(hi).
    while (lo + 1 < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (wins(mid))
        hi = mid;
      else
        lo = mid;
    }
    return hi;
  }

  /// Replaces the whole list (convex rounds rebuild B from scratch).
  /// Splits the AoS construction format into the SoA arrays, reusing
  /// their capacity round over round.
  void assign(const std::vector<DecisionInterval>& triples) {
    l_.clear();
    r_.clear();
    j_.clear();
    l_.reserve(triples.size());
    r_.reserve(triples.size());
    j_.reserve(triples.size());
    for (const DecisionInterval& t : triples) {
      l_.push_back(t.l);
      r_.push_back(t.r);
      j_.push_back(t.j);
    }
  }

  /// Drops every triple (or triple prefix) covering states < lo.  Used
  /// when the frontier advances past the start of the covered range.
  void advance_to(std::size_t lo) {
    std::size_t keep = 0;
    while (keep < r_.size() && r_[keep] < lo) ++keep;
    if (keep > 0) {
      auto drop = static_cast<std::ptrdiff_t>(keep);
      l_.erase(l_.begin(), l_.begin() + drop);
      r_.erase(r_.begin(), r_.begin() + drop);
      j_.erase(j_.begin(), j_.begin() + drop);
    }
    if (!l_.empty() && l_.front() < lo) l_.front() = lo;
  }

 private:
  [[nodiscard]] std::size_t triple_index(std::size_t i) const {
    if (r_.empty() || i < l_.front() || i > r_.back()) return kNone;
    // Contiguous binary search over r_ alone: the whole probe sequence
    // lives in one SoA array.
    std::size_t lo = 0, hi = r_.size() - 1;
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (r_[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::vector<std::size_t> l_, r_, j_;  // parallel arrays, sorted by l
};

}  // namespace cordon::structures
