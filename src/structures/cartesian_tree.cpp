#include "src/structures/cartesian_tree.hpp"

namespace cordon::structures {

CartesianTree build_cartesian_tree(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  CartesianTree t;
  t.parent.assign(n, CartesianTree::kNone);
  t.left.assign(n, CartesianTree::kNone);
  t.right.assign(n, CartesianTree::kNone);
  if (n == 0) return t;

  // Classic rightmost-spine stack construction.  New element i pops every
  // spine node with strictly larger weight (ties keep the earlier node
  // higher, making the leftmost minimum the root), adopts the last popped
  // node as its left child, and attaches as right child of the survivor.
  std::vector<std::uint32_t> spine;
  spine.reserve(64);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t last_popped = CartesianTree::kNone;
    while (!spine.empty() && weights[spine.back()] > weights[i]) {
      last_popped = spine.back();
      spine.pop_back();
    }
    if (last_popped != CartesianTree::kNone) {
      t.left[i] = last_popped;
      t.parent[last_popped] = i;
    }
    if (!spine.empty()) {
      t.right[spine.back()] = i;
      t.parent[i] = spine.back();
    }
    spine.push_back(i);
  }
  t.root = spine.front();
  return t;
}

}  // namespace cordon::structures
