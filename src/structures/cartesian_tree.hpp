// Cartesian tree construction (min-heap over a weight sequence).
//
// The substrate of the parallel OAT algorithm (Appendix A): valleys of
// the weight sequence are exactly subtrees of its Cartesian tree, and the
// "parent of a valley" Δα is the subtree parent's weight.  Ties are
// broken towards the left so the tree is unique.
#pragma once

#include <cstdint>
#include <vector>

namespace cordon::structures {

struct CartesianTree {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::vector<std::uint32_t> parent;  // kNone for the root
  std::vector<std::uint32_t> left;    // kNone if absent
  std::vector<std::uint32_t> right;
  std::uint32_t root = kNone;
};

/// Builds the min-heap Cartesian tree of `weights` (leftmost minimum at
/// the root).  O(n) stack-based construction.
[[nodiscard]] CartesianTree build_cartesian_tree(
    const std::vector<double>& weights);

}  // namespace cordon::structures
