#include "src/structures/tree_utils.hpp"

namespace cordon::structures {

EulerTour build_euler_tour(const RootedTree& tree) {
  const std::size_t n = tree.size();
  EulerTour et;
  et.tin.assign(n, 0);
  et.tout.assign(n, 0);
  et.depth.assign(n, 0);
  et.order.reserve(n);

  // Iterative preorder DFS; children pushed in reverse so they pop in
  // index order.
  std::vector<std::uint32_t> stack;
  stack.push_back(tree.root);
  while (!stack.empty()) {
    std::uint32_t v = stack.back();
    stack.pop_back();
    et.tin[v] = static_cast<std::uint32_t>(et.order.size());
    et.order.push_back(v);
    if (tree.parent[v] != kNoNode) et.depth[v] = et.depth[tree.parent[v]] + 1;
    const auto& ch = tree.children[v];
    for (std::size_t k = ch.size(); k > 0; --k) stack.push_back(ch[k - 1]);
  }
  // tout via a reverse pass: tout[v] = max over subtree of tin + 1.  In
  // preorder, a node's subtree occupies a contiguous block, so scanning
  // the order backwards and propagating to parents is enough.
  for (std::size_t t = n; t > 0; --t) {
    std::uint32_t v = et.order[t - 1];
    if (et.tout[v] < et.tin[v] + 1) et.tout[v] = et.tin[v] + 1;
    std::uint32_t p = tree.parent[v];
    if (p != kNoNode && et.tout[p] < et.tout[v]) et.tout[p] = et.tout[v];
  }
  return et;
}

std::vector<std::uint32_t> subtree_sizes(const RootedTree& tree) {
  EulerTour et = build_euler_tour(tree);
  std::vector<std::uint32_t> size(tree.size(), 1);
  // Reverse preorder: children are finished before their parent.
  for (std::size_t t = tree.size(); t > 0; --t) {
    std::uint32_t v = et.order[t - 1];
    std::uint32_t p = tree.parent[v];
    if (p != kNoNode) size[p] += size[v];
  }
  return size;
}

}  // namespace cordon::structures
