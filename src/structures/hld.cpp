#include "src/structures/hld.hpp"

namespace cordon::structures {

HeavyLightDecomposition::HeavyLightDecomposition(const RootedTree& tree) {
  const std::size_t n = tree.size();
  parent_ = tree.parent;
  head_.assign(n, kNoNode);
  pos_.assign(n, 0);
  order_.assign(n, 0);

  std::vector<std::uint32_t> size = subtree_sizes(tree);

  // Heavy child of each node: the child with the largest subtree.
  std::vector<std::uint32_t> heavy(n, kNoNode);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t best = kNoNode, best_size = 0;
    for (std::uint32_t c : tree.children[v]) {
      if (size[c] > best_size) {
        best = c;
        best_size = size[c];
      }
    }
    heavy[v] = best;
  }

  // Lay out chains: walk each chain head's heavy path, then recurse into
  // light children (iteratively via an explicit stack of chain heads).
  std::uint32_t next_pos = 0;
  std::vector<std::uint32_t> heads;
  heads.push_back(tree.root);
  while (!heads.empty()) {
    std::uint32_t h = heads.back();
    heads.pop_back();
    for (std::uint32_t v = h; v != kNoNode; v = heavy[v]) {
      head_[v] = h;
      pos_[v] = next_pos;
      order_[next_pos] = v;
      ++next_pos;
      for (std::uint32_t c : tree.children[v])
        if (c != heavy[v]) heads.push_back(c);
    }
  }
}

}  // namespace cordon::structures
