// Heavy-light decomposition (Sec. 5.3.1).
//
// Decomposes a rooted tree into heavy chains: every root-to-node path
// crosses O(log n) chains.  Nodes of one chain occupy a contiguous range
// of `pos`, so any associative per-node aggregate over a root-to-v path
// can be computed by combining O(log n) range queries — Tree-GLWS uses a
// min-segment-tree over `pos` to locate the shallowest unavailable node
// on a path.
#pragma once

#include <cstdint>
#include <vector>

#include "src/structures/tree_utils.hpp"

namespace cordon::structures {

class HeavyLightDecomposition {
 public:
  explicit HeavyLightDecomposition(const RootedTree& tree);

  /// Position of node v in the linearized chain order (0..n-1).
  [[nodiscard]] std::uint32_t pos(std::uint32_t v) const { return pos_[v]; }
  /// Head (shallowest node) of the chain containing v.
  [[nodiscard]] std::uint32_t chain_head(std::uint32_t v) const {
    return head_[v];
  }
  [[nodiscard]] std::uint32_t parent(std::uint32_t v) const {
    return parent_[v];
  }
  [[nodiscard]] std::uint32_t node_at(std::uint32_t position) const {
    return order_[position];
  }
  [[nodiscard]] std::size_t size() const noexcept { return pos_.size(); }

  /// Calls fn(lo, hi) for each contiguous pos-range [lo, hi) on the path
  /// from the root to v.  Ranges are reported *from v upward* (deepest
  /// chain segment first); there are O(log n) of them.
  template <typename Fn>
  void for_each_root_path_segment(std::uint32_t v, Fn&& fn) const {
    while (v != kNoNode) {
      std::uint32_t h = head_[v];
      fn(pos_[h], pos_[v] + 1);
      v = parent_[h];
    }
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> order_;
};

}  // namespace cordon::structures
