// Candidate deque for the sequential GLWS algorithm Γlws (Sec. 4.1).
//
// Maintains the compressed best-decision array best[(i+1)..n] as a list of
// triples ([l, r], j): every state in [l, r] currently has best decision j
// among the candidates inserted so far.  Convex costs admit new candidates
// on a *suffix* of future states (insert trims from the back); concave
// costs admit them on a *prefix* (insert trims from the front).  This is
// the inherently sequential structure the paper's parallel Alg. 1
// replaces; we keep it as the Γlws baseline and as a test oracle.
//
// Eval is a callable eval(j, i) -> double returning E[j] + w(j, i).
#pragma once

#include <cstddef>
#include <deque>

#include "src/core/audit.hpp"

namespace cordon::structures {

struct DecisionInterval {
  std::size_t l;
  std::size_t r;
  std::size_t j;
};

template <typename Eval>
class MonotonicQueue {
 public:
  /// States to be decided are 1..n; candidates are 0..n-1.
  MonotonicQueue(std::size_t n, Eval eval) : n_(n), eval_(eval) {}

  /// Best candidate for state i among all inserted so far.  Consumes
  /// intervals whose range ended before i (amortized O(1)).
  [[nodiscard]] std::size_t best(std::size_t i) {
    CORDON_DCHECK(!q_.empty(), "envelope query on an empty deque");
    while (q_.front().r < i) q_.pop_front();
    CORDON_DCHECK(q_.front().l <= i && i <= q_.front().r,
                  "envelope intervals left a gap at the queried state");
    return q_.front().j;
  }

  /// Inserts candidate j, valid for states j+1..n.  Convex variant:
  /// j wins on a suffix of the remaining states.
  void insert_convex(std::size_t j) {
    std::size_t lo = j + 1;
    if (lo > n_) return;
    if (q_.empty()) {
      q_.push_back({lo, n_, j});
      return;
    }
    // Pop intervals at the back that j fully dominates.
    while (!q_.empty()) {
      auto& b = q_.back();
      std::size_t start = std::max(b.l, lo);
      if (start > b.r) break;
      if (eval_(j, start) < eval_(b.j, start)) {
        if (start == b.l) {
          q_.pop_back();
          continue;
        }
        b.r = start - 1;
        q_.push_back({start, n_, j});
        check_convex_back();
        return;
      }
      // j loses at start; binary search the first state where j wins.
      if (eval_(j, b.r) >= eval_(b.j, b.r)) break;  // j never wins in b
      std::size_t lo2 = start, hi2 = b.r;  // lose at lo2, win at hi2
      while (lo2 + 1 < hi2) {
        std::size_t mid = lo2 + (hi2 - lo2) / 2;
        if (eval_(j, mid) < eval_(b.j, mid))
          hi2 = mid;
        else
          lo2 = mid;
      }
      b.r = hi2 - 1;
      q_.push_back({hi2, n_, j});
      check_convex_back();
      return;
    }
    if (q_.empty()) {
      q_.push_back({lo, n_, j});
    } else if (q_.back().r < n_) {
      // j wins only after the last interval's right end — impossible by
      // construction (intervals always extend to n), kept as a guard.
      q_.push_back({q_.back().r + 1, n_, j});
    }
    // Otherwise j wins nowhere: discard.
  }

  /// Concave variant: j wins on a prefix of the remaining states.
  void insert_concave(std::size_t j) {
    std::size_t lo = j + 1;
    if (lo > n_) return;
    if (q_.empty()) {
      q_.push_back({lo, n_, j});
      return;
    }
    std::size_t won_up_to = lo - 1;  // j wins on [lo, won_up_to]
    while (!q_.empty()) {
      auto& f = q_.front();
      std::size_t start = std::max(f.l, lo);
      if (start > f.r) {
        q_.pop_front();
        continue;
      }
      if (eval_(j, start) >= eval_(f.j, start)) break;  // j loses at start
      if (eval_(j, f.r) < eval_(f.j, f.r)) {
        // j dominates all of f.
        won_up_to = f.r;
        q_.pop_front();
        continue;
      }
      // j wins at start, loses at f.r: binary search the last win.
      std::size_t lo2 = start, hi2 = f.r;  // win at lo2, lose at hi2
      while (lo2 + 1 < hi2) {
        std::size_t mid = lo2 + (hi2 - lo2) / 2;
        if (eval_(j, mid) < eval_(f.j, mid))
          lo2 = mid;
        else
          hi2 = mid;
      }
      won_up_to = lo2;
      f.l = lo2 + 1;
      break;
    }
    if (won_up_to >= lo) q_.push_front({lo, won_up_to, j});
    if (q_.empty()) q_.push_back({lo, n_, j});
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }

 private:
  // Convexity at the insertion seam, O(1) per insert: after a convex
  // insert splices {start, n} behind the trimmed interval, the two must
  // abut exactly (no gap, no overlap), the seam must be ordered, and
  // the envelope must still cover through state n.
  void check_convex_back() const {
    CORDON_DCHECK(q_.back().l <= q_.back().r && q_.back().r == n_,
                  "convex envelope no longer extends to n");
    CORDON_DCHECK(q_.size() < 2 ||
                      q_[q_.size() - 2].r + 1 == q_.back().l,
                  "convex envelope intervals overlap or leave a gap");
    CORDON_DCHECK(q_.size() < 2 || q_[q_.size() - 2].j < q_.back().j,
                  "convex envelope decisions out of order");
  }

  std::size_t n_;
  Eval eval_;
  std::deque<DecisionInterval> q_;
};

}  // namespace cordon::structures
