// Persistent treap of best-decision intervals (Sec. 5.3 building block).
//
// Tree-GLWS keeps one best-decision list *per tree node*; sibling
// branches share the common prefix of their root-to-node path, so the
// lists must be persistent.  Path-copying gives every update O(log n)
// new nodes while old versions stay valid — sharing reduces the naive
// O(n^2) total size to O(n log n).
//
// Keys are the interval left endpoints (depths); intervals in one version
// are disjoint and sorted.  All operations are functional: they return a
// new root and never mutate existing nodes.  Nodes live in an arena owned
// by the pool; whole-pool destruction frees every version at once.
#pragma once

#include <cstdint>
#include <vector>

#include "src/parallel/random.hpp"
#include "src/structures/monotonic_queue.hpp"  // DecisionInterval

namespace cordon::structures {

class PersistentIntervalTreap {
 public:
  using Ref = std::uint32_t;                 // index into the arena
  static constexpr Ref kNil = 0xffffffffu;

  PersistentIntervalTreap() { nodes_.reserve(1024); }

  /// Number of arena nodes allocated across all versions (space metric).
  [[nodiscard]] std::size_t arena_size() const noexcept {
    return nodes_.size();
  }

  [[nodiscard]] static bool is_nil(Ref t) noexcept { return t == kNil; }

  /// Builds a version from sorted disjoint triples.  O(m) nodes.
  [[nodiscard]] Ref build(const std::vector<DecisionInterval>& triples) {
    return build_rec(triples, 0, triples.size());
  }

  /// The triple whose [l, r] contains d, or nullptr.
  [[nodiscard]] const DecisionInterval* find(Ref t, std::size_t d) const {
    while (!is_nil(t)) {
      const Node& nd = nodes_[t];
      if (d < nd.iv.l)
        t = nd.left;
      else if (d > nd.iv.r)
        t = nd.right;
      else
        return &nd.iv;
    }
    return nullptr;
  }

  /// Splits by key: intervals with l < key go left, l >= key go right.
  [[nodiscard]] std::pair<Ref, Ref> split(Ref t, std::size_t key) {
    if (is_nil(t)) return {kNil, kNil};
    const Node nd = nodes_[t];  // copy: arena may reallocate below
    if (nd.iv.l < key) {
      auto [rl, rr] = split(nd.right, key);
      return {make(nd.iv, nd.prio, nd.left, rl), rr};
    }
    auto [ll, lr] = split(nd.left, key);
    return {ll, make(nd.iv, nd.prio, lr, nd.right)};
  }

  /// Joins two versions; every key in a precedes every key in b.
  [[nodiscard]] Ref join(Ref a, Ref b) {
    if (is_nil(a)) return b;
    if (is_nil(b)) return a;
    const Node na = nodes_[a], nb = nodes_[b];
    if (na.prio > nb.prio)
      return make(na.iv, na.prio, na.left, join(na.right, b));
    return make(nb.iv, nb.prio, join(a, nb.left), nb.right);
  }

  /// Inserts one triple (no overlap with existing keys assumed).
  [[nodiscard]] Ref insert(Ref t, const DecisionInterval& iv) {
    auto [l, r] = split(t, iv.l);
    Ref single = make(iv, parallel::hash64(seed_, nodes_.size()), kNil, kNil);
    return join(join(l, single), r);
  }

  /// Leftmost triple for which pred(triple) is true, assuming pred is
  /// monotone over the sorted triples (false... false true... true).
  /// Returns nullptr when pred is false everywhere.
  template <typename Pred>
  [[nodiscard]] const DecisionInterval* find_first(Ref t,
                                                   const Pred& pred) const {
    const DecisionInterval* best = nullptr;
    while (!is_nil(t)) {
      const Node& nd = nodes_[t];
      if (pred(nd.iv)) {
        best = &nd.iv;
        t = nd.left;
      } else {
        t = nd.right;
      }
    }
    return best;
  }

  /// find_first plus the inorder predecessor of the answer: returns
  /// {first triple with pred true (or nullptr), last triple with pred
  /// false (or nullptr)}.  With a monotone pred the two are adjacent in
  /// key order — the descent that settles the partition point visits
  /// both, so no second traversal is needed.  The GLWS envelope insert
  /// uses the predecessor to binary-search a crossover that falls
  /// strictly inside it.  Pointers are into the arena: invalidated by
  /// the next mutating call, copy out before inserting.
  template <typename Pred>
  [[nodiscard]] std::pair<const DecisionInterval*, const DecisionInterval*>
  find_first_with_prev(Ref t, const Pred& pred) const {
    const DecisionInterval* first = nullptr;
    const DecisionInterval* prev = nullptr;
    while (!is_nil(t)) {
      const Node& nd = nodes_[t];
      if (pred(nd.iv)) {
        first = &nd.iv;
        t = nd.left;
      } else {
        prev = &nd.iv;
        t = nd.right;
      }
    }
    return {first, prev};
  }

  /// In-order flatten of a version.
  void flatten(Ref t, std::vector<DecisionInterval>& out) const {
    if (is_nil(t)) return;
    const Node& nd = nodes_[t];
    flatten(nd.left, out);
    out.push_back(nd.iv);
    flatten(nd.right, out);
  }

  /// Rightmost (largest-l) triple; nullptr for an empty version.
  [[nodiscard]] const DecisionInterval* last(Ref t) const {
    if (is_nil(t)) return nullptr;
    while (!is_nil(nodes_[t].right)) t = nodes_[t].right;
    return &nodes_[t].iv;
  }

 private:
  struct Node {
    DecisionInterval iv;
    std::uint64_t prio;
    Ref left;
    Ref right;
  };

  Ref make(const DecisionInterval& iv, std::uint64_t prio, Ref l, Ref r) {
    nodes_.push_back({iv, prio, l, r});
    return static_cast<Ref>(nodes_.size() - 1);
  }

  Ref build_rec(const std::vector<DecisionInterval>& triples, std::size_t lo,
                std::size_t hi) {
    if (lo >= hi) return kNil;
    // Deterministic "random" priorities give an expected-balanced treap.
    std::size_t best = lo;
    std::uint64_t best_prio = parallel::hash64(seed_, triples[lo].l);
    for (std::size_t i = lo + 1; i < hi; ++i) {
      std::uint64_t p = parallel::hash64(seed_, triples[i].l);
      if (p > best_prio) {
        best = i;
        best_prio = p;
      }
    }
    Ref l = build_rec(triples, lo, best);
    Ref r = build_rec(triples, best + 1, hi);
    return make(triples[best], best_prio, l, r);
  }

  std::uint64_t seed_ = 0x5eed5eed5eedull;
  std::vector<Node> nodes_;
};

}  // namespace cordon::structures
