#include "src/structures/range_tree.hpp"

#include <algorithm>

namespace cordon::structures {

RangeTree2D::RangeTree2D(std::vector<Point> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  const std::size_t n = points_.size();
  leaves_ = 1;
  while (leaves_ < n) leaves_ <<= 1;
  nodes_.assign(2 * leaves_, {});
  for (std::size_t i = 0; i < n; ++i)
    nodes_[leaves_ + i] = {{points_[i].y, points_[i].id}};
  for (std::size_t v = leaves_ - 1; v >= 1; --v) {
    const auto& l = nodes_[2 * v];
    const auto& r = nodes_[2 * v + 1];
    auto& dst = nodes_[v];
    dst.resize(l.size() + r.size());
    std::merge(l.begin(), l.end(), r.begin(), r.end(), dst.begin(),
               [](const Entry& a, const Entry& b) { return a.y < b.y; });
    if (v == 1) break;
  }
}

namespace {

// First index in `v` with y >= key.
std::size_t lower_y(const std::vector<RangeTree2D::Entry>& v,
                    std::uint32_t key) {
  std::size_t lo = 0, hi = v.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (v[mid].y < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

std::vector<std::uint32_t> RangeTree2D::report(std::uint32_t xlo,
                                               std::uint32_t xhi,
                                               std::uint32_t ylo,
                                               std::uint32_t yhi) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || xlo > xhi || ylo > yhi) return out;
  // Translate x-bounds to rank range [lo, hi) over the x-sorted points.
  auto first_ge = [&](std::uint32_t x) {
    std::size_t lo = 0, hi = points_.size();
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (points_[mid].x < x)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  };
  std::size_t lo = first_ge(xlo);
  std::size_t hi = xhi == 0xffffffffu ? points_.size() : first_ge(xhi + 1);
  // Standard segment-tree descent over [lo, hi).
  std::size_t l = leaves_ + lo, r = leaves_ + hi;
  std::vector<std::size_t> cover;
  while (l < r) {
    if (l & 1) cover.push_back(l++);
    if (r & 1) cover.push_back(--r);
    l >>= 1;
    r >>= 1;
  }
  for (std::size_t v : cover) {
    const auto& entries = nodes_[v];
    for (std::size_t i = lower_y(entries, ylo);
         i < entries.size() && entries[i].y <= yhi; ++i)
      out.push_back(entries[i].id);
  }
  return out;
}

std::size_t RangeTree2D::count(std::uint32_t xlo, std::uint32_t xhi,
                               std::uint32_t ylo, std::uint32_t yhi) const {
  if (points_.empty() || xlo > xhi || ylo > yhi) return 0;
  auto first_ge = [&](std::uint32_t x) {
    std::size_t lo = 0, hi = points_.size();
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (points_[mid].x < x)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  };
  std::size_t lo = first_ge(xlo);
  std::size_t hi = xhi == 0xffffffffu ? points_.size() : first_ge(xhi + 1);
  std::size_t l = leaves_ + lo, r = leaves_ + hi;
  std::size_t total = 0;
  auto count_node = [&](std::size_t v) {
    const auto& entries = nodes_[v];
    std::size_t a = lower_y(entries, ylo);
    std::size_t b = yhi == 0xffffffffu ? entries.size()
                                       : lower_y(entries, yhi + 1);
    total += b - a;
  };
  while (l < r) {
    if (l & 1) count_node(l++);
    if (r & 1) count_node(--r);
    l >>= 1;
    r >>= 1;
  }
  return total;
}

}  // namespace cordon::structures
