// Static 2D range reporting (Sec. 5.3.1 "Range Report Based on Tree
// Depth").
//
// Points are (x, y) pairs with ids; the Tree-GLWS instantiation is
// x = Euler-tour entry time, y = tree depth, so "nodes of a subtree with
// depth in [dlo, dhi]" becomes one orthogonal range-report query.
// Implemented as a merge-sort tree: O(n log n) build, O(log^2 n + out)
// report.
#pragma once

#include <cstdint>
#include <vector>

namespace cordon::structures {

class RangeTree2D {
 public:
  struct Point {
    std::uint32_t x;
    std::uint32_t y;
    std::uint32_t id;
  };

  explicit RangeTree2D(std::vector<Point> points);
  RangeTree2D() = default;

  /// Ids of all points with xlo <= x <= xhi and ylo <= y <= yhi.
  [[nodiscard]] std::vector<std::uint32_t> report(std::uint32_t xlo,
                                                  std::uint32_t xhi,
                                                  std::uint32_t ylo,
                                                  std::uint32_t yhi) const;

  /// Number of points in the box (same bounds semantics as report()).
  [[nodiscard]] std::size_t count(std::uint32_t xlo, std::uint32_t xhi,
                                  std::uint32_t ylo, std::uint32_t yhi) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  struct Entry {
    std::uint32_t y;
    std::uint32_t id;
  };

 private:
  std::vector<Point> points_;              // sorted by x
  std::size_t leaves_ = 0;                 // power-of-two leaf count
  std::vector<std::vector<Entry>> nodes_;  // y-sorted entries per segment
};

}  // namespace cordon::structures
