// Sparse-table range-minimum queries (static, O(n log n) build, O(1) query).
//
// Used by the parallel OAT reinsertion step (Appendix A: find the first
// element >= x after a position) and by tests as an oracle for tree path
// queries.
#pragma once

#include <bit>
#include <cstddef>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cordon::structures {

template <typename T, typename Less = std::less<T>>
class SparseTableRmq {
 public:
  SparseTableRmq() = default;

  explicit SparseTableRmq(std::vector<T> values, Less less = Less{})
      : values_(std::move(values)), less_(less) {
    std::size_t n = values_.size();
    if (n == 0) return;
    std::size_t levels = std::bit_width(n);
    idx_.resize(levels);
    idx_[0].resize(n);
    for (std::size_t i = 0; i < n; ++i) idx_[0][i] = i;
    for (std::size_t k = 1; k < levels; ++k) {
      std::size_t len = std::size_t{1} << k;
      idx_[k].resize(n - len + 1);
      auto& prev = idx_[k - 1];
      auto& cur = idx_[k];
      parallel::parallel_for(0, cur.size(), [&](std::size_t i) {
        std::size_t a = prev[i], b = prev[i + len / 2];
        cur[i] = less_(values_[b], values_[a]) ? b : a;
      });
    }
  }

  /// Index of the minimum in [lo, hi) (leftmost on ties).
  [[nodiscard]] std::size_t argmin(std::size_t lo, std::size_t hi) const {
    std::size_t k = std::bit_width(hi - lo) - 1;
    std::size_t a = idx_[k][lo];
    std::size_t b = idx_[k][hi - (std::size_t{1} << k)];
    return less_(values_[b], values_[a]) ? b : a;
  }

  [[nodiscard]] const T& min(std::size_t lo, std::size_t hi) const {
    return values_[argmin(lo, hi)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const T& value(std::size_t i) const { return values_[i]; }

 private:
  std::vector<T> values_;
  Less less_;
  std::vector<std::vector<std::size_t>> idx_;
};

}  // namespace cordon::structures
