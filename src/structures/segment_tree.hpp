// Point-update / range-query segment tree over a fixed-size array.
//
// Used on top of the heavy-light decomposition for tree path queries in
// Tree-GLWS: values are per-node "availability depths" and the query is a
// range minimum along HLD chain segments.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace cordon::structures {

template <typename T, typename Combine = std::plus<T>>
class SegmentTree {
 public:
  SegmentTree() = default;

  SegmentTree(std::size_t n, T identity, Combine combine = Combine{})
      : n_(n), identity_(identity), combine_(combine) {
    size_ = 1;
    while (size_ < n_) size_ <<= 1;
    if (size_ == 0) size_ = 1;
    tree_.assign(2 * size_, identity_);
  }

  void set(std::size_t i, const T& value) {
    std::size_t v = size_ + i;
    tree_[v] = value;
    for (v >>= 1; v >= 1; v >>= 1)
      tree_[v] = combine_(tree_[2 * v], tree_[2 * v + 1]);
  }

  [[nodiscard]] const T& get(std::size_t i) const { return tree_[size_ + i]; }

  /// Combine over [lo, hi).
  [[nodiscard]] T query(std::size_t lo, std::size_t hi) const {
    T left = identity_, right = identity_;
    std::size_t l = size_ + lo, r = size_ + hi;
    while (l < r) {
      if (l & 1) left = combine_(left, tree_[l++]);
      if (r & 1) right = combine_(tree_[--r], right);
      l >>= 1;
      r >>= 1;
    }
    return combine_(left, right);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t size_ = 0;
  T identity_{};
  Combine combine_{};
  std::vector<T> tree_;
};

}  // namespace cordon::structures
