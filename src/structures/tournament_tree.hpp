// Tournament tree for batched prefix-minimum extraction.
//
// The data structure from Gu et al. [47] that powers the parallel LIS and
// sparse-LCS cordon rounds (Sec. 3).  It maintains a fixed sequence of
// keys, some of which are "removed" (set to +inf), and supports
//
//   extract_prefix_minima(): return (and remove) every active position i
//   whose key is <= the minimum active key strictly before i.
//
// One call identifies exactly the states on the current cordon.  The
// extraction visits only subtrees whose minimum can contribute, giving
// O(l log(L/l)) work for l extracted out of L stored, and parallelizes by
// recursing on the two children with par_do (the right child's bound uses
// the left subtree's *pre-extraction* minimum, so the sides are
// independent).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cordon::structures {

class TournamentTree {
 public:
  using Key = std::uint64_t;
  static constexpr Key kInf = std::numeric_limits<Key>::max();

  explicit TournamentTree(const std::vector<Key>& keys)
      : TournamentTree(std::span<const Key>(keys)) {}

  explicit TournamentTree(std::span<const Key> keys) : n_(keys.size()) {
    build([&](std::size_t i) { return keys[i]; });
  }

  /// Loads 32-bit keys (the SoA LCS j stream) directly into the leaves —
  /// no intermediate widened array.
  explicit TournamentTree(std::span<const std::uint32_t> keys)
      : n_(keys.size()) {
    build([&](std::size_t i) { return static_cast<Key>(keys[i]); });
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return min_[1] == kInf; }
  [[nodiscard]] Key global_min() const noexcept { return min_[1]; }
  [[nodiscard]] Key key_at(std::size_t i) const { return min_[size_ + i]; }

  /// Removes position i (sets its key to +inf) and fixes ancestors.
  void remove(std::size_t i) {
    std::size_t v = size_ + i;
    min_[v] = kInf;
    for (v >>= 1; v >= 1; v >>= 1)
      min_[v] = std::min(min_[2 * v], min_[2 * v + 1]);
  }

  /// Extracts all active prefix-min positions in one parallel pass.
  /// Returned positions are sorted.  Each extracted position is removed.
  [[nodiscard]] std::vector<std::size_t> extract_prefix_minima() {
    std::vector<std::size_t> out;
    extract_prefix_minima_into(out);
    return out;
  }

  /// Reusing variant: clears `out` and fills it with the extracted
  /// positions.  Callers that loop rounds keep one buffer alive so the
  /// steady state performs no frontier allocation (the capacity of the
  /// largest frontier is retained).
  void extract_prefix_minima_into(std::vector<std::size_t>& out) {
    out.clear();
    if (min_[1] == kInf) return;
    extract_rec(1, 0, size_, kInf, out);
  }

 private:
  template <typename KeyAt>
  void build(const KeyAt& key_at) {
    size_ = 1;
    while (size_ < n_) size_ <<= 1;
    min_.assign(2 * size_, kInf);
    for (std::size_t i = 0; i < n_; ++i) min_[size_ + i] = key_at(i);
    for (std::size_t v = size_ - 1; v >= 1; --v)
      min_[v] = std::min(min_[2 * v], min_[2 * v + 1]);
  }
  // Sequential-shaped recursion with parallel forks for large subtrees.
  // `bound` = min active key strictly before this subtree (pre-extraction).
  void extract_rec(std::size_t v, std::size_t lo, std::size_t hi, Key bound,
                   std::vector<std::size_t>& out) {
    // Nothing here can be a prefix-min: either everything is removed
    // (min == kInf, which would spuriously satisfy inf <= inf against an
    // infinite bound) or the subtree minimum loses to the prefix bound.
    if (min_[v] == kInf || min_[v] > bound) return;
    if (hi - lo == 1) {
      // Leaf: key <= bound, so it is a prefix minimum.
      out.push_back(lo);
      min_[v] = kInf;
      return;
    }
    std::size_t mid = lo + (hi - lo) / 2;
    Key left_min = min_[2 * v];  // pre-extraction minimum of the left side
    if (hi - lo >= kParCutoff) {
      std::vector<std::size_t> right_out;
      parallel::par_do(
          [&] { extract_rec(2 * v, lo, mid, bound, out); },
          [&] {
            extract_rec(2 * v + 1, mid, hi, std::min(bound, left_min),
                        right_out);
          });
      out.insert(out.end(), right_out.begin(), right_out.end());
    } else {
      extract_rec(2 * v, lo, mid, bound, out);
      extract_rec(2 * v + 1, mid, hi, std::min(bound, left_min), out);
    }
    min_[v] = std::min(min_[2 * v], min_[2 * v + 1]);
  }

  static constexpr std::size_t kParCutoff = 1u << 14;

  std::size_t n_;
  std::size_t size_;            // leaves (power of two)
  std::vector<Key> min_;        // 1-indexed segment-tree layout
};

}  // namespace cordon::structures
