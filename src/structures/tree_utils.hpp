// Rooted-tree utilities shared by Tree-GLWS and the tree data structures:
// adjacency from a parent array, Euler tour, depths, subtree sizes.
#pragma once

#include <cstdint>
#include <vector>

namespace cordon::structures {

inline constexpr std::uint32_t kNoNode = 0xffffffffu;

/// A rooted tree given by a parent array (parent[root] == kNoNode).
/// Children lists preserve insertion order (node index order).
struct RootedTree {
  std::vector<std::uint32_t> parent;
  std::vector<std::vector<std::uint32_t>> children;
  std::uint32_t root = 0;

  explicit RootedTree(std::vector<std::uint32_t> parent_array)
      : parent(std::move(parent_array)), children(parent.size()) {
    for (std::uint32_t v = 0; v < parent.size(); ++v) {
      if (parent[v] == kNoNode)
        root = v;
      else
        children[parent[v]].push_back(v);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
};

/// Preorder traversal data: entry/exit times (subtree of v = [tin[v],
/// tout[v])), depth of each node, and the preorder sequence itself.
struct EulerTour {
  std::vector<std::uint32_t> tin;
  std::vector<std::uint32_t> tout;
  std::vector<std::uint32_t> depth;
  std::vector<std::uint32_t> order;  // order[t] = node at preorder time t
};

[[nodiscard]] EulerTour build_euler_tour(const RootedTree& tree);

/// Subtree sizes (iterative, reverse-preorder accumulation).
[[nodiscard]] std::vector<std::uint32_t> subtree_sizes(const RootedTree& tree);

}  // namespace cordon::structures
