// Tree-GLWS (Sec. 5.3, Thm 5.3): GLWS along every root-to-node path.
//
// Given a rooted tree T, boundary D[root] = d0, and a convex cost on
// depths, compute for every node v:
//   D[v] = min over proper ancestors u of  E[u] + w(depth(u), depth(v)),
// with E[u] = f(D[u], u).  Sibling nodes share D (same ancestor set) but
// may differ in E.
//
//   * tree_glws_naive      — O(n * depth) ancestor scan (oracle),
//   * tree_glws_sequential — DFS with a *journaled* best-decision array:
//     convex inserts are undone on backtrack, queries are binary
//     searches, so one array serves every path (the inherently
//     sequential baseline the paper describes),
//   * tree_glws_parallel   — the Cordon Algorithm on trees: rounds of
//     depth-windowed prefix-doubling (subtree + depth-range extraction
//     via a 2D range report), sentinels located with find-first searches
//     against the path envelope, per-path blocking resolved with
//     HLD + segment-tree path minima, and per-node best-decision lists
//     maintained as *persistent treaps* so sibling branches share their
//     common path prefix (the O(n^2) -> O~(n) space/work reduction of
//     Sec. 5.3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/glws/glws.hpp"  // CostFn, EFn
#include "src/structures/tree_utils.hpp"

namespace cordon::treeglws {

struct TreeGlwsResult {
  std::vector<double> d;             // D[v]
  std::vector<std::uint32_t> best;   // best ancestor of v (node id)
  core::DpStats stats;
  core::SolvePath path = core::SolvePath::kParallel;  // set by tree_glws_auto
};

/// O(sum of depths) oracle: scans all ancestors of every node.
[[nodiscard]] TreeGlwsResult tree_glws_naive(const structures::RootedTree& t,
                                             double d0, const glws::CostFn& w,
                                             const glws::EFn& e);

/// Sequential DFS with journaled decision intervals (convex costs).
[[nodiscard]] TreeGlwsResult tree_glws_sequential(
    const structures::RootedTree& t, double d0, const glws::CostFn& w,
    const glws::EFn& e);

/// Parallel Cordon rounds with persistent envelopes (convex costs).
/// stats.rounds counts phase-parallel rounds.
[[nodiscard]] TreeGlwsResult tree_glws_parallel(const structures::RootedTree& t,
                                                double d0,
                                                const glws::CostFn& w,
                                                const glws::EFn& e);

/// Production entry point: tree_glws_sequential when effective
/// parallelism is 1 or the node count is under the adaptive cutoff
/// (core::kTreeGlwsSeqCutoff, override CORDON_TREEGLWS_CUTOFF),
/// tree_glws_parallel otherwise.  Routing recorded in
/// TreeGlwsResult::path.
[[nodiscard]] TreeGlwsResult tree_glws_auto(const structures::RootedTree& t,
                                            double d0, const glws::CostFn& w,
                                            const glws::EFn& e);

}  // namespace cordon::treeglws
