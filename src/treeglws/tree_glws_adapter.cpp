// Engine adapter: Tree-GLWS (Sec. 5.3, Thm 5.3).
#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/engine/adapter_util.hpp"
#include "src/engine/registry.hpp"
#include "src/treeglws/tree_glws.hpp"

namespace cordon::engine {
namespace {

class TreeGlwsSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view key() const override { return "treeglws"; }
  [[nodiscard]] std::string_view description() const override {
    return "GLWS along every root-to-node path of a rooted tree, convex "
           "costs (Sec. 5.3)";
  }

  [[nodiscard]] SolveResult solve(const Instance& inst) const override {
    const auto& p = validate(inst);
    structures::RootedTree t(p.parent);
    auto r = treeglws::tree_glws_auto(t, p.d0, p.cost.make(),
                                      glws::identity_e());
    return pack(p, r);
  }

  [[nodiscard]] SolveResult solve_reference(
      const Instance& inst) const override {
    const auto& p = validate(inst);
    structures::RootedTree t(p.parent);
    auto r =
        treeglws::tree_glws_naive(t, p.d0, p.cost.make(), glws::identity_e());
    return pack(p, r);
  }

  [[nodiscard]] Instance generate(const GenOptions& opt) const override {
    TreeGlwsInstance p;
    p.parent = detail::gen_parents(std::max<std::uint64_t>(1, opt.n), opt.seed);
    p.d0 = 0;
    p.cost = detail::gen_cost(opt.seed, /*convex_only=*/true);
    return {"treeglws", p};
  }

 private:
  static const TreeGlwsInstance& validate(const Instance& inst) {
    const auto& p = inst.as<TreeGlwsInstance>();
    if (p.parent.empty())
      throw std::invalid_argument("treeglws requires a non-empty tree");
    if (p.cost.shape() != glws::Shape::kConvex)
      throw std::invalid_argument("treeglws requires a convex cost family");
    return p;
  }

  // Headline scalar: the sum of D over all non-root nodes (every such
  // node has at least one ancestor, so every term is finite).
  static SolveResult pack(const TreeGlwsInstance& p,
                          const treeglws::TreeGlwsResult& r) {
    SolveResult out;
    double sum = 0;
    for (double v : r.d)
      if (std::isfinite(v)) sum += v;
    out.objective = sum;
    out.stats = r.stats;
    out.path = r.path;
    out.detail = "treeglws n=" + std::to_string(p.parent.size()) +
                 " sum(D)=" + std::to_string(sum);
    return out;
  }
};

}  // namespace

void register_treeglws(ProblemRegistry& reg) {
  reg.add(std::make_unique<TreeGlwsSolver>());
}

}  // namespace cordon::engine
