// Parallel Tree-GLWS (Sec. 5.3.2).
//
// Round anatomy (all convex):
//   * the tentative region is a forest of subtrees whose roots hang off
//     finalized nodes;
//   * prefix-doubling by depth: the t-th substep probes nodes of each
//     subtree with relative depth < 2^t, extracted with the 2D range
//     report (Euler-tour index x tree depth) of Sec. 5.3.1;
//   * a probed node v computes its tentative value against the
//     *persistent* best-decision treap of its subtree root's parent (all
//     finalized candidates of its path) and locates its sentinel depth
//     s_v = first depth where v beats that envelope;
//   * blocking: u is ready iff no proper ancestor v (tentative) has
//     s_v <= depth(u).  We point-write s_v into a min-segment-tree over
//     HLD positions and answer each readiness check with an O(log^2 n)
//     root-path minimum — values outside the probe window are +inf, so no
//     per-round clearing logic leaks across subtrees;
//   * finalized nodes extend their parent's persistent envelope by one
//     convex insert (split / truncate / join on the treap), processed in
//     increasing depth order — sibling branches share every treap node of
//     the common prefix, the O(n^2) -> O~(n) space argument of the paper.
//     (The paper further parallelizes this step with HLD-ordered
//     divide-and-conquer; we keep it ordered within a round and note the
//     substitution in DESIGN.md — work is identical, only the per-round
//     span of this step differs.)
#include <atomic>
#include <limits>
#include <span>

#include "src/core/arena.hpp"
#include "src/core/cutoff.hpp"
#include "src/core/trace.hpp"
#include "src/parallel/primitives.hpp"
#include "src/structures/hld.hpp"
#include "src/structures/persistent_treap.hpp"
#include "src/structures/range_tree.hpp"
#include "src/structures/segment_tree.hpp"
#include "src/treeglws/tree_glws.hpp"

namespace cordon::treeglws {

using structures::DecisionInterval;
using structures::HeavyLightDecomposition;
using structures::PersistentIntervalTreap;
using structures::RangeTree2D;
using structures::RootedTree;
using structures::SegmentTree;

namespace {

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

struct MinOp {
  std::size_t operator()(std::size_t a, std::size_t b) const {
    return a < b ? a : b;
  }
};

}  // namespace

TreeGlwsResult tree_glws_parallel(const RootedTree& t, double d0,
                                  const glws::CostFn& w, const glws::EFn& e) {
  const std::size_t n = t.size();
  TreeGlwsResult res;
  res.d.assign(n, std::numeric_limits<double>::infinity());
  res.best.assign(n, t.root);
  res.d[t.root] = d0;
  if (n == 1) {
    res.stats.states = 1;
    return res;
  }

  structures::EulerTour et = build_euler_tour(t);
  std::size_t max_depth = 0;
  for (std::uint32_t d : et.depth) max_depth = std::max<std::size_t>(max_depth, d);

  // Substrates: subtree+depth window extraction, path-min blocking.
  std::vector<RangeTree2D::Point> pts(n);
  for (std::uint32_t v = 0; v < n; ++v)
    pts[v] = {et.tin[v], et.depth[v], v};
  RangeTree2D window(std::move(pts));
  HeavyLightDecomposition hld(t);
  SegmentTree<std::size_t, MinOp> sentinel_seg(n, kUnset, MinOp{});

  // Whole-run scratch lives in the worker's arena; the per-round arrays
  // below are reset (rewound or refilled) between rounds, never freed.
  core::Arena& arena = core::worker_arena();
  core::ArenaScope scratch(arena);
  std::span<double> ev = arena.make_span<double>(n, 0.0);
  ev[t.root] = e(d0, t.root);

  core::AtomicDpStats stats;
  auto eval = [&](std::uint32_t u, std::size_t dep) {
    stats.add_relaxations(1);
    return ev[u] + w(et.depth[u], dep);
  };

  // Persistent envelopes: env[v] = best-decision treap of the path from
  // the root through v (candidates = v and its ancestors).
  PersistentIntervalTreap pool;
  std::vector<PersistentIntervalTreap::Ref> env(
      n, PersistentIntervalTreap::kNil);
  env[t.root] =
      pool.build({{1, max_depth == 0 ? 1 : max_depth, t.root}});

  // Convex insert of freshly finalized candidate u into its parent's
  // envelope (split / truncate straddler / append).
  auto insert_candidate = [&](PersistentIntervalTreap::Ref base,
                              std::uint32_t u) {
    std::size_t lo = et.depth[u] + 1;
    if (lo > max_depth) return base;
    // First depth >= lo where u beats the envelope.  Convexity: the win
    // set is a suffix of depths, so triple-level find_first plus an
    // in-triple binary search pins it down.
    auto wins_at = [&](std::size_t dep) {
      const DecisionInterval* iv = pool.find(base, dep);
      return iv != nullptr &&
             eval(u, dep) < eval(static_cast<std::uint32_t>(iv->j), dep);
    };
    const DecisionInterval* first = pool.find_first(
        base, [&](const DecisionInterval& iv) {
          std::size_t probe = std::max(iv.r, lo);
          if (probe > iv.r) return false;  // triple entirely below lo
          return eval(u, iv.r) <
                 eval(static_cast<std::uint32_t>(iv.j), iv.r);
        });
    if (first == nullptr) return base;  // u never wins
    std::size_t a = std::max(first->l, lo), b = first->r;
    std::size_t start;
    if (wins_at(a)) {
      start = a;
    } else {
      // lose at a, win at b
      while (a + 1 < b) {
        std::size_t mid = a + (b - a) / 2;
        if (wins_at(mid))
          b = mid;
        else
          a = mid;
      }
      start = b;
    }
    // Keep triples with l < start, truncate the straddler, append u.
    auto [left, right] = pool.split(base, start);
    (void)right;
    PersistentIntervalTreap::Ref out = left;
    if (const DecisionInterval* lastiv = pool.last(out);
        lastiv != nullptr && lastiv->r >= start) {
      DecisionInterval trunc{lastiv->l, start - 1, lastiv->j};
      auto [l2, straddle] = pool.split(out, lastiv->l);
      (void)straddle;
      out = trunc.l <= trunc.r ? pool.insert(l2, trunc) : l2;
    }
    return pool.insert(out, {start, max_depth, static_cast<std::size_t>(u)});
  };

  // Tentative subtree roots of the current round.  Every buffer below is
  // either an arena span (dense per-node scratch, fixed size) or a
  // round-reused vector (dynamic push targets keep their high-water
  // capacity), so the round loop allocates nothing once warm.
  std::vector<std::uint32_t> roots = t.children[t.root];
  std::vector<std::uint32_t> probed;       // all nodes probed this round
  std::span<std::size_t> sentinel = arena.make_span<std::size_t>(n, kUnset);
  std::span<std::uint8_t> ready = arena.make_span<std::uint8_t>(n, std::uint8_t{0});
  std::span<std::size_t> cordon_of = arena.make_span<std::size_t>(n, kUnset);
  std::vector<std::uint32_t> active, still, order, next_roots;

  while (!roots.empty()) {
    stats.add_round();
    telemetry::RoundSpan round_span("treeglws.round", stats);
    probed.clear();

    // Prefix-doubling probe, synchronized across subtrees.  A subtree
    // keeps doubling while its shallowest sentinel (the cordon) is still
    // beyond the probed window — the tree analogue of Alg. 1's
    // "cordon <= r+1" stop test.
    active = roots;
    std::fill(cordon_of.begin(), cordon_of.end(), kUnset);
    for (std::size_t tstep = 1; !active.empty(); ++tstep) {
      still.clear();
      for (std::uint32_t r : active) {
        std::uint32_t base_depth = et.depth[r];
        std::size_t dlo = base_depth + (std::size_t{1} << (tstep - 1)) - 1;
        std::size_t dhi = base_depth + (std::size_t{1} << tstep) - 2;
        dhi = std::min(dhi, max_depth);
        if (dlo > max_depth) continue;
        std::vector<std::uint32_t> batch = window.report(
            et.tin[r], et.tout[r] - 1, static_cast<std::uint32_t>(dlo),
            static_cast<std::uint32_t>(dhi));
        if (batch.empty()) continue;

        PersistentIntervalTreap::Ref base =
            r == t.root ? env[t.root]
                        : env[t.parent[r]];
        std::atomic<std::size_t> min_sentinel{cordon_of[r]};
        parallel::parallel_for(0, batch.size(), [&](std::size_t k) {
          std::uint32_t v = batch[k];
          stats.add_states(1);
          std::size_t dep = et.depth[v];
          const DecisionInterval* iv = pool.find(base, dep);
          std::uint32_t u = static_cast<std::uint32_t>(iv->j);
          res.d[v] = eval(u, dep);
          res.best[v] = u;
          ev[v] = e(res.d[v], v);
          // Sentinel: first depth where v would beat the finalized
          // envelope (v can only relax its own descendants).
          const DecisionInterval* first =
              pool.find_first(base, [&](const DecisionInterval& x) {
                if (x.r <= dep) return false;
                return eval(v, x.r) <
                       eval(static_cast<std::uint32_t>(x.j), x.r);
              });
          std::size_t s = kUnset;
          if (first != nullptr) {
            std::size_t a = std::max(first->l, dep + 1), b = first->r;
            auto vwins = [&](std::size_t dd) {
              const DecisionInterval* cur = pool.find(base, dd);
              return eval(v, dd) <
                     eval(static_cast<std::uint32_t>(cur->j), dd);
            };
            if (vwins(a)) {
              s = a;
            } else {
              while (a + 1 < b) {
                std::size_t mid = a + (b - a) / 2;
                if (vwins(mid))
                  b = mid;
                else
                  a = mid;
              }
              s = b;
            }
          }
          sentinel[v] = s;
          if (s != kUnset) {
            std::size_t cur = min_sentinel.load(std::memory_order_relaxed);
            while (s < cur && !min_sentinel.compare_exchange_weak(
                                  cur, s, std::memory_order_relaxed)) {
            }
          }
        });
        for (std::uint32_t v : batch) probed.push_back(v);  // lint: allow-alloc (high-water scratch, reused across rounds)
        cordon_of[r] = min_sentinel.load(std::memory_order_relaxed);
        // Keep doubling while the cordon (if any) is still beyond the
        // window: nodes up to cordon-1 on this subtree's paths may be
        // ready and must be probed this round.
        if (dhi < max_depth && (cordon_of[r] == kUnset || cordon_of[r] > dhi + 1)) {
          still.push_back(r);  // lint: allow-alloc (warm swap buffer)
        }
      }
      std::swap(active, still);  // both buffers stay warm
    }


    // Blocking: write sentinel depths into the HLD segment tree, then a
    // root-path minimum tells each probed node whether any (tentative)
    // proper ancestor would relax at or above its depth.
    for (std::uint32_t v : probed)
      if (sentinel[v] != kUnset) sentinel_seg.set(hld.pos(v), sentinel[v]);
    parallel::parallel_for(0, probed.size(), [&](std::size_t k) {
      std::uint32_t v = probed[k];
      std::size_t min_s = kUnset;
      if (v != t.root && t.parent[v] != structures::kNoNode) {
        std::uint32_t p = t.parent[v];
        hld.for_each_root_path_segment(p, [&](std::uint32_t lo,
                                              std::uint32_t hi) {
          min_s = std::min(min_s, sentinel_seg.query(lo, hi));
        });
      }
      ready[v] = min_s > et.depth[v] ? 1 : 0;
    });
    for (std::uint32_t v : probed)
      if (sentinel[v] != kUnset) sentinel_seg.set(hld.pos(v), kUnset);

    // Extend envelopes top-down over the newly finalized forest and
    // collect next round's subtree roots.
    next_roots.clear();
    // Process ready nodes in increasing depth so parents are done first.
    order.clear();
    order.reserve(probed.size());  // lint: allow-alloc (high-water scratch, reused across rounds)
    for (std::uint32_t v : probed)
      if (ready[v]) order.push_back(v);  // lint: allow-alloc (within reserved capacity)
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return et.depth[a] < et.depth[b];
              });
    for (std::uint32_t v : order)
      env[v] = insert_candidate(env[t.parent[v]], v);
    for (std::uint32_t v : order)
      for (std::uint32_t c : t.children[v])
        if (!ready[c]) next_roots.push_back(c);  // lint: allow-alloc (high-water scratch, reused across rounds)
    // Subtree roots that stayed blocked roll over to the next round.
    for (std::uint32_t r : roots)
      if (!ready[r]) next_roots.push_back(r);  // lint: allow-alloc (high-water scratch, reused across rounds)

    // Reset per-round scratch.
    for (std::uint32_t v : probed) {
      sentinel[v] = kUnset;
      ready[v] = 0;
    }
    std::swap(roots, next_roots);
  }

  res.stats = stats.snapshot();
  return res;
}

TreeGlwsResult tree_glws_auto(const structures::RootedTree& t, double d0,
                              const glws::CostFn& w, const glws::EFn& e) {
  const std::size_t cutoff = core::cutoff_from_env("CORDON_TREEGLWS_CUTOFF",
                                                   core::kTreeGlwsSeqCutoff);
  const std::size_t min_workers = core::cutoff_from_env(
      "CORDON_TREEGLWS_MIN_WORKERS", core::kTreeGlwsMinWorkers);
  if (core::use_sequential(t.size(), cutoff, min_workers)) {
    TreeGlwsResult r = tree_glws_sequential(t, d0, w, e);
    r.path = core::SolvePath::kSequentialCutoff;
    return r;
  }
  return tree_glws_parallel(t, d0, w, e);
}

}  // namespace cordon::treeglws
