#include <cassert>
#include <limits>

#include "src/core/cancel.hpp"
#include "src/structures/monotonic_queue.hpp"  // DecisionInterval
#include "src/treeglws/tree_glws.hpp"

namespace cordon::treeglws {

using structures::DecisionInterval;
using structures::RootedTree;

TreeGlwsResult tree_glws_naive(const RootedTree& t, double d0,
                               const glws::CostFn& w, const glws::EFn& e) {
  const std::size_t n = t.size();
  TreeGlwsResult res;
  res.d.assign(n, std::numeric_limits<double>::infinity());
  res.best.assign(n, t.root);
  std::vector<double> ev(n, 0.0);
  std::vector<std::uint32_t> depth(n, 0);
  res.d[t.root] = d0;
  ev[t.root] = e(d0, t.root);

  // Preorder DFS; each node scans its whole ancestor chain.
  std::vector<std::uint32_t> stack{t.root};
  while (!stack.empty()) {
    std::uint32_t v = stack.back();
    stack.pop_back();
    if (v != t.root) {
      depth[v] = depth[t.parent[v]] + 1;
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_u = t.parent[v];
      for (std::uint32_t u = t.parent[v];; u = t.parent[u]) {
        ++res.stats.relaxations;
        double cand = ev[u] + w(depth[u], depth[v]);
        if (cand < best) {
          best = cand;
          best_u = u;
        }
        if (u == t.root) break;
      }
      res.d[v] = best;
      res.best[v] = best_u;
      ev[v] = e(best, v);
    }
    ++res.stats.states;
    for (std::uint32_t c : t.children[v]) stack.push_back(c);
  }
  return res;
}

namespace {

// Journal entry for one convex insert: everything needed to restore the
// decision array on backtrack.
struct JournalEntry {
  std::vector<DecisionInterval> popped;  // suffix removed (in order)
  bool trimmed = false;                  // was the new back's r reduced?
  std::size_t old_r = 0;
  bool pushed = false;                   // was a new interval appended?
};

}  // namespace

TreeGlwsResult tree_glws_sequential(const RootedTree& t, double d0,
                                    const glws::CostFn& w,
                                    const glws::EFn& e) {
  const std::size_t n = t.size();
  TreeGlwsResult res;
  res.d.assign(n, std::numeric_limits<double>::infinity());
  res.best.assign(n, t.root);
  std::vector<double> ev(n, 0.0);
  std::vector<std::uint32_t> depth(n, 0);
  res.d[t.root] = d0;
  ev[t.root] = e(d0, t.root);

  core::DpStats stats;
  const std::size_t max_depth = n;  // depths are < n
  auto eval = [&](std::uint32_t u, std::size_t dep) {
    ++stats.relaxations;
    return ev[u] + w(depth[u], dep);
  };

  // The path's best-decision array: sorted triples over depths, exactly
  // the 1D structure, but with journaled mutation for backtracking.
  std::vector<DecisionInterval> decisions;
  auto best_of = [&](std::size_t dep) {
    std::size_t lo = 0, hi = decisions.size() - 1;
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (decisions[mid].r < dep)
        lo = mid + 1;
      else
        hi = mid;
    }
    return decisions[lo].j;
  };

  // Convex insert of candidate u (valid for depths > depth[u]) with undo
  // information.
  auto insert_candidate = [&](std::uint32_t u, JournalEntry& je) {
    std::size_t lo = depth[u] + 1;
    if (lo > max_depth) return;
    if (decisions.empty()) {
      decisions.push_back({lo, max_depth, u});
      je.pushed = true;
      return;
    }
    while (!decisions.empty()) {
      DecisionInterval& b = decisions.back();
      std::size_t start = std::max(b.l, lo);
      if (start > b.r) break;
      std::uint32_t bj = static_cast<std::uint32_t>(b.j);
      if (eval(u, start) < eval(bj, start)) {
        if (start == b.l) {
          je.popped.push_back(b);
          decisions.pop_back();
          continue;
        }
        je.trimmed = true;
        je.old_r = b.r;
        b.r = start - 1;
        decisions.push_back({start, max_depth, u});
        je.pushed = true;
        return;
      }
      if (eval(u, b.r) >= eval(bj, b.r)) {
        // u loses throughout b.  If pops happened, u's win suffix starts
        // exactly where the first popped interval did — re-cover it.
        if (!je.popped.empty()) {
          decisions.push_back({b.r + 1, max_depth, u});
          je.pushed = true;
        }
        return;
      }
      std::size_t a = start, c = b.r;  // lose at a, win at c
      while (a + 1 < c) {
        std::size_t mid = a + (c - a) / 2;
        if (eval(u, mid) < eval(bj, mid))
          c = mid;
        else
          a = mid;
      }
      je.trimmed = true;
      je.old_r = b.r;
      b.r = c - 1;
      decisions.push_back({c, max_depth, u});
      je.pushed = true;
      return;
    }
    decisions.push_back({lo, max_depth, u});
    je.pushed = true;
  };

  auto undo = [&](JournalEntry& je) {
    if (je.pushed) decisions.pop_back();
    if (je.trimmed) decisions.back().r = je.old_r;
    for (std::size_t k = je.popped.size(); k > 0; --k)
      decisions.push_back(je.popped[k - 1]);
  };

  // Explicit DFS with enter/exit events.
  struct Frame {
    std::uint32_t v;
    bool entering;
  };
  std::vector<Frame> stack{{t.root, true}};
  std::vector<JournalEntry> journal(n);
  core::PollTicker poll;
  while (!stack.empty()) {
    poll.tick();
    auto [v, entering] = stack.back();
    stack.pop_back();
    if (!entering) {
      undo(journal[v]);
      journal[v] = {};
      continue;
    }
    if (v != t.root) {
      depth[v] = depth[t.parent[v]] + 1;
      std::uint32_t u = best_of(depth[v]);
      res.best[v] = u;
      res.d[v] = ev[u] + w(depth[u], depth[v]);
      ev[v] = e(res.d[v], v);
    }
    ++stats.states;
    insert_candidate(v, journal[v]);
    stack.push_back({v, false});
    for (std::uint32_t c : t.children[v]) stack.push_back({c, true});
  }
  res.stats = stats;
  return res;
}

}  // namespace cordon::treeglws
