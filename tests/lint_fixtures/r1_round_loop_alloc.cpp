// lint-fixture: R1
//
// A solver round loop (marked by stats.add_round()) that grows an
// owning vector with no arena and no allow-alloc annotation.  Never
// compiled — cordon_lint.py --fixtures must flag the push_back.
#include <vector>

void solve(DpStats& stats, std::size_t rounds) {
  std::vector<int> frontier;
  for (std::size_t r = 0; r < rounds; ++r) {
    stats.add_round();
    frontier.push_back(static_cast<int>(r));  // R1: grows every round
  }
}
