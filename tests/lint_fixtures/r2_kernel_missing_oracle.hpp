// lint-fixture: R2
//
// A vectorized kernel with no same-name kernels::scalar reference and
// no `// lint: oracle=<name>` note.  Never compiled — cordon_lint.py
// --fixtures must flag argmin_fancy.

namespace scalar {

inline int argmin_ref(const int* a, int n) {
  int best = 0;
  for (int i = 1; i < n; ++i)
    if (a[i] < a[best]) best = i;
  return best;
}

}  // namespace scalar

inline int argmin_fancy(const int* a, int n) {  // R2: no scalar oracle
  int best = 0;
  for (int i = 1; i < n; ++i) best = a[i] < a[best] ? i : best;
  return best;
}
