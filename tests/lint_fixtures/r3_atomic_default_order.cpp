// lint-fixture: R3
//
// Atomic accesses that rely on the default seq_cst order or omit the
// adjacent `// order:` justification.  Never compiled — cordon_lint.py
// --fixtures must flag both.
#include <atomic>

int read_flag(std::atomic<int>& flag) {
  return flag.load();  // R3: implicit seq_cst
}

void set_flag(std::atomic<int>& flag) {
  flag.store(1, std::memory_order_release);  // R3: no order: comment
}
