// lint-fixture: R4
//
// A telemetry counter that is declared but never incremented anywhere,
// plus an exported metric name missing from the documentation.  Never
// compiled — cordon_lint.py --fixtures must flag both.

enum class Counter : int {
  kNeverTouched,  // R4: no increment site exists
  kCount
};

struct MetricInfo {
  const char* name;
  const char* help;
};

inline constexpr MetricInfo kCounterInfo[] = {
    {"cordon_never_touched_total", "declared and forgotten"},  // R4
};
