// lint-fixture: R5
//
// A bare catch(...) that swallows the exception without rethrowing,
// inspecting it, or converting it to a core::SolveError.  Never
// compiled — cordon_lint.py --fixtures must flag the first catch and
// accept the other three.
#include <cstdio>

void swallow_everything() {
  try {
    std::puts("work");
  } catch (...) {
    // R5: the failure is gone — callers see success.
  }
}

void rethrow_is_fine() {
  try {
    std::puts("work");
  } catch (...) {
    throw;
  }
}

void converting_is_fine() {
  try {
    std::puts("work");
  } catch (...) {
    // Mentioning the taxonomy type marks a conversion site; the real
    // pattern is make_exception_ptr(core::SolveError(...)).
    std::puts("SolveError");
    throw;
  }
}

void annotated_is_fine() {
  try {
    std::puts("work");
  } catch (...) {  // lint: allow-catch (best-effort cleanup, failure benign)
  }
}
