// Allocation gate for the service fast path.
//
// Replaces global operator new with a counting interposer and asserts
// that a WARM CordonService::submit cache hit performs ZERO heap
// allocations on the solve/canonicalization path: the measured count per
// warm hit must be (a) independent of the instance size — proving the
// hash-first probe never materializes canonical text and no solver code
// runs — and (b) bounded by the small constant that is entirely
// std::future/result plumbing (promise shared state, the SolveResult
// copies handed across it).  Any regression that re-introduces a
// per-probe canonicalization, a per-probe solver allocation, or an
// accidental O(n) copy trips one of the two assertions.
//
// Own main(): the interposer must own the whole binary, and the pool /
// service must start exactly where the test dictates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/service/service.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

namespace engine = cordon::engine;
namespace service = cordon::service;

// Allocations performed by one warm submit+get of `inst`, with the
// instance copy and hand-off prepared OUTSIDE the measured window (the
// copy is the caller's, not the service's).
std::uint64_t warm_hit_allocs(service::CordonService& svc,
                              const engine::Instance& inst) {
  engine::Instance probe = inst;
  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  engine::SolveResult r = svc.submit(std::move(probe)).get();
  std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_GT(r.stats.states + r.stats.rounds, 0u);
  return after - before;
}

TEST(AllocGate, WarmSubmitHitIsSizeIndependentAndConstant) {
  service::CordonService svc({.max_batch = 8, .cache_capacity = 64});
  const engine::Solver& glws = engine::builtin_registry().at("glws");

  engine::Instance small = glws.generate({256, 4, 11});
  engine::Instance large = glws.generate({4096, 4, 11});

  // Cold solves populate the cache; a first warm round also faults in
  // every lazy singleton on the path (locale facets, gtest internals).
  (void)svc.submit(small).get();
  (void)svc.submit(large).get();
  (void)warm_hit_allocs(svc, small);
  (void)warm_hit_allocs(svc, large);

  std::uint64_t hit_small = warm_hit_allocs(svc, small);
  std::uint64_t hit_large = warm_hit_allocs(svc, large);

  // (a) zero allocations on the solve path: the warm-hit cost cannot
  // depend on the instance size.  (A 16x larger instance with identical
  // counts rules out any hidden canonical-text materialization or
  // per-state work.)
  EXPECT_EQ(hit_small, hit_large);

  // (b) the remaining constant is future/result plumbing only.  Measured
  // ~4 on libstdc++; 12 leaves slack for other standard libraries
  // without letting a real leak (text materialization alone would add
  // size-dependent allocations) slip through.
  EXPECT_LE(hit_large, 12u);

  auto stats = svc.stats();
  EXPECT_GE(stats.cache.hits, 4u);  // every warm probe above hit
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
