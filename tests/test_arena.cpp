// Per-worker arena: epoch reuse, alignment, worker-slot ownership
// (including ExternalWorkerScope adoption), and pool-restart behavior.
//
// Ships its own main() because the pool-restart cases call
// detail::shutdown_pool and the scheduler must not be started by gtest
// machinery in an order the test does not control.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/core/arena.hpp"
#include "src/parallel/scheduler.hpp"

namespace core = cordon::core;
namespace parallel = cordon::parallel;

TEST(Arena, EpochResetReusesMemory) {
  core::Arena a;
  void* first;
  {
    core::ArenaScope scope(a);
    first = a.allocate(1000);
    std::memset(first, 0xab, 1000);
  }
  // Same request after the rewind must land on the same bytes — that is
  // the zero-allocation steady state.
  core::ArenaScope scope(a);
  void* second = a.allocate(1000);
  EXPECT_EQ(first, second);
}

TEST(Arena, NestedScopesAreLifo) {
  core::Arena a;
  core::ArenaScope outer(a);
  auto s1 = a.make_span<std::uint64_t>(16, std::uint64_t{1});
  void* inner_ptr;
  {
    core::ArenaScope inner(a);
    auto s2 = a.make_span<std::uint64_t>(16, std::uint64_t{2});
    inner_ptr = s2.data();
    // The inner span must not alias the outer one.
    EXPECT_NE(static_cast<void*>(s1.data()), static_cast<void*>(s2.data()));
  }
  // Outer data survives the inner rewind...
  for (std::uint64_t v : s1) EXPECT_EQ(v, 1u);
  // ...and the inner region is reusable.
  auto s3 = a.make_span<std::uint64_t>(16);
  EXPECT_EQ(static_cast<void*>(s3.data()), inner_ptr);
}

TEST(Arena, RespectsAlignment) {
  core::Arena a;
  (void)a.allocate(1);  // misalign the bump pointer
  struct alignas(64) Wide {
    double d[8];
  };
  auto s = a.make_span<Wide>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64, 0u);
  (void)a.allocate(3);
  void* p = a.allocate(8, 32);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 32, 0u);
}

TEST(Arena, GrowsAcrossChunksAndRetainsFootprint) {
  core::Arena a;
  core::ArenaScope scope(a);
  // Force several chunks.
  for (int i = 0; i < 40; ++i) (void)a.make_span<double>(1 << 12);
  std::size_t reserved = a.bytes_reserved();
  EXPECT_GT(a.chunk_count(), 1u);
  a.reset();
  // Rewind releases nothing...
  EXPECT_EQ(a.bytes_reserved(), reserved);
  // ...and the same allocation pattern fits without growing.
  for (int i = 0; i < 40; ++i) (void)a.make_span<double>(1 << 12);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsOwnChunk) {
  core::Arena a;
  std::size_t big = core::Arena::kDefaultChunkBytes * 3;
  auto s = a.make_span<std::uint8_t>(big);
  ASSERT_EQ(s.size(), big);
  s[0] = 1;
  s[big - 1] = 2;
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[big - 1], 2);
}

TEST(WorkerArena, PoolWorkersGetDistinctStableArenas) {
  parallel::ensure_started();
  // From the (adopted-as-worker-0) main thread, the arena is stable
  // across calls.
  core::Arena* mine = &core::worker_arena();
  EXPECT_EQ(mine, &core::worker_arena());

  // Distinct workers see distinct arenas: collect arena addresses from
  // parallel bodies and check nobody shared a slot while running
  // concurrently (each body also bump-allocates safely).
  std::vector<const void*> seen(parallel::worker_slots() * 4, nullptr);
  parallel::parallel_for(
      0, seen.size(),
      [&](std::size_t i) {
        core::Arena& a = core::worker_arena();
        core::ArenaScope scope(a);
        auto s = a.make_span<std::uint64_t>(64, std::uint64_t{i});
        EXPECT_EQ(s[63], i);
        seen[i] = &a;
      },
      /*granularity=*/1, /*granularity_floor=*/1);
  for (const void* p : seen) EXPECT_NE(p, nullptr);
}

TEST(WorkerArena, ExternalAdoptionGetsWorkerSlotArena) {
  parallel::ensure_started();
  core::Arena* adopted_arena = nullptr;
  core::Arena* fallback_arena = nullptr;
  std::thread outsider([&] {
    // Without adoption: thread-local fallback.
    fallback_arena = &core::worker_arena();
    void* warm;
    {
      core::ArenaScope scope(*fallback_arena);
      warm = fallback_arena->allocate(256);
    }
    {
      parallel::ExternalWorkerScope adopt;
      ASSERT_TRUE(adopt.adopted());
      adopted_arena = &core::worker_arena();
      // The adopted slot arena is a registry slot, not the thread-local.
      EXPECT_NE(adopted_arena, fallback_arena);
      // It is usable and epoch-disciplined from the adopter.
      core::ArenaScope scope(*adopted_arena);
      auto s = adopted_arena->make_span<double>(128, 3.5);
      EXPECT_EQ(s[127], 3.5);
    }
    // After release the thread falls back to its local arena, whose
    // memory is still warm.
    EXPECT_EQ(&core::worker_arena(), fallback_arena);
    core::ArenaScope scope(*fallback_arena);
    EXPECT_EQ(fallback_arena->allocate(256), warm);
  });
  outsider.join();
  ASSERT_NE(adopted_arena, nullptr);
}

TEST(WorkerArena, AdoptersReuseSlotArenasAcrossThreads) {
  parallel::ensure_started();
  // Serial adopters land on registry slots; with no concurrent
  // adopters, repeat adoption reuses the same (warm) slot arena.
  std::set<core::Arena*> arenas;
  for (int round = 0; round < 3; ++round) {
    std::thread t([&] {
      parallel::ExternalWorkerScope adopt;
      ASSERT_TRUE(adopt.adopted());
      arenas.insert(&core::worker_arena());
    });
    t.join();
  }
  EXPECT_EQ(arenas.size(), 1u);
}

TEST(WorkerArena, PoolRestartKeepsRegistryBounded) {
  // Shutting down and restarting the pool must neither grow the arena
  // registry nor hand a stale thread a slot arena it no longer owns.
  parallel::ensure_started();
  core::Arena* before = &core::worker_arena();
  std::size_t reserved_before;
  {
    core::ArenaScope scope(*before);
    (void)before->allocate(1 << 12);
    reserved_before = before->bytes_reserved();
  }

  parallel::detail::shutdown_pool();
  // Identity went stale with the pool: this thread is an outsider now
  // and must see its thread-local fallback, NOT the slot arena a future
  // pool's worker 0 owns.
  core::Arena* stale = &core::worker_arena();
  EXPECT_NE(stale, before);

  // Restart (this thread becomes worker 0 again) — same slot arena
  // object, memory still warm, no growth.
  parallel::ensure_started();
  core::Arena* after = &core::worker_arena();
  EXPECT_EQ(after, before);
  EXPECT_EQ(after->bytes_reserved(), reserved_before);
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
