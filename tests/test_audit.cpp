// Tests for the compiled-in invariant layer (src/core/audit.hpp) and
// the repo lint (scripts/cordon_lint.py).
//
// The audit layer's contract is configuration-dependent by design, so
// the same binary asserts different things depending on how it was
// built: with CORDON_AUDIT_ENABLED the checks evaluate (exactly once)
// and a violation aborts; without it the macros are true no-ops whose
// condition expressions are never evaluated.  Both halves are covered
// because CI builds this suite Debug+sanitized (audit on) and
// RelWithDebInfo (audit off).
#include "src/core/audit.hpp"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/core/arena.hpp"
#include "src/structures/monotonic_queue.hpp"

namespace audit = cordon::core::audit;

TEST(Audit, KEnabledMatchesTheBuildConfiguration) {
#if CORDON_AUDIT_ENABLED
  EXPECT_TRUE(audit::kEnabled);
#else
  EXPECT_FALSE(audit::kEnabled);
#endif
}

TEST(Audit, ConditionEvaluatesExactlyOnceWhenEnabledNeverWhenDisabled) {
  int evals = 0;
  CORDON_DCHECK(++evals > 0, "side-effect probe");
  EXPECT_EQ(evals, audit::kEnabled ? 1 : 0);
}

TEST(Audit, ChecksRunCounterAdvancesOnlyInAuditBuilds) {
  const std::uint64_t before = audit::checks_run();
  CORDON_DCHECK(true);
  CORDON_DCHECK(2 + 2 == 4, "arithmetic still works");
  const std::uint64_t after = audit::checks_run();
  if (audit::kEnabled)
    EXPECT_GE(after - before, 2u);
  else
    EXPECT_EQ(after, 0u);
}

TEST(Audit, AuditScopeRunsItsStatementsAtScopeExit) {
  int runs = 0;
  {
    CORDON_AUDIT_SCOPE(++runs);
    EXPECT_EQ(runs, 0) << "scope body must not run before scope exit";
  }
  EXPECT_EQ(runs, audit::kEnabled ? 1 : 0);
}

TEST(Audit, InstrumentedHotPathsExecuteChecksInAuditBuilds) {
  // Drive two instrumented structures and require the check counter to
  // have moved — a refactor that compiled the invariants out of the
  // real code paths (not just this file) would fail here.
  const std::uint64_t before = audit::checks_run();

  cordon::core::Arena arena;
  {
    cordon::core::ArenaScope outer(arena);
    (void)arena.make_span<int>(16, 0);
    cordon::core::ArenaScope inner(arena);
    (void)arena.make_span<double>(8, 0.0);
  }

  auto eval = [](std::size_t j, std::size_t i) {
    double len = static_cast<double>(i - j);
    return static_cast<double>(j) * 0.25 + len * len;
  };
  cordon::structures::MonotonicQueue<decltype(eval)> q(32, eval);
  for (std::size_t j = 0; j < 32; ++j) {
    if (j > 0) (void)q.best(j);
    q.insert_convex(j);
  }

  if (audit::kEnabled)
    EXPECT_GT(audit::checks_run(), before);
  else
    EXPECT_EQ(audit::checks_run(), 0u);
}

#if CORDON_AUDIT_ENABLED && defined(GTEST_HAS_DEATH_TEST)

TEST(AuditDeathTest, FailingCheckAbortsWithTheInvariantMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CORDON_DCHECK(1 == 2, "one is not two"),
               "CORDON_DCHECK failed.*one is not two");
}

TEST(AuditDeathTest, ScopeCheckFiresOnBrokenExitInvariant) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        int version = 0;
        {
          CORDON_AUDIT_SCOPE(
              CORDON_DCHECK(version == 1, "version linearity broken"));
          // Forgot to advance `version`: the exit check must abort.
        }
      },
      "version linearity broken");
}

#endif  // CORDON_AUDIT_ENABLED && GTEST_HAS_DEATH_TEST

// --- repo lint --------------------------------------------------------------
//
// scripts/cordon_lint.py must (a) run clean on the tree and (b) fail on
// every fixture under tests/lint_fixtures/ — each fixture violates
// exactly one rule, and --fixtures asserts the expected rule fires.

namespace {

int run_cmd(const std::string& cmd) {
  int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
#if defined(WEXITSTATUS)
  return WEXITSTATUS(rc);
#else
  return rc;
#endif
}

bool has_python() { return run_cmd("python3 --version >/dev/null 2>&1") == 0; }

}  // namespace

TEST(Lint, RepoTreeIsLintClean) {
  if (!has_python()) GTEST_SKIP() << "python3 not available";
  const std::string root = CORDON_REPO_ROOT;
  EXPECT_EQ(run_cmd("python3 '" + root + "/scripts/cordon_lint.py' --root '" +
                    root + "'"),
            0)
      << "cordon_lint.py found violations (run it for details)";
}

TEST(Lint, EveryFixtureTripsItsRule) {
  if (!has_python()) GTEST_SKIP() << "python3 not available";
  const std::string root = CORDON_REPO_ROOT;
  EXPECT_EQ(run_cmd("python3 '" + root + "/scripts/cordon_lint.py' --root '" +
                    root + "' --fixtures"),
            0)
      << "a lint fixture no longer trips its rule";
}
