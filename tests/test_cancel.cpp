// Cooperative cancellation and deadlines: a long solve aborted mid-round
// returns promptly with a typed SolveError, the pool and the worker
// arenas are immediately reusable, and the service's deadline/overload
// paths fail futures with the right taxonomy codes (never a raw
// std::runtime_error).  Runs under TSAN in CI — the cancel() below races
// the solve on purpose.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/arena.hpp"
#include "src/core/cancel.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"
#include "test_util.hpp"

namespace cc = cordon::core;
namespace ce = cordon::engine;
namespace cs = cordon::service;
using cordon::testing::expect_objective_near;

namespace {

using clk = std::chrono::steady_clock;

double seconds_since(clk::time_point t0) {
  return std::chrono::duration<double>(clk::now() - t0).count();
}

/// A gap instance big enough that one full solve takes a measurable
/// wall time on this machine (target >= `min_s` seconds), plus that
/// baseline solve's duration and objective.  Escalates n geometrically
/// so slow sanitizer builds don't pick an enormous instance.
///
/// gap specifically: below its 8-worker floor it routes to the
/// sequential solver, whose state loop carries a PollTicker; above the
/// floor the parallel path runs one round (one RoundSpan poll) per
/// staircase wave.  Either routing observes a mid-solve cancel —
/// unlike generated glws instances, which solve in a single round.
struct Baseline {
  ce::Instance inst;
  double solve_s = 0;
  double objective = 0;
};

Baseline long_running_instance(double min_s) {
  const ce::BatchExecutor exec;
  Baseline b;
  for (std::uint64_t n = 1'000; n <= 8'000; n *= 2) {
    b.inst = ce::builtin_registry().at("gap").generate({n, 4, 42});
    auto t0 = clk::now();
    ce::BatchReport rep = exec.run({&b.inst, 1}, {});
    b.solve_s = seconds_since(t0);
    EXPECT_TRUE(rep.items[0].ok) << rep.items[0].error;
    b.objective = rep.items[0].result.objective;
    if (b.solve_s >= min_s) break;
  }
  return b;
}

/// Calibrated once and shared: four tests need the same baseline and
/// re-measuring it would quadruple the suite's slowest component.
const Baseline& shared_baseline() {
  static Baseline b = long_running_instance(0.25);
  return b;
}

}  // namespace

TEST(Cancel, MidSolveCancelReturnsFastAndEverythingIsReusable) {
  const Baseline& base = shared_baseline();
  if (base.solve_s < 0.1)
    GTEST_SKIP() << "machine solves the largest probe in " << base.solve_s
                 << "s; no room to observe a mid-solve abort";

  const ce::BatchExecutor exec;
  cc::CancelToken token;
  std::array<cc::CancelToken*, 1> tokens{&token};

  const std::size_t arena_bytes_before = cc::worker_arena().bytes_in_use();
  const double cancel_after_s = base.solve_s / 10;
  std::thread canceller([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cancel_after_s));
    token.cancel();
  });
  auto t0 = clk::now();
  ce::BatchReport rep = exec.run({&base.inst, 1}, {.tokens = tokens});
  const double aborted_s = seconds_since(t0);
  canceller.join();

  ASSERT_FALSE(rep.items[0].ok);
  EXPECT_EQ(rep.items[0].code, cc::SolveErrorCode::kCancelled);
  // Mid-solve abort means the remaining rounds were skipped: the run
  // must come in clearly under the uncancelled baseline, and the abort
  // itself (time past the cancel()) within a fraction of a full solve —
  // one round's worth of latency, with slack for scheduler noise.
  EXPECT_LT(aborted_s, base.solve_s * 0.9)
      << "cancelled run took " << aborted_s << "s vs full " << base.solve_s;
  EXPECT_LT(aborted_s - cancel_after_s, base.solve_s * 0.5)
      << "abort latency " << (aborted_s - cancel_after_s) << "s";

  // The unwound solve released its arena epoch on this thread...
  EXPECT_EQ(cc::worker_arena().bytes_in_use(), arena_bytes_before);
  // ...and the pool + arenas serve the very same workload correctly
  // right away, with no reset step in between.
  ce::BatchReport again = exec.run({&base.inst, 1}, {});
  ASSERT_TRUE(again.items[0].ok);
  EXPECT_EQ(again.items[0].result.objective, base.objective);
}

TEST(Cancel, PreCancelledTokenFailsBeforeAnyRound) {
  const ce::Solver& solver = ce::builtin_registry().at("gap");
  ce::Instance inst = solver.generate({2000, 4, 3});
  cc::CancelToken token;
  token.cancel();
  std::array<cc::CancelToken*, 1> tokens{&token};
  ce::BatchReport rep = ce::BatchExecutor().run({&inst, 1}, {.tokens = tokens});
  ASSERT_FALSE(rep.items[0].ok);
  EXPECT_EQ(rep.items[0].code, cc::SolveErrorCode::kCancelled);
  EXPECT_THROW({ throw rep.items[0].to_error(); }, cc::SolveError);
}

TEST(Cancel, DeadlineAbortsMidSolveTyped) {
  const Baseline& base = shared_baseline();
  if (base.solve_s < 0.1)
    GTEST_SKIP() << "machine too fast to catch a mid-solve deadline";
  cc::CancelToken token;
  token.set_timeout(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(base.solve_s / 10)));
  std::array<cc::CancelToken*, 1> tokens{&token};
  auto t0 = clk::now();
  ce::BatchReport rep =
      ce::BatchExecutor().run({&base.inst, 1}, {.tokens = tokens});
  ASSERT_FALSE(rep.items[0].ok);
  EXPECT_EQ(rep.items[0].code, cc::SolveErrorCode::kDeadlineExceeded);
  EXPECT_LT(seconds_since(t0), base.solve_s * 0.9);
}

TEST(Cancel, TokenlessRunsAreUntouched) {
  // The no-token path must stay exactly as before: a null entry in the
  // token span (and a span shorter than the batch) means "not
  // cancellable", never a crash or a spurious abort.
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  std::vector<ce::Instance> batch;
  batch.push_back(solver.generate({500, 4, 1}));
  batch.push_back(solver.generate({500, 4, 2}));
  std::array<cc::CancelToken*, 1> tokens{nullptr};  // shorter than batch
  ce::BatchReport rep = ce::BatchExecutor().run(batch, {.tokens = tokens});
  ASSERT_TRUE(rep.items[0].ok);
  ASSERT_TRUE(rep.items[1].ok);
}

// --- service-level deadline / cancel / shed ---------------------------------

TEST(Cancel, ServiceTimeoutFailsTheFutureTyped) {
  const Baseline& base = shared_baseline();
  if (base.solve_s < 0.1) GTEST_SKIP() << "machine too fast";
  cs::CordonService svc({.cache_capacity = 0});
  cs::SubmitOptions sopt;
  sopt.timeout = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(base.solve_s / 20));
  try {
    (void)svc.submit(base.inst, sopt).get();
    FAIL() << "a deadline a twentieth of the solve time must fail";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kDeadlineExceeded) << e.what();
  }
  // The service keeps serving; the failed run was never cached.
  const ce::Solver& lis = ce::builtin_registry().at("lis");
  ce::Instance good = lis.generate({100, 4, 5});
  expect_objective_near(svc.submit(good).get().objective,
                        lis.solve(good).objective, "after deadline failure");
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(Cancel, ServiceCancelTokenFailsTheFutureTyped) {
  const Baseline& base = shared_baseline();
  if (base.solve_s < 0.1) GTEST_SKIP() << "machine too fast";
  cs::CordonService svc({.cache_capacity = 0});
  cs::SubmitOptions sopt;
  sopt.token = std::make_shared<cc::CancelToken>();
  std::future<ce::SolveResult> fut = svc.submit(base.inst, sopt);
  sopt.token->cancel();
  try {
    (void)fut.get();
    FAIL() << "cancelled request must fail its future";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kCancelled) << e.what();
  }
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Cancel, RejectNewShedsTheNewcomerWithRetryHint) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  // max_batch = 2 keeps the dispatcher waiting out the (long) window
  // instead of taking the lone queued request immediately, so the
  // admission decision below is deterministic.
  cs::CordonService svc({.max_batch = 2,
                         .batch_window = std::chrono::microseconds(50'000),
                         .cache_capacity = 0,
                         .max_queue = 1,
                         .overload_policy = cs::OverloadPolicy::kRejectNew});
  std::future<ce::SolveResult> admitted =
      svc.submit(solver.generate({80, 4, 1}));
  std::future<ce::SolveResult> rejected =
      svc.submit(solver.generate({80, 4, 2}));
  try {
    (void)rejected.get();
    FAIL() << "second submit must be shed at max_queue = 1";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kShed) << e.what();
    EXPECT_GT(e.retry_after().count(), 0);
  }
  // The admitted request is untouched by the rejection.
  EXPECT_GT(admitted.get().objective, 0.0);
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(Cancel, ShedOldestEvictsTheHeadAndAdmitsTheNewcomer) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  cs::CordonService svc({.max_batch = 2,
                         .batch_window = std::chrono::microseconds(50'000),
                         .cache_capacity = 0,
                         .max_queue = 1,
                         .overload_policy = cs::OverloadPolicy::kShedOldest});
  ce::Instance newer = solver.generate({80, 4, 2});
  std::future<ce::SolveResult> oldest = svc.submit(solver.generate({80, 4, 1}));
  std::future<ce::SolveResult> admitted = svc.submit(newer);
  try {
    (void)oldest.get();
    FAIL() << "the queue head must be shed under shed-oldest";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kShed) << e.what();
  }
  expect_objective_near(admitted.get().objective, solver.solve(newer).objective,
                        "newcomer under shed-oldest");
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(Cancel, ShutdownThrowIsTyped) {
  cs::CordonService svc;
  svc.shutdown();
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  try {
    (void)svc.submit(solver.generate({10, 4, 1}));
    FAIL() << "submit after shutdown must throw";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kShutdown);
  }
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int rc = RUN_ALL_TESTS();
  cordon::parallel::detail::shutdown_pool();
  return rc;
}
