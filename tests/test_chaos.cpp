// Chaos suite: seeded fault plans (core/fault.hpp) against the full
// service stack, plus the deadline/cancel/shed storms that run in every
// build.  The invariants are always the same — no crash, every future
// resolves with a result or a core::SolveError (no other exception type
// exists on the failure surface), session lineages stay linear — and
// the journal recovery round-trip reproduces an uninterrupted lineage
// bit-identically.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/cancel.hpp"
#include "src/core/fault.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"
#include "test_util.hpp"

namespace cc = cordon::core;
namespace cf = cordon::core::fault;
namespace ce = cordon::engine;
namespace cs = cordon::service;
namespace fs = std::filesystem;
using cordon::testing::expect_objective_near;

namespace {

/// Disarms on every exit path so one test's plan can never leak into
/// the next.
struct ArmGuard {
  explicit ArmGuard(const cf::FaultPlan& plan) { cf::arm(plan); }
  ~ArmGuard() { cf::disarm(); }
  ArmGuard(const ArmGuard&) = delete;
  ArmGuard& operator=(const ArmGuard&) = delete;
};

/// Fresh per-test scratch directory under the system temp root.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("cordon-chaos-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Per-category outcome counts for one chaos run.  `untyped` — a failed
/// future whose exception was NOT a core::SolveError — must always end
/// up zero: it is the one bucket the taxonomy forbids.
struct Tally {
  std::uint64_t ok = 0;
  std::uint64_t invalid = 0;
  std::uint64_t deadline = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t shed = 0;
  std::uint64_t shutdown = 0;
  std::uint64_t internal = 0;
  std::uint64_t untyped = 0;

  [[nodiscard]] std::uint64_t total() const {
    return ok + invalid + deadline + cancelled + shed + shutdown + internal +
           untyped;
  }
};

void count_error(Tally& t, const cc::SolveError& e) {
  switch (e.code()) {
    case cc::SolveErrorCode::kInvalidArgument: ++t.invalid; break;
    case cc::SolveErrorCode::kDeadlineExceeded: ++t.deadline; break;
    case cc::SolveErrorCode::kCancelled: ++t.cancelled; break;
    case cc::SolveErrorCode::kShed: ++t.shed; break;
    case cc::SolveErrorCode::kShutdown: ++t.shutdown; break;
    case cc::SolveErrorCode::kInternal: ++t.internal; break;
  }
}

/// Concurrent clients hammer one service with every registered family;
/// optionally a third of the requests carry tight deadlines and a
/// quarter carry tokens that get cancelled mid-flight.  Every completed
/// result is oracle-checked; every failure must be a typed SolveError.
Tally chaos_clients(const cs::ServiceOptions& sopt, bool with_deadlines,
                    bool with_cancels, std::size_t clients = 4,
                    std::size_t per_client = 30) {
  const auto& reg = ce::builtin_registry();
  std::vector<ce::Instance> pool;
  std::vector<double> want;
  for (const auto& solver : reg.solvers()) {
    ce::Instance inst = solver->generate({60, 4, 99});
    want.push_back(solver->solve_reference(inst).objective);
    pool.push_back(std::move(inst));
  }

  cs::CordonService svc(sopt, reg);
  std::mutex mu;
  Tally tally;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::pair<std::size_t, std::future<ce::SolveResult>>> futs;
      std::vector<std::shared_ptr<cc::CancelToken>> tokens;
      for (std::size_t r = 0; r < per_client; ++r) {
        std::size_t idx = (c * per_client + r) % pool.size();
        cs::SubmitOptions so;
        if (with_deadlines && r % 3 == 1)
          so.timeout = (r % 2 != 0) ? std::chrono::microseconds(50)
                                    : std::chrono::milliseconds(5);
        if (with_cancels && r % 4 == 2) {
          so.token = std::make_shared<cc::CancelToken>();
          tokens.push_back(so.token);
        }
        futs.emplace_back(idx, svc.submit(pool[idx], std::move(so)));
      }
      for (auto& t : tokens) t->cancel();
      Tally local;
      for (auto& [idx, fut] : futs) {
        try {
          ce::SolveResult r = fut.get();
          expect_objective_near(r.objective, want[idx],
                                "chaos result for " + pool[idx].kind);
          ++local.ok;
        } catch (const cc::SolveError& e) {
          count_error(local, e);
        } catch (const std::exception& e) {
          ++local.untyped;
          ADD_FAILURE() << "untyped exception out of a submit future: "
                        << e.what();
        }
      }
      std::lock_guard lock(mu);
      tally.ok += local.ok;
      tally.invalid += local.invalid;
      tally.deadline += local.deadline;
      tally.cancelled += local.cancelled;
      tally.shed += local.shed;
      tally.shutdown += local.shutdown;
      tally.internal += local.internal;
      tally.untyped += local.untyped;
    });
  }
  for (auto& t : threads) t.join();
  return tally;
}

/// Durable sessions under whatever plan is armed: creates, appends with
/// bounded retry (injected failures are typed and retryable), tolerates
/// journal-fault poisoning, and asserts the lineage stayed linear —
/// the version advanced once per acknowledged append, at most one
/// further step when a journal write poisoned the session mid-advance.
void chaos_sessions(const fs::path& journal_dir, std::size_t n_sessions,
                    std::size_t target_appends) {
  const ce::Solver& lis = ce::builtin_registry().at("lis");
  cs::CordonService svc({.journal_dir = journal_dir.string()});
  for (std::size_t s = 0; s < n_sessions; ++s) {
    ce::Instance full =
        lis.generate({100 + 50 * target_appends, 4, 1000 + s});
    std::uint64_t id = 0;
    bool created = false;
    for (int attempt = 0; attempt < 200 && !created; ++attempt) {
      try {
        id = svc.create_session(ce::prefix_instance(full, 100));
        created = true;
      } catch (const cc::SolveError&) {  // injected journal/arena fault
      } catch (const std::bad_alloc&) {  // injected arena fault, unwrapped
      }
    }
    if (!created) {
      ADD_FAILURE() << "create_session never succeeded under the plan";
      continue;
    }
    std::uint64_t ok_appends = 0;
    bool frozen = false;  // journal fault poisoned the session
    for (std::size_t v = 0; v < target_appends && !frozen; ++v) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        auto info = svc.session_info(id);
        ASSERT_TRUE(info.has_value());
        if (info->poisoned) {
          frozen = true;
          break;
        }
        try {
          (void)svc.append(id, ce::slice_delta(full, 100 + 50 * v,
                                               150 + 50 * v, info->version))
              .get();
          ++ok_appends;
          break;
        } catch (const cc::SolveError&) {  // typed; retry
        } catch (const std::exception& e) {
          ADD_FAILURE() << "untyped exception out of an append future: "
                        << e.what();
          break;
        }
      }
    }
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value());
    // Linearity: one version per acknowledged append; a poisoning
    // journal failure may leave memory exactly one step ahead of the
    // acknowledged count, never more.
    EXPECT_GE(info->version, ok_appends);
    EXPECT_LE(info->version, ok_appends + (frozen ? 1 : 0));
    svc.close_session(id);
  }
}

}  // namespace

// --- storms that run in every build (no injection needed) -------------------

TEST(Chaos, DeadlineStormResolvesEveryFutureTyped) {
  Tally t = chaos_clients({.batch_window = std::chrono::microseconds(200),
                           .cache_capacity = 0},
                          /*with_deadlines=*/true, /*with_cancels=*/false);
  EXPECT_EQ(t.untyped, 0u);
  EXPECT_EQ(t.total(), 4u * 30u);
  EXPECT_GT(t.deadline, 0u) << "50us deadlines must expire some requests";
  EXPECT_GT(t.ok, 0u);
}

TEST(Chaos, CancelStormResolvesEveryFutureTyped) {
  Tally t = chaos_clients({.batch_window = std::chrono::microseconds(200),
                           .cache_capacity = 0},
                          /*with_deadlines=*/false, /*with_cancels=*/true);
  EXPECT_EQ(t.untyped, 0u);
  EXPECT_EQ(t.total(), 4u * 30u);
  EXPECT_GT(t.ok, 0u);
}

TEST(Chaos, OverloadStormShedsTypedUnderBothPolicies) {
  for (cs::OverloadPolicy policy :
       {cs::OverloadPolicy::kRejectNew, cs::OverloadPolicy::kShedOldest}) {
    Tally t = chaos_clients({.max_batch = 8,
                             .batch_window = std::chrono::milliseconds(2),
                             .cache_capacity = 0,
                             .max_queue = 2,
                             .overload_policy = policy},
                            /*with_deadlines=*/false, /*with_cancels=*/false,
                            /*clients=*/6, /*per_client=*/30);
    EXPECT_EQ(t.untyped, 0u);
    EXPECT_EQ(t.total(), 6u * 30u);
    EXPECT_GT(t.shed, 0u) << "6x30 submits against a 2-deep queue must shed";
    EXPECT_GT(t.ok, 0u) << "shedding must not starve the queue entirely";
  }
}

// --- seeded fault plans (compiled out in Release; suite skips) --------------

TEST(Chaos, SeededFaultPlansYieldOnlyTypedOutcomesAndLinearLineages) {
  if (!cf::kEnabled)
    GTEST_SKIP() << "fault layer compiled out (Release without "
                    "-DCORDON_FAULT=ON)";
  using S = cf::Site;
  struct NamedPlan {
    const char* name;
    cf::FaultPlan plan;
  };
  // >= 8 distinct seeded plans, covering every injection site alone and
  // in combination.  Rates are ppm; arena draws happen per allocation
  // (millions per solve), so its rates sit far below the coarse sites'.
  const std::vector<NamedPlan> plans = {
      {"arena-low", cf::FaultPlan{11, {}}.with(S::kArenaAlloc, 50)},
      {"arena-high", cf::FaultPlan{22, {}}.with(S::kArenaAlloc, 500)},
      {"delta-apply", cf::FaultPlan{33, {}}.with(S::kDeltaApply, 100'000)},
      {"cache-pressure", cf::FaultPlan{44, {}}.with(S::kCacheEvict, 300'000)},
      {"journal-io", cf::FaultPlan{55, {}}.with(S::kJournalIo, 50'000)},
      {"worker-wake", cf::FaultPlan{66, {}}.with(S::kWorkerWake, 2'000)},
      {"alloc+journal", cf::FaultPlan{77, {}}
                            .with(S::kArenaAlloc, 50)
                            .with(S::kJournalIo, 50'000)},
      {"everything", cf::FaultPlan{88, {}}
                         .with(S::kArenaAlloc, 20)
                         .with(S::kDeltaApply, 50'000)
                         .with(S::kCacheEvict, 100'000)
                         .with(S::kJournalIo, 20'000)
                         .with(S::kWorkerWake, 1'000)},
  };
  const std::uint64_t injected_before = cf::injected_total();
  for (const NamedPlan& np : plans) {
    SCOPED_TRACE(np.name);
    fs::path dir = scratch_dir(std::string("plan-") + np.name);
    ArmGuard armed(np.plan);
    Tally t = chaos_clients({.batch_window = std::chrono::microseconds(200)},
                            /*with_deadlines=*/true, /*with_cancels=*/true,
                            /*clients=*/3, /*per_client=*/20);
    EXPECT_EQ(t.untyped, 0u);
    EXPECT_EQ(t.total(), 3u * 20u);
    chaos_sessions(dir, /*n_sessions=*/2, /*target_appends=*/4);
    fs::remove_all(dir);
  }
  // The plans must have actually bitten — a chaos suite whose faults
  // never fire proves nothing.  (Per-plan counts vary with thread
  // interleaving; the aggregate over 8 plans cannot be zero.)
  EXPECT_GT(cf::injected_total(), injected_before);
}

// --- durable recovery -------------------------------------------------------

TEST(Chaos, JournalRecoveryRoundTripIsBitIdentical) {
  fs::path dir = scratch_dir("recovery");
  const ce::Solver& lis = ce::builtin_registry().at("lis");
  ce::Instance full = lis.generate({600, 4, 21});
  constexpr std::uint64_t kAppends = 8;

  // The uninterrupted reference lineage (journaling off).
  std::vector<double> want;
  {
    cs::CordonService ref;
    std::uint64_t id = ref.create_session(ce::prefix_instance(full, 200));
    for (std::uint64_t v = 0; v < kAppends; ++v)
      want.push_back(ref.append(id, ce::slice_delta(full, 200 + 50 * v,
                                                    250 + 50 * v, v))
                         .get()
                         .objective);
    ref.close_session(id);
  }

  // Run the first half durably, then "crash" (destroy the service
  // without close_session — the journal survives on disk).
  std::uint64_t id = 0;
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    id = svc.create_session(ce::prefix_instance(full, 200));
    for (std::uint64_t v = 0; v < 4; ++v)
      EXPECT_EQ(want[v], svc.append(id, ce::slice_delta(full, 200 + 50 * v,
                                                        250 + 50 * v, v))
                             .get()
                             .objective);
  }

  // Recover: same id, same version, bit-identical continuation.
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    std::vector<std::uint64_t> ids = svc.recover();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], id);
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, 4u);
    EXPECT_TRUE(info->durable);
    EXPECT_FALSE(info->poisoned);
    EXPECT_EQ(svc.stats().sessions_recovered, 1u);
    for (std::uint64_t v = 4; v < 6; ++v)
      EXPECT_EQ(want[v], svc.append(id, ce::slice_delta(full, 200 + 50 * v,
                                                        250 + 50 * v, v))
                             .get()
                             .objective);
    // Crash again, now with 6 durable versions.
  }

  // A crash mid-write leaves a half record: recovery must drop the
  // damaged tail and resume from the last whole version.
  {
    std::ofstream f(dir / ("session-" + std::to_string(id) + ".jnl"),
                    std::ios::app | std::ios::binary);
    f << "delta 7 999 0123";  // truncated frame, no payload
  }
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    std::vector<std::uint64_t> ids = svc.recover();
    ASSERT_EQ(ids.size(), 1u);
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, 6u) << "damaged tail must be dropped, whole "
                                    "records kept";
    EXPECT_FALSE(info->poisoned);
    for (std::uint64_t v = 6; v < kAppends; ++v)
      EXPECT_EQ(want[v], svc.append(id, ce::slice_delta(full, 200 + 50 * v,
                                                        250 + 50 * v, v))
                             .get()
                             .objective);
    // A clean close removes the journal: nothing left to recover.
    svc.close_session(id);
  }
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    EXPECT_TRUE(svc.recover().empty());
  }
  fs::remove_all(dir);
}

TEST(Chaos, JournalFaultPoisonsTheSessionAndRecoveryResumes) {
  if (!cf::kEnabled) GTEST_SKIP() << "fault layer compiled out";
  fs::path dir = scratch_dir("poison");
  const ce::Solver& lis = ce::builtin_registry().at("lis");
  ce::Instance full = lis.generate({300, 4, 5});
  double want_v1;
  {
    cs::CordonService ref;
    std::uint64_t rid = ref.create_session(ce::prefix_instance(full, 100));
    (void)ref.append(rid, ce::slice_delta(full, 100, 150, 0)).get();
    want_v1 = ref.append(rid, ce::slice_delta(full, 150, 200, 1))
                  .get()
                  .objective;
    ref.close_session(rid);
  }

  std::uint64_t id = 0;
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    id = svc.create_session(ce::prefix_instance(full, 100));
    (void)svc.append(id, ce::slice_delta(full, 100, 150, 0)).get();

    // Every journal write fails while this plan is armed.
    cf::FaultPlan all_journal{9, {}};
    all_journal.with(cf::Site::kJournalIo, 1'000'000);
    {
      ArmGuard armed(all_journal);
      try {
        (void)svc.append(id, ce::slice_delta(full, 150, 200, 1)).get();
        FAIL() << "append must fail when its journal write fails";
      } catch (const cc::SolveError& e) {
        EXPECT_EQ(e.code(), cc::SolveErrorCode::kInternal) << e.what();
      }
    }
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->poisoned);
    // Poisoning is sticky even after the faults stop: memory is ahead
    // of disk and the divergence must not widen.
    try {
      (void)svc.append(id, ce::slice_delta(full, 150, 200, 1)).get();
      FAIL() << "a poisoned session must refuse further appends";
    } catch (const cc::SolveError& e) {
      EXPECT_EQ(e.code(), cc::SolveErrorCode::kInternal) << e.what();
    }
    // Crash without close: the journal (base + v1 record) survives.
  }
  {
    cs::CordonService svc({.journal_dir = dir.string()});
    ASSERT_EQ(svc.recover().size(), 1u);
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, 1u) << "recovery resumes from the last DURABLE "
                                    "version, not the poisoned in-memory one";
    EXPECT_FALSE(info->poisoned);
    EXPECT_EQ(want_v1,
              svc.append(id, ce::slice_delta(full, 150, 200, 1))
                  .get()
                  .objective);
    svc.close_session(id);
  }
  fs::remove_all(dir);
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int rc = RUN_ALL_TESTS();
  cordon::parallel::detail::shutdown_pool();
  return rc;
}
