// The generic framework: DpDag oracle evaluation, effective depth, and
// the literal Cordon execution (Thm 2.1 correctness) on random DAGs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/cordon.hpp"
#include "src/core/dp_dag.hpp"
#include "src/core/monge.hpp"
#include "src/parallel/random.hpp"

namespace cc = cordon::core;
namespace cp = cordon::parallel;

namespace {

// Random DAG in topological order with additive edge costs (shortest-path
// style min DP).
cc::DpDag random_dag(std::size_t n, std::uint64_t seed, double edge_prob) {
  cc::DpDag dag(n, cc::Objective::kMin);
  dag.set_boundary(0, 0.0);
  for (std::uint32_t i = 1; i < n; ++i) {
    bool any = false;
    for (std::uint32_t j = 0; j < i; ++j) {
      if (cp::uniform_double(seed, i * n + j) < edge_prob) {
        double c = 1.0 + cp::uniform_double(seed ^ 7, i * n + j) * 9.0;
        dag.add_edge(j, i, [c](double d) { return d + c; });
        any = true;
      }
    }
    if (!any) {
      double c = 1.0 + cp::uniform_double(seed ^ 7, i) * 9.0;
      dag.add_edge(i - 1, i, [c](double d) { return d + c; });
    }
  }
  return dag;
}

}  // namespace

TEST(DpDag, EvaluateChain) {
  cc::DpDag dag(4, cc::Objective::kMin);
  dag.set_boundary(0, 0.0);
  for (std::uint32_t i = 1; i < 4; ++i)
    dag.add_edge(i - 1, i, [](double d) { return d + 2.0; });
  auto vals = dag.evaluate();
  EXPECT_DOUBLE_EQ(vals[3], 6.0);
  EXPECT_EQ(dag.effective_depth(), 3u);
}

TEST(DpDag, EffectiveDepthIgnoresNormalEdges) {
  cc::DpDag dag(4, cc::Objective::kMin);
  dag.set_boundary(0, 0.0);
  dag.add_edge(0, 1, [](double d) { return d + 1; }, /*effective=*/true);
  dag.add_edge(1, 2, [](double d) { return d + 1; }, /*effective=*/false);
  dag.add_edge(2, 3, [](double d) { return d + 1; }, /*effective=*/true);
  EXPECT_EQ(dag.effective_depth(), 2u);
}

class CordonDagSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CordonDagSweep, MatchesTopologicalEvaluation) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {2, 5, 17, 40, 80}) {
    cc::DpDag dag = random_dag(n, seed, 0.3);
    auto expect = dag.evaluate();
    cc::ExplicitCordon cordon(dag);
    auto got = cordon.run();
    ASSERT_EQ(got.values.size(), expect.size());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_DOUBLE_EQ(got.values[i], expect[i]) << "n=" << n << " i=" << i;
    // Rounds can never exceed n; every state must be finalized in some
    // round >= 1.
    ASSERT_LE(got.rounds, n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_GE(got.round_of[i], 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CordonDagSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ExplicitCordon, ChainRoundsEqualDepth) {
  // A pure chain has effective depth n-1: the cordon must take exactly
  // n-1 rounds after finalizing state 0 in round 1.
  const std::size_t n = 12;
  cc::DpDag dag(n, cc::Objective::kMin);
  dag.set_boundary(0, 0.0);
  for (std::uint32_t i = 1; i < n; ++i)
    dag.add_edge(i - 1, i, [](double d) { return d + 1.0; });
  auto got = cc::ExplicitCordon(dag).run();
  EXPECT_EQ(got.rounds, n);  // one state per round (chain dependencies)
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(got.round_of[i], i + 1);
}

TEST(ExplicitCordon, IndependentStatesFinishInOneRound) {
  // Star from state 0: everything depends only on 0, so two rounds.
  const std::size_t n = 20;
  cc::DpDag dag(n, cc::Objective::kMin);
  dag.set_boundary(0, 0.0);
  for (std::uint32_t i = 1; i < n; ++i)
    dag.add_edge(0, i, [](double d) { return d + 1.0; });
  auto got = cc::ExplicitCordon(dag).run();
  EXPECT_EQ(got.rounds, 2u);
}

TEST(ExplicitCordon, PerStateRoundsWithinDepthBounds) {
  // Framework span property: a state with best-decision (perfect) depth p
  // and effective depth d finalizes in round r with p+1 <= r <= d+1 —
  // the cordon can be conservative (sentinels over-block) but never
  // finalizes before the best-decision chain completes.
  for (std::uint64_t seed : {21, 22, 23, 24}) {
    const std::size_t n = 60;
    cc::DpDag dag(n, cc::Objective::kMin);
    dag.set_boundary(0, 0.0);
    std::vector<std::vector<std::pair<std::uint32_t, double>>> in(n);
    for (std::uint32_t i = 1; i < n; ++i) {
      bool any = false;
      for (std::uint32_t j = 0; j < i; ++j) {
        if (cp::uniform_double(seed, i * n + j) < 0.25) {
          double c = 1.0 + cp::uniform_double(seed ^ 9, i * n + j) * 9.0;
          dag.add_edge(j, i, [c](double d) { return d + c; });
          in[i].push_back({j, c});
          any = true;
        }
      }
      if (!any) {
        dag.add_edge(i - 1, i, [](double d) { return d + 1.0; });
        in[i].push_back({i - 1, 1.0});
      }
    }
    auto values = dag.evaluate();
    // Per-state effective depth (all edges effective here) and perfect
    // depth (over best-decision edges only).
    std::vector<std::uint32_t> eff(n, 0), perf(n, 0);
    for (std::uint32_t i = 1; i < n; ++i) {
      std::uint32_t best_j = in[i][0].first;
      double best_v = values[in[i][0].first] + in[i][0].second;
      for (auto [j, c] : in[i]) {
        eff[i] = std::max(eff[i], eff[j] + 1);
        if (values[j] + c < best_v) {
          best_v = values[j] + c;
          best_j = j;
        }
      }
      perf[i] = perf[best_j] + 1;
    }
    auto got = cc::ExplicitCordon(dag).run();
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_GE(got.round_of[i], perf[i] + 1) << "seed=" << seed << " i=" << i;
      ASSERT_LE(got.round_of[i], eff[i] + 1) << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(ExplicitCordon, MaxObjective) {
  cc::DpDag dag(3, cc::Objective::kMax);
  dag.set_boundary(0, 1.0);
  dag.add_edge(0, 1, [](double d) { return d * 2; });
  dag.add_edge(0, 2, [](double d) { return d + 1; });
  dag.add_edge(1, 2, [](double d) { return d + 10; });
  auto got = cc::ExplicitCordon(dag).run();
  EXPECT_DOUBLE_EQ(got.values[2], 12.0);
}

// --------------------------------------------------------------------- monge
TEST(Monge, QuadraticSpanIsConvex) {
  std::vector<double> x(21);
  for (std::size_t i = 0; i <= 20; ++i)
    x[i] = static_cast<double>(i) + cp::uniform_double(3, i);
  auto w = [&](std::size_t j, std::size_t i) {
    double s = x[i] - x[j];
    return 5.0 + s * s;
  };
  EXPECT_TRUE(cc::is_convex_monge_exhaustive(w, 20));
  EXPECT_FALSE(cc::is_concave_monge_exhaustive(w, 20));
  EXPECT_TRUE(cc::is_convex_monge_sampled(w, 20, 500));
}

TEST(Monge, SqrtSpanIsConcave) {
  std::vector<double> x(21);
  for (std::size_t i = 0; i <= 20; ++i)
    x[i] = static_cast<double>(i) + cp::uniform_double(4, i);
  auto w = [&](std::size_t j, std::size_t i) {
    return 1.0 + std::sqrt(x[i] - x[j]);
  };
  EXPECT_TRUE(cc::is_concave_monge_exhaustive(w, 20));
  EXPECT_FALSE(cc::is_convex_monge_exhaustive(w, 20));
}

TEST(Monge, TotalMonotonicityOfConvexTransitionMatrix) {
  std::vector<double> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<double>(i * i) * 0.1;
  auto a = [&](std::size_t r, std::size_t c) {
    // rows = states 1..15, cols = decisions 0..14.  Invalid entries are
    // padded with values strictly increasing in j; the increment must
    // survive double rounding (1e18 + j would absorb j entirely).
    std::size_t i = r + 1, j = c;
    if (j >= i) return 1e15 + static_cast<double>(j) * 1e6;
    double s = x[i] - x[j];
    return s * s;
  };
  EXPECT_TRUE(cc::is_convex_totally_monotone(a, 15, 15));
}
