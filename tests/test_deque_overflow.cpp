// Deque-overflow regression: with a deliberately tiny per-worker deque
// (CORDON_DEQUE_CAPACITY=2, set in main before the pool exists), deep
// fork recursion overflows the deque almost immediately.  Deque::push
// then returns false and par_do must run the right branch inline —
// correct results with zero lost work, just less parallelism.  Before
// capacity was surfaced, this fallback path was untestable: the default
// 2^16 capacity can never fill at O(log n) fork depth.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cp = cordon::parallel;

TEST(DequeOverflow, DeepRecursionOverflowsIntoInlineExecution) {
  // Depth 12 => up to 12 outstanding pushes per worker against a
  // capacity of 2: virtually every fork beyond the first two overflows.
  std::atomic<std::uint64_t> leaves{0};
  struct Rec {
    static void go(std::atomic<std::uint64_t>& s, int depth) {
      if (depth == 0) {
        s.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cp::par_do([&] { go(s, depth - 1); }, [&] { go(s, depth - 1); });
    }
  };
  Rec::go(leaves, 12);
  EXPECT_EQ(leaves.load(), 1u << 12);
}

TEST(DequeOverflow, ParallelForCoversRangeExactlyOnceDespiteOverflow) {
  const std::size_t n = 50000;
  std::vector<std::atomic<int>> hits(n);
  cp::parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, /*granularity=*/8, /*granularity_floor=*/1);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(DequeOverflow, RepeatedBurstsStayCorrect) {
  // Overflow + park/wake interleaved: each burst drains completely.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> sum{0};
    cp::parallel_for(0, 4096, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }, /*granularity=*/4, /*granularity_floor=*/1);
    ASSERT_EQ(sum.load(), 4096ull * 4095ull / 2ull) << "round " << round;
  }
}

int main(int argc, char** argv) {
  // Must precede lazy pool creation: the capacity is read once, when
  // the pool constructs its deques.
  setenv("CORDON_DEQUE_CAPACITY", "2", /*overwrite=*/1);
  setenv("CORDON_NUM_THREADS", "4", /*overwrite=*/0);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
