// Cross-cutting edge cases and stress: degenerate sizes, tie-heavy and
// adversarial costs, asymmetric inputs, scheduler stress under real
// contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "src/core/monge.hpp"
#include "src/gap/gap.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/obst/obst.hpp"
#include "src/parallel/primitives.hpp"
#include "src/parallel/random.hpp"
#include "src/parallel/sort.hpp"
#include "test_util.hpp"

namespace cp = cordon::parallel;

// ---------------------------------------------------------------- scheduler
TEST(Stress, MixedNestedWorkloads) {
  // Irregular recursion: parallel sort inside parallel_for inside par_do,
  // checking determinism of all results.
  std::atomic<std::uint64_t> checksum{0};
  cp::parallel_for(0, 32, [&](std::size_t t) {
    std::vector<std::uint64_t> v(1000 + t * 37);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cp::hash64(t, i);
    cp::sort(v);
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < v.size(); ++i) h = h * 31 + v[i] % 97;
    checksum.fetch_add(h, std::memory_order_relaxed);
  });
  std::uint64_t first = checksum.load();
  checksum.store(0);
  cp::parallel_for(0, 32, [&](std::size_t t) {
    std::vector<std::uint64_t> v(1000 + t * 37);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cp::hash64(t, i);
    cp::sort(v);
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < v.size(); ++i) h = h * 31 + v[i] % 97;
    checksum.fetch_add(h, std::memory_order_relaxed);
  });
  EXPECT_EQ(checksum.load(), first);
}

// --------------------------------------------------------------------- glws
TEST(GlwsEdge, ZeroSpanAllTies) {
  // Constant cost: every decision ties; any best[] is optimal but D must
  // be exact and rounds must be 1 (all states ready immediately... the
  // boundary candidate 0 already gives the optimum; no tentative state
  // can improve anything).
  using namespace cordon::glws;
  const std::size_t n = 200;
  CostFn w = [](std::size_t, std::size_t) { return 5.0; };
  auto nv = glws_naive(n, 0.0, w, identity_e());
  auto pv = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);
  for (std::size_t i = 0; i <= n; ++i) ASSERT_DOUBLE_EQ(nv.d[i], pv.d[i]);
  EXPECT_EQ(pv.stats.rounds, 1u);
}

TEST(GlwsEdge, NegativeBoundaryAndCosts) {
  using namespace cordon::glws;
  const std::size_t n = 300;
  auto x = cordon::testing::random_positions(n, 7);
  CostFn w = [x](std::size_t j, std::size_t i) {
    double s = (*x)[i] - (*x)[j + 1];
    return -50.0 + 0.01 * s * s;  // negative base cost
  };
  auto nv = glws_naive(n, -10.0, w, identity_e());
  auto sv = glws_sequential(n, -10.0, w, identity_e(), Shape::kConvex);
  auto pv = glws_parallel(n, -10.0, w, identity_e(), Shape::kConvex);
  for (std::size_t i = 0; i <= n; ++i) {
    ASSERT_NEAR(nv.d[i], sv.d[i], 1e-7) << i;
    ASSERT_NEAR(nv.d[i], pv.d[i], 1e-7) << i;
  }
}

TEST(GlwsEdge, HugeOpeningCostSingleCluster) {
  using namespace cordon::glws;
  const std::size_t n = 500;
  auto x = cordon::testing::random_positions(n, 3);
  CostFn w = post_office_cost(x, 1e15);
  auto pv = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);
  // One office serves everything: one decision, one round... the chain
  // from n must reach 0 directly.
  EXPECT_EQ(pv.best[n], 0u);
  EXPECT_EQ(pv.stats.rounds, 1u);
}

// ---------------------------------------------------------------------- gap
TEST(GapEdge, VeryAsymmetricStrings) {
  using namespace cordon::gap;
  std::vector<std::uint32_t> a(64);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::uint32_t>(cp::uniform(3, i, 4));
  std::vector<std::uint32_t> b{a[5], a[20], a[40]};
  auto w = affine_gap_cost(3.0, 0.5);
  auto nv = gap_naive(a, b, w, w);
  auto pv = gap_parallel(a, b, w, w, cordon::glws::Shape::kConvex);
  for (std::size_t i = 0; i < nv.rows; ++i)
    for (std::size_t j = 0; j < nv.cols; ++j)
      ASSERT_NEAR(nv.at(i, j), pv.at(i, j), 1e-9) << i << "," << j;
}

TEST(GapEdge, UnaryAlphabetEverythingMatches) {
  using namespace cordon::gap;
  std::vector<std::uint32_t> a(30, 1), b(25, 1);
  auto w = quadratic_gap_cost(1.0, 0.1);
  auto nv = gap_naive(a, b, w, w);
  auto sv = gap_seq(a, b, w, w, cordon::glws::Shape::kConvex);
  auto pv = gap_parallel(a, b, w, w, cordon::glws::Shape::kConvex);
  EXPECT_NEAR(nv.distance, sv.distance, 1e-9);
  EXPECT_NEAR(nv.distance, pv.distance, 1e-9);
  // Quadratic gap costs are superadditive, so the optimum interleaves
  // matches and *splits* the 5 deletions across several gaps — it must
  // be at most the single-gap cost w(25, 30) and at least the 5-gap
  // floor of 5 * w(len 1).
  EXPECT_LE(nv.distance, 1.0 + 0.1 * 25.0 + 1e-9);
  EXPECT_NEAR(nv.distance, 3.3, 1e-9);  // 2+3 split: (1+0.4) + (1+0.9)
}

TEST(GapEdge, MixedShapesViaSeparateCosts) {
  // w1 affine, w2 quadratic — still both convex; engines must agree.
  using namespace cordon::gap;
  std::vector<std::uint32_t> a(40), b(35);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::uint32_t>(cp::uniform(11, i, 3));
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint32_t>(cp::uniform(12, i, 3));
  auto w1 = affine_gap_cost(2.0, 1.0);
  auto w2 = quadratic_gap_cost(2.0, 0.2);
  auto nv = gap_naive(a, b, w1, w2);
  auto pv = gap_parallel(a, b, w1, w2, cordon::glws::Shape::kConvex);
  EXPECT_NEAR(nv.distance, pv.distance, 1e-9);
}

// --------------------------------------------------------------------- obst
TEST(ObstEdge, ZeroWeightsAndSpikes) {
  std::vector<double> w{0.0, 0.0, 50.0, 0.0, 0.0};
  auto nv = cordon::obst::obst_naive(w);
  auto kv = cordon::obst::obst_knuth(w);
  auto pv = cordon::obst::obst_parallel(w);
  EXPECT_NEAR(nv.cost, kv.cost, 1e-12);
  EXPECT_NEAR(nv.cost, pv.cost, 1e-12);
  EXPECT_DOUBLE_EQ(nv.cost, 50.0);  // spike at the root, depth 0 => 1*50
}

// --------------------------------------------------------- monge validators
TEST(MongeEdge, SampledCheckerCatchesViolation) {
  // A deliberately non-Monge cost (random noise) must be rejected.
  auto bad = [](std::size_t j, std::size_t i) {
    return static_cast<double>(cp::hash64(j * 1315423911u + i) % 1000);
  };
  EXPECT_FALSE(cordon::core::is_convex_monge_sampled(bad, 200, 2000));
}
