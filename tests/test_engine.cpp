// Unified engine: registry completeness, randomized cross-validation of
// every registered solver against its naive oracle (DpDag::evaluate /
// ExplicitCordon semantics), instance serialization round-trips, and the
// batch executor.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/cordon.hpp"
#include "src/engine/batch_executor.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "test_util.hpp"

namespace ce = cordon::engine;
using cordon::testing::expect_objective_near;

namespace {

const std::vector<std::string> kAllKinds = {"glws", "kglws", "lis",
                                            "lcs",  "gap",   "oat",
                                            "obst", "treeglws", "dag"};

}  // namespace

// --- registry ---------------------------------------------------------------

TEST(Registry, AllNineFamiliesRegistered) {
  const auto& reg = ce::builtin_registry();
  EXPECT_EQ(reg.size(), kAllKinds.size());
  for (const std::string& kind : kAllKinds) {
    const ce::Solver* s = reg.find(kind);
    ASSERT_NE(s, nullptr) << kind;
    EXPECT_EQ(s->key(), kind);
    EXPECT_FALSE(s->description().empty());
  }
}

TEST(Registry, UnknownKeyThrows) {
  const auto& reg = ce::builtin_registry();
  EXPECT_EQ(reg.find("no-such-problem"), nullptr);
  EXPECT_THROW((void)reg.at("no-such-problem"), std::out_of_range);
}

TEST(Registry, DuplicateKeyRejected) {
  // Re-registering a family into a registry that already has it throws.
  ce::ProblemRegistry reg;
  ce::register_lis(reg);
  EXPECT_THROW(ce::register_lis(reg), std::invalid_argument);
}

// --- cross-validation against the oracles -----------------------------------

struct EngineCase {
  std::string kind;
  std::uint64_t n;
  std::uint64_t seed;
};

class SolverSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(SolverSweep, OptimizedMatchesOracle) {
  auto [kind, n, seed] = GetParam();
  const ce::Solver& solver = ce::builtin_registry().at(kind);
  ce::Instance inst = solver.generate({n, /*k=*/4, seed});
  EXPECT_EQ(inst.kind, kind);

  ce::SolveResult fast = solver.solve(inst);
  ce::SolveResult ref = solver.solve_reference(inst);
  expect_objective_near(fast.objective, ref.objective,
                        kind + " n=" + std::to_string(n) +
                            " seed=" + std::to_string(seed));
  EXPECT_FALSE(fast.detail.empty());
}

TEST_P(SolverSweep, SerializationRoundTripsExactly) {
  auto [kind, n, seed] = GetParam();
  const ce::Solver& solver = ce::builtin_registry().at(kind);
  ce::Instance inst = solver.generate({n, /*k=*/4, seed});

  std::string text = ce::to_string(inst);
  ce::Instance back = ce::from_string(text);
  EXPECT_EQ(back.kind, inst.kind);
  // Byte-identical re-serialization: parse loses nothing.
  EXPECT_EQ(ce::to_string(back), text);
  // And the parsed instance solves to the same objective.
  expect_objective_near(solver.solve(back).objective,
                        solver.solve(inst).objective, kind + " round-trip");
}

TEST_P(SolverSweep, CanonicalHashStableAcrossRoundTrip) {
  auto [kind, n, seed] = GetParam();
  const ce::Solver& solver = ce::builtin_registry().at(kind);
  ce::Instance inst = solver.generate({n, /*k=*/4, seed});

  ce::InstanceKey key = ce::canonical_key(inst);
  // The canonical text is exactly the serialized form, and the streaming
  // hash agrees with hashing the materialized text.
  EXPECT_EQ(key.text, ce::to_string(inst));
  EXPECT_EQ(key.hash, ce::instance_hash(inst));

  // Parse -> re-canonicalize is the identity: equal instances hash equal
  // across serialization round-trips.
  ce::Instance back = ce::from_string(key.text);
  EXPECT_EQ(ce::canonical_key(back), key) << kind << " round-trip";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SolverSweep, ::testing::ValuesIn([] {
      std::vector<EngineCase> cases;
      for (const std::string& kind : kAllKinds)
        for (std::uint64_t seed : {1ull, 2ull, 3ull})
          cases.push_back({kind, 40 + 13 * seed, seed});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.kind + "_s" + std::to_string(info.param.seed);
    });

// --- per-family semantics through the uniform interface ---------------------

TEST(Engine, DepthReportersAreConsistent) {
  // Families with perfect parallelizations certify effective depth ==
  // rounds; the dag solver computes d^(G) exactly and rounds can only be
  // bounded by it from below... (rounds <= depth for successful-relaxation
  // sentinels, and >= 1).
  const auto& reg = ce::builtin_registry();
  for (const std::string& kind : {"lis", "lcs", "kglws"}) {
    ce::Instance inst = reg.at(kind).generate({120, 6, 9});
    ce::SolveResult r = reg.at(kind).solve(inst);
    EXPECT_EQ(r.effective_depth, r.stats.rounds) << kind;
  }
  ce::Instance dag = reg.at("dag").generate({120, 6, 9});
  ce::SolveResult r = reg.at("dag").solve(dag);
  EXPECT_GE(r.effective_depth, 1u);
  EXPECT_LE(r.stats.rounds, r.effective_depth);
}

TEST(Engine, KglwsRejectsConcaveCost) {
  ce::KglwsInstance p;
  p.n = 10;
  p.k = 2;
  p.cost.family = ce::CostSpec::Family::kLogarithmic;
  ce::Instance inst{"kglws", p};
  EXPECT_THROW((void)ce::builtin_registry().at("kglws").solve(inst),
               std::invalid_argument);
}

TEST(Engine, PayloadKindMismatchThrows) {
  ce::Instance inst{"lis", ce::ObstInstance{{1.0, 2.0}}};
  EXPECT_THROW((void)ce::builtin_registry().at("lis").solve(inst),
               std::invalid_argument);
}

TEST(Engine, DagBoundaryOnInnerStateMatchesOracle) {
  // A boundary value on a state that also has in-edges must enter the
  // cordon's initial tentative values exactly as evaluate() sees it
  // (regression: ExplicitCordon used to recover boundaries only for
  // in-degree-0 states, yielding 10 instead of min(5, 0+10) = 5 here).
  ce::Instance inst = ce::from_string(
      "cordon-instance v1 dag\n"
      "states 2\n"
      "boundary 0 0\n"
      "boundary 1 5\n"
      "edge 0 1 10\n"
      "end\n");
  const ce::Solver& dag = ce::builtin_registry().at("dag");
  ce::SolveResult fast = dag.solve(inst);
  ce::SolveResult ref = dag.solve_reference(inst);
  EXPECT_DOUBLE_EQ(ref.objective, 5.0);
  EXPECT_DOUBLE_EQ(fast.objective, ref.objective);
}

TEST(Engine, DagInstanceValidation) {
  ce::DagInstance p;
  p.n = 3;
  p.boundary.emplace_back(0, 0.0);
  p.edges.push_back({2, 1, 1.0, true});  // src >= dst
  EXPECT_THROW((void)ce::builtin_registry().at("dag").solve({"dag", p}),
               std::invalid_argument);
}

// --- parse errors -----------------------------------------------------------

TEST(InstanceFormat, RejectsGarbage) {
  EXPECT_THROW((void)ce::from_string("not an instance\n"), std::runtime_error);
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 martian\nend\n"),
               std::runtime_error);
  EXPECT_THROW((void)ce::from_string("cordon-instance v2 lis\nend\n"),
               std::runtime_error);
  // Missing "end".
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 lis\nvalues 1 2\n"),
               std::runtime_error);
  // Unknown key for the kind.
  EXPECT_THROW(
      (void)ce::from_string("cordon-instance v1 lis\nweights 1\nend\n"),
      std::runtime_error);
  // Unknown cost family.
  EXPECT_THROW((void)ce::from_string(
                   "cordon-instance v1 glws\nn 5\ncost cubic 1 1\nend\n"),
               std::invalid_argument);
  // Malformed optional effective flag must error, not silently default.
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 dag\nstates 2\n"
                                     "edge 0 1 2.0 false\nend\n"),
               std::runtime_error);
}

TEST(InstanceFormat, DeclaredSizeCapsRejectHostilePayloads) {
  // A few bytes of text must not be able to request petabytes: declared
  // sizes are capped at parse time (kMaxDeclaredSize)...
  const std::string huge = std::to_string(ce::kMaxDeclaredSize + 1);
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 glws\nn " + huge +
                                     "\ncost affine 1 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 kglws\nn " + huge +
                                     "\nk 2\ncost affine 1 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 kglws\nn 10\nk " +
                                     huge + "\ncost affine 1 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ce::from_string("cordon-instance v1 dag\nstates " + huge +
                                     "\nend\n"),
               std::invalid_argument);
  // ...values at the cap parse fine (the cap is a ceiling, not a shrink).
  ce::Instance ok = ce::from_string("cordon-instance v1 glws\nn 64\n"
                                    "cost affine 1 1\nend\n");
  EXPECT_EQ(ok.as<ce::GlwsInstance>().n, 64u);
}

TEST(Engine, HostileInMemoryInstancesFailTheSolveNotTheProcess) {
  // Payloads built directly (never parsed) are validated at solve time,
  // so through the service they surface as a failed future, not an OOM.
  const auto& reg = ce::builtin_registry();
  ce::GlwsInstance glws;
  glws.n = ce::kMaxDeclaredSize + 1;
  EXPECT_THROW((void)reg.at("glws").solve({"glws", glws}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.at("glws").solve_reference({"glws", glws}),
               std::invalid_argument);

  ce::KglwsInstance kglws;
  kglws.n = ce::kMaxDeclaredSize + 1;
  kglws.k = 2;
  EXPECT_THROW((void)reg.at("kglws").solve({"kglws", kglws}),
               std::invalid_argument);

  ce::DagInstance dag;
  dag.n = ce::kMaxDeclaredSize + 1;
  EXPECT_THROW((void)reg.at("dag").solve({"dag", dag}), std::invalid_argument);

  // Out-of-range boundary states are caught before DpDag sees them.
  ce::DagInstance bad_boundary;
  bad_boundary.n = 3;
  bad_boundary.boundary.emplace_back(7, 0.0);
  EXPECT_THROW((void)reg.at("dag").solve({"dag", bad_boundary}),
               std::invalid_argument);
}

TEST(InstanceFormat, CommentsBlankLinesAndWrappedVectorsParse) {
  ce::Instance inst = ce::from_string(
      "# a hand-written workload\n"
      "cordon-instance v1 lis\n"
      "\n"
      "values 3 1 4   # first chunk\n"
      "values 1 5\n"
      "end\n");
  const auto& p = inst.as<ce::LisInstance>();
  EXPECT_EQ(p.values, (std::vector<std::uint64_t>{3, 1, 4, 1, 5}));
}

// --- batch executor ---------------------------------------------------------

TEST(BatchExecutor, ParallelMatchesSequentialOnMixedQueue) {
  const auto& reg = ce::builtin_registry();
  std::vector<ce::Instance> queue;
  for (const std::string& kind : kAllKinds)
    for (std::uint64_t seed : {10ull, 20ull})
      queue.push_back(reg.at(kind).generate({50, 3, seed}));

  ce::BatchExecutor exec(reg);
  ce::BatchReport par = exec.run(queue, {.parallel = true});
  ce::BatchReport seq = exec.run(queue, {.parallel = false});

  ASSERT_EQ(par.items.size(), queue.size());
  ASSERT_EQ(seq.items.size(), queue.size());
  EXPECT_EQ(par.failed, 0u);
  EXPECT_EQ(seq.failed, 0u);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    ASSERT_TRUE(par.items[i].ok) << i << ": " << par.items[i].error;
    EXPECT_EQ(par.items[i].kind, queue[i].kind);
    expect_objective_near(par.items[i].result.objective,
                          seq.items[i].result.objective,
                          "batch item " + std::to_string(i));
    EXPECT_GE(par.items[i].latency_s, 0.0);
  }
  EXPECT_EQ(par.stats.requests, queue.size());
  EXPECT_GT(par.stats.total.rounds, 0u);
  EXPECT_GE(par.stats.max_latency_s, par.stats.mean_latency_s());
  EXPECT_GT(par.stats.max_effective_depth, 0u);
}

TEST(BatchExecutor, ReferenceModeUsesOracles) {
  const auto& reg = ce::builtin_registry();
  std::vector<ce::Instance> queue = {reg.at("lis").generate({60, 1, 4}),
                                     reg.at("glws").generate({60, 1, 4})};
  ce::BatchExecutor exec(reg);
  ce::BatchReport fast = exec.run(queue, {.use_reference = false});
  ce::BatchReport ref = exec.run(queue, {.use_reference = true});
  for (std::size_t i = 0; i < queue.size(); ++i)
    expect_objective_near(fast.items[i].result.objective,
                          ref.items[i].result.objective,
                          "reference batch item " + std::to_string(i));
}

TEST(BatchExecutor, UnknownKindFailsTheItemNotTheBatch) {
  const auto& reg = ce::builtin_registry();
  std::vector<ce::Instance> queue = {reg.at("lis").generate({30, 1, 1}),
                                     {"martian", ce::LisInstance{{1, 2}}}};
  ce::BatchReport rep = ce::BatchExecutor(reg).run(queue);
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_TRUE(rep.items[0].ok);
  EXPECT_FALSE(rep.items[1].ok);
  EXPECT_NE(rep.items[1].error.find("martian"), std::string::npos);
  EXPECT_EQ(rep.stats.requests, 1u);  // failures excluded from aggregates
}

// --- satellites exercised through the engine --------------------------------

TEST(ParallelFor, GranularityFloorParameterCoversAllIndices) {
  // A 3-iteration loop with the default floor runs inline; with floor 1
  // it forks.  Either way every index must run exactly once.
  for (std::size_t floor : {1ul, 64ul}) {
    std::vector<int> hits(3, 0);
    cordon::parallel::parallel_for(
        0, hits.size(), [&](std::size_t i) { ++hits[i]; },
        /*granularity=*/1, /*granularity_floor=*/floor);
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1})) << "floor=" << floor;
  }
}

TEST(ExplicitCordon, WellFormedGeneratedDagsNeverReportStuckStates) {
  // The empty-frontier throw guards an internal invariant; every DAG
  // constructible through the public API must finalize all states.
  const ce::Solver& dag = ce::builtin_registry().at("dag");
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ce::Instance inst = dag.generate({80, 1, seed});
    EXPECT_NO_THROW((void)dag.solve(inst)) << "seed=" << seed;
  }
}

// --- canonicalization & hashing ---------------------------------------------

TEST(InstanceHash, DistinctInstancesRarelyCollide) {
  // Spot check per family: different seeds (and different kinds) give
  // different hashes.  Collisions are possible only by (2^-64) chance.
  std::set<std::uint64_t> seen;
  std::size_t generated = 0;
  for (const std::string& kind : kAllKinds) {
    const ce::Solver& solver = ce::builtin_registry().at(kind);
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
      seen.insert(ce::instance_hash(solver.generate({50, 4, seed})));
      ++generated;
    }
  }
  EXPECT_EQ(seen.size(), generated);
}

TEST(InstanceHash, SensitiveToEveryField) {
  ce::GlwsInstance base{100, 0.5, {ce::CostSpec::Family::kAffine, 1.0, 2.0}};
  auto hash_of = [](const ce::GlwsInstance& p) {
    return ce::instance_hash(ce::Instance{"glws", p});
  };
  std::uint64_t h0 = hash_of(base);

  ce::GlwsInstance m = base;
  m.n = 101;
  EXPECT_NE(hash_of(m), h0);
  m = base;
  m.d0 = 0.25;
  EXPECT_NE(hash_of(m), h0);
  m = base;
  m.cost.open = 1.5;
  EXPECT_NE(hash_of(m), h0);
  m = base;
  m.cost.scale = 2.5;
  EXPECT_NE(hash_of(m), h0);
  m = base;
  m.cost.family = ce::CostSpec::Family::kQuadratic;
  EXPECT_NE(hash_of(m), h0);

  // The kind participates too: identical payload, different solver.
  EXPECT_NE(ce::instance_hash(ce::Instance{"oat", ce::OatInstance{{1, 2}}}),
            ce::instance_hash(ce::Instance{"obst", ce::ObstInstance{{1, 2}}}));
}

TEST(InstanceHash, EqualPayloadsHashEqual) {
  // Two independently constructed but identical payloads canonicalize
  // identically (no address/ordering leakage).
  ce::Instance a{"lis", ce::LisInstance{{5, 3, 9, 1}}};
  ce::Instance b{"lis", ce::LisInstance{{5, 3, 9, 1}}};
  EXPECT_EQ(ce::canonical_key(a), ce::canonical_key(b));
}
