// GAP edit distance: naive vs Γgap vs parallel cordon, convex and
// concave costs, plus structural properties of the staircase rounds.
#include <gtest/gtest.h>

#include <vector>

#include "src/gap/gap.hpp"
#include "src/parallel/random.hpp"

using namespace cordon::gap;
using cordon::glws::Shape;
namespace cp = cordon::parallel;

namespace {

std::vector<std::uint32_t> random_string(std::size_t n, std::uint64_t seed,
                                         std::uint32_t alphabet) {
  std::vector<std::uint32_t> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<std::uint32_t>(cp::uniform(seed, i, alphabet));
  return s;
}

void expect_same_table(const GapResult& a, const GapResult& b,
                       double tol = 1e-7) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (std::size_t i = 0; i < a.rows; ++i)
    for (std::size_t j = 0; j < a.cols; ++j)
      ASSERT_NEAR(a.at(i, j), b.at(i, j), tol) << "(" << i << "," << j << ")";
}

}  // namespace

struct GapCase {
  std::size_t n, m;
  std::uint32_t alphabet;
  std::uint64_t seed;
};

class GapConvexSweep : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapConvexSweep, NaiveSeqParallelAgree) {
  auto [n, m, alphabet, seed] = GetParam();
  auto a = random_string(n, seed, alphabet);
  auto b = random_string(m, seed ^ 0xfeed, alphabet);
  auto w1 = quadratic_gap_cost(2.0, 0.25);
  auto w2 = quadratic_gap_cost(3.0, 0.20);
  auto nv = gap_naive(a, b, w1, w2);
  auto sv = gap_seq(a, b, w1, w2, Shape::kConvex);
  auto pv = gap_parallel(a, b, w1, w2, Shape::kConvex);
  expect_same_table(nv, sv);
  expect_same_table(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GapConvexSweep,
    ::testing::Values(GapCase{0, 0, 2, 1}, GapCase{1, 0, 2, 2},
                      GapCase{0, 3, 2, 3}, GapCase{1, 1, 1, 4},
                      GapCase{5, 5, 2, 5}, GapCase{10, 8, 3, 6},
                      GapCase{20, 20, 4, 7}, GapCase{40, 30, 2, 8},
                      GapCase{60, 60, 6, 9}, GapCase{60, 60, 2, 10}));

class GapAffineSweep : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapAffineSweep, AffineCostsAgree) {
  auto [n, m, alphabet, seed] = GetParam();
  auto a = random_string(n, seed, alphabet);
  auto b = random_string(m, seed ^ 0xabcd, alphabet);
  auto w1 = affine_gap_cost(4.0, 1.0);
  auto w2 = affine_gap_cost(4.0, 1.5);
  auto nv = gap_naive(a, b, w1, w2);
  auto sv = gap_seq(a, b, w1, w2, Shape::kConvex);
  auto pv = gap_parallel(a, b, w1, w2, Shape::kConvex);
  expect_same_table(nv, sv);
  expect_same_table(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(Cases, GapAffineSweep,
                         ::testing::Values(GapCase{15, 15, 2, 21},
                                           GapCase{30, 25, 4, 22},
                                           GapCase{50, 50, 3, 23}));

class GapConcaveSweep : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapConcaveSweep, LogCostsAgree) {
  auto [n, m, alphabet, seed] = GetParam();
  auto a = random_string(n, seed, alphabet);
  auto b = random_string(m, seed ^ 0x9999, alphabet);
  auto w1 = log_gap_cost(1.0, 2.0);
  auto w2 = log_gap_cost(1.5, 2.0);
  auto nv = gap_naive(a, b, w1, w2);
  auto sv = gap_seq(a, b, w1, w2, Shape::kConcave);
  auto pv = gap_parallel(a, b, w1, w2, Shape::kConcave);
  expect_same_table(nv, sv);
  expect_same_table(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(Cases, GapConcaveSweep,
                         ::testing::Values(GapCase{10, 10, 2, 31},
                                           GapCase{25, 20, 3, 32},
                                           GapCase{40, 40, 2, 33}));

TEST(Gap, IdenticalStringsHaveZeroDistance) {
  auto a = random_string(30, 5, 3);
  auto w = affine_gap_cost(5.0, 1.0);
  auto pv = gap_parallel(a, a, w, w, Shape::kConvex);
  EXPECT_DOUBLE_EQ(pv.distance, 0.0);
}

TEST(Gap, EmptyVsNonEmptyIsOneGap) {
  std::vector<std::uint32_t> a{1, 2, 3, 4}, b{};
  auto w = affine_gap_cost(5.0, 1.0);
  auto nv = gap_naive(a, b, w, w);
  // Cheapest alignment: delete all of A in one gap = 5 + 4.
  EXPECT_DOUBLE_EQ(nv.distance, 9.0);
  auto pv = gap_parallel(a, b, w, w, Shape::kConvex);
  EXPECT_DOUBLE_EQ(pv.distance, 9.0);
}

TEST(Gap, ParallelRoundsAreBounded) {
  auto a = random_string(50, 41, 3);
  auto b = random_string(50, 42, 3);
  auto w = quadratic_gap_cost(2.0, 0.3);
  auto pv = gap_parallel(a, b, w, w, Shape::kConvex);
  // Rounds can never exceed the grid semi-perimeter.
  EXPECT_LE(pv.stats.rounds, a.size() + b.size() + 2);
  EXPECT_GE(pv.stats.rounds, 1u);
}

TEST(Gap, MatchHeavyInputsUseDiagonals) {
  // a == b: diagonal edges dominate; distance 0 and value at (k, k) is 0.
  std::vector<std::uint32_t> a(20, 7);
  auto w = affine_gap_cost(10.0, 2.0);
  auto pv = gap_parallel(a, a, w, w, Shape::kConvex);
  auto nv = gap_naive(a, a, w, w);
  for (std::size_t k = 0; k <= a.size(); ++k)
    EXPECT_NEAR(pv.at(k, k), nv.at(k, k), 1e-9);
}
