// GLWS: naive / Γlws / parallel Alg. 1 agreement for convex and concave
// costs, Monge validation of the cost families, and Thm 4.1 round
// structure on the post-office workload.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/monge.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/parallel/random.hpp"
#include "test_util.hpp"

using namespace cordon::glws;
namespace cp = cordon::parallel;
namespace ct = cordon::testing;

namespace {

void expect_same(const GlwsResult& a, const GlwsResult& b, double tol = 1e-7) {
  ASSERT_EQ(a.d.size(), b.d.size());
  for (std::size_t i = 0; i < a.d.size(); ++i)
    ASSERT_NEAR(a.d[i], b.d[i], tol) << "state " << i;
}

}  // namespace

struct GlwsCase {
  std::size_t n;
  std::uint64_t seed;
};

class ConvexSweep : public ::testing::TestWithParam<GlwsCase> {};

TEST_P(ConvexSweep, NaiveSeqParallelAgree) {
  auto [n, seed] = GetParam();
  CostFn w = ct::random_convex_cost(n, seed);
  EFn e = identity_e();
  auto nv = glws_naive(n, 0.0, w, e);
  auto sv = glws_sequential(n, 0.0, w, e, Shape::kConvex);
  auto pv = glws_parallel(n, 0.0, w, e, Shape::kConvex);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(Cases, ConvexSweep,
                         ::testing::Values(GlwsCase{1, 1}, GlwsCase{2, 2},
                                           GlwsCase{3, 3}, GlwsCase{10, 4},
                                           GlwsCase{50, 5}, GlwsCase{100, 6},
                                           GlwsCase{500, 7}, GlwsCase{1000, 8},
                                           GlwsCase{2000, 9}));

class ConcaveSweep : public ::testing::TestWithParam<GlwsCase> {};

TEST_P(ConcaveSweep, NaiveSeqParallelAgree) {
  auto [n, seed] = GetParam();
  CostFn w = ct::random_concave_cost(n, seed);
  EFn e = identity_e();
  auto nv = glws_naive(n, 0.0, w, e);
  auto sv = glws_sequential(n, 0.0, w, e, Shape::kConcave);
  auto pv = glws_parallel(n, 0.0, w, e, Shape::kConcave);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(Cases, ConcaveSweep,
                         ::testing::Values(GlwsCase{1, 11}, GlwsCase{2, 12},
                                           GlwsCase{3, 13}, GlwsCase{10, 14},
                                           GlwsCase{50, 15}, GlwsCase{100, 16},
                                           GlwsCase{500, 17},
                                           GlwsCase{1000, 18},
                                           GlwsCase{2000, 19}));

TEST(GlwsCosts, FamiliesSatisfyTheirMongeConditions) {
  auto x = ct::random_positions(18, 42);
  CostFn po = post_office_cost(x, 10.0);
  EXPECT_TRUE(cordon::core::is_convex_monge_exhaustive(
      [&](std::size_t j, std::size_t i) { return po(j, i); }, 17));
  CostFn sq = sqrt_span_cost(x, 2.0);
  EXPECT_TRUE(cordon::core::is_concave_monge_exhaustive(
      [&](std::size_t j, std::size_t i) { return sq(j, i); }, 17));
  CostFn cv = ct::random_convex_cost(18, 4242);
  EXPECT_TRUE(cordon::core::is_convex_monge_exhaustive(
      [&](std::size_t j, std::size_t i) { return cv(j, i); }, 17));
  CostFn cc = ct::random_concave_cost(18, 4243);
  EXPECT_TRUE(cordon::core::is_concave_monge_exhaustive(
      [&](std::size_t j, std::size_t i) { return cc(j, i); }, 17));
}

TEST(GlwsPostOffice, RoundsEqualOfficeCountAndCostsDecreaseWithK) {
  // Thm 4.1: rounds == number of best decisions chained in the solution
  // == number of post offices.  Count offices by backtracking best[].
  const std::size_t n = 2000;
  auto x = ct::random_positions(n, 99);
  for (double open : {10.0, 1000.0, 100000.0}) {
    CostFn w = post_office_cost(x, open);
    auto pv = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);
    auto sv = glws_sequential(n, 0.0, w, identity_e(), Shape::kConvex);
    ASSERT_NEAR(pv.d[n], sv.d[n], 1e-6);
    std::size_t offices = 0;
    for (std::size_t i = n; i != 0; i = pv.best[i]) ++offices;
    EXPECT_EQ(pv.stats.rounds, offices) << "open=" << open;
  }
}

TEST(GlwsParallel, WorkIsNearLinear) {
  // O(n log n) relaxations: assert the constant is sane (<< n^2).
  const std::size_t n = 4000;
  CostFn w = ct::random_convex_cost(n, 31);
  auto pv = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);
  double logn = std::log2(static_cast<double>(n));
  EXPECT_LT(pv.stats.relaxations,
            static_cast<std::uint64_t>(40.0 * n * logn));
}

TEST(GlwsGeneralizedE, NonIdentityE) {
  // E[j] = D[j] * 0.5 + j: exercises the generalized form.
  const std::size_t n = 300;
  CostFn w = ct::random_convex_cost(n, 71);
  EFn e = [](double d, std::size_t j) {
    return d * 0.5 + static_cast<double>(j) * 0.01;
  };
  auto nv = glws_naive(n, 1.0, w, e);
  auto sv = glws_sequential(n, 1.0, w, e, Shape::kConvex);
  auto pv = glws_parallel(n, 1.0, w, e, Shape::kConvex);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

TEST(GlwsGeneralizedE, ConcaveWithNonIdentityE) {
  // The generalized E matters for OAT's LWS reduction; exercise it on
  // the concave path (merge of Alg. 2) as well.
  const std::size_t n = 400;
  CostFn w = ct::random_concave_cost(n, 91);
  EFn e = [](double d, std::size_t j) {
    return d * 0.8 + static_cast<double>(j % 5) * 0.1;
  };
  auto nv = glws_naive(n, 2.0, w, e);
  auto sv = glws_sequential(n, 2.0, w, e, Shape::kConcave);
  auto pv = glws_parallel(n, 2.0, w, e, Shape::kConcave);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

TEST(GlwsLinearCost, DegenerateTiesStillCorrect) {
  // Linear span cost makes many decisions tie — stresses tie-breaking.
  const std::size_t n = 400;
  auto x = ct::random_positions(n, 55);
  CostFn w = post_office_linear_cost(x, 7.0);
  auto nv = glws_naive(n, 0.0, w, identity_e());
  auto sv = glws_sequential(n, 0.0, w, identity_e(), Shape::kConvex);
  auto pv = glws_parallel(n, 0.0, w, identity_e(), Shape::kConvex);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

TEST(GlwsSequential, StatsCountStatesOnce) {
  const std::size_t n = 500;
  CostFn w = ct::random_convex_cost(n, 81);
  auto sv = glws_sequential(n, 0.0, w, identity_e(), Shape::kConvex);
  EXPECT_EQ(sv.stats.states, n);
}
