// Cross-module integration: the public API composed the way the examples
// and benchmarks use it.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/gap/gap.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/kglws/kglws.hpp"
#include "src/lcs/lcs.hpp"
#include "src/lis/lis.hpp"
#include "src/oat/oat.hpp"
#include "src/parallel/random.hpp"

namespace cp = cordon::parallel;

TEST(Integration, LineBreakingMatchesNaiveDp) {
  // Knuth-Plass line breaking as convex GLWS: words with random widths,
  // line width 60.
  const std::size_t n = 200;
  auto wp = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*wp)[i] = (*wp)[i - 1] + 3.0 + cp::uniform_double(3, i) * 9.0 + 1.0;
  auto w = cordon::glws::line_break_cost(wp, 60.0);
  auto e = cordon::glws::identity_e();
  auto nv = cordon::glws::glws_naive(n, 0.0, w, e);
  auto pv = cordon::glws::glws_parallel(n, 0.0, w, e,
                                        cordon::glws::Shape::kConvex);
  for (std::size_t i = 0; i <= n; ++i) ASSERT_NEAR(nv.d[i], pv.d[i], 1e-6);
}

TEST(Integration, KMeans1dViaKglwsIsOptimal) {
  // 1D k-means on three well-separated blobs with k=3 must cut at the
  // blob boundaries.
  std::vector<double> x{0.0};  // 1-indexed
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 10; ++i)
      x.push_back(c * 100.0 + i * 0.5);
  auto cost = cordon::glws::squared_distance_cost(x);
  cordon::glws::CostFn w = [cost](std::size_t j, std::size_t i) {
    return cost(j, i);
  };
  auto cuts = cordon::kglws::kglws_backtrack(30, 3, w);
  EXPECT_EQ(cuts, (std::vector<std::uint32_t>{0, 10, 20, 30}));
}

TEST(Integration, DiffSizesViaSparseLcs) {
  // Line-based diff: LCS length of two "files" determines the number of
  // changed lines; deleting one line from a file keeps LCS = n-1.
  std::vector<std::uint32_t> file1(100);
  for (std::size_t i = 0; i < 100; ++i)
    file1[i] = static_cast<std::uint32_t>(cp::hash64(1, i) % 1000000);
  std::vector<std::uint32_t> file2 = file1;
  file2.erase(file2.begin() + 42);
  auto pairs = cordon::lcs::match_pairs(file1, file2);
  auto res = cordon::lcs::lcs_parallel(pairs);
  EXPECT_EQ(res.length, 99u);
}

TEST(Integration, AlphabeticCodeIsPrefixFreeAndNearEntropy) {
  // An alphabetic code built from an OAT: codeword lengths = leaf levels
  // satisfy Kraft's inequality with equality (full binary tree).
  const std::size_t n = 128;
  std::vector<double> freq(n);
  for (std::size_t i = 0; i < n; ++i)
    freq[i] = 1.0 + static_cast<double>(cp::hash64(9, i) % 1000);
  auto oat = cordon::oat::oat_garsia_wachs(freq);
  double kraft = 0;
  for (auto lv : oat.levels) kraft += std::pow(0.5, lv);
  EXPECT_NEAR(kraft, 1.0, 1e-9);
  // Alphabetic codes are within 2 bits of entropy on average.
  double total = 0, entropy = 0, avg_len = 0;
  for (double f : freq) total += f;
  for (std::size_t i = 0; i < n; ++i) {
    double p = freq[i] / total;
    entropy -= p * std::log2(p);
    avg_len += p * oat.levels[i];
  }
  EXPECT_LE(avg_len, entropy + 2.0);
}

TEST(Integration, GapWithHugeGapCostsDegeneratesToLcsStructure) {
  // When gaps are extremely expensive and strings share a long common
  // subsequence as prefix/suffix alignment, the DP still matches naive.
  std::vector<std::uint32_t> a{1, 2, 3, 4, 5, 6};
  std::vector<std::uint32_t> b{1, 2, 9, 4, 5, 6};
  auto w = cordon::gap::affine_gap_cost(2.0, 0.5);
  auto nv = cordon::gap::gap_naive(a, b, w, w);
  auto pv = cordon::gap::gap_parallel(a, b, w, w,
                                      cordon::glws::Shape::kConvex);
  EXPECT_NEAR(nv.distance, pv.distance, 1e-9);
  // One substitution = delete one symbol in each string: 2 * (2 + 0.5).
  EXPECT_NEAR(nv.distance, 5.0, 1e-9);
}

TEST(Integration, StatsComposeAcrossAlgorithms) {
  cordon::core::DpStats total;
  auto lis = cordon::lis::lis_parallel({5, 1, 4, 2, 3});
  total += lis.stats;
  auto x = std::make_shared<std::vector<double>>(
      std::vector<double>{0, 1, 2, 3, 4, 5});
  auto w = cordon::glws::post_office_cost(x, 2.0);
  auto g = cordon::glws::glws_parallel(5, 0.0, w, cordon::glws::identity_e(),
                                       cordon::glws::Shape::kConvex);
  total += g.stats;
  EXPECT_GT(total.states, 0u);
  EXPECT_GT(total.rounds, 0u);
}
