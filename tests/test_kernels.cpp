// Kernel oracle tests.
//
// Two layers:
//   1. array-level: every vectorized kernel in core/kernels.hpp against
//      its scalar reference on randomized inputs — equality is EXACT
//      (same additions, same `<` reductions, no NaNs), so any divergence
//      introduced by a vectorization "optimization" fails loudly;
//   2. family-level: for all eight DP families plus the explicit DAG,
//      randomized instances solved through the optimized (kernelized,
//      SoA, arena-backed) path against the naive reference oracle via
//      the engine registry — the end-to-end guarantee that the hot-path
//      rewrite changed speed, not answers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/cordon.hpp"
#include "src/core/kernels.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/random.hpp"

namespace kernels = cordon::core::kernels;
namespace parallel = cordon::parallel;
namespace engine = cordon::engine;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed,
                                   double inf_fraction = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (inf_fraction > 0 && parallel::uniform_double(seed ^ 0x5bd1u, i) < inf_fraction)
      v[i] = kInf;
    else
      v[i] = parallel::uniform_double(seed, i) * 100.0 - 50.0;
  }
  return v;
}

// Duplicate some values so argmin ties actually occur.
std::vector<double> with_duplicates(std::vector<double> v, std::uint64_t seed) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i)
    if (parallel::uniform(seed, i, 4) == 0)
      v[i + 1] = v[parallel::uniform(seed ^ 0x77u, i, i + 1)];
  return v;
}

}  // namespace

TEST(KernelOracle, ArgminAdd) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    std::size_t n = 1 + parallel::uniform(seed, 0, 700);
    auto a = with_duplicates(random_doubles(n, seed), seed);
    auto b = with_duplicates(random_doubles(n, seed ^ 0xbeef), seed + 7);
    auto ref = kernels::scalar::argmin_add(a.data(), b.data(), n);
    auto got = kernels::argmin_add(a.data(), b.data(), n);
    EXPECT_EQ(got.value, ref.value) << "seed " << seed;
    EXPECT_EQ(got.index, ref.index) << "seed " << seed;
  }
}

TEST(KernelOracle, ArgminAddAllInfinite) {
  std::vector<double> a(17, kInf), b(17, 1.0);
  auto ref = kernels::scalar::argmin_add(a.data(), b.data(), a.size());
  auto got = kernels::argmin_add(a.data(), b.data(), a.size());
  EXPECT_EQ(got.value, ref.value);
  EXPECT_EQ(got.index, ref.index);
}

TEST(KernelOracle, ArgminAddLast) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    std::size_t n = 1 + parallel::uniform(seed, 1, 700);
    auto a = with_duplicates(random_doubles(n, seed, /*inf_fraction=*/0.2),
                             seed);
    std::vector<double> b(n, 0.25);
    auto ref = kernels::scalar::argmin_add_last(a.data(), b.data(), n);
    auto got = kernels::argmin_add_last(a.data(), b.data(), n);
    EXPECT_EQ(got.value, ref.value) << "seed " << seed;
    EXPECT_EQ(got.index, ref.index) << "seed " << seed;
  }
}

TEST(KernelOracle, ArgminAddStrided) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    std::size_t n = 1 + parallel::uniform(seed, 2, 200);
    std::size_t stride = 1 + parallel::uniform(seed, 3, 9);
    auto a = with_duplicates(random_doubles(n, seed), seed);
    auto b = random_doubles(n * stride + 1, seed ^ 0xfeed);
    auto ref =
        kernels::scalar::argmin_add_strided(a.data(), b.data(), stride, n);
    auto got = kernels::argmin_add_strided(a.data(), b.data(), stride, n);
    EXPECT_EQ(got.value, ref.value) << "seed " << seed;
    EXPECT_EQ(got.index, ref.index) << "seed " << seed;
  }
}

TEST(KernelOracle, GatherAddMinMaxWithMask) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    std::size_t states = 2 + parallel::uniform(seed, 0, 100);
    std::size_t edges = parallel::uniform(seed, 1, 400);
    auto values = random_doubles(states, seed, /*inf_fraction=*/0.1);
    auto w = random_doubles(edges, seed ^ 0xabcd);
    std::vector<std::uint32_t> src(edges);
    std::vector<std::uint8_t> mask(states);
    for (std::size_t e = 0; e < edges; ++e)
      src[e] = static_cast<std::uint32_t>(parallel::uniform(seed, e, states));
    for (std::size_t s = 0; s < states; ++s)
      mask[s] = parallel::uniform(seed ^ 0x99u, s, 2) != 0;

    EXPECT_EQ(kernels::min_gather_add(values.data(), src.data(), w.data(),
                                      mask.data(), edges),
              kernels::scalar::min_gather_add(values.data(), src.data(),
                                              w.data(), mask.data(), edges));
    EXPECT_EQ(kernels::max_gather_add(values.data(), src.data(), w.data(),
                                      mask.data(), edges),
              kernels::scalar::max_gather_add(values.data(), src.data(),
                                              w.data(), mask.data(), edges));
    EXPECT_EQ(kernels::min_gather_add(values.data(), src.data(), w.data(),
                                      nullptr, edges),
              kernels::scalar::min_gather_add(values.data(), src.data(),
                                              w.data(), nullptr, edges));
    EXPECT_EQ(kernels::mask_gather_any(mask.data(), src.data(), edges),
              kernels::scalar::mask_gather_any(mask.data(), src.data(),
                                               edges));
  }
}

TEST(KernelOracle, Scatter) {
  std::size_t n = 777;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; i += 3) idx.push_back(i);
  std::vector<std::uint32_t> d1(n, 0), d2(n, 0), d3(n, 0);
  kernels::scatter_fill(d1.data(), idx.data(), idx.size(), 9u);
  kernels::scalar::scatter_fill(d2.data(), idx.data(), idx.size(), 9u);
  kernels::parallel_scatter_fill(d3.data(), idx.data(), idx.size(), 9u);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d3);
}

TEST(KernelOracle, ArgminTransformTieDirections) {
  // f has plateaus; first/last variants must bracket them.
  auto f = [](std::size_t i) { return static_cast<double>((i / 5) % 7); };
  auto first = kernels::argmin_transform(10, 200, f);
  auto last = kernels::argmin_transform_last(10, 200, f);
  EXPECT_EQ(first.value, last.value);
  EXPECT_LT(first.index, last.index);
  EXPECT_EQ(f(first.index), first.value);
  EXPECT_EQ(f(last.index), last.value);
  for (std::size_t i = 10; i < first.index; ++i)
    EXPECT_GT(f(i), first.value);
  for (std::size_t i = last.index + 1; i < 200; ++i)
    EXPECT_GT(f(i), last.value);
}

// --- family-level: kernelized solve vs naive reference ----------------------

TEST(FamilyOracle, AllFamiliesMatchReferenceOnRandomInstances) {
  const auto& reg = engine::builtin_registry();
  ASSERT_EQ(reg.size(), 9u);
  for (const auto& solver : reg.solvers()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      std::uint64_t n = 40 + 60 * seed;
      engine::Instance inst = solver->generate({n, 5, seed * 1001});
      engine::SolveResult fast = solver->solve(inst);
      engine::SolveResult ref = solver->solve_reference(inst);
      double tol = 1e-9 * (1.0 + std::abs(ref.objective));
      EXPECT_NEAR(fast.objective, ref.objective, tol)
          << solver->key() << " seed " << seed << " n " << n;
    }
  }
}

TEST(FamilyOracle, ExplicitCordonAffinePathMatchesGenericExactly) {
  const auto& reg = engine::builtin_registry();
  const engine::Solver& dag_solver = reg.at("dag");
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    engine::Instance inst = dag_solver.generate({50 + seed * 37, 0, seed});
    cordon::core::DpDag dag = inst.as<engine::DagInstance>().build();
    ASSERT_TRUE(dag.all_affine());
    cordon::core::ExplicitCordon cordon(dag);
    auto affine = cordon.run_affine();
    auto generic = cordon.run_generic();
    ASSERT_EQ(affine.values.size(), generic.values.size());
    EXPECT_EQ(affine.rounds, generic.rounds) << "seed " << seed;
    for (std::size_t i = 0; i < affine.values.size(); ++i) {
      // Same additions in a different evaluation order can differ by
      // one rounding step; the min/max reductions themselves are exact.
      EXPECT_DOUBLE_EQ(affine.values[i], generic.values[i])
          << "state " << i << " seed " << seed;
    }
    EXPECT_EQ(affine.round_of, generic.round_of) << "seed " << seed;
  }
}

TEST(FamilyOracle, MixedDagStaysOnGenericPath) {
  using cordon::core::DpDag;
  DpDag dag(3, cordon::core::Objective::kMin);
  dag.add_affine_edge(0, 1, 2.0);
  dag.add_edge(1, 2, [](double x) { return x * 2.0; });
  EXPECT_FALSE(dag.all_affine());
  dag.set_boundary(0, 1.0);
  auto r = cordon::core::ExplicitCordon(dag).run();
  EXPECT_DOUBLE_EQ(r.values[2], 6.0);
}
