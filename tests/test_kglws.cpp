// k-GLWS: naive / SMAWK / D&C agreement, SMAWK vs brute row minima, and
// the layer-per-round structure (Sec. 5.4).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/glws/costs.hpp"
#include "src/kglws/kglws.hpp"
#include "src/kglws/smawk.hpp"
#include "src/parallel/random.hpp"
#include "test_util.hpp"

using namespace cordon::kglws;
namespace cp = cordon::parallel;
namespace ct = cordon::testing;

TEST(Smawk, MatchesBruteForceOnTotallyMonotoneMatrices) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::size_t rows = 1 + cp::uniform(seed, 0, 60);
    std::size_t cols = 1 + cp::uniform(seed, 1, 60);
    // Convex totally monotone family: M[r][c] = (x_r - y_c)^2 with both
    // sequences increasing.
    std::vector<double> x(rows), y(cols);
    for (std::size_t r = 0; r < rows; ++r)
      x[r] = r * 2.0 + cp::uniform_double(seed ^ 1, r);
    for (std::size_t c = 0; c < cols; ++c)
      y[c] = c * 2.0 + cp::uniform_double(seed ^ 2, c);
    auto value = [&](std::size_t r, std::size_t c) {
      double d = x[r] - y[c];
      return d * d;
    };
    auto got = smawk_row_minima(rows, cols, value);
    for (std::size_t r = 0; r < rows; ++r) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t expect = 0;
      for (std::size_t c = 0; c < cols; ++c)
        if (value(r, c) < best) {
          best = value(r, c);
          expect = c;
        }
      ASSERT_DOUBLE_EQ(value(r, got[r]), best) << "seed " << seed << " r " << r;
      (void)expect;
    }
  }
}

struct KglwsCase {
  std::size_t n, k;
  std::uint64_t seed;
};

class KglwsSweep : public ::testing::TestWithParam<KglwsCase> {};

TEST_P(KglwsSweep, ThreeEnginesAgree) {
  auto [n, k, seed] = GetParam();
  auto x = std::vector<double>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*&x)[i] = x[i - 1] + 0.5 + cp::uniform_double(seed, i) * 4.0;
  auto cost = cordon::glws::squared_distance_cost(x);
  cordon::glws::CostFn w = [cost](std::size_t j, std::size_t i) {
    return cost(j, i);
  };
  auto nv = kglws_naive(n, k, w);
  auto sv = kglws_smawk(n, k, w);
  auto dv = kglws_dc(n, k, w);
  ASSERT_NEAR(nv.total, sv.total, 1e-7);
  ASSERT_NEAR(nv.total, dv.total, 1e-7);
  // Per-state agreement on the final layer.
  for (std::size_t i = 0; i <= n; ++i) {
    if (std::isinf(nv.d[i])) {
      ASSERT_TRUE(std::isinf(dv.d[i])) << i;
    } else {
      ASSERT_NEAR(nv.d[i], dv.d[i], 1e-7) << i;
      ASSERT_NEAR(nv.d[i], sv.d[i], 1e-7) << i;
    }
  }
  // Cordon view: exactly k frontier rounds.
  EXPECT_EQ(dv.stats.rounds, k);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KglwsSweep,
    ::testing::Values(KglwsCase{1, 1, 1}, KglwsCase{5, 2, 2},
                      KglwsCase{10, 3, 3}, KglwsCase{50, 1, 4},
                      KglwsCase{50, 7, 5}, KglwsCase{120, 4, 6},
                      KglwsCase{200, 10, 7}, KglwsCase{300, 3, 8}));

TEST(Kglws, BacktrackGivesValidClustering) {
  const std::size_t n = 100, k = 5;
  auto x = std::vector<double>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    x[i] = x[i - 1] + 1.0 + cp::uniform_double(17, i) * 2.0;
  auto cost = cordon::glws::squared_distance_cost(x);
  cordon::glws::CostFn w = [cost](std::size_t j, std::size_t i) {
    return cost(j, i);
  };
  auto cuts = kglws_backtrack(n, k, w);
  ASSERT_EQ(cuts.size(), k + 1);
  EXPECT_EQ(cuts.front(), 0u);
  EXPECT_EQ(cuts.back(), n);
  double total = 0;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    ASSERT_LT(cuts[c], cuts[c + 1]);
    total += w(cuts[c], cuts[c + 1]);
  }
  EXPECT_NEAR(total, kglws_dc(n, k, w).total, 1e-7);
}

TEST(Kglws, SmawkWorkIsLinearPerLayer) {
  const std::size_t n = 2000, k = 3;
  auto x = std::vector<double>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i) x[i] = x[i - 1] + 1.0;
  auto cost = cordon::glws::squared_distance_cost(x);
  cordon::glws::CostFn w = [cost](std::size_t j, std::size_t i) {
    return cost(j, i);
  };
  auto sv = kglws_smawk(n, k, w);
  // SMAWK: O(n) evaluations per layer (generous constant 16).
  EXPECT_LT(sv.stats.relaxations, 16 * k * n);
}

TEST(Kglws, MoreClustersNeverIncreaseCost) {
  const std::size_t n = 80;
  auto x = std::vector<double>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    x[i] = x[i - 1] + 0.3 + cp::uniform_double(23, i);
  auto cost = cordon::glws::squared_distance_cost(x);
  cordon::glws::CostFn w = [cost](std::size_t j, std::size_t i) {
    return cost(j, i);
  };
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 10; ++k) {
    double total = kglws_dc(n, k, w).total;
    EXPECT_LE(total, prev + 1e-9) << k;
    prev = total;
  }
}
