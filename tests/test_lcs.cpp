// Sparse LCS: naive grid DP vs Hunt-Szymanski vs cordon-parallel, plus
// the Thm 3.2 structural properties and the per-pair DP cross-check.
#include <gtest/gtest.h>

#include <vector>

#include "src/lcs/lcs.hpp"
#include "src/lis/lis.hpp"
#include "src/parallel/random.hpp"
#include "test_util.hpp"

using namespace cordon::lcs;
namespace cp = cordon::parallel;

namespace {

std::vector<std::uint32_t> random_string(std::size_t n, std::uint64_t seed,
                                         std::uint32_t alphabet) {
  std::vector<std::uint32_t> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<std::uint32_t>(cp::uniform(seed, i, alphabet));
  return s;
}

}  // namespace

struct LcsCase {
  std::size_t n, m;
  std::uint32_t alphabet;
  std::uint64_t seed;
};

class LcsSweep : public ::testing::TestWithParam<LcsCase> {};

TEST_P(LcsSweep, AllAlgorithmsAgree) {
  auto [n, m, alphabet, seed] = GetParam();
  auto a = random_string(n, seed, alphabet);
  auto b = random_string(m, seed ^ 0xf00d, alphabet);
  auto pairs = match_pairs(a, b);
  auto nv = lcs_naive(a, b);
  auto sv = lcs_sparse_seq(pairs);
  auto pv = lcs_parallel(pairs);
  EXPECT_EQ(nv.length, sv.length);
  EXPECT_EQ(nv.length, pv.length);
  // Thm 3.2: rounds == LCS length, and each pair is processed once.
  EXPECT_EQ(pv.stats.rounds, pv.length);
  EXPECT_EQ(pv.stats.states, pairs.size());
  // Per-pair DP values agree between the two sparse algorithms.
  ASSERT_EQ(sv.pair_dp.size(), pv.pair_dp.size());
  for (std::size_t p = 0; p < pairs.size(); ++p)
    ASSERT_EQ(sv.pair_dp[p], pv.pair_dp[p]) << p;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LcsSweep,
    ::testing::Values(LcsCase{0, 0, 4, 1}, LcsCase{5, 0, 4, 2},
                      LcsCase{1, 1, 1, 3}, LcsCase{20, 20, 4, 4},
                      LcsCase{50, 30, 2, 5}, LcsCase{100, 100, 26, 6},
                      LcsCase{100, 100, 2, 7}, LcsCase{300, 200, 8, 8},
                      LcsCase{500, 500, 3, 9}));

TEST(Lcs, PairDpEqualsPrefixLcs) {
  // pair_dp[p] must equal the LCS of the prefixes ending at that match
  // and using it: check against the naive grid of each prefix pair.
  auto a = random_string(40, 77, 3);
  auto b = random_string(35, 99, 3);
  auto pairs = match_pairs(a, b);
  auto pv = lcs_parallel(pairs);
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    std::vector<std::uint32_t> ap(a.begin(), a.begin() + pairs[p].i + 1);
    std::vector<std::uint32_t> bp(b.begin(), b.begin() + pairs[p].j + 1);
    // LCS ending *at* (i, j): both prefixes must end with the matched
    // symbol, so it equals LCS(ap, bp) when the last pair is used; the
    // DP value is <= LCS(ap, bp) and >= LCS(ap', bp') + 1 of the shorter
    // prefixes.  The tight check: LCS(ap, bp) == pair value when the
    // match is optimal, but in general pair_dp <= LCS(ap, bp).
    EXPECT_LE(pv.pair_dp[p], lcs_naive(ap, bp).length);
  }
  // And the max pair value is the full LCS.
  std::uint32_t best = 0;
  for (auto v : pv.pair_dp) best = std::max(best, v);
  EXPECT_EQ(best, lcs_naive(a, b).length);
}

TEST(Lcs, IdenticalStrings) {
  auto a = random_string(200, 5, 4);
  auto pairs = match_pairs(a, a);
  auto pv = lcs_parallel(pairs);
  EXPECT_EQ(pv.length, a.size());
}

TEST(Lcs, DisjointAlphabetsNoPairs) {
  std::vector<std::uint32_t> a{1, 2, 3}, b{4, 5, 6};
  auto pairs = match_pairs(a, b);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(lcs_parallel(pairs).length, 0u);
  EXPECT_EQ(lcs_naive(a, b).length, 0u);
}

TEST(Lcs, MatchPairsOrderInvariant) {
  // (i asc, j desc) — required by both sparse algorithms.
  auto a = random_string(100, 13, 3);
  auto b = random_string(80, 14, 3);
  auto pairs = match_pairs(a, b);
  for (std::size_t p = 1; p < pairs.size(); ++p) {
    ASSERT_TRUE(pairs[p - 1].i < pairs[p].i ||
                (pairs[p - 1].i == pairs[p].i && pairs[p - 1].j > pairs[p].j));
  }
  for (const auto& pr : pairs) ASSERT_EQ(a[pr.i], b[pr.j]);
}

TEST(Lcs, RecoveredChainIsAValidWitness) {
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    auto a = random_string(120, seed, 3);
    auto b = random_string(90, seed ^ 0xc0ffee, 3);
    auto pairs = match_pairs(a, b);
    auto res = lcs_parallel(pairs);
    auto chain = recover_chain(pairs, res);
    ASSERT_EQ(chain.size(), res.length);
    for (std::size_t c = 0; c < chain.size(); ++c) {
      ASSERT_EQ(a[chain[c].i], b[chain[c].j]);  // each link is a match
      if (c > 0) {  // strictly increasing in both coordinates
        ASSERT_LT(chain[c - 1].i, chain[c].i);
        ASSERT_LT(chain[c - 1].j, chain[c].j);
      }
    }
  }
}

TEST(Lcs, RecoveredChainFromSequentialDpToo) {
  auto a = random_string(80, 9, 4);
  auto b = random_string(80, 10, 4);
  auto pairs = match_pairs(a, b);
  auto res = lcs_sparse_seq(pairs);
  auto chain = recover_chain(pairs, res);
  EXPECT_EQ(chain.size(), res.length);
}

TEST(Lcs, LisReductionViaLcs) {
  // LIS of a permutation == LCS of the permutation with sorted order
  // (Sec. 3, Fig. 2).
  auto perm = cp::random_permutation(150, 21);
  std::vector<std::uint32_t> sorted(perm.size());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) sorted[i] = i;
  std::vector<std::uint32_t> seq(perm.begin(), perm.end());
  auto pairs = match_pairs(seq, sorted);
  EXPECT_EQ(pairs.size(), perm.size());  // permutation: exactly n pairs
  auto pv = lcs_parallel(pairs);
  // Compare against LIS computed directly.
  std::vector<std::uint64_t> vals(perm.begin(), perm.end());
  EXPECT_EQ(pv.length, cordon::lis::lis_parallel(vals).length);
}
