// LIS: naive / optimized-sequential / parallel agreement + Thm 3.1
// structural properties (rounds == LIS length, work bounds).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/lis/lis.hpp"
#include "src/parallel/random.hpp"
#include "test_util.hpp"

using cordon::lis::lis_naive;
using cordon::lis::lis_parallel;
using cordon::lis::lis_sequential;

struct LisCase {
  std::size_t n;
  std::uint64_t seed;
  std::uint64_t bound;  // value range controls duplicate density
};

class LisSweep : public ::testing::TestWithParam<LisCase> {};

TEST_P(LisSweep, AllThreeAlgorithmsAgreePerState) {
  auto [n, seed, bound] = GetParam();
  auto a = cordon::testing::random_values(n, seed, bound);
  auto nv = lis_naive(a);
  auto sv = lis_sequential(a);
  auto pv = lis_parallel(a);
  EXPECT_EQ(nv.length, sv.length);
  EXPECT_EQ(nv.length, pv.length);
  ASSERT_EQ(nv.dp.size(), sv.dp.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(nv.dp[i], sv.dp[i]) << i;
    ASSERT_EQ(nv.dp[i], pv.dp[i]) << i;
  }
  // Thm 3.1: the cordon algorithm runs exactly LIS-length rounds.
  EXPECT_EQ(pv.stats.rounds, pv.length);
  // Work efficiency: every state is touched exactly once.
  EXPECT_EQ(pv.stats.states, n);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LisSweep,
    ::testing::Values(LisCase{1, 1, 10}, LisCase{2, 2, 2}, LisCase{10, 3, 5},
                      LisCase{100, 4, 1000}, LisCase{100, 5, 7},
                      LisCase{1000, 6, 1000000}, LisCase{1000, 7, 3},
                      LisCase{5000, 8, 50}));

TEST(Lis, EmptyInput) {
  std::vector<std::uint64_t> a;
  EXPECT_EQ(lis_parallel(a).length, 0u);
  EXPECT_EQ(lis_sequential(a).length, 0u);
}

TEST(Lis, StrictlyIncreasingIsWholeSequence) {
  std::vector<std::uint64_t> a(300);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i * 2;
  auto pv = lis_parallel(a);
  EXPECT_EQ(pv.length, a.size());
  EXPECT_EQ(pv.stats.rounds, a.size());  // worst-case depth: no parallelism
}

TEST(Lis, DecreasingFinishesInOneRound) {
  std::vector<std::uint64_t> a(300);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 1000 - i;
  auto pv = lis_parallel(a);
  EXPECT_EQ(pv.length, 1u);
  EXPECT_EQ(pv.stats.rounds, 1u);  // perfect parallelism
}

TEST(Lis, AllEqualValues) {
  std::vector<std::uint64_t> a(50, 42);
  auto pv = lis_parallel(a);
  EXPECT_EQ(pv.length, 1u);  // strictly increasing => duplicates break chains
  EXPECT_EQ(lis_naive(a).length, 1u);
}

TEST(Lis, WitnessIsAValidIncreasingSubsequence) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    auto a = cordon::testing::random_values(500, seed, 40);  // many dups
    auto res = lis_parallel(a);
    auto wit = cordon::lis::lis_witness(a, res);
    ASSERT_EQ(wit.size(), res.length);
    for (std::size_t k = 1; k < wit.size(); ++k) {
      ASSERT_LT(wit[k - 1], wit[k]);          // increasing indices
      ASSERT_LT(a[wit[k - 1]], a[wit[k]]);    // strictly increasing values
    }
  }
}

TEST(Lis, SequentialWorkIsOnePerState) {
  auto a = cordon::testing::random_values(2000, 11, 100000);
  auto sv = lis_sequential(a);
  EXPECT_EQ(sv.stats.relaxations, a.size());  // one effective edge per state
}
