// OAT: Garsia-Wachs vs interval-DP oracle, parallel vs sequential l-tree
// equivalence (Larmore: any locally minimal pair gives the same l-tree),
// phase-2 reconstruction, and the Lemma 5.1 height bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/oat/huffman.hpp"
#include "src/oat/oat.hpp"
#include "src/parallel/random.hpp"

using namespace cordon::oat;
namespace cp = cordon::parallel;

namespace {

std::vector<double> random_weights(std::size_t n, std::uint64_t seed,
                                   double lo, double hi) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = lo + cp::uniform_double(seed, i) * (hi - lo);
  return w;
}

std::vector<double> random_int_weights(std::size_t n, std::uint64_t seed,
                                       std::uint64_t bound) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = static_cast<double>(1 + cp::uniform(seed, i, bound));
  return w;
}

}  // namespace

class OatSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OatSweep, GarsiaWachsMatchesDpOracle) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {1, 2, 3, 4, 10, 40, 90}) {
    auto w = random_int_weights(n, seed, 50);
    auto gw = oat_garsia_wachs(w);
    double oracle = oat_dp_cost(w);
    ASSERT_NEAR(gw.cost, oracle, 1e-7) << "n=" << n << " seed=" << seed;
  }
}

TEST_P(OatSweep, ParallelMatchesSequentialLevels) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {1, 2, 3, 5, 16, 64, 200}) {
    auto w = random_int_weights(n, seed ^ 0xbeef, 1000);
    auto gw = oat_garsia_wachs(w);
    auto pv = oat_parallel(w);
    ASSERT_EQ(gw.levels, pv.levels) << "n=" << n << " seed=" << seed;
    ASSERT_NEAR(gw.cost, pv.cost, 1e-7);
  }
}

TEST_P(OatSweep, HuTuckerMatchesGarsiaWachs) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {1, 2, 3, 5, 20, 60, 150}) {
    auto w = random_int_weights(n, seed ^ 0xcafe, 200);
    auto gw = oat_garsia_wachs(w);
    auto ht = oat_hu_tucker(w);
    ASSERT_NEAR(ht.cost, gw.cost, 1e-7) << "n=" << n << " seed=" << seed;
    // Both phase-1 algorithms construct the same l-tree level sequence.
    ASSERT_EQ(ht.levels, gw.levels) << "n=" << n << " seed=" << seed;
  }
}

TEST(Oat, HuTuckerMatchesOracleOnRealWeights) {
  for (std::uint64_t seed : {9, 10, 11}) {
    auto w = random_weights(60, seed, 0.1, 50.0);
    auto ht = oat_hu_tucker(w);
    ASSERT_NEAR(ht.cost, oat_dp_cost(w), 1e-7) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OatSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Oat, LevelsReconstructToAValidTree) {
  auto w = random_weights(64, 3, 1.0, 100.0);
  auto gw = oat_garsia_wachs(w);
  AlphabeticTree t = tree_from_levels(gw.levels);
  EXPECT_EQ(t.num_internal(), w.size() - 1);
  // Recompute leaf depths from the explicit tree and compare.
  std::vector<std::uint32_t> depth(w.size(), 0);
  // Root is the last internal node; walk down.
  struct Rec {
    static void go(const AlphabeticTree& t, std::int32_t id, std::uint32_t d,
                   std::vector<std::uint32_t>& out) {
      if (id >= 0) {
        out[static_cast<std::size_t>(id)] = d;
        return;
      }
      std::size_t k = static_cast<std::size_t>(~id);
      go(t, t.left[k], d + 1, out);
      go(t, t.right[k], d + 1, out);
    }
  };
  Rec::go(t, ~static_cast<std::int32_t>(t.num_internal() - 1), 0, depth);
  EXPECT_EQ(depth, gw.levels);
}

TEST(Oat, EqualWeightsGiveBalancedTree) {
  const std::size_t n = 64;
  std::vector<double> w(n, 1.0);
  auto gw = oat_garsia_wachs(w);
  EXPECT_EQ(gw.height, 6u);  // perfectly balanced over 64 leaves
  EXPECT_DOUBLE_EQ(gw.cost, 64.0 * 6.0);
}

TEST(Oat, HeightLemma51) {
  // Lemma 5.1: positive integer weights of word size W => height O(log W).
  // The proof gives: subtree weight doubles every 3 levels, so height <=
  // ~3 log2(total/min) + O(1).
  for (std::uint64_t seed : {1, 2, 3}) {
    for (std::uint64_t bound : {2ull, 16ull, 1024ull}) {
      const std::size_t n = 500;
      auto w = random_int_weights(n, seed, bound);
      double total = 0;
      for (double x : w) total += x;
      auto gw = oat_garsia_wachs(w);
      double limit = 3.0 * std::log2(total) + 3.0;
      EXPECT_LE(gw.height, static_cast<std::uint32_t>(limit))
          << "seed=" << seed << " bound=" << bound;
    }
  }
}

TEST(Oat, ParallelRoundsArePolylogarithmic) {
  // All-LMP rounds + the sorted-endgame two-queue drain (whose span is
  // the combine dependency depth, Lemma 5.1): random integer inputs
  // should finish in O(log n + log W) rounds, not O(n).
  const std::size_t n = 4096;
  auto w = random_int_weights(n, 11, 1 << 20);
  auto pv = oat_parallel(w);
  EXPECT_LT(pv.stats.rounds, 120u);
  EXPECT_EQ(pv.levels.size(), n);
}

TEST(Oat, IncreasingInputDrainsInHeightRounds) {
  // A fully sorted input hits the drain immediately: rounds == combine
  // dependency depth, which Lemma A.1 ties to the subtree-weight
  // doubling (≈ 3 levels per doubling), far below n.
  const std::size_t n = 2048;
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<double>(i + 1);
  auto pv = oat_parallel(w);
  EXPECT_LT(pv.stats.rounds, 80u);
  EXPECT_EQ(pv.levels, oat_garsia_wachs(w).levels);
}

TEST(Oat, IncreasingWeightsWorstCaseStillCorrect) {
  // Monotone weights are the adversarial case for the pair-based rounds
  // ([72]'s motivation for valleys): correctness must hold regardless.
  const std::size_t n = 200;
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<double>(i + 1);
  auto gw = oat_garsia_wachs(w);
  auto pv = oat_parallel(w);
  EXPECT_EQ(gw.levels, pv.levels);
  EXPECT_NEAR(gw.cost, oat_dp_cost(w), 1e-7);
}

TEST(Oat, HuffmanLowerBoundsAlphabeticCost) {
  // Huffman optimizes over all binary trees, OAT only over order-
  // preserving ones, so huffman <= oat always; on sorted weights the
  // order constraint is free and they must coincide.
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    auto w = random_weights(200, seed, 1.0, 100.0);
    auto hf = huffman(w);
    auto gw = oat_garsia_wachs(w);
    EXPECT_LE(hf.cost, gw.cost + 1e-7) << seed;
    std::sort(w.begin(), w.end());
    EXPECT_NEAR(huffman(w).cost, oat_garsia_wachs(w).cost, 1e-7) << seed;
  }
}

TEST(Oat, HuffmanKraftEquality) {
  auto w = random_weights(77, 5, 0.5, 20.0);
  auto hf = huffman(w);
  double kraft = 0;
  for (auto len : hf.lengths) kraft += std::pow(0.5, len);
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(Oat, SawtoothAdversarialStillExact) {
  // Repeated interior sorted runs (the drain only fires on a fully
  // sorted list): correctness must hold and rounds stay far below n.
  const std::size_t n = 1024;
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = static_cast<double>((i % 64) * 100 + i / 64 + 1);
  auto gw = oat_garsia_wachs(w);
  auto pv = oat_parallel(w);
  EXPECT_EQ(gw.levels, pv.levels);
  EXPECT_LT(pv.stats.rounds, n / 2);
}

TEST(Oat, SingleAndPairInputs) {
  EXPECT_EQ(oat_garsia_wachs({5.0}).height, 0u);
  auto two = oat_garsia_wachs({3.0, 4.0});
  EXPECT_EQ(two.levels, (std::vector<std::uint32_t>{1, 1}));
  EXPECT_DOUBLE_EQ(two.cost, 7.0);
}
