// OBST: naive O(n^3) vs Knuth O(n^2) vs parallel wavefront (Sec. 5.5),
// plus the quadratic-work property of the Knuth ranges.
#include <gtest/gtest.h>

#include <vector>

#include "src/obst/obst.hpp"
#include "src/parallel/random.hpp"

using namespace cordon::obst;
namespace cp = cordon::parallel;

namespace {

std::vector<double> random_freqs(std::size_t n, std::uint64_t seed) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 1.0 + cp::uniform_double(seed, i) * 9.0;
  return w;
}

}  // namespace

class ObstSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObstSweep, ThreeEnginesAgree) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {1, 2, 3, 8, 30, 60}) {
    auto w = random_freqs(n, seed);
    auto nv = obst_naive(w);
    auto kv = obst_knuth(w);
    auto pv = obst_parallel(w);
    ASSERT_NEAR(nv.cost, kv.cost, 1e-7) << "n=" << n;
    ASSERT_NEAR(nv.cost, pv.cost, 1e-7) << "n=" << n;
    // Wavefront rounds = n (one diagonal per round).
    EXPECT_EQ(pv.stats.rounds, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Obst, KnuthWorkIsQuadraticNotCubic) {
  const std::size_t n = 300;
  auto w = random_freqs(n, 9);
  auto kv = obst_knuth(w);
  auto nv = obst_naive(w);
  // Knuth's telescoping ranges: O(n^2) total relaxations vs ~n^3/6 naive.
  EXPECT_LT(kv.stats.relaxations, 8 * n * n);
  EXPECT_GT(nv.stats.relaxations, static_cast<std::uint64_t>(n) * n * n / 12);
  // Parallel wavefront does the same work as Knuth.
  auto pv = obst_parallel(w);
  EXPECT_EQ(pv.stats.relaxations, kv.stats.relaxations);
}

TEST(Obst, CostIsSumOfSubtreeWeights) {
  // For n=3 with equal weights 1: optimal tree = balanced, cost = 5.
  std::vector<double> w{1.0, 1.0, 1.0};
  auto kv = obst_knuth(w);
  EXPECT_DOUBLE_EQ(kv.cost, 5.0);
}

TEST(Obst, SkewedWeightsPutHeavyKeyAtRoot) {
  std::vector<double> w{1.0, 100.0, 1.0};
  auto kv = obst_knuth(w);
  // root_of(0, 3) = k means key k+1 is at the root (split at k).
  EXPECT_EQ(kv.root_of(0, 3), 1u);  // heavy middle key at depth 0
  EXPECT_DOUBLE_EQ(kv.cost, 100.0 + 2.0 * 2.0);
}
