// Persistent interval treap: functional semantics, version sharing.
#include <gtest/gtest.h>

#include <vector>

#include "src/parallel/random.hpp"
#include "src/structures/persistent_treap.hpp"

namespace cs = cordon::structures;
using Treap = cs::PersistentIntervalTreap;

TEST(PersistentTreap, BuildFindFlatten) {
  Treap pool;
  std::vector<cs::DecisionInterval> triples{{1, 4, 10}, {5, 9, 20}, {10, 15, 30}};
  Treap::Ref t = pool.build(triples);
  EXPECT_EQ(pool.find(t, 1)->j, 10u);
  EXPECT_EQ(pool.find(t, 4)->j, 10u);
  EXPECT_EQ(pool.find(t, 7)->j, 20u);
  EXPECT_EQ(pool.find(t, 15)->j, 30u);
  EXPECT_EQ(pool.find(t, 16), nullptr);
  EXPECT_EQ(pool.find(t, 0), nullptr);
  std::vector<cs::DecisionInterval> out;
  pool.flatten(t, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].j, 10u);
  EXPECT_EQ(out[2].j, 30u);
}

TEST(PersistentTreap, SplitJoinPreservesOrder) {
  Treap pool;
  std::vector<cs::DecisionInterval> triples;
  for (std::size_t k = 0; k < 50; ++k) triples.push_back({3 * k, 3 * k + 2, k});
  Treap::Ref t = pool.build(triples);
  auto [l, r] = pool.split(t, 60);  // intervals with l < 60 go left
  std::vector<cs::DecisionInterval> lv, rv;
  pool.flatten(l, lv);
  pool.flatten(r, rv);
  EXPECT_EQ(lv.size(), 20u);
  EXPECT_EQ(rv.size(), 30u);
  Treap::Ref joined = pool.join(l, r);
  std::vector<cs::DecisionInterval> all;
  pool.flatten(joined, all);
  ASSERT_EQ(all.size(), 50u);
  for (std::size_t k = 0; k < 50; ++k) EXPECT_EQ(all[k].j, k);
}

TEST(PersistentTreap, OldVersionsSurviveUpdates) {
  // The caller's protocol (see tree_glws_parallel::insert_candidate):
  // split by key, truncate the straddling interval, insert the new
  // suffix owner.  Old versions must remain queryable bit-for-bit.
  Treap pool;
  Treap::Ref v0 = pool.build({{1, 100, 7}});
  auto [left, right] = pool.split(v0, 50);
  (void)right;  // v0's triple has l=1 < 50, so it lives in `left`
  // Truncate the straddler {1,100,7} -> {1,49,7}, then append {50,100,9}.
  auto [empty, straddler] = pool.split(left, 1);
  (void)straddler;
  Treap::Ref v1 = pool.insert(empty, {1, 49, 7});
  v1 = pool.insert(v1, {50, 100, 9});
  // v0 unchanged.
  EXPECT_EQ(pool.find(v0, 80)->j, 7u);
  EXPECT_EQ(pool.find(v0, 10)->j, 7u);
  // v1 split at 50.
  EXPECT_EQ(pool.find(v1, 10)->j, 7u);
  EXPECT_EQ(pool.find(v1, 49)->j, 7u);
  EXPECT_EQ(pool.find(v1, 50)->j, 9u);
  EXPECT_EQ(pool.find(v1, 80)->j, 9u);
}

TEST(PersistentTreap, FindFirstMonotonePredicate) {
  Treap pool;
  std::vector<cs::DecisionInterval> triples;
  for (std::size_t k = 0; k < 100; ++k) triples.push_back({k, k, k});
  Treap::Ref t = pool.build(triples);
  auto pred = [](const cs::DecisionInterval& iv) { return iv.l >= 63; };
  const cs::DecisionInterval* got = pool.find_first(t, pred);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->l, 63u);
  auto never = [](const cs::DecisionInterval&) { return false; };
  EXPECT_EQ(pool.find_first(t, never), nullptr);
}

TEST(PersistentTreap, LastAccessor) {
  Treap pool;
  EXPECT_EQ(pool.last(Treap::kNil), nullptr);
  Treap::Ref t = pool.build({{1, 2, 5}, {3, 8, 6}, {9, 12, 7}});
  ASSERT_NE(pool.last(t), nullptr);
  EXPECT_EQ(pool.last(t)->j, 7u);
}

TEST(PersistentTreap, ManyRandomSplitsStayConsistent) {
  Treap pool;
  std::vector<cs::DecisionInterval> triples;
  const std::size_t m = 500;
  for (std::size_t k = 0; k < m; ++k) triples.push_back({2 * k, 2 * k + 1, k});
  Treap::Ref t = pool.build(triples);
  for (std::size_t step = 0; step < 100; ++step) {
    std::size_t key = cordon::parallel::hash64(3, step) % (2 * m);
    auto [l, r] = pool.split(t, key);
    std::vector<cs::DecisionInterval> lv, rv;
    pool.flatten(l, lv);
    pool.flatten(r, rv);
    for (const auto& iv : lv) ASSERT_LT(iv.l, key);
    for (const auto& iv : rv) ASSERT_GE(iv.l, key);
    ASSERT_EQ(lv.size() + rv.size(), m);
    t = pool.join(l, r);  // round-trip keeps the version usable
  }
}
