// Property tests for the parallel primitives against their sequential
// definitions, swept over sizes with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/parallel/primitives.hpp"
#include "src/parallel/random.hpp"
#include "src/parallel/sort.hpp"

namespace cp = cordon::parallel;

class PrimitiveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimitiveSweep, ReduceMatchesAccumulate) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cp::hash64(1, i) % 1000;
  std::uint64_t expected = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  EXPECT_EQ(cp::reduce_add(v), expected);
}

TEST_P(PrimitiveSweep, ScanMatchesPartialSums) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n), expect(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cp::hash64(2, i) % 100;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc += v[i];
  }
  std::uint64_t total = cp::scan_add(v);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(v, expect);
}

TEST_P(PrimitiveSweep, PackKeepsFlaggedInOrder) {
  const std::size_t n = GetParam();
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
  auto flag = [&](std::size_t i) { return cp::hash64(3, i) % 3 == 0; };
  std::vector<std::uint32_t> expect;
  for (std::size_t i = 0; i < n; ++i)
    if (flag(i)) expect.push_back(v[i]);
  EXPECT_EQ(cp::pack(v, flag), expect);
}

TEST_P(PrimitiveSweep, MinIndexIsLeftmostMinimum) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cp::hash64(4, i) % 50;
  auto f = [&](std::size_t i) { return v[i]; };
  std::size_t got = cp::min_index(0, n, f);
  std::size_t expect =
      static_cast<std::size_t>(std::min_element(v.begin(), v.end()) - v.begin());
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, SortMatchesStdStableSort) {
  const std::size_t n = GetParam();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<std::uint32_t>(cp::hash64(5, i) % 64),
            static_cast<std::uint32_t>(i)};
  auto expect = v;
  auto less = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::stable_sort(expect.begin(), expect.end(), less);
  cp::sort(v, less);
  EXPECT_EQ(v, expect);  // equality of second components checks stability
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSweep,
                         ::testing::Values(0, 1, 2, 7, 100, 2048, 2049, 50000,
                                           100001));

TEST(Primitives, TabulateIdentity) {
  auto v = cp::tabulate(1000, [](std::size_t i) { return 3 * i; });
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], 3 * i);
}

TEST(Primitives, FilterByValue) {
  std::vector<int> v{5, 2, 8, 1, 9, 4};
  auto out = cp::filter(v, [](int x) { return x >= 5; });
  EXPECT_EQ(out, (std::vector<int>{5, 8, 9}));
}

TEST(Random, Hash64Deterministic) {
  EXPECT_EQ(cp::hash64(42, 7), cp::hash64(42, 7));
  EXPECT_NE(cp::hash64(42, 7), cp::hash64(42, 8));
}

TEST(Random, PermutationIsPermutation) {
  auto p = cp::random_permutation(1000, 9);
  std::vector<std::uint32_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) ASSERT_EQ(sorted[i], i);
}
