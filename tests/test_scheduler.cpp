// Scheduler tests: fork-join correctness, nesting, sequential regions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cp = cordon::parallel;

TEST(Scheduler, ParDoRunsBothSides) {
  int a = 0, b = 0;
  cp::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDoNested) {
  std::atomic<int> count{0};
  cp::par_do(
      [&] {
        cp::par_do([&] { count++; }, [&] { count++; });
      },
      [&] {
        cp::par_do([&] { count++; }, [&] { count++; });
      });
  EXPECT_EQ(count.load(), 4);
}

TEST(Scheduler, DeepNesting) {
  // Recursion 2^12 leaves: exercises deque depth and helping.
  std::atomic<std::uint64_t> sum{0};
  struct Rec {
    static void go(std::atomic<std::uint64_t>& s, int depth) {
      if (depth == 0) {
        s.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cp::par_do([&] { go(s, depth - 1); }, [&] { go(s, depth - 1); });
    }
  };
  Rec::go(sum, 12);
  EXPECT_EQ(sum.load(), 1u << 12);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  cp::parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, ParallelForEmptyAndTiny) {
  int count = 0;
  cp::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  cp::parallel_for(7, 8, [&](std::size_t i) { count += static_cast<int>(i); });
  EXPECT_EQ(count, 7);
}

TEST(Scheduler, SequentialRegionForcesInline) {
  cp::SequentialRegion seq;
  // Inside a sequential region the same thread runs everything, so a
  // non-atomic counter is safe.
  std::size_t count = 0;
  cp::parallel_for(0, 10000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10000u);
}

TEST(Scheduler, NumWorkersPositive) {
  EXPECT_GE(cp::num_workers(), 1u);
}

TEST(Scheduler, ExternalThreadAdoptsWorkerSlot) {
  cp::ensure_started();  // this thread (or an earlier test's) is worker 0
  std::thread outsider([] {
    // Without adoption an outside thread is anonymous worker 0.
    EXPECT_EQ(cp::worker_id(), 0u);

    cp::ExternalWorkerScope scope;
    EXPECT_TRUE(scope.adopted());
    EXPECT_GE(cp::worker_id(), cp::num_workers());

    // Nested adoption is a no-op: the thread already holds a slot.
    {
      cp::ExternalWorkerScope nested;
      EXPECT_FALSE(nested.adopted());
    }

    // Forks from the adopted thread produce correct results (and are
    // stealable by the pool, though that part is timing-dependent).
    const std::size_t n = 50000;
    std::vector<std::atomic<int>> hits(n);
    cp::parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  });
  outsider.join();
}

TEST(Scheduler, ExternalSlotsAreReusedAfterRelease) {
  cp::ensure_started();
  // Serial adopt/release cycles on fresh threads must never exhaust the
  // fixed slot pool.
  for (int round = 0; round < 20; ++round) {
    std::thread t([] {
      cp::ExternalWorkerScope scope;
      EXPECT_TRUE(scope.adopted());
      std::atomic<int> count{0};
      cp::par_do([&] { count++; }, [&] { count++; });
      EXPECT_EQ(count.load(), 2);
    });
    t.join();
  }
}
