// Scheduler tests: fork-join correctness, nesting, sequential regions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/parallel/scheduler.hpp"

namespace cp = cordon::parallel;

TEST(Scheduler, ParDoRunsBothSides) {
  int a = 0, b = 0;
  cp::par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDoNested) {
  std::atomic<int> count{0};
  cp::par_do(
      [&] {
        cp::par_do([&] { count++; }, [&] { count++; });
      },
      [&] {
        cp::par_do([&] { count++; }, [&] { count++; });
      });
  EXPECT_EQ(count.load(), 4);
}

TEST(Scheduler, DeepNesting) {
  // Recursion 2^12 leaves: exercises deque depth and helping.
  std::atomic<std::uint64_t> sum{0};
  struct Rec {
    static void go(std::atomic<std::uint64_t>& s, int depth) {
      if (depth == 0) {
        s.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cp::par_do([&] { go(s, depth - 1); }, [&] { go(s, depth - 1); });
    }
  };
  Rec::go(sum, 12);
  EXPECT_EQ(sum.load(), 1u << 12);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  cp::parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, ParallelForEmptyAndTiny) {
  int count = 0;
  cp::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  cp::parallel_for(7, 8, [&](std::size_t i) { count += static_cast<int>(i); });
  EXPECT_EQ(count, 7);
}

TEST(Scheduler, SequentialRegionForcesInline) {
  cp::SequentialRegion seq;
  // Inside a sequential region the same thread runs everything, so a
  // non-atomic counter is safe.
  std::size_t count = 0;
  cp::parallel_for(0, 10000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10000u);
}

TEST(Scheduler, NumWorkersPositive) {
  EXPECT_GE(cp::num_workers(), 1u);
}

namespace {

// Mirrors detail::parallel_for_rec's halving recursion: the number of
// sequential chunks a range of n iterations produces at granularity g.
std::size_t chunk_count(std::size_t n, std::size_t g) {
  if (n == 0) return 0;
  if (n <= g) return 1;
  std::size_t mid = n / 2;
  return chunk_count(mid, g) + chunk_count(n - mid, g);
}

}  // namespace

TEST(Scheduler, AutoGranularityBoundaries) {
  const std::size_t w = cp::num_workers();
  const std::size_t floor = cp::kDefaultGranularityFloor;

  // n == 0 still yields a positive granularity (never divide-by-zero
  // downstream; parallel_for early-outs before it matters).
  EXPECT_GE(cp::auto_granularity(0), 1u);

  // n <= floor: granularity covers the whole range, one sequential
  // chunk — tiny loops never pay a fork.
  for (std::size_t n : {1ul, floor / 2, floor}) {
    std::size_t g = cp::auto_granularity(n);
    EXPECT_GE(g, 1u) << n;
    EXPECT_EQ(chunk_count(n, g), n == 0 ? 0u : 1u) << n;
  }

  // n just above the floor: the clamp kicks in (8*w chunks would make
  // chunks smaller than the floor), so granularity is exactly the floor.
  {
    std::size_t n = floor + 1;
    ASSERT_LT(n / (8 * w) + 1, floor) << "grid too coarse for this pool";
    EXPECT_EQ(cp::auto_granularity(n), floor);
    EXPECT_EQ(chunk_count(n, floor), 2u);
  }

  // Huge n: the ~8-chunks-per-worker heuristic wins over the floor and
  // the halving recursion yields between n/g and 2n/g chunks — enough
  // slack for stealing, bounded fork overhead.
  {
    std::size_t n = std::size_t{1} << 20;
    std::size_t g = cp::auto_granularity(n);
    EXPECT_EQ(g, n / (8 * w) + 1);
    std::size_t chunks = chunk_count(n, g);
    EXPECT_GE(chunks, (n + g - 1) / g / 2);
    EXPECT_LE(chunks, 2 * ((n + g - 1) / g));
  }

  // A caller-supplied floor of 1 disables the clamp entirely (expensive
  // loop bodies want maximum splitting).
  EXPECT_EQ(cp::auto_granularity(100, 1), 100 / (8 * w) + 1);
}

TEST(Scheduler, ParallelForBelowFloorRunsOnCaller) {
  cp::ensure_started();
  const std::thread::id me = std::this_thread::get_id();
  std::vector<std::thread::id> ran(cp::kDefaultGranularityFloor);
  cp::parallel_for(0, ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (std::size_t i = 0; i < ran.size(); ++i)
    EXPECT_EQ(ran[i], me) << "iteration " << i << " escaped the caller";
}

TEST(Scheduler, EffectiveParallelismDropsToOneInSequentialRegion) {
  cp::ensure_started();
  EXPECT_EQ(cp::effective_parallelism(), cp::num_workers());
  {
    cp::SequentialRegion seq;
    EXPECT_EQ(cp::effective_parallelism(), 1u);
  }
  EXPECT_EQ(cp::effective_parallelism(), cp::num_workers());
}

TEST(Scheduler, MaxWorkersCapsEveryIncarnation) {
  EXPECT_GE(cp::max_workers(), 8u);
  EXPECT_GE(cp::max_workers(), cp::num_workers());
  EXPECT_EQ(cp::worker_slots(), cp::max_workers() + cp::kMaxExternalWorkers);
}

TEST(Scheduler, SetNumWorkersLifecycle) {
  const std::size_t original = cp::num_workers();
  cp::ensure_started();
  // Refused while a pool is live: its deques are sized to the old count.
  EXPECT_FALSE(cp::set_num_workers(2));
  EXPECT_EQ(cp::num_workers(), original);

  cp::detail::shutdown_pool();
  EXPECT_FALSE(cp::set_num_workers(0));
  ASSERT_TRUE(cp::set_num_workers(2));
  EXPECT_EQ(cp::num_workers(), 2u);
  cp::ensure_started();
  std::atomic<int> count{0};
  cp::parallel_for(
      0, 1000, [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); },
      /*granularity=*/1, /*granularity_floor=*/1);
  EXPECT_EQ(count.load(), 1000);

  // Oversized requests clamp to the fixed cap (per-slot registries are
  // sized once from max_workers()).
  cp::detail::shutdown_pool();
  ASSERT_TRUE(cp::set_num_workers(cp::max_workers() + 1000));
  EXPECT_EQ(cp::num_workers(), cp::max_workers());

  // Restore the suite's original pool size for later tests.
  cp::detail::shutdown_pool();
  ASSERT_TRUE(cp::set_num_workers(original));
  EXPECT_EQ(cp::num_workers(), original);
  cp::ensure_started();
}

TEST(Scheduler, ExternalThreadAdoptsWorkerSlot) {
  cp::ensure_started();  // this thread (or an earlier test's) is worker 0
  std::thread outsider([] {
    // Without adoption an outside thread is anonymous worker 0.
    EXPECT_EQ(cp::worker_id(), 0u);

    cp::ExternalWorkerScope scope;
    EXPECT_TRUE(scope.adopted());
    EXPECT_GE(cp::worker_id(), cp::num_workers());

    // Nested adoption is a no-op: the thread already holds a slot.
    {
      cp::ExternalWorkerScope nested;
      EXPECT_FALSE(nested.adopted());
    }

    // Forks from the adopted thread produce correct results (and are
    // stealable by the pool, though that part is timing-dependent).
    const std::size_t n = 50000;
    std::vector<std::atomic<int>> hits(n);
    cp::parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  });
  outsider.join();
}

TEST(Scheduler, ExternalSlotsAreReusedAfterRelease) {
  cp::ensure_started();
  // Serial adopt/release cycles on fresh threads must never exhaust the
  // fixed slot pool.
  for (int round = 0; round < 20; ++round) {
    std::thread t([] {
      cp::ExternalWorkerScope scope;
      EXPECT_TRUE(scope.adopted());
      std::atomic<int> count{0};
      cp::par_do([&] { count++; }, [&] { count++; });
      EXPECT_EQ(count.load(), 2);
    });
    t.join();
  }
}
