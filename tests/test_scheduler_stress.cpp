// Scheduler stress suite for the park/wake protocol: idle-CPU gate,
// burst arrival after parking, park/wake churn, adopt-while-parked,
// deque-overflow fallback, and shutdown ordering (CordonService and
// Pool::~Pool with workers parked).
//
// Custom main: forces CORDON_NUM_THREADS=4 when unset, so park/wake
// contention is exercised even on single-core CI runners (the pool is
// created lazily, after the setenv).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <thread>
#include <vector>

#include "bench/common.hpp"  // measure_idle_cpu_fraction, the shared gate
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/parallel/work_deque.hpp"
#include "src/service/service.hpp"
#include "test_util.hpp"

namespace cp = cordon::parallel;
namespace ce = cordon::engine;
namespace cs = cordon::service;

namespace {

void settle(std::chrono::milliseconds ms = std::chrono::milliseconds(300)) {
  std::this_thread::sleep_for(ms);  // outlives every spin phase: all park
}

}  // namespace

// --- the idle-CPU gate ------------------------------------------------------

TEST(SchedulerStress, IdleCpuStaysNearZero) {
  cp::ensure_started();
  // Prime every worker once so thread creation cost is behind us.
  std::atomic<int> warm{0};
  cp::parallel_for(0, 10000, [&](std::size_t) {
    warm.fetch_add(1, std::memory_order_relaxed);
  }, /*granularity=*/64, /*granularity_floor=*/1);
  ASSERT_EQ(warm.load(), 10000);

  // With no submitted work every worker must park: process CPU over a
  // 1-second window stays under the shared gate (5% of one core).  The
  // pre-fix scheduler burned ~100% * num_workers here.
  double best = cordon::bench::measure_idle_cpu_fraction();
  EXPECT_LT(best, cordon::bench::kIdleCpuGateFraction)
      << "idle CPU fraction of one core: " << best
      << " — workers are not parking";
}

// --- park/wake correctness under churn --------------------------------------

TEST(SchedulerStress, BurstArrivalAfterPark) {
  // Repeatedly let the pool go fully idle (parked), then slam it with a
  // burst; a lost wakeup would hang the join, a missed steal would be
  // caught by the exact-coverage check.
  const std::size_t n = 20000;
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    std::vector<std::atomic<int>> hits(n);
    cp::parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }, /*granularity=*/32, /*granularity_floor=*/1);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "cycle " << cycle << " index " << i;
  }
}

TEST(SchedulerStress, ParkWakeChurnTinyJobs) {
  // Tiny forks with micro-sleeps in between: maximizes the rate of
  // park -> wake -> park transitions racing against push_job.
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 400; ++round) {
    cp::par_do([&] { sum.fetch_add(1, std::memory_order_relaxed); },
               [&] { sum.fetch_add(1, std::memory_order_relaxed); });
    if (round % 16 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(sum.load(), 800u);
}

TEST(SchedulerStress, DeepNestingWithJoinParking) {
  // Deep recursion: join-waiters outnumber workers, so some must take
  // the backoff/park path in wait_for and be woken by job completion.
  std::atomic<std::uint64_t> leaves{0};
  struct Rec {
    static void go(std::atomic<std::uint64_t>& s, int depth) {
      if (depth == 0) {
        s.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cp::par_do([&] { go(s, depth - 1); }, [&] { go(s, depth - 1); });
    }
  };
  for (int round = 0; round < 4; ++round) {
    leaves.store(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));  // park first
    Rec::go(leaves, 13);
    EXPECT_EQ(leaves.load(), 1u << 13);
  }
}

TEST(SchedulerStress, AdoptWhileParked) {
  // External threads adopting a slot while every pool worker is parked:
  // adoption + the forks it publishes must wake sleepers, and results
  // must be exact.
  for (int round = 0; round < 6; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::thread outsider([] {
      cp::ExternalWorkerScope scope;
      EXPECT_TRUE(scope.adopted());
      const std::size_t n = 30000;
      std::vector<std::atomic<int>> hits(n);
      cp::parallel_for(0, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }, /*granularity=*/32, /*granularity_floor=*/1);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
    });
    outsider.join();
  }
}

TEST(SchedulerStress, ConcurrentAdoptersUnderChurn) {
  // Several adopted threads forking at once while the pool's own
  // workers park and wake: stresses steal/park races across the
  // external slot range.
  constexpr int kThreads = 3;
  std::vector<std::thread> adopters;
  std::atomic<std::uint64_t> total{0};
  for (int t = 0; t < kThreads; ++t) {
    adopters.emplace_back([&] {
      cp::ExternalWorkerScope scope;
      for (int round = 0; round < 40; ++round) {
        std::atomic<std::uint64_t> local{0};
        cp::parallel_for(0, 2000, [&](std::size_t) {
          local.fetch_add(1, std::memory_order_relaxed);
        }, /*granularity=*/16, /*granularity_floor=*/1);
        ASSERT_EQ(local.load(), 2000u);
        total.fetch_add(local.load(), std::memory_order_relaxed);
        if (round % 8 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }
  for (auto& t : adopters) t.join();
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kThreads) * 40u * 2000u);
}

// --- deque-overflow fallback (unit level) -----------------------------------

TEST(SchedulerStress, TinyDequeOverflowReportsFullAndLosesNothing) {
  struct Item { int v; };
  cp::WorkDeque<Item> dq(4);
  EXPECT_EQ(dq.capacity(), 4u);

  Item items[6] = {{0}, {1}, {2}, {3}, {4}, {5}};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dq.push(&items[i])) << i;
  // Full: push must refuse (caller would run inline), not overwrite.
  EXPECT_FALSE(dq.push(&items[4]));
  EXPECT_FALSE(dq.push(&items[5]));

  // Everything pushed is still there, LIFO from the owner's side.
  for (int i = 3; i >= 0; --i) {
    Item* it = dq.pop();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->v, i);
  }
  EXPECT_EQ(dq.pop(), nullptr);

  // Space reclaimed: push works again and a thief can take it.
  EXPECT_TRUE(dq.push(&items[4]));
  Item* stolen = dq.steal();
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(stolen->v, 4);
}

TEST(SchedulerStress, WorkDequeCapacityRoundsUpToPowerOfTwo) {
  cp::WorkDeque<int> a(1);
  EXPECT_EQ(a.capacity(), 2u);
  cp::WorkDeque<int> b(5);
  EXPECT_EQ(b.capacity(), 8u);
  cp::WorkDeque<int> c;
  EXPECT_EQ(c.capacity(), cp::WorkDeque<int>::kDefaultCapacity);
}

// --- shutdown ordering ------------------------------------------------------

TEST(SchedulerStress, ServiceShutdownWhileWorkersParked) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  {
    cs::CordonService svc;
    // Solve something, then let the whole system go idle: pool workers
    // park on the eventcount, the dispatcher sleeps on its condvar.
    (void)svc.submit(solver.generate({500, 4, 21})).get();
    settle();
    // Submissions against a fully parked system still complete...
    std::vector<std::future<ce::SolveResult>> futs;
    for (std::uint64_t seed = 31; seed < 35; ++seed)
      futs.push_back(svc.submit(solver.generate({400, 4, seed})));
    // ...and shutdown wakes/drains everything, completing every future.
    svc.shutdown();
    for (auto& f : futs) (void)f.get();  // throws (test fails) if dropped
  }
  {
    // Destructor path, with everything parked and nothing in flight.
    cs::CordonService svc;
    (void)svc.submit(solver.generate({300, 4, 77})).get();
    settle();
  }  // ~CordonService must return with workers parked
  SUCCEED();
}

// NOTE: keep this test LAST in the file.  It destroys and restarts the
// process-wide pool; tests registered after it would exercise the
// restarted pool instead of the one the earlier tests stressed.
TEST(SchedulerStress, PoolShutdownWhileParkedThenRestart) {
  cp::ensure_started();
  settle();  // every worker parked on the eventcount

  // ~Pool must wake every parked worker and join it.  A lost shutdown
  // wakeup hangs here (and the suite times out).
  auto t0 = std::chrono::steady_clock::now();
  cp::detail::shutdown_pool();
  double join_s = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(join_s, 5.0) << "shutdown took " << join_s
                         << "s — parked workers did not wake promptly";

  // The next fork transparently restarts the pool.
  std::atomic<int> count{0};
  cp::parallel_for(0, 5000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  }, /*granularity=*/16, /*granularity_floor=*/1);
  EXPECT_EQ(count.load(), 5000);

  // And a second shutdown with the restarted pool parked works too.
  settle();
  cp::detail::shutdown_pool();
  cp::detail::shutdown_pool();  // idempotent: no pool -> no-op

  // Restart raced from a DIFFERENT thread: an adopting outsider
  // re-creates the pool (spawning a dedicated worker 0), so this
  // thread's old worker-0 identity is stale.  Its forks must degrade
  // to inline execution — never touch the fresh pool's worker-0 deque,
  // which now has a real owner — while the adopter's forks run on the
  // pool.  Both must stay exact while running concurrently.
  std::atomic<std::uint64_t> outsider_sum{0}, stale_sum{0};
  std::atomic<bool> pool_recreated{false};
  std::thread adopter([&] {
    cp::ExternalWorkerScope scope;  // starts the fresh pool (worker 0 spawned)
    EXPECT_TRUE(scope.adopted());
    pool_recreated.store(true, std::memory_order_release);
    for (int round = 0; round < 20; ++round) {
      cp::parallel_for(0, 2000, [&](std::size_t) {
        outsider_sum.fetch_add(1, std::memory_order_relaxed);
      }, /*granularity=*/16, /*granularity_floor=*/1);
    }
  });
  // Fork only once the adopter owns the new pool, so this thread's
  // identity is guaranteed stale rather than re-minted by the fork.
  while (!pool_recreated.load(std::memory_order_acquire))
    std::this_thread::yield();
  for (int round = 0; round < 20; ++round) {
    cp::parallel_for(0, 2000, [&](std::size_t) {
      stale_sum.fetch_add(1, std::memory_order_relaxed);
    }, /*granularity=*/16, /*granularity_floor=*/1);
  }
  adopter.join();
  EXPECT_EQ(outsider_sum.load(), 20u * 2000u);
  EXPECT_EQ(stale_sum.load(), 20u * 2000u);

  // Forks after shutdown restart the pool again and stay correct.
  std::atomic<int> after{0};
  cp::par_do([&] { after.fetch_add(1); }, [&] { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 2);
}

int main(int argc, char** argv) {
  // The pool is created lazily, so this runs before any worker exists.
  // Single-core CI still gets real park/wake contention this way.
  setenv("CORDON_NUM_THREADS", "4", /*overwrite=*/0);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
