// Service layer: ShardedLruCache semantics, asynchronous admission,
// batching/coalescing, cache hit/miss/eviction accounting, failure
// isolation, shutdown draining, and oracle-checked correctness under
// concurrent client threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"
#include "src/service/sharded_cache.hpp"
#include "test_util.hpp"

namespace ce = cordon::engine;
namespace cs = cordon::service;
using cordon::testing::expect_objective_near;

namespace {

std::uint64_t h(const std::string& s) {
  return static_cast<std::uint64_t>(std::hash<std::string>{}(s)) *
         0x9e3779b97f4a7c15ull;  // spread into the high bits shards use
}

}  // namespace

// --- ShardedLruCache --------------------------------------------------------

TEST(ShardedLruCache, MissThenHit) {
  cs::ShardedLruCache<int> cache(8, 4);
  EXPECT_FALSE(cache.get(h("a"), "a").has_value());
  cache.put(h("a"), "a", 41);
  auto v = cache.get(h("a"), "a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 41);

  cordon::core::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ShardedLruCache, LruEvictionRefreshedByGet) {
  // One shard so recency order is deterministic.
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put(h("a"), "a", 1);
  cache.put(h("b"), "b", 2);
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());  // a now most recent
  cache.put(h("c"), "c", 3);                        // evicts b, not a
  EXPECT_FALSE(cache.get(h("b"), "b").has_value());
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());
  EXPECT_TRUE(cache.get(h("c"), "c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCache, PutRefreshesExistingKey) {
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put(h("a"), "a", 1);
  cache.put(h("a"), "a", 7);  // refresh, not a second entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(h("a"), "a"), 7);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ShardedLruCache, HashCollisionsCannotAlias) {
  // Same hash, different keys: full-key equality keeps them apart.
  cs::ShardedLruCache<int> cache(8, 4);
  cache.put(123, "left", 1);
  cache.put(123, "right", 2);
  EXPECT_EQ(*cache.get(123, "left"), 1);
  EXPECT_EQ(*cache.get(123, "right"), 2);
}

TEST(ShardedLruCache, CapacitySplitsAcrossShards) {
  cs::ShardedLruCache<int> cache(16, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 16u);
  // Tiny capacity still gives every shard one slot.
  cs::ShardedLruCache<int> tiny(1, 8);
  EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(ShardedLruCache, EvictionSkipsPinnedEntries) {
  // One shard so recency order is deterministic.
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put(h("a"), "a", 1);
  EXPECT_TRUE(cache.pin(h("a"), "a"));
  cache.put(h("b"), "b", 2);  // a is now LRU-oldest, but pinned
  cache.put(h("c"), "c", 3);  // must evict b, the oldest unpinned
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());
  EXPECT_FALSE(cache.get(h("b"), "b").has_value());
  EXPECT_TRUE(cache.get(h("c"), "c").has_value());
  EXPECT_EQ(cache.pinned(), 1u);
}

TEST(ShardedLruCache, UnpinReentersLruOrder) {
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put_pinned(h("a"), "a", 1);
  EXPECT_EQ(cache.pinned(), 1u);
  EXPECT_TRUE(cache.unpin(h("a"), "a"));
  EXPECT_EQ(cache.pinned(), 0u);
  cache.put(h("b"), "b", 2);
  cache.put(h("c"), "c", 3);  // a unpinned and oldest: evicted normally
  EXPECT_FALSE(cache.get(h("a"), "a").has_value());
}

TEST(ShardedLruCache, PinsAreRefcounted) {
  cs::ShardedLruCache<int> cache(1, 1);
  cache.put_pinned(h("a"), "a", 1);
  EXPECT_TRUE(cache.pin(h("a"), "a"));  // second pinner
  EXPECT_TRUE(cache.unpin(h("a"), "a"));
  cache.put(h("b"), "b", 2);  // one pin still held: a survives
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());  // a is MRU now
  EXPECT_TRUE(cache.unpin(h("a"), "a"));            // last pin released
  cache.put(h("c"), "c", 3);  // evicts b, the LRU-oldest unpinned
  cache.put(h("d"), "d", 4);  // then a: no longer exempt
  EXPECT_FALSE(cache.get(h("b"), "b").has_value());
  EXPECT_FALSE(cache.get(h("a"), "a").has_value());
}

TEST(ShardedLruCache, PinOnAbsentKeyReportsFalse) {
  cs::ShardedLruCache<int> cache(2, 1);
  EXPECT_FALSE(cache.pin(h("ghost"), "ghost"));
  EXPECT_FALSE(cache.unpin(h("ghost"), "ghost"));
}

TEST(ShardedLruCache, AllPinnedShardOvershootsInsteadOfEvicting) {
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put_pinned(h("a"), "a", 1);
  cache.put_pinned(h("b"), "b", 2);
  cache.put(h("c"), "c", 3);  // every resident entry pinned: grow past cap
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());
  EXPECT_TRUE(cache.get(h("b"), "b").has_value());
  EXPECT_TRUE(cache.get(h("c"), "c").has_value());
}

TEST(ShardedLruCache, PutPinnedRefreshRaisesPinCount) {
  cs::ShardedLruCache<int> cache(2, 1);
  cache.put(h("a"), "a", 1);
  cache.put_pinned(h("a"), "a", 9);  // refresh + pin in one step
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(h("a"), "a"), 9);
  EXPECT_EQ(cache.pinned(), 1u);
  cache.put(h("b"), "b", 2);
  cache.put(h("c"), "c", 3);
  EXPECT_TRUE(cache.get(h("a"), "a").has_value());  // still pinned
}

// --- CordonService: basics --------------------------------------------------

TEST(CordonService, SingleSubmitMatchesDirectSolve) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  ce::Instance inst = solver.generate({200, 4, 7});

  cs::CordonService svc;
  ce::SolveResult got = svc.submit(inst).get();
  expect_objective_near(got.objective, solver.solve(inst).objective,
                        "service vs direct");

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.solver.requests, 1u);
}

TEST(CordonService, RepeatSubmitIsServedFromCache) {
  const ce::Solver& solver = ce::builtin_registry().at("glws");
  ce::Instance inst = solver.generate({300, 4, 5});

  cs::CordonService svc;
  double first = svc.submit(inst).get().objective;

  // Second submit of the byte-identical workload: answered in submit(),
  // no new solver run.
  std::future<ce::SolveResult> fut = svc.submit(inst);
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(fut.get().objective, first);

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.solver.requests, 1u);
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(CordonService, DuplicatesInFlightCollapseToOneSolve) {
  // A wide batching window keeps all duplicates in one dispatch; even if
  // they split across dispatches, the dispatcher's cache re-probe means
  // the solver still runs exactly once.
  const ce::Solver& solver = ce::builtin_registry().at("oat");
  ce::Instance inst = solver.generate({150, 4, 3});

  cs::CordonService svc({.max_batch = 64,
                         .batch_window = std::chrono::microseconds(50000)});
  std::vector<std::future<ce::SolveResult>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(svc.submit(inst));
  double want = solver.solve(inst).objective;
  for (auto& f : futs)
    expect_objective_near(f.get().objective, want, "coalesced duplicate");

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.solver.requests, 1u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_GE(stats.coalesced + stats.cache.hits, 11u);
}

TEST(CordonService, NoExceptionTypeLeaksThroughSubmit) {
  // The failure surface of submit() is exactly core::SolveError (which
  // IS-A std::runtime_error, so the older checks above still hold).  A
  // raw std::invalid_argument / out_of_range / bad_alloc escaping a
  // solver or the parser must be converted, never forwarded.
  cs::CordonService svc;
  ce::GlwsInstance hostile;
  hostile.n = ce::kMaxDeclaredSize + 1;
  struct Case {
    const char* what;
    ce::Instance inst;
  };
  const Case cases[] = {
      {"unknown kind", ce::Instance{"no-such-problem", ce::LisInstance{{1}}}},
      {"hostile declared size", ce::Instance{"glws", hostile}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.what);
    try {
      (void)svc.submit(c.inst).get();
      FAIL() << "hostile submit must fail its future";
    } catch (const cordon::core::SolveError& e) {
      EXPECT_EQ(e.code(), cordon::core::SolveErrorCode::kInvalidArgument)
          << e.what();
      EXPECT_EQ(std::string(e.what()).rfind("invalid_argument: ", 0), 0u)
          << "what() must carry the taxonomy name: " << e.what();
    } catch (const std::exception& e) {
      FAIL() << "untyped exception leaked through submit(): " << e.what();
    }
  }
}

TEST(CordonService, FailuresSurfaceAsExceptionsAndAreNotCached) {
  cs::CordonService svc;
  ce::Instance bad{"no-such-problem", ce::LisInstance{{1, 2, 3}}};
  EXPECT_THROW(svc.submit(bad).get(), std::runtime_error);
  EXPECT_THROW(svc.submit(bad).get(), std::runtime_error);  // not cached

  // The dispatcher survives failures; good requests still complete.
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  ce::Instance good = solver.generate({100, 4, 1});
  expect_objective_near(svc.submit(good).get().objective,
                        solver.solve(good).objective, "after failure");

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(CordonService, ShutdownDrainsPendingAndRejectsNewSubmits) {
  const ce::Solver& solver = ce::builtin_registry().at("obst");
  cs::CordonService svc({.batch_window = std::chrono::microseconds(20000)});
  std::vector<std::future<ce::SolveResult>> futs;
  std::vector<double> want;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ce::Instance inst = solver.generate({80, 4, seed});
    want.push_back(solver.solve(inst).objective);
    futs.push_back(svc.submit(inst));
  }
  svc.shutdown();  // must complete every admitted future
  svc.shutdown();  // idempotent
  for (std::size_t i = 0; i < futs.size(); ++i)
    expect_objective_near(futs[i].get().objective, want[i], "drained");
  EXPECT_THROW((void)svc.submit(solver.generate({10, 4, 9})),
               std::runtime_error);
  // Rejection must not depend on cache contents: a workload that WOULD
  // hit the cache is refused identically.
  EXPECT_THROW((void)svc.submit(solver.generate({80, 4, 1})),
               std::runtime_error);
}

TEST(CordonService, CacheEvictionKeepsSizeBounded) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  cs::CordonService svc({.cache_capacity = 4, .cache_shards = 2});
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    (void)svc.submit(solver.generate({60, 4, seed})).get();

  EXPECT_LE(svc.cache_size(), 4u);
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache.insertions, 12u);
  EXPECT_GE(stats.cache.evictions, 8u);
}

TEST(CordonService, CacheCanBeDisabled) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  ce::Instance inst = solver.generate({100, 4, 2});
  cs::CordonService svc({.cache_capacity = 0});
  double a = svc.submit(inst).get().objective;
  double b = svc.submit(inst).get().objective;  // re-solved, not cached
  EXPECT_EQ(a, b);
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.solver.requests, 2u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u);
  EXPECT_EQ(svc.cache_size(), 0u);
}

TEST(CordonService, QueueStatsCoverEveryQueuedRequest) {
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  cs::CordonService svc;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    (void)svc.submit(solver.generate({50, 4, seed})).get();
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queue.enqueued, 5u);  // all distinct -> all queued
  EXPECT_GE(stats.queue.max_wait_s, stats.queue.mean_wait_s());
  EXPECT_EQ(stats.batches, 5u);  // sequential get() forces one per batch
  EXPECT_EQ(stats.largest_batch, 1u);
}

// --- CordonService: dispatcher flush latency --------------------------------

TEST(CordonService, RequestsNeverWaitASecondBatchWindow) {
  // Regression guard for the batching window's edge: the dispatcher
  // computes one deadline per batch from the oldest request, and a
  // request that arrives as cv_.wait_until expires either joins the
  // batch being taken (it is already in queue_ when the dispatcher
  // re-acquires mu_) or becomes the front of the next cycle with a
  // fresh deadline from ITS OWN enqueue time.  Either way no request
  // can wait two full windows.  The bounds below are slack-tolerant
  // (1.8 windows) but far below the 2+ windows the bug would cost.
  using clk = std::chrono::steady_clock;
  const auto window = std::chrono::milliseconds(250);
  const ce::Solver& solver = ce::builtin_registry().at("lis");

  cs::CordonService svc({.max_batch = 64,
                         .batch_window = window,
                         .cache_capacity = 0});
  // Warm-up: pool started, code paths faulted in (not timed).
  (void)svc.submit(solver.generate({40, 4, 1})).get();

  // A lone request flushes after one window, not two.
  auto t0 = clk::now();
  (void)svc.submit(solver.generate({40, 4, 2})).get();
  auto lone = clk::now() - t0;
  EXPECT_LT(lone, window * 18 / 10)
      << "lone request took "
      << std::chrono::duration<double>(lone).count() << "s";

  // A request arriving late in an open window: completes within its own
  // window (riding the first flush or opening the next batch), never a
  // second full window after ITS arrival.
  auto early = svc.submit(solver.generate({40, 4, 3}));
  std::this_thread::sleep_for(window * 8 / 10);
  auto t1 = clk::now();
  (void)svc.submit(solver.generate({40, 4, 4})).get();
  auto late = clk::now() - t1;
  (void)early.get();
  EXPECT_LT(late, window * 18 / 10)
      << "late-window request took "
      << std::chrono::duration<double>(late).count() << "s";
}

// --- CordonService: hostile payloads ----------------------------------------

TEST(CordonService, HostileDeclaredSizesFailTheFutureNotTheProcess) {
  // A submit() whose payload declares an absurd size must cost one
  // failed future, not the whole process's memory (the canonical text
  // of such a payload is tiny — only the solver's allocation would
  // explode, and solve-time validation stops it first).
  cs::CordonService svc;
  ce::GlwsInstance glws;
  glws.n = ce::kMaxDeclaredSize + 1;
  EXPECT_THROW(svc.submit({"glws", glws}).get(), std::runtime_error);

  ce::DagInstance dag;
  dag.n = ce::kMaxDeclaredSize + 1;
  EXPECT_THROW(svc.submit({"dag", dag}).get(), std::runtime_error);

  // The service survives and keeps serving good requests.
  const ce::Solver& solver = ce::builtin_registry().at("lis");
  ce::Instance good = solver.generate({100, 4, 5});
  expect_objective_near(svc.submit(good).get().objective,
                        solver.solve(good).objective, "after hostile submit");
  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

// --- CordonService: concurrent clients, oracle-checked ----------------------

TEST(CordonService, ConcurrentClientsGetOracleCheckedResults) {
  const auto& reg = ce::builtin_registry();

  // One distinct instance per registered family (derived from the
  // registry so new families are covered automatically); expected
  // objectives from the naive oracles, computed up front.
  std::vector<ce::Instance> pool;
  std::vector<double> want;
  for (const auto& solver : reg.solvers()) {
    ce::Instance inst = solver->generate({60, 4, 17});
    want.push_back(solver->solve_reference(inst).objective);
    pool.push_back(std::move(inst));
  }

  constexpr std::size_t kClients = 6;  // acceptance floor is 4
  constexpr std::size_t kRequestsPerClient = 36;
  cs::CordonService svc({.max_batch = 16,
                         .batch_window = std::chrono::microseconds(200)});

  std::vector<std::vector<std::pair<std::size_t, std::future<ce::SolveResult>>>>
      per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        std::size_t idx = (c * kRequestsPerClient + r) % pool.size();
        per_client[c].emplace_back(idx, svc.submit(pool[idx]));
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t checked = 0;
  for (auto& futs : per_client) {
    for (auto& [idx, fut] : futs) {
      expect_objective_near(fut.get().objective, want[idx],
                            "client request for " + pool[idx].kind);
      ++checked;
    }
  }
  EXPECT_EQ(checked, kClients * kRequestsPerClient);

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.failed, 0u);
  // 216 requests over 9 distinct workloads: the sharded cache plus
  // in-batch coalescing must collapse almost everything.
  EXPECT_EQ(stats.solver.requests, pool.size());
  EXPECT_GE(stats.cache.hits + stats.coalesced,
            kClients * kRequestsPerClient - pool.size());
}
