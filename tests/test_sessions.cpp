// Stateful solve sessions, end to end: delta text round-trips, hostile
// delta hardening, incremental-vs-cold oracle equivalence over long
// randomized append chains, transparent cold fallback for every
// non-incremental family, checkpoint survival across pool restarts, and
// the session bookkeeping surface (version lineage, pinned base cache
// entries, stats/metrics counters).
//
// OWN_MAIN: the pool-restart tests call parallel::detail::shutdown_pool()
// and parallel::set_num_workers() between cases, so this binary manages
// scheduler lifetime itself (and leaves no pool behind for static
// teardown).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/engine/delta.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/engine/solver.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"
#include "test_util.hpp"

namespace cc = cordon::core;
namespace ce = cordon::engine;
namespace cs = cordon::service;
namespace cp = cordon::parallel;
using cordon::core::SolvePath;
using cordon::testing::expect_objective_near;

namespace {

/// Randomized, strictly increasing cut points base < c_1 < ... < c_V = n:
/// the prefix length after each of V appends of irregular size.
std::vector<std::uint64_t> random_cuts(std::uint64_t base, std::uint64_t n,
                                       std::size_t versions,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<std::uint64_t> cuts;
  std::uniform_int_distribution<std::uint64_t> dist(base + 1, n - 1);
  while (cuts.size() < versions - 1) cuts.insert(dist(rng));
  cuts.insert(n);
  return {cuts.begin(), cuts.end()};
}

/// A handcrafted single-state dag append: one new state reachable from
/// state `from`, with edge weight `w`.  dag has no prefix/slice helpers
/// (edges have no per-state order), so session tests build its deltas
/// explicitly with absolute indices.
ce::Delta dag_append_state(const ce::Instance& grown, std::uint32_t from,
                           double w, std::uint64_t base_version) {
  const auto& d = grown.as<ce::DagInstance>();
  ce::Delta delta;
  delta.kind = "dag";
  delta.base_version = base_version;
  ce::DagInstance app;
  app.n = 1;
  app.objective = d.objective;
  app.edges.push_back({from, static_cast<std::uint32_t>(d.n), w, true});
  delta.append = app;
  return delta;
}

}  // namespace

// --- delta text round-trip --------------------------------------------------

TEST(Delta, RoundTripEveryFamily) {
  const auto& reg = ce::builtin_registry();
  for (const auto& solver : reg.solvers()) {
    const std::string kind(solver->key());
    ce::Delta delta;
    if (kind == "dag") {
      ce::Instance base = solver->generate({64, 4, 11});
      delta = dag_append_state(base, 3, 1.5, 7);
    } else {
      ce::Instance full = solver->generate({200, 4, 11});
      delta = ce::slice_delta(full, 150, 200, 7);
    }
    std::string text = ce::to_string(delta);
    ce::Delta back = ce::delta_from_string(text);
    EXPECT_EQ(back.kind, delta.kind) << kind;
    EXPECT_EQ(back.base_version, 7u) << kind;
    EXPECT_EQ(ce::delta_op_count(back), ce::delta_op_count(delta)) << kind;
    // Canonical text is the equality we actually rely on (cache keys
    // and the chain hash both consume it).
    EXPECT_EQ(ce::to_string(back), text) << kind;
  }
}

TEST(Delta, AppliedSliceReproducesPrefix) {
  const auto& reg = ce::builtin_registry();
  for (const char* kind : {"lis", "lcs", "glws", "kglws", "gap", "oat",
                           "obst", "treeglws"}) {
    ce::Instance full = reg.at(kind).generate({300, 4, 23});
    ce::Instance grown = ce::prefix_instance(full, 180);
    ce::apply_delta_inplace(grown, ce::slice_delta(full, 180, 300, 0));
    EXPECT_EQ(ce::canonical_key(grown).text,
              ce::canonical_key(ce::prefix_instance(full, 300)).text)
        << kind;
  }
}

// --- hostile delta hardening ------------------------------------------------

TEST(Delta, OverCapOpCountRejected) {
  // glws declares states by count, so an over-cap delta needs no
  // allocation to express.
  ce::Delta delta;
  delta.kind = "glws";
  delta.append = ce::GlwsInstance{ce::kMaxDeltaOps + 1, 0.0, {}};
  EXPECT_THROW(ce::validate_delta(delta), std::invalid_argument);
}

TEST(Delta, ResultOverDeclaredSizeCapRejected) {
  ce::Instance base;
  base.kind = "glws";
  base.payload = ce::GlwsInstance{ce::kMaxDeclaredSize - 5, 0.0, {}};
  ce::Delta delta;
  delta.kind = "glws";
  delta.append = ce::GlwsInstance{10, 0.0, {}};
  // Two under-cap halves summing over the cap: must fail, base intact.
  EXPECT_THROW(ce::apply_delta_inplace(base, delta), std::invalid_argument);
  EXPECT_EQ(base.as<ce::GlwsInstance>().n, ce::kMaxDeclaredSize - 5);
}

TEST(Delta, RepricingAppendRejected) {
  // An append adds states; it cannot retroactively change the cost of
  // existing ones.
  ce::Delta delta;
  delta.kind = "glws";
  ce::CostSpec changed;
  changed.scale = 3.0;
  delta.append = ce::GlwsInstance{4, 0.0, changed};
  EXPECT_THROW(ce::validate_delta(delta), std::invalid_argument);
}

TEST(Sessions, HostileDeltaFailsFutureNotSession) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  ce::Instance full = reg.at("lis").generate({400, 4, 5});
  std::uint64_t id = svc.create_session(ce::prefix_instance(full, 300));

  // Kind mismatch: fails that future only.
  ce::Delta wrong_kind = ce::slice_delta(full, 300, 350, 0);
  wrong_kind.kind = "lcs";
  EXPECT_THROW(svc.append(id, wrong_kind).get(), cc::SolveError);

  // Stale lineage version: same (typed kInvalidArgument, never a raw
  // std::invalid_argument — the append future speaks the taxonomy).
  try {
    (void)svc.append(id, ce::slice_delta(full, 300, 350, 99)).get();
    FAIL() << "stale base version must fail the future";
  } catch (const cc::SolveError& e) {
    EXPECT_EQ(e.code(), cc::SolveErrorCode::kInvalidArgument);
  }

  // The session is still alive and still resumable after both failures.
  ce::SolveResult r =
      svc.append(id, ce::slice_delta(full, 300, 400, 0)).get();
  EXPECT_EQ(r.path, SolvePath::kResumed);
  EXPECT_EQ(r.objective, reg.at("lis").solve(full).objective);
  auto info = svc.session_info(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 1u);
  svc.close_session(id);
}

// --- incremental vs cold oracle equivalence ---------------------------------

// Randomized append chains, >= 32 versions, bit-identical objectives.
// Sizes stay below the families' sequential cutoffs so the cold oracle
// runs the exact sequential algorithm the incremental state mirrors.
TEST(Sessions, IncrementalMatchesColdOverRandomizedChain) {
  const auto& reg = ce::builtin_registry();
  struct Case {
    const char* kind;
    std::uint64_t n;
  };
  for (Case c : {Case{"lis", 4000}, Case{"lcs", 2600}, Case{"glws", 1900}}) {
    const ce::Solver& solver = reg.at(c.kind);
    ce::Instance full = solver.generate({c.n, 4, 77});
    const std::uint64_t base = c.n / 2;
    std::vector<std::uint64_t> cuts = random_cuts(base, c.n, 36, 0xc0ffee);
    ASSERT_GE(cuts.size(), 32u) << c.kind;

    cs::CordonService svc({}, reg);
    std::uint64_t id = svc.create_session(ce::prefix_instance(full, base));
    std::uint64_t prev = base;
    for (std::size_t v = 0; v < cuts.size(); ++v) {
      ce::SolveResult got =
          svc.append(id, ce::slice_delta(full, prev, cuts[v], v)).get();
      ce::SolveResult cold = solver.solve(ce::prefix_instance(full, cuts[v]));
      EXPECT_EQ(got.objective, cold.objective)
          << c.kind << " version " << v + 1 << " (m=" << cuts[v] << ")";
      EXPECT_EQ(got.path, SolvePath::kResumed) << c.kind << " v" << v + 1;
      EXPECT_EQ(got.detail, cold.detail) << c.kind << " v" << v + 1;
      prev = cuts[v];
    }

    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value()) << c.kind;
    EXPECT_TRUE(info->incremental) << c.kind;
    EXPECT_EQ(info->version, cuts.size()) << c.kind;
    EXPECT_EQ(info->resumes, cuts.size()) << c.kind;
    EXPECT_EQ(info->cold_solves, 0u) << c.kind;
    svc.close_session(id);
  }
}

// Solver-boundary equivalence (no service in the loop): resume() chains
// state -> state and every link reports resumed.
TEST(Sessions, SolverResumeChainsBitIdentical) {
  const auto& reg = ce::builtin_registry();
  for (const char* kind : {"lis", "lcs", "glws"}) {
    const ce::Solver& solver = reg.at(kind);
    ASSERT_TRUE(solver.incremental()) << kind;
    ce::Instance full = solver.generate({1500, 4, 31});
    std::shared_ptr<const ce::SolverState> state;
    ce::SolveResult base_r =
        solver.solve_checkpoint(ce::prefix_instance(full, 700), state);
    EXPECT_EQ(base_r.objective,
              solver.solve(ce::prefix_instance(full, 700)).objective)
        << kind;
    ASSERT_NE(state, nullptr) << kind;

    std::uint64_t prev = 700;
    for (std::uint64_t cut : random_cuts(700, 1500, 16, 0xbeef)) {
      ce::Instance grown = ce::prefix_instance(full, cut);
      ce::ResumeResult rr =
          solver.resume(state, grown, ce::slice_delta(full, prev, cut, 0));
      EXPECT_TRUE(rr.resumed) << kind << " at m=" << cut;
      EXPECT_EQ(rr.result.objective, solver.solve(grown).objective)
          << kind << " at m=" << cut;
      EXPECT_EQ(rr.result.path, SolvePath::kResumed) << kind;
      state = rr.state;
      prev = cut;
    }
  }
}

// --- cold fallback families -------------------------------------------------

TEST(Sessions, FallbackFamiliesStayCorrect) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  for (const char* kind : {"gap", "oat", "obst", "kglws", "treeglws"}) {
    const ce::Solver& solver = reg.at(kind);
    EXPECT_FALSE(solver.incremental()) << kind;
    ce::Instance full = solver.generate({360, 4, 13});
    std::uint64_t id = svc.create_session(ce::prefix_instance(full, 240));
    std::uint64_t prev = 240;
    std::uint64_t version = 0;
    for (std::uint64_t cut : {std::uint64_t{280}, std::uint64_t{330},
                              std::uint64_t{360}}) {
      ce::SolveResult got =
          svc.append(id, ce::slice_delta(full, prev, cut, version)).get();
      ce::SolveResult cold = solver.solve(ce::prefix_instance(full, cut));
      expect_objective_near(got.objective, cold.objective,
                            std::string(kind) + " fallback append");
      EXPECT_NE(got.path, SolvePath::kResumed) << kind;
      prev = cut;
      ++version;
    }
    auto info = svc.session_info(id);
    ASSERT_TRUE(info.has_value()) << kind;
    EXPECT_FALSE(info->incremental) << kind;
    EXPECT_EQ(info->resumes, 0u) << kind;
    EXPECT_EQ(info->cold_solves, 3u) << kind;
    svc.close_session(id);
  }
}

TEST(Sessions, DagSessionViaHandcraftedDeltas) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  const ce::Solver& solver = reg.at("dag");
  ce::Instance base = solver.generate({120, 4, 9});
  ce::Instance grown = base;  // mirror of the session's lineage
  std::uint64_t id = svc.create_session(base);
  for (std::uint64_t v = 0; v < 4; ++v) {
    ce::Delta delta =
        dag_append_state(grown, static_cast<std::uint32_t>(17 + v), 2.5, v);
    ce::apply_delta_inplace(grown, delta);
    ce::SolveResult got = svc.append(id, delta).get();
    expect_objective_near(got.objective, solver.solve(grown).objective,
                          "dag session append");
    EXPECT_NE(got.path, SolvePath::kResumed);
  }
  svc.close_session(id);
}

// A capability downgrade mid-lineage: an lcs delta that grows `b`
// invalidates the fixed-b index, so THAT append cold-falls-back — and
// rebuilds the checkpoint, so the next a-only append resumes again.
TEST(Sessions, LcsBGrowthFallsBackThenRecovers) {
  const auto& reg = ce::builtin_registry();
  const ce::Solver& solver = reg.at("lcs");
  cs::CordonService svc({}, reg);
  ce::Instance full = solver.generate({900, 4, 41});
  std::uint64_t id = svc.create_session(ce::prefix_instance(full, 700));

  ce::Delta grow_b;
  grow_b.kind = "lcs";
  grow_b.base_version = 0;
  ce::LcsInstance app;
  app.a = {1, 2, 3};
  app.b = {4, 5};
  grow_b.append = app;
  ce::Instance mirror = ce::prefix_instance(full, 700);
  ce::apply_delta_inplace(mirror, grow_b);

  ce::SolveResult r1 = svc.append(id, grow_b).get();
  EXPECT_NE(r1.path, SolvePath::kResumed);
  EXPECT_EQ(r1.objective, solver.solve(mirror).objective);

  ce::Delta grow_a;
  grow_a.kind = "lcs";
  grow_a.base_version = 1;
  ce::LcsInstance app2;
  app2.a = {6, 7, 8, 9};
  grow_a.append = app2;
  ce::apply_delta_inplace(mirror, grow_a);

  ce::SolveResult r2 = svc.append(id, grow_a).get();
  EXPECT_EQ(r2.path, SolvePath::kResumed);
  EXPECT_EQ(r2.objective, solver.solve(mirror).objective);

  auto info = svc.session_info(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cold_solves, 1u);
  EXPECT_EQ(info->resumes, 1u);
  svc.close_session(id);
}

// A concave glws cost has no deque/treap envelope at all: every append
// cold-falls-back, transparently.
TEST(Sessions, ConcaveGlwsFallsBackCold) {
  const auto& reg = ce::builtin_registry();
  const ce::Solver& solver = reg.at("glws");
  cs::CordonService svc({}, reg);
  ce::Instance base;
  base.kind = "glws";
  ce::CostSpec concave;
  concave.family = ce::CostSpec::Family::kLogarithmic;
  base.payload = ce::GlwsInstance{600, 0.0, concave};
  std::uint64_t id = svc.create_session(base);

  ce::Delta delta;
  delta.kind = "glws";
  delta.base_version = 0;
  delta.append = ce::GlwsInstance{50, 0.0, {}};
  ce::Instance mirror = ce::apply_delta(base, delta);

  ce::SolveResult got = svc.append(id, delta).get();
  EXPECT_NE(got.path, SolvePath::kResumed);
  EXPECT_EQ(got.objective, solver.solve(mirror).objective);
  svc.close_session(id);
}

// --- checkpoint survival across pool restarts -------------------------------

// Resumable state must be plain heap memory, never worker-slot or arena
// backed: a checkpoint taken under one pool incarnation must resume
// bit-identically after shutdown_pool() + set_num_workers().  Runs at
// the solver boundary — shutdown_pool() requires a quiescent pool with
// no live ExternalWorkerScope, and a CordonService's dispatcher holds
// an adopted slot for its whole lifetime, so no service may be alive
// across the restart.
TEST(Sessions, CheckpointSurvivesPoolRestart) {
  const auto& reg = ce::builtin_registry();
  for (const char* kind : {"lis", "lcs", "glws"}) {
    const ce::Solver& solver = reg.at(kind);
    ce::Instance full = solver.generate({1600, 4, 59});

    std::shared_ptr<const ce::SolverState> state;
    (void)solver.solve_checkpoint(ce::prefix_instance(full, 1000), state);
    ASSERT_NE(state, nullptr) << kind;

    ce::Instance mid = ce::prefix_instance(full, 1200);
    ce::ResumeResult r1 =
        solver.resume(state, mid, ce::slice_delta(full, 1000, 1200, 0));
    EXPECT_TRUE(r1.resumed) << kind;
    state = r1.state;

    // Restart the pool at a different width mid-lineage.
    cp::detail::shutdown_pool();
    ASSERT_TRUE(cp::set_num_workers(2)) << kind;

    ce::ResumeResult r2 =
        solver.resume(state, full, ce::slice_delta(full, 1200, 1600, 1));
    EXPECT_TRUE(r2.resumed) << kind;
    EXPECT_EQ(r2.result.path, SolvePath::kResumed) << kind;
    EXPECT_EQ(r2.result.objective, solver.solve(full).objective) << kind;
  }
  cp::detail::shutdown_pool();
}

// --- lineage and bookkeeping ------------------------------------------------

TEST(Sessions, BaseVersionMismatchRejectedLineageIntact) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  ce::Instance full = reg.at("lis").generate({500, 4, 3});
  std::uint64_t id = svc.create_session(ce::prefix_instance(full, 300));

  // Stale version: rejected, version unchanged.
  EXPECT_THROW(svc.append(id, ce::slice_delta(full, 300, 400, 4)).get(),
               cc::SolveError);
  auto info = svc.session_info(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 0u);

  // The correctly-versioned append still lands.
  ce::SolveResult r = svc.append(id, ce::slice_delta(full, 300, 400, 0)).get();
  EXPECT_EQ(r.objective,
            reg.at("lis").solve(ce::prefix_instance(full, 400)).objective);
  svc.close_session(id);
}

TEST(Sessions, UnknownAndClosedSessionsFailTheFuture) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  ce::Instance full = reg.at("lis").generate({200, 4, 3});
  ce::Delta delta = ce::slice_delta(full, 100, 200, 0);

  EXPECT_THROW(svc.append(777, delta).get(), cc::SolveError);

  std::uint64_t id = svc.create_session(ce::prefix_instance(full, 100));
  svc.close_session(id);
  svc.close_session(id);  // idempotent
  EXPECT_FALSE(svc.session_info(id).has_value());
  EXPECT_THROW(svc.append(id, delta).get(), cc::SolveError);
}

TEST(Sessions, CreateSessionRejectsUnknownKind) {
  cs::CordonService svc;
  ce::Instance bogus;
  bogus.kind = "no-such-problem";
  bogus.payload = ce::LisInstance{{1, 2, 3}};
  EXPECT_THROW((void)svc.create_session(bogus), std::invalid_argument);
}

// The session pins its base's canonical cache entry: a flood of
// unrelated traffic larger than the whole cache cannot evict it, and
// close_session releases the pin so normal LRU resumes.
TEST(Sessions, PinnedBaseSurvivesCachePressure) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({.cache_capacity = 8, .cache_shards = 1}, reg);
  const ce::Solver& lis = reg.at("lis");
  ce::Instance base = lis.generate({300, 4, 1});
  std::uint64_t id = svc.create_session(base);

  auto flood = [&] {
    std::vector<std::future<ce::SolveResult>> futs;
    for (std::uint64_t s = 0; s < 32; ++s)
      futs.push_back(svc.submit(lis.generate({120, 4, 1000 + s})));
    for (auto& f : futs) (void)f.get();
  };

  flood();
  cordon::core::CacheStats before = svc.stats().cache;
  (void)svc.submit(base).get();  // pinned -> still resident -> cache hit
  EXPECT_EQ(svc.stats().cache.hits, before.hits + 1);

  svc.close_session(id);
  flood();  // unpinned now: the same pressure evicts the base
  before = svc.stats().cache;
  (void)svc.submit(base).get();
  EXPECT_EQ(svc.stats().cache.hits, before.hits);
}

TEST(Sessions, StatsAndMetricsDistinguishResumeFromCold) {
  const auto& reg = ce::builtin_registry();
  cs::CordonService svc({}, reg);
  ce::Instance lis_full = reg.at("lis").generate({400, 4, 2});
  ce::Instance oat_full = reg.at("oat").generate({400, 4, 2});

  std::uint64_t a = svc.create_session(ce::prefix_instance(lis_full, 300));
  std::uint64_t b = svc.create_session(ce::prefix_instance(oat_full, 300));
  (void)svc.append(a, ce::slice_delta(lis_full, 300, 400, 0)).get();
  (void)svc.append(b, ce::slice_delta(oat_full, 300, 400, 0)).get();

  cs::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.sessions_created, 2u);
  EXPECT_EQ(stats.session_appends, 2u);
  EXPECT_EQ(stats.session_resumes, 1u);
  EXPECT_EQ(stats.session_cold_solves, 1u);

  std::string metrics = svc.metrics_text();
  EXPECT_NE(metrics.find("cordon_service_sessions_created_total 2"),
            std::string::npos);
  EXPECT_NE(metrics.find("cordon_service_session_resumes_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("cordon_service_session_cold_solves_total 1"),
            std::string::npos);

  svc.close_session(a);
  svc.close_session(b);
  EXPECT_EQ(svc.stats().sessions_closed, 2u);
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int rc = RUN_ALL_TESTS();
  cordon::parallel::detail::shutdown_pool();
  return rc;
}
