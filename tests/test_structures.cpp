// Data-structure substrates vs brute-force oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/parallel/random.hpp"
#include "src/structures/best_decision_list.hpp"
#include "src/structures/cartesian_tree.hpp"
#include "src/structures/hld.hpp"
#include "src/structures/monotonic_queue.hpp"
#include "src/structures/range_tree.hpp"
#include "src/structures/rmq.hpp"
#include "src/structures/segment_tree.hpp"
#include "src/structures/tournament_tree.hpp"
#include "src/structures/tree_utils.hpp"

namespace cs = cordon::structures;
namespace cp = cordon::parallel;

// ---------------------------------------------------------------- tournament
namespace {

// Brute-force prefix-minima extraction over an active-flag array.
std::vector<std::size_t> brute_prefix_minima(std::vector<std::uint64_t>& keys,
                                             std::vector<bool>& active) {
  std::vector<std::size_t> out;
  std::uint64_t run = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!active[i]) continue;
    if (keys[i] <= run) out.push_back(i);
    run = std::min(run, keys[i]);
  }
  for (std::size_t i : out) active[i] = false;
  return out;
}

}  // namespace

class TournamentSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TournamentSweep, MatchesBruteForceAcrossRounds) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = cp::hash64(77, i) % (n + 3);
  cs::TournamentTree tree(keys);
  std::vector<bool> active(n, true);
  auto brute_keys = keys;
  while (!tree.empty()) {
    auto got = tree.extract_prefix_minima();
    auto expect = brute_prefix_minima(brute_keys, active);
    ASSERT_EQ(got, expect);
    ASSERT_FALSE(got.empty());
  }
  EXPECT_TRUE(std::none_of(active.begin(), active.end(),
                           [](bool b) { return b; }));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TournamentSweep,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 100, 1000,
                                           40000));

// ------------------------------------------------------------------ rmq
TEST(SparseTableRmq, MatchesBruteForce) {
  const std::size_t n = 300;
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<int>(cp::hash64(5, i) % 100);
  cs::SparseTableRmq<int> rmq(v);
  for (std::size_t lo = 0; lo < n; lo += 7) {
    for (std::size_t hi = lo + 1; hi <= n; hi += 11) {
      std::size_t expect = static_cast<std::size_t>(
          std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo),
                           v.begin() + static_cast<std::ptrdiff_t>(hi)) -
          v.begin());
      ASSERT_EQ(rmq.argmin(lo, hi), expect) << lo << " " << hi;
    }
  }
}

// ------------------------------------------------------------- segment tree
TEST(SegmentTree, PointUpdateRangeMin) {
  struct MinOp {
    int operator()(int a, int b) const { return a < b ? a : b; }
  };
  const std::size_t n = 200;
  cs::SegmentTree<int, MinOp> st(n, 1 << 30, MinOp{});
  std::vector<int> ref(n, 1 << 30);
  for (std::size_t step = 0; step < 500; ++step) {
    std::size_t i = cp::hash64(9, step) % n;
    int val = static_cast<int>(cp::hash64(10, step) % 1000);
    st.set(i, val);
    ref[i] = val;
    std::size_t lo = cp::hash64(11, step) % n;
    std::size_t hi = lo + 1 + cp::hash64(12, step) % (n - lo);
    int expect = 1 << 30;
    for (std::size_t k = lo; k < hi; ++k) expect = std::min(expect, ref[k]);
    ASSERT_EQ(st.query(lo, hi), expect);
  }
}

// ------------------------------------------------------------ cartesian tree
TEST(CartesianTree, HeapAndInorderProperties) {
  const std::size_t n = 500;
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = static_cast<double>(cp::hash64(21, i) % 1000);
  cs::CartesianTree t = cs::build_cartesian_tree(w);
  // Heap property + parent/child consistency.
  int root_count = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (t.parent[v] == cs::CartesianTree::kNone) {
      ++root_count;
      EXPECT_EQ(v, t.root);
    } else {
      EXPECT_LE(w[t.parent[v]], w[v]);
      EXPECT_TRUE(t.left[t.parent[v]] == v || t.right[t.parent[v]] == v);
    }
  }
  EXPECT_EQ(root_count, 1);
  // In-order traversal must recover 0..n-1 (alphabetic structure).
  std::vector<std::uint32_t> inorder;
  struct Rec {
    static void go(const cs::CartesianTree& t, std::uint32_t v,
                   std::vector<std::uint32_t>& out) {
      if (v == cs::CartesianTree::kNone) return;
      go(t, t.left[v], out);
      out.push_back(v);
      go(t, t.right[v], out);
    }
  };
  Rec::go(t, t.root, inorder);
  ASSERT_EQ(inorder.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) ASSERT_EQ(inorder[i], i);
}

// ----------------------------------------------------------------- tree utils
TEST(EulerTour, SubtreeRangesAndDepths) {
  auto parents = std::vector<std::uint32_t>{cs::kNoNode, 0, 0, 1, 1, 2, 5, 5};
  cs::RootedTree t(parents);
  cs::EulerTour et = cs::build_euler_tour(t);
  EXPECT_EQ(et.depth[0], 0u);
  EXPECT_EQ(et.depth[3], 2u);
  EXPECT_EQ(et.depth[7], 3u);
  // Subtree of 5 = {5, 6, 7} — contiguous in preorder.
  EXPECT_EQ(et.tout[5] - et.tin[5], 3u);
  // Every child's range nests inside its parent's.
  for (std::uint32_t v = 1; v < t.size(); ++v) {
    EXPECT_GE(et.tin[v], et.tin[t.parent[v]]);
    EXPECT_LE(et.tout[v], et.tout[t.parent[v]]);
  }
}

// ------------------------------------------------------------------ range tree
TEST(RangeTree2D, MatchesBruteForce) {
  const std::size_t n = 400;
  std::vector<cs::RangeTree2D::Point> pts(n);
  for (std::uint32_t i = 0; i < n; ++i)
    pts[i] = {static_cast<std::uint32_t>(cp::hash64(31, i) % 100),
              static_cast<std::uint32_t>(cp::hash64(32, i) % 100), i};
  auto copy = pts;
  cs::RangeTree2D rt(std::move(copy));
  for (std::size_t q = 0; q < 200; ++q) {
    std::uint32_t xlo = static_cast<std::uint32_t>(cp::hash64(33, q) % 100);
    std::uint32_t xhi = xlo + cp::hash64(34, q) % 30;
    std::uint32_t ylo = static_cast<std::uint32_t>(cp::hash64(35, q) % 100);
    std::uint32_t yhi = ylo + cp::hash64(36, q) % 30;
    std::vector<std::uint32_t> expect;
    for (const auto& p : pts)
      if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi)
        expect.push_back(p.id);
    auto got = rt.report(xlo, xhi, ylo, yhi);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect);
    ASSERT_EQ(rt.count(xlo, xhi, ylo, yhi), expect.size());
  }
}

// ------------------------------------------------------------------------ hld
TEST(Hld, RootPathSegmentsCoverExactlyThePath) {
  const std::size_t n = 300;
  std::vector<std::uint32_t> parents(n, cs::kNoNode);
  for (std::uint32_t v = 1; v < n; ++v)
    parents[v] = static_cast<std::uint32_t>(cp::hash64(41, v) % v);
  cs::RootedTree t(parents);
  cs::HeavyLightDecomposition hld(t);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Expected path node set.
    std::vector<std::uint32_t> path;
    for (std::uint32_t u = v; u != cs::kNoNode; u = t.parent[u])
      path.push_back(u);
    std::vector<std::uint32_t> covered;
    std::size_t segments = 0;
    hld.for_each_root_path_segment(v, [&](std::uint32_t lo, std::uint32_t hi) {
      ++segments;
      for (std::uint32_t p = lo; p < hi; ++p)
        covered.push_back(hld.node_at(p));
    });
    std::sort(path.begin(), path.end());
    std::sort(covered.begin(), covered.end());
    ASSERT_EQ(covered, path) << "node " << v;
    // O(log n) segments: generous constant for random trees.
    ASSERT_LE(segments, 2 * 20u);
  }
}

// -------------------------------------------------------------- decision list
TEST(BestDecisionList, LookupAndAdvance) {
  cs::BestDecisionList b({{1, 4, 0}, {5, 9, 2}, {10, 12, 7}});
  EXPECT_EQ(b.best_of(1), 0u);
  EXPECT_EQ(b.best_of(4), 0u);
  EXPECT_EQ(b.best_of(5), 2u);
  EXPECT_EQ(b.best_of(12), 7u);
  EXPECT_EQ(b.best_of(13), cs::BestDecisionList::kNone);
  b.advance_to(6);
  EXPECT_EQ(b.best_of(5), cs::BestDecisionList::kNone);
  EXPECT_EQ(b.best_of(6), 2u);
  EXPECT_EQ(b.cover_lo(), 6u);
}

TEST(BestDecisionList, FirstWinFindsSuffixStart) {
  // Envelope: decision 0 everywhere; candidate 5 beats it from state 8 on.
  cs::BestDecisionList b({{1, 20, 0}});
  auto eval = [](std::size_t j, std::size_t i) {
    if (j == 0) return 10.0;
    return i >= 8 ? 5.0 : 15.0;  // candidate 5 wins iff i >= 8
  };
  EXPECT_EQ(b.first_win(5, eval, 1), 8u);
  EXPECT_EQ(b.first_win(5, eval, 9), 9u);
  auto never = [](std::size_t j, std::size_t) { return j == 0 ? 1.0 : 2.0; };
  EXPECT_EQ(b.first_win(5, never, 1), cs::BestDecisionList::kNone);
}

// ------------------------------------------------------------ monotonic queue
TEST(MonotonicQueue, ConvexMatchesBruteForce) {
  // eval(j, i) = E[j] + (x_i - x_j)^2 over a fixed candidate set, queried
  // in state order with interleaved inserts — the Γlws access pattern.
  const std::size_t n = 200;
  std::vector<double> x(n + 1), ev(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    x[i] = static_cast<double>(i) +
           cp::uniform_double(51, i);
    ev[i] = cp::uniform_double(52, i) * 10.0;
  }
  auto eval = [&](std::size_t j, std::size_t i) {
    double s = x[i] - x[j];
    return ev[j] + s * s;
  };
  cs::MonotonicQueue<decltype(eval)> q(n, eval);
  q.insert_convex(0);
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t got = q.best(i);
    double best = 1e300;
    std::size_t expect = 0;
    for (std::size_t j = 0; j < i; ++j)
      if (eval(j, i) < best) {
        best = eval(j, i);
        expect = j;
      }
    ASSERT_DOUBLE_EQ(eval(got, i), eval(expect, i)) << i;
    if (i < n) q.insert_convex(i);
  }
}

TEST(MonotonicQueue, ConcaveMatchesBruteForce) {
  const std::size_t n = 200;
  std::vector<double> x(n + 1), ev(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    x[i] = static_cast<double>(i) + cp::uniform_double(61, i);
    ev[i] = cp::uniform_double(62, i) * 2.0;
  }
  auto eval = [&](std::size_t j, std::size_t i) {
    return ev[j] + std::sqrt(x[i] - x[j]);
  };
  cs::MonotonicQueue<decltype(eval)> q(n, eval);
  q.insert_concave(0);
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t got = q.best(i);
    double best = 1e300;
    std::size_t expect = 0;
    for (std::size_t j = 0; j < i; ++j)
      if (eval(j, i) < best) {
        best = eval(j, i);
        expect = j;
      }
    ASSERT_NEAR(eval(got, i), eval(expect, i), 1e-9) << i;
    if (i < n) q.insert_concave(i);
  }
}
